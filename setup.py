"""Setuptools shim for environments without the `wheel` package.

`pip install -e . --no-build-isolation` uses PEP 660 editable wheels,
which require `wheel`; offline boxes without it can fall back to
`pip install -e . --no-build-isolation --no-use-pep517`, which needs this
shim. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
