"""Tests for the Equation 1 learning loop (repro.simulation.feedback)."""

import numpy as np
import pytest

from repro.core.quality import CooperationMatrix
from repro.core.tpg import solve_tpg
from repro.datasets.synthetic import generate_tasks, generate_workers
from repro.core.model import Instance
from repro.simulation.feedback import (
    QualityEstimator,
    RatingModel,
    run_learning_simulation,
)


@pytest.fixture
def true_quality():
    return CooperationMatrix.random_community(
        30, community_count=3, within=0.85, across=0.15, noise=0.03, seed=7
    )


class TestRatingModel:
    def test_noiseless_rating_is_mean_pair_quality(self, true_quality):
        model = RatingModel(true_quality, noise=0.0)
        members = [0, 1, 2]
        expected = true_quality.ordered_pair_sum(members) / 6
        assert model.rate(members, rng=0) == pytest.approx(expected)

    def test_rating_clipped_to_unit_interval(self, true_quality):
        model = RatingModel(true_quality, noise=10.0)
        for seed in range(20):
            rating = model.rate([0, 1, 2], rng=seed)
            assert 0.0 <= rating <= 1.0

    def test_singleton_rejected(self, true_quality):
        model = RatingModel(true_quality)
        with pytest.raises(ValueError):
            model.rate([3], rng=0)


class TestQualityEstimator:
    def test_cold_start_is_prior(self):
        estimator = QualityEstimator(worker_count=5)
        assert estimator.pair_estimate(0, 1) == pytest.approx(0.5)
        assert estimator.observed_pair_count() == 0

    def test_record_group_credits_all_pairs(self):
        estimator = QualityEstimator(worker_count=5)
        estimator.record_group([0, 1, 2], rating=1.0)
        assert estimator.observed_pair_count() == 3
        # Equation 1 with one rating of 1.0: 0.5*0.5 + 0.5*1.0 = 0.75.
        assert estimator.pair_estimate(0, 2) == pytest.approx(0.75)
        assert estimator.pair_estimate(2, 0) == pytest.approx(0.75)

    def test_validation(self):
        estimator = QualityEstimator(worker_count=5)
        with pytest.raises(ValueError):
            estimator.record_group([0, 1], rating=1.5)
        with pytest.raises(ValueError):
            estimator.record_group([0, 0, 1], rating=0.5)
        with pytest.raises(ValueError):
            estimator.pair_estimate(2, 2)

    def test_estimate_converges_with_noiseless_ratings(self, true_quality):
        """With many noiseless pair ratings, the estimate approaches
        alpha*omega + (1-alpha)*true mean pair signal."""
        model = RatingModel(true_quality, noise=0.0)
        estimator = QualityEstimator(worker_count=30)
        for _ in range(50):
            estimator.record_group([3, 4], model.rate([3, 4], rng=0))
        symmetric_mean = (
            true_quality.pair(3, 4) + true_quality.pair(4, 3)
        ) / 2.0
        expected = 0.25 + 0.5 * symmetric_mean
        assert estimator.pair_estimate(3, 4) == pytest.approx(expected)

    def test_to_matrix_round_trip(self):
        estimator = QualityEstimator(worker_count=4)
        estimator.record_group([0, 1], 0.9)
        matrix = estimator.to_matrix()
        assert matrix.pair(0, 1) == pytest.approx(estimator.pair_estimate(0, 1))
        assert matrix.pair(2, 3) == pytest.approx(0.5)  # prior

    def test_estimation_error_zero_without_observations(self, true_quality):
        estimator = QualityEstimator(worker_count=30)
        assert estimator.estimation_error(true_quality) == 0.0


class TestLearningSimulation:
    def _make_instance_factory(self):
        workers = generate_workers(
            30,
            speed_range=(0.2, 0.5),
            radius_range=(0.5, 0.9),
            seed=1,
        )
        tasks = generate_tasks(6, capacity=4, remaining_time=3.0, seed=2)

        def make_instance(round_index, estimates, rng):
            return Instance(
                workers=workers,
                tasks=tasks,
                quality=estimates,
                min_group_size=3,
            )

        return make_instance

    def test_trajectory_shapes(self, true_quality):
        trajectory = run_learning_simulation(
            true_quality,
            self._make_instance_factory(),
            solve_tpg,
            rounds=5,
            rating_noise=0.02,
            seed=0,
        )
        assert len(trajectory) == 5
        observed = [entry.observed_pairs for entry in trajectory]
        assert observed == sorted(observed)  # knowledge only grows
        for entry in trajectory:
            assert entry.realized_score >= 0.0
            assert 0.0 <= entry.estimation_error <= 1.0

    def test_learning_improves_realized_score(self, true_quality):
        """With community structure, later rounds (informed estimates)
        should realize more true cooperation than the cold-start round."""
        trajectory = run_learning_simulation(
            true_quality,
            self._make_instance_factory(),
            solve_tpg,
            rounds=12,
            rating_noise=0.02,
            seed=3,
        )
        first = trajectory[0].realized_score
        late = np.mean([entry.realized_score for entry in trajectory[-3:]])
        assert late >= first - 1e-9
