"""Tests for the synthetic and Meetup-surrogate data generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.meetup import MeetupDataset, generate_meetup_dataset
from repro.datasets.synthetic import (
    gaussian_in_range,
    generate_instance,
    generate_locations,
    generate_tasks,
    generate_workers,
)
from repro.utils.rng import ensure_rng


class TestGaussianInRange:
    def test_bounds_respected(self):
        rng = ensure_rng(0)
        samples = gaussian_in_range(rng, 5000, 0.01, 0.05)
        assert samples.min() >= 0.01
        assert samples.max() <= 0.05

    def test_centered_on_midpoint(self):
        rng = ensure_rng(1)
        samples = gaussian_in_range(rng, 20000, 0.0, 1.0)
        assert samples.mean() == pytest.approx(0.5, abs=0.01)
        # Truncated Gaussian: mass concentrates near the middle.
        central = np.mean((samples > 0.3) & (samples < 0.7))
        assert central > 0.6

    def test_degenerate_range(self):
        rng = ensure_rng(2)
        samples = gaussian_in_range(rng, 100, 0.3, 0.3)
        assert (samples == 0.3).all()

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            gaussian_in_range(ensure_rng(0), 10, 0.5, 0.4)

    @given(st.integers(0, 10**6), st.floats(0, 0.5), st.floats(0.5, 1))
    @settings(max_examples=20, deadline=None)
    def test_property_within_range(self, seed, low, high):
        samples = gaussian_in_range(ensure_rng(seed), 200, low, high)
        assert ((samples >= low) & (samples <= high)).all()


class TestLocations:
    def test_uniform_in_unit_square(self):
        locations = generate_locations(ensure_rng(0), 1000, "uniform")
        assert locations.shape == (1000, 2)
        assert locations.min() >= 0.0
        assert locations.max() <= 1.0

    def test_skewed_clusters_near_center(self):
        locations = generate_locations(ensure_rng(1), 4000, "skewed")
        assert locations.min() >= 0.0 and locations.max() <= 1.0
        distances = np.linalg.norm(locations - 0.5, axis=1)
        # 80% Gaussian(0.2) around the centre => most mass within 0.4.
        assert np.mean(distances < 0.4) > 0.6

    def test_skew_more_concentrated_than_uniform(self):
        uniform = generate_locations(ensure_rng(2), 3000, "uniform")
        skewed = generate_locations(ensure_rng(2), 3000, "skewed")
        d_unif = np.linalg.norm(uniform - 0.5, axis=1).mean()
        d_skew = np.linalg.norm(skewed - 0.5, axis=1).mean()
        assert d_skew < d_unif

    def test_unknown_distribution(self):
        with pytest.raises(ValueError):
            generate_locations(ensure_rng(0), 10, "zipf")


class TestWorkersAndTasks:
    def test_worker_fields(self):
        workers = generate_workers(
            50, speed_range=(0.01, 0.05), radius_range=(0.05, 0.1), seed=0
        )
        assert len(workers) == 50
        assert len({w.worker_id for w in workers}) == 50
        for worker in workers:
            assert 0.01 <= worker.speed <= 0.05
            assert 0.05 <= worker.radius <= 0.1

    def test_explicit_locations(self):
        locations = np.array([[0.1, 0.2], [0.3, 0.4]])
        workers = generate_workers(2, locations=locations, seed=0)
        assert workers[0].location.x == 0.1
        assert workers[1].location.y == 0.4
        with pytest.raises(ValueError):
            generate_workers(3, locations=locations, seed=0)

    def test_id_offset(self):
        workers = generate_workers(3, seed=0, id_offset=100)
        assert [w.worker_id for w in workers] == [100, 101, 102]

    def test_task_fields(self):
        tasks = generate_tasks(
            20, capacity=5, remaining_time=2.5, created_time=1.0, seed=0
        )
        assert len(tasks) == 20
        for task in tasks:
            assert task.capacity == 5
            assert task.deadline == pytest.approx(3.5)
            assert task.created_time == 1.0

    def test_generate_instance_shapes(self):
        instance = generate_instance(30, 8, capacity=4, seed=0)
        assert instance.worker_count == 30
        assert instance.task_count == 8
        assert instance.quality.size == 30

    def test_generate_instance_quality_kinds(self):
        community = generate_instance(10, 2, quality_kind="community", seed=1)
        uniform = generate_instance(10, 2, quality_kind="uniform", seed=1)
        assert community.quality != uniform.quality
        with pytest.raises(ValueError):
            generate_instance(10, 2, quality_kind="zipf", seed=1)

    def test_reproducible_with_seed(self):
        a = generate_instance(15, 4, seed=99)
        b = generate_instance(15, 4, seed=99)
        assert a.quality == b.quality
        assert a.workers == b.workers
        assert a.tasks == b.tasks


class TestMeetup:
    @pytest.fixture(scope="class")
    def small_dataset(self) -> MeetupDataset:
        return generate_meetup_dataset(
            user_count=300,
            event_count=120,
            group_count=60,
            district_count=5,
            seed=7,
        )

    def test_shapes(self, small_dataset):
        assert small_dataset.user_count == 300
        assert small_dataset.event_count == 120
        assert small_dataset.quality.size == 300
        assert small_dataset.group_count <= 60

    def test_locations_in_unit_square(self, small_dataset):
        for array in (small_dataset.user_locations, small_dataset.event_locations):
            assert array.min() >= 0.0
            assert array.max() <= 1.0

    def test_quality_follows_paper_formula(self, small_dataset):
        """Spot-check Equation 1 with alpha = omega = 0.5 on raw
        memberships."""
        memberships = small_dataset.memberships
        rng = np.random.default_rng(0)
        for _ in range(30):
            i, k = rng.integers(0, 300, size=2)
            if i == k:
                continue
            union = len(memberships[i] | memberships[k])
            common = len(memberships[i] & memberships[k])
            jaccard = common / union if union else 0.0
            expected = 0.25 + 0.5 * jaccard
            assert small_dataset.quality.pair(int(i), int(k)) == pytest.approx(
                expected
            )

    def test_community_signal_exists(self, small_dataset):
        """Some pairs share groups (quality above the prior floor)."""
        values = small_dataset.quality.values
        off = values[~np.eye(300, dtype=bool)]
        assert (off > 0.26).any()
        assert off.min() >= 0.25 - 1e-12

    def test_locality_validation(self):
        with pytest.raises(ValueError):
            generate_meetup_dataset(user_count=10, locality=1.5, seed=0)

    def test_reproducible(self):
        a = generate_meetup_dataset(
            user_count=50, event_count=20, group_count=10, seed=3
        )
        b = generate_meetup_dataset(
            user_count=50, event_count=20, group_count=10, seed=3
        )
        assert a.quality == b.quality
        np.testing.assert_array_equal(a.user_locations, b.user_locations)
