"""Tests for the RAND and MFLOW baselines."""

import pytest

from repro.core.baselines.mflow import solve_mflow
from repro.core.baselines.random_assign import solve_random
from repro.core.tpg import solve_tpg
from repro.core.validity import compute_valid_pairs
from repro.datasets.synthetic import generate_instance

from tests.conftest import make_dense_instance


class TestRandom:
    def test_feasible(self):
        instance = make_dense_instance(30, 6, seed=1)
        pairs = compute_valid_pairs(instance)
        assignment = solve_random(instance, pairs, seed=0)
        assignment.check_feasible()

    def test_deterministic_given_seed(self):
        instance = make_dense_instance(30, 6, seed=2)
        pairs = compute_valid_pairs(instance)
        first = solve_random(instance, pairs, seed=42).to_pairs()
        second = solve_random(instance, pairs, seed=42).to_pairs()
        assert first == second

    def test_different_seeds_differ(self):
        instance = make_dense_instance(40, 8, seed=3)
        pairs = compute_valid_pairs(instance)
        results = {
            tuple(solve_random(instance, pairs, seed=s).to_pairs())
            for s in range(5)
        }
        assert len(results) > 1

    def test_no_incomplete_groups(self):
        """RAND only commits groups reaching the minimum size B."""
        instance = generate_instance(50, 10, seed=4)
        pairs = compute_valid_pairs(instance)
        assignment = solve_random(instance, pairs, seed=0)
        for task in range(instance.task_count):
            count = assignment.assigned_count(task)
            assert count == 0 or count >= instance.min_group_size

    def test_empty_instance(self):
        instance = generate_instance(0, 0, seed=0)
        assert solve_random(instance, seed=0).total_score() == 0.0


class TestMFlow:
    def test_feasible(self):
        instance = make_dense_instance(30, 6, seed=5)
        pairs = compute_valid_pairs(instance)
        assignment = solve_mflow(instance, pairs)
        assignment.check_feasible()

    def test_maximizes_pair_count_on_dense_instance(self):
        """On a dense instance MFLOW should assign min(m, sum capacities)
        workers — the max-flow value."""
        instance = make_dense_instance(30, 6, capacity=4, seed=6)
        pairs = compute_valid_pairs(instance)
        assignment = solve_mflow(instance, pairs)
        upper = min(
            sum(1 for w in range(30) if pairs.tasks_for_worker[w]),
            sum(t.capacity for t in instance.tasks),
        )
        # Sub-B dissolution may shave a few, but the bulk must be assigned.
        assert assignment.assigned_worker_count() >= upper - 2 * instance.min_group_size

    def test_assigns_at_least_tpg_pairs_often(self):
        """MFLOW optimizes cardinality; TPG optimizes quality. On random
        instances MFLOW's pair count should not be dominated badly."""
        instance = generate_instance(60, 12, seed=7)
        pairs = compute_valid_pairs(instance)
        mflow_pairs = solve_mflow(instance, pairs).assigned_worker_count()
        tpg_pairs = solve_tpg(instance, pairs).assigned_worker_count()
        assert mflow_pairs >= tpg_pairs - instance.min_group_size

    def test_cooperation_oblivious_scores_below_tpg(self):
        """The paper's headline: quality-aware solvers beat MFLOW on the
        cooperation score (community-structured quality)."""
        wins = 0
        for seed in range(5):
            instance = make_dense_instance(40, 6, seed=seed)
            pairs = compute_valid_pairs(instance)
            if (
                solve_tpg(instance, pairs).total_score()
                >= solve_mflow(instance, pairs).total_score()
            ):
                wins += 1
        assert wins >= 4

    def test_empty_instance(self):
        instance = generate_instance(0, 0, seed=0)
        assert solve_mflow(instance).total_score() == 0.0

    def test_no_valid_pairs(self):
        instance = generate_instance(
            10, 3, radius_range=(0.0001, 0.0002), seed=8
        )
        pairs = compute_valid_pairs(instance)
        if pairs.pair_count > 0:
            pytest.skip("random geometry produced valid pairs")
        assignment = solve_mflow(instance, pairs)
        assert assignment.assigned_worker_count() == 0
