"""Tests for the uniform grid index, including equivalence with the
R-tree on identical workloads."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial.geometry import BoundingBox, Point
from repro.spatial.grid import GridIndex
from repro.spatial.rtree import RTree


def random_points(rng, count):
    xy = rng.uniform(0, 1, size=(count, 2))
    return [(i, Point(float(x), float(y))) for i, (x, y) in enumerate(xy)]


class TestGridBasics:
    def test_bad_cell_size(self):
        with pytest.raises(ValueError):
            GridIndex(cell_size=0.0)

    def test_insert_query(self):
        grid = GridIndex(0.25)
        grid.insert("a", Point(0.1, 0.1))
        grid.insert("b", Point(0.9, 0.9))
        assert grid.query_circle(Point(0, 0), 0.2) == ["a"]
        assert sorted(grid.query_circle(Point(0.5, 0.5), 1.0)) == ["a", "b"]

    def test_negative_radius(self):
        grid = GridIndex(0.5)
        with pytest.raises(ValueError):
            grid.query_circle(Point(0, 0), -1)

    def test_negative_coordinates_work(self):
        grid = GridIndex(0.3)
        grid.insert("neg", Point(-0.7, -0.7))
        assert grid.query_circle(Point(-0.7, -0.7), 0.01) == ["neg"]

    def test_delete(self):
        grid = GridIndex(0.5)
        grid.insert("a", Point(0.1, 0.1))
        assert grid.delete("a", Point(0.1, 0.1))
        assert not grid.delete("a", Point(0.1, 0.1))
        assert len(grid) == 0
        assert grid.query_circle(Point(0.1, 0.1), 0.5) == []

    def test_delete_wrong_point(self):
        grid = GridIndex(0.5)
        grid.insert("a", Point(0.1, 0.1))
        assert not grid.delete("a", Point(0.2, 0.2))
        assert len(grid) == 1

    def test_iter_and_len(self):
        rng = np.random.default_rng(0)
        points = random_points(rng, 30)
        grid = GridIndex.build(points, 0.2)
        assert len(grid) == 30
        assert sorted(item for item, _ in grid) == list(range(30))

    def test_box_query(self):
        rng = np.random.default_rng(3)
        points = random_points(rng, 150)
        grid = GridIndex.build(points, 0.15)
        box = BoundingBox(0.2, 0.3, 0.7, 0.9)
        expected = sorted(i for i, p in points if box.contains_point(p))
        assert sorted(grid.query_box(box)) == expected


@settings(max_examples=30, deadline=None)
@given(
    st.integers(0, 150),
    st.floats(0.05, 0.8),
    st.integers(0, 2**31),
)
def test_grid_matches_rtree(count, cell_size, seed):
    """Both indexes return identical circle-query results."""
    rng = np.random.default_rng(seed)
    points = random_points(rng, count)
    grid = GridIndex.build(points, cell_size)
    tree = RTree.bulk_load(points)
    for _ in range(5):
        center = Point(float(rng.uniform(0, 1)), float(rng.uniform(0, 1)))
        radius = float(rng.uniform(0, 0.6))
        assert sorted(grid.query_circle(center, radius)) == sorted(
            tree.query_circle(center, radius)
        )
