"""Tests for the extension baselines: WFLOW and PGREEDY."""

import pytest

from repro.core.baselines.mflow import solve_mflow
from repro.core.baselines.pair_greedy import solve_pair_greedy
from repro.core.baselines.wflow import solve_wflow
from repro.core.tpg import solve_tpg
from repro.core.validity import compute_valid_pairs
from repro.datasets.synthetic import generate_instance

from tests.conftest import make_dense_instance


class TestWFlow:
    def test_feasible(self):
        instance = make_dense_instance(30, 6, seed=1)
        pairs = compute_valid_pairs(instance)
        assignment = solve_wflow(instance, pairs)
        assignment.check_feasible()

    def test_assigns_like_mflow_in_cardinality(self):
        """WFLOW keeps maximum cardinality (the bonus term dominates)."""
        instance = make_dense_instance(40, 6, seed=2)
        pairs = compute_valid_pairs(instance)
        wflow = solve_wflow(instance, pairs)
        mflow = solve_mflow(instance, pairs)
        # Both dissolve sub-B groups, so compare within a small slack.
        assert (
            abs(wflow.assigned_worker_count() - mflow.assigned_worker_count())
            <= instance.min_group_size
        )

    def test_usually_beats_mflow_on_score(self):
        """Preferring high-q_hat workers should help (or at least not
        hurt) the cooperation score versus quality-blind MFLOW."""
        wins = 0
        for seed in range(6):
            instance = make_dense_instance(40, 6, seed=seed)
            pairs = compute_valid_pairs(instance)
            if (
                solve_wflow(instance, pairs).total_score()
                >= solve_mflow(instance, pairs).total_score() - 1e-9
            ):
                wins += 1
        assert wins >= 3

    def test_below_tpg(self):
        """Flow methods cannot express pairwise cooperation: TPG should
        dominate WFLOW on community instances."""
        wins = 0
        for seed in range(5):
            instance = make_dense_instance(40, 6, seed=seed)
            pairs = compute_valid_pairs(instance)
            if (
                solve_tpg(instance, pairs).total_score()
                >= solve_wflow(instance, pairs).total_score() - 1e-9
            ):
                wins += 1
        assert wins >= 4

    def test_empty(self):
        instance = generate_instance(0, 0, seed=0)
        assert solve_wflow(instance).total_score() == 0.0


class TestPairGreedy:
    def test_feasible(self):
        instance = make_dense_instance(30, 6, seed=3)
        pairs = compute_valid_pairs(instance)
        assignment = solve_pair_greedy(instance, pairs)
        assignment.check_feasible()

    def test_no_sub_b_groups_remain(self):
        instance = make_dense_instance(25, 5, seed=4)
        pairs = compute_valid_pairs(instance)
        assignment = solve_pair_greedy(instance, pairs)
        for task in range(instance.task_count):
            count = assignment.assigned_count(task)
            assert count == 0 or count >= instance.min_group_size

    def test_tpg_stage1_adds_value(self):
        """The ablation's purpose: full TPG should match or beat the
        stage-2-only greedy on most instances."""
        wins = 0
        for seed in range(6):
            instance = make_dense_instance(36, 6, seed=seed)
            pairs = compute_valid_pairs(instance)
            if (
                solve_tpg(instance, pairs).total_score()
                >= solve_pair_greedy(instance, pairs).total_score() - 1e-9
            ):
                wins += 1
        assert wins >= 4

    def test_empty(self):
        instance = generate_instance(0, 0, seed=0)
        assert solve_pair_greedy(instance).total_score() == 0.0


class TestWFlowKuhnEquivalence:
    def test_matches_min_cost_flow_formulation(self):
        """The weight-ordered Kuhn greedy must match the min-cost
        max-flow formulation in both cardinality and summed proxy weight
        (solutions may differ, the objective values may not)."""
        from repro.core.bounds import highest_average_quality
        from repro.flow.mincost import MinCostFlowNetwork, min_cost_max_flow
        import repro.core.baselines.wflow as wflow_module

        for seed in range(5):
            instance = generate_instance(
                22, 5, speed_range=(0.1, 0.4), radius_range=(0.2, 0.6), seed=seed
            )
            pairs = compute_valid_pairs(instance)
            q_hat = [
                highest_average_quality(
                    instance.quality, w, instance.min_group_size
                )
                for w in range(instance.worker_count)
            ]

            # Reference: explicit min-cost max-flow with a bonus making
            # cardinality dominate.
            source, first_worker = 0, 1
            first_task = first_worker + instance.worker_count
            sink = first_task + instance.task_count
            network = MinCostFlowNetwork(sink + 1)
            bonus = 2.0 * max(q_hat, default=0.0) * instance.worker_count + 1.0
            for worker in range(instance.worker_count):
                network.add_edge(source, first_worker + worker, 1, 0.0)
            pair_edges = []
            for worker, tasks in enumerate(pairs.tasks_for_worker):
                for task in tasks:
                    pair_edges.append(
                        (
                            network.add_edge(
                                first_worker + worker,
                                first_task + task,
                                1,
                                -(bonus + q_hat[worker]),
                            ),
                            worker,
                        )
                    )
            for task in range(instance.task_count):
                network.add_edge(
                    first_task + task, sink, instance.tasks[task].capacity, 0.0
                )
            flow = min_cost_max_flow(network, source, sink)
            flow_weight = sum(
                q_hat[worker]
                for edge, worker in pair_edges
                if network.edges[edge].flow > 0
            )

            # Kuhn version, with sub-B dissolution disabled to compare
            # the raw matchings.
            original = wflow_module.Assignment.drop_incomplete_groups
            wflow_module.Assignment.drop_incomplete_groups = lambda self: []
            try:
                kuhn = solve_wflow(instance, pairs)
            finally:
                wflow_module.Assignment.drop_incomplete_groups = original
            kuhn_weight = sum(q_hat[w] for w, _ in kuhn.to_pairs())

            assert kuhn.assigned_worker_count() == flow.flow_value
            assert kuhn_weight == pytest.approx(flow_weight)
