"""Tests for the parallel sweep executor (``repro.experiments.parallel``).

The contract under test: ``--jobs N`` sweeps are **bit-identical** to
serial ones (scores, upper bounds, completed-task counts), failing or
hanging cells become structured failure records while the rest of the
sweep completes, and the executor's telemetry/population-cache behave.
"""

from __future__ import annotations

import pickle
import time

import pytest

from repro.experiments.config import APPROACHES, ExperimentSettings
from repro.experiments.figures import fig2_capacity, fig7_workers
from repro.experiments.parallel import (
    CellSpec,
    SweepExecutor,
    build_cell_specs,
    cached_population,
    population_cache_key,
)

QUICK = ExperimentSettings(
    rounds=2,
    workers_per_round=40,
    tasks_per_round=10,
    speed_range=(0.05, 0.2),
    radius_range=(0.2, 0.4),
    dataset="unif",
)


def fingerprint(result):
    """Exact (repr-level) scores/uppers/counts of a sweep, for parity."""
    return [
        (
            point.value,
            repr(point.upper),
            {
                name: (
                    repr(outcome.total_score),
                    outcome.completed_tasks,
                    outcome.assigned_workers,
                )
                for name, outcome in point.outcomes.items()
            },
        )
        for point in result.points
    ]


class TestParity:
    def test_fig7_jobs4_bit_identical_to_serial(self):
        kwargs = dict(
            base=QUICK,
            values=(30, 40),
            approaches=("RAND", "TPG", "GT"),
            seed=3,
        )
        serial = fig7_workers(**kwargs, n_jobs=1)
        parallel = fig7_workers(**kwargs, n_jobs=4)
        assert not parallel.failures
        assert fingerprint(parallel) == fingerprint(serial)
        # dict iteration order must match the approach lineup, not the
        # (nondeterministic) cell completion order.
        for point in parallel.points:
            assert list(point.outcomes) == ["RAND", "TPG", "GT"]

    def test_fig2_meetup_jobs2_bit_identical_to_serial(self):
        base = ExperimentSettings(
            rounds=2,
            workers_per_round=40,
            tasks_per_round=10,
            speed_range=(0.05, 0.2),
            radius_range=(0.2, 0.4),
            dataset="meetup",
        )
        kwargs = dict(base=base, values=(3, 4), approaches=("RAND",), seed=0)
        serial = fig2_capacity(**kwargs, n_jobs=1)
        parallel = fig2_capacity(**kwargs, n_jobs=2)
        assert not parallel.failures
        assert fingerprint(parallel) == fingerprint(serial)


class TestFailureInjection:
    def test_raising_cell_records_failure_serial(self):
        result = fig7_workers(
            base=QUICK,
            values=(30,),
            approaches=("RAND", "BOGUS"),
            seed=0,
            n_jobs=1,
        )
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert failure.approach == "BOGUS"
        assert "unknown approach" in failure.error
        assert failure.attempts == 2  # one retry
        assert not failure.timed_out
        # The rest of the sweep completed.
        assert set(result.points[0].outcomes) == {"RAND"}
        assert result.points[0].score("RAND") >= 0.0

    def test_raising_cell_records_failure_parallel(self):
        result = fig7_workers(
            base=QUICK,
            values=(30,),
            approaches=("RAND", "BOGUS"),
            seed=0,
            n_jobs=2,
        )
        assert len(result.failures) == 1
        assert result.failures[0].approach == "BOGUS"
        assert set(result.points[0].outcomes) == {"RAND"}
        assert result.telemetry.failed_cells == 1
        assert result.telemetry.retried_cells >= 1

    def test_timing_out_cell_records_failure_and_sweep_completes(self):
        def sleepy_factory(epsilon, seed, kernel="python"):
            def solver(instance, valid_pairs):
                time.sleep(1.2)
                raise AssertionError("cell should have been abandoned")

            return solver

        APPROACHES["SLEEPY"] = sleepy_factory
        try:
            # fork (not spawn) so the pool workers inherit the
            # test-registered approach.
            executor = SweepExecutor(
                n_jobs=2, timeout=0.15, retries=1, mp_context="fork"
            )
            result = fig7_workers(
                base=QUICK,
                values=(30,),
                approaches=("RAND", "SLEEPY"),
                seed=0,
                executor=executor,
            )
        finally:
            del APPROACHES["SLEEPY"]
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert failure.approach == "SLEEPY"
        assert failure.timed_out
        assert failure.attempts == 2
        assert set(result.points[0].outcomes) == {"RAND"}


class TestExecutor:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SweepExecutor(n_jobs=0)
        with pytest.raises(ValueError):
            SweepExecutor(timeout=0.0)
        with pytest.raises(ValueError):
            SweepExecutor(retries=-1)

    def test_telemetry_fields(self):
        result = fig7_workers(
            base=QUICK, values=(30, 40), approaches=("RAND",), seed=0
        )
        telemetry = result.telemetry
        assert telemetry is not None
        assert telemetry.n_jobs == 1
        assert telemetry.cells == 2
        assert telemetry.failed_cells == 0
        assert telemetry.wall_seconds > 0
        assert telemetry.cell_seconds > 0
        assert telemetry.speedup_vs_serial_estimate > 0
        payload = telemetry.to_dict()
        assert payload["cells"] == 2
        assert "worker_utilization" in payload
        assert "cells over 1 worker(s)" in telemetry.summary()

    def test_cell_specs_are_picklable_and_mark_upper_reference(self):
        from dataclasses import replace

        specs = build_cell_specs(
            "Figure 7",
            "workers_per_round",
            [30, 40],
            lambda base, value: replace(base, workers_per_round=value),
            QUICK,
            ("RAND", "TPG", "GT"),
            seed=0,
        )
        assert len(specs) == 6
        uppers = [spec.approach for spec in specs if spec.compute_upper]
        assert uppers == ["GT", "GT"]  # GT is the reference when present
        restored = pickle.loads(pickle.dumps(specs))
        assert restored == specs
        assert isinstance(restored[0], CellSpec)


class TestPopulationCache:
    def test_same_settings_hit_the_cache(self):
        first = cached_population(QUICK, seed=11)
        again = cached_population(QUICK, seed=11)
        assert first is again

    def test_key_ignores_non_population_settings(self):
        from dataclasses import replace

        base_key = population_cache_key(QUICK, 0)
        assert population_cache_key(replace(QUICK, epsilon=0.08), 0) == base_key
        assert population_cache_key(replace(QUICK, capacity=6), 0) == base_key
        # Pool sizes and seed DO matter.
        assert (
            population_cache_key(replace(QUICK, workers_per_round=500), 0)
            != base_key
        )
        assert population_cache_key(QUICK, 1) != base_key
        # Meetup ignores everything but the seed.
        meetup = replace(QUICK, dataset="meetup")
        assert population_cache_key(meetup, 0) == ("meetup", 0)
        assert population_cache_key(
            replace(meetup, workers_per_round=9), 0
        ) == ("meetup", 0)


class TestCheckpointResume:
    KWARGS = dict(
        base=QUICK, values=(30, 40), approaches=("RAND", "TPG"), seed=3
    )

    def test_full_resume_is_repr_identical_to_writing_run(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        first = fig7_workers(**self.KWARGS, checkpoint=str(journal))
        assert first.telemetry.resumed_cells == 0
        resumed = fig7_workers(**self.KWARGS, checkpoint=str(journal))
        assert resumed.telemetry.resumed_cells == 4
        assert fingerprint(resumed) == fingerprint(first)
        # Beyond scores: the whole outcome (reports, timings, stats) is
        # repr-identical — JSON floats round-trip exactly.
        for a, b in zip(first.points, resumed.points):
            assert repr(b.outcomes) == repr(a.outcomes)
        assert "resumed 4" in resumed.telemetry.summary()

    def test_truncated_journal_reruns_only_missing_cells(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        first = fig7_workers(**self.KWARGS, checkpoint=str(journal))
        lines = journal.read_text().strip().splitlines()
        assert len(lines) == 4
        journal.write_text("\n".join(lines[:2]) + "\n")
        resumed = fig7_workers(**self.KWARGS, checkpoint=str(journal))
        assert resumed.telemetry.resumed_cells == 2
        assert not resumed.failures
        assert fingerprint(resumed) == fingerprint(first)
        # The re-executed cells were journaled again.
        assert len(journal.read_text().strip().splitlines()) == 4

    def test_corrupt_tail_and_schema_mismatch_are_skipped(self, tmp_path):
        from repro.experiments.parallel import SweepJournal

        journal = tmp_path / "sweep.jsonl"
        fig7_workers(**self.KWARGS, checkpoint=str(journal))
        with open(journal, "a", encoding="utf-8") as handle:
            handle.write('{"schema": 999, "key": "future-version"}\n')
            handle.write('{"schema": 1, "key": "trunc')  # killed mid-write
        records = SweepJournal(journal).load()
        assert len(records) == 4
        assert "future-version" not in records
        # A resume over the damaged journal still works.
        resumed = fig7_workers(**self.KWARGS, checkpoint=str(journal))
        assert resumed.telemetry.resumed_cells == 4

    def test_settings_change_invalidates_journal_entries(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        fig7_workers(**self.KWARGS, checkpoint=str(journal))
        changed = fig7_workers(
            base=QUICK,
            values=(30, 40),
            approaches=("RAND", "TPG"),
            seed=4,  # different seed -> different cells
            checkpoint=str(journal),
        )
        assert changed.telemetry.resumed_cells == 0

    def test_keyboard_interrupt_flushes_journal_then_resumes(self, tmp_path):
        calls = {"count": 0, "armed": True}

        def kboom_factory(epsilon, seed, kernel="python"):
            inner = APPROACHES["RAND"](epsilon=epsilon, seed=seed)

            def solver(instance, valid_pairs):
                calls["count"] += 1
                # Cells run 2 rounds each; blow up inside the second cell.
                if calls["armed"] and calls["count"] > 2:
                    raise KeyboardInterrupt
                return inner(instance, valid_pairs)

            return solver

        APPROACHES["KBOOM"] = kboom_factory
        journal = tmp_path / "sweep.jsonl"
        kwargs = dict(
            base=QUICK, values=(30, 40), approaches=("KBOOM",), seed=3
        )
        try:
            executor = SweepExecutor(n_jobs=1, checkpoint=str(journal))
            with pytest.raises(KeyboardInterrupt):
                fig7_workers(**kwargs, executor=executor)
            # The first cell was journaled before the interrupt...
            assert len(journal.read_text().strip().splitlines()) == 1
            # ...and partial telemetry reports exactly the finished work.
            assert executor.partial_telemetry is not None
            assert executor.partial_telemetry.cells == 1

            calls["armed"] = False
            calls["count"] = 0
            clean = fig7_workers(**kwargs)
            resumed = fig7_workers(**kwargs, checkpoint=str(journal))
            assert resumed.telemetry.resumed_cells == 1
            assert not resumed.failures
            assert fingerprint(resumed) == fingerprint(clean)
        finally:
            del APPROACHES["KBOOM"]

    def test_pool_path_journals_and_resumes(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        parallel = fig7_workers(
            **self.KWARGS, n_jobs=2, checkpoint=str(journal)
        )
        assert not parallel.failures
        assert len(journal.read_text().strip().splitlines()) == 4
        resumed = fig7_workers(
            **self.KWARGS, n_jobs=2, checkpoint=str(journal)
        )
        assert resumed.telemetry.resumed_cells == 4
        assert fingerprint(resumed) == fingerprint(parallel)

    def test_cli_sweep_resume_flag(self, capsys, tmp_path):
        from repro.cli import main

        journal = tmp_path / "fig6.jsonl"
        argv = [
            "sweep", "--figure", "fig6", "--scale", "0.05",
            "--resume", str(journal),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "[executor:" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "resumed" in second


class TestRetryPolicy:
    def test_rejects_bad_parameters(self):
        from repro.utils.procpool import RetryPolicy

        with pytest.raises(ValueError, match="backoff_base"):
            RetryPolicy(backoff_base=-0.1)
        with pytest.raises(ValueError, match="backoff_cap"):
            RetryPolicy(backoff_base=1.0, backoff_cap=0.5)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError, match="timeout_escalation"):
            RetryPolicy(timeout_escalation=0.9)

    def test_delay_doubles_then_caps(self):
        from repro.utils.procpool import RetryPolicy

        policy = RetryPolicy(backoff_base=0.1, backoff_cap=0.5, jitter=0.0)
        assert policy.delay(0, 1) == pytest.approx(0.1)
        assert policy.delay(0, 2) == pytest.approx(0.2)
        assert policy.delay(0, 3) == pytest.approx(0.4)
        assert policy.delay(0, 4) == pytest.approx(0.5)  # capped
        assert policy.delay(0, 10) == pytest.approx(0.5)

    def test_zero_base_disables_all_sleeping(self):
        from repro.utils.procpool import RetryPolicy

        policy = RetryPolicy(backoff_base=0.0)
        assert policy.delay(3, 5) == 0.0
        assert policy.rebuild_delay(4) == 0.0

    def test_jitter_is_deterministic_and_bounded(self):
        from repro.utils.procpool import RetryPolicy

        a = RetryPolicy(backoff_base=0.1, jitter=0.25, seed=9)
        b = RetryPolicy(backoff_base=0.1, jitter=0.25, seed=9)
        raw = 0.1
        for index in range(4):
            delay = a.delay(index, 1)
            assert delay == b.delay(index, 1)  # same key, same jitter
            assert raw <= delay <= raw * 1.25
        # Distinct items never thunder in herd.
        assert len({round(a.delay(i, 1), 12) for i in range(8)}) > 1

    def test_timeout_escalation(self):
        from repro.utils.procpool import RetryPolicy

        policy = RetryPolicy(timeout_escalation=2.0)
        assert policy.timeout_for(None, 3) is None
        assert policy.timeout_for(1.5, 1) == pytest.approx(1.5)
        assert policy.timeout_for(1.5, 3) == pytest.approx(6.0)

    def test_pool_with_custom_policy_stays_bit_identical(self):
        from repro.utils.procpool import RetryPolicy

        kwargs = dict(
            base=QUICK, values=(30, 40), approaches=("RAND", "GT"), seed=3
        )
        serial = fig7_workers(**kwargs, n_jobs=1)
        executor = SweepExecutor(
            n_jobs=2, retry_policy=RetryPolicy(backoff_base=0.2, seed=7)
        )
        tuned = fig7_workers(**kwargs, executor=executor)
        assert not tuned.failures
        assert fingerprint(tuned) == fingerprint(serial)


class TestJournalDurability:
    """Torn-write recovery: the regression behind a real mis-resume.

    A SIGKILL between ``write()`` and the newline leaves the journal's
    last line torn; before the CRC rewrite a resume would glue the next
    record onto the fragment, silently losing both. The journal now
    physically truncates the torn tail (on load *and* before the first
    append) and counts the repair in telemetry.
    """

    KWARGS = dict(
        base=QUICK, values=(30, 40), approaches=("RAND", "TPG"), seed=3
    )

    def _tear_tail(self, journal) -> None:
        """Cut the last journal line in half, no trailing newline."""
        data = journal.read_bytes()
        assert data.endswith(b"\n")
        body = data[:-1]
        cut = body.rfind(b"\n") + 1
        line = body[cut:]
        assert len(line) >= 2
        journal.write_bytes(data[: cut + len(line) // 2])

    def test_torn_trailing_line_truncated_and_resume_matches(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        first = fig7_workers(**self.KWARGS, checkpoint=str(journal))
        self._tear_tail(journal)
        resumed = fig7_workers(**self.KWARGS, checkpoint=str(journal))
        assert resumed.telemetry.resumed_cells == 3  # torn cell re-ran
        assert resumed.telemetry.journal_recovered_lines >= 1
        assert not resumed.failures
        assert fingerprint(resumed) == fingerprint(first)
        assert "journal recovered" in resumed.telemetry.summary()
        # The repair was physical: whole lines only, all parseable again.
        import json

        data = journal.read_bytes()
        assert data.endswith(b"\n")
        lines = data.decode("utf-8").strip().splitlines()
        assert len(lines) == 4
        for line in lines:
            json.loads(line)

    def test_recover_truncates_before_the_first_append(self, tmp_path):
        # The order that loses data without the lazy tail check: tear,
        # then append *without* an intervening load.
        from repro.experiments.parallel import SweepJournal

        journal = tmp_path / "sweep.jsonl"
        first = fig7_workers(**self.KWARGS, checkpoint=str(journal))
        self._tear_tail(journal)
        assert first is not None
        writer = SweepJournal(journal)
        # Re-append the cell the tear destroyed (the journal's last
        # record is the last spec of the serial run).
        writer.append(self._rerun_results()[-1])
        assert writer.recovered_lines == 1
        # Every line is whole — the fresh record was not glued onto the
        # torn fragment.
        records = SweepJournal(journal).load()
        assert len(records) == 4

    def _rerun_results(self):
        """Fresh CellResults for the same specs (journal-appendable)."""
        from repro.experiments.parallel import build_cell_specs
        from dataclasses import replace

        specs = build_cell_specs(
            "Figure 7",
            "workers_per_round",
            list(self.KWARGS["values"]),
            lambda base, value: replace(base, workers_per_round=value),
            self.KWARGS["base"],
            self.KWARGS["approaches"],
            seed=self.KWARGS["seed"],
        )
        results, _ = SweepExecutor(n_jobs=1).run(specs)
        return results

    def test_crc_mismatch_line_is_dropped_and_rerun(self, tmp_path):
        import json

        from repro.experiments.parallel import SweepJournal

        journal = tmp_path / "sweep.jsonl"
        first = fig7_workers(**self.KWARGS, checkpoint=str(journal))
        lines = journal.read_text(encoding="utf-8").strip().splitlines()
        wrapper = json.loads(lines[-1])
        wrapper["crc"] = (wrapper["crc"] + 1) % 2**32  # bit rot
        lines[-1] = json.dumps(wrapper)
        journal.write_text("\n".join(lines) + "\n", encoding="utf-8")
        reader = SweepJournal(journal)
        assert len(reader.load()) == 3
        assert reader.recovered_lines == 1
        resumed = fig7_workers(**self.KWARGS, checkpoint=str(journal))
        assert resumed.telemetry.resumed_cells == 3
        assert fingerprint(resumed) == fingerprint(first)

    def test_pre_crc_records_are_skipped_silently(self, tmp_path):
        # A v1 line (no "crc" wrapper) is a version mismatch, not
        # corruption: the cell re-runs but nothing counts as recovered.
        from repro.experiments.parallel import SweepJournal

        journal = tmp_path / "sweep.jsonl"
        journal.write_text(
            '{"schema": 1, "key": "old-v1-record"}\n', encoding="utf-8"
        )
        reader = SweepJournal(journal)
        assert reader.load() == {}
        assert reader.recovered_lines == 0


class TestReportingIntegration:
    def test_failed_cell_renders_as_na(self):
        from repro.experiments.reporting import format_failures, format_figure

        result = fig7_workers(
            base=QUICK,
            values=(30,),
            approaches=("RAND", "BOGUS"),
            seed=0,
        )
        text = format_figure(result)
        assert "n/a" in text
        failure_text = format_failures(result.failures)
        assert "BOGUS" in failure_text and "unknown approach" in failure_text

    def test_run_all_jobs_flag(self, capsys):
        from repro.experiments.run_all import main

        code = main(
            ["--figures", "fig6", "--scale", "0.05", "--jobs", "2"]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "Figure 6" in printed
        assert "[executor:" in printed

    def test_cli_sweep_subcommand(self, capsys, tmp_path):
        from repro.cli import main

        out = tmp_path / "sweep.md"
        code = main(
            [
                "sweep",
                "--figure",
                "fig6",
                "--scale",
                "0.05",
                "--seed",
                "1",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "Figure 6" in printed
        assert "regenerated in" in printed
        assert "Figure 6" in out.read_text()


# ---------------------------------------------------------------------------
# Telemetry accounting properties
# ---------------------------------------------------------------------------
from types import SimpleNamespace

from hypothesis import given, settings as hyp_settings
from hypothesis import strategies as st

from repro.experiments.parallel import CellFailure, CellResult


def _failure() -> CellFailure:
    return CellFailure(
        figure="fig", parameter="p", value=0, approach="GT",
        error="boom", attempts=2,
    )


_CELL_KINDS = st.sampled_from(["executed", "failed", "resumed"])


def _cell(kind: str, wall: float, queue: float, attempts: int, pid: int) -> CellResult:
    return CellResult(
        spec=None,
        wall_seconds=wall,
        queue_seconds=queue,
        attempts=attempts,
        worker_pid=pid,
        failure=_failure() if kind == "failed" else None,
        resumed=kind == "resumed",
    )


@hyp_settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(
            _CELL_KINDS,
            st.floats(0.0, 10.0, allow_nan=False),
            st.floats(0.0, 2.0, allow_nan=False),
            st.integers(1, 3),
            st.integers(100, 104),
        ),
        max_size=25,
    ),
    st.integers(1, 8),
    st.floats(0.0, 5.0, allow_nan=False),
)
def test_property_telemetry_accounting(cells, n_jobs, idle_seconds):
    """cells partition into failed + resumed + executed, and utilization
    stays in [0, 1] whenever the wall clock is consistent with the cell
    timings (wall * n_jobs >= summed executed cell time)."""
    results = [_cell(*args) for args in cells]
    executed = [r for r in results if r.failure is None and not r.resumed]
    # A consistent wall clock: at least the perfectly-parallel lower
    # bound over the executed cells, plus arbitrary idle time.
    cell_seconds = sum(r.wall_seconds for r in executed)
    wall = cell_seconds / n_jobs + idle_seconds
    executor = SimpleNamespace(n_jobs=n_jobs)
    telemetry = SweepExecutor._telemetry(executor, results, wall)

    assert telemetry.cells == len(results)
    assert (
        telemetry.cells
        == telemetry.failed_cells + telemetry.resumed_cells + len(executed)
    )
    assert telemetry.failed_cells == sum(1 for r in results if r.failure is not None)
    assert telemetry.resumed_cells == sum(
        1 for r in results if r.failure is None and r.resumed
    )
    assert 0.0 <= telemetry.worker_utilization <= 1.0 + 1e-9
    assert telemetry.cell_seconds == pytest.approx(cell_seconds)
    # Resumed and failed cells never contribute to timing aggregates.
    assert telemetry.distinct_workers == len({r.worker_pid for r in executed})
    if wall > 0:
        assert telemetry.speedup_vs_serial_estimate == pytest.approx(
            cell_seconds / wall
        )
    payload = telemetry.to_dict()
    assert payload["cells"] == telemetry.cells
    assert payload["worker_utilization"] == telemetry.worker_utilization


def test_telemetry_zero_wall_clock_is_safe():
    executor = SimpleNamespace(n_jobs=4)
    telemetry = SweepExecutor._telemetry(executor, [], 0.0)
    assert telemetry.cells == 0
    assert telemetry.worker_utilization == 0.0
    assert telemetry.speedup_vs_serial_estimate == 0.0
