"""Tests for the k-d tree, including three-way index agreement."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial.geometry import BoundingBox, Point
from repro.spatial.grid import GridIndex
from repro.spatial.kdtree import KDTree
from repro.spatial.rtree import RTree


def random_points(rng, count):
    xy = rng.uniform(0, 1, size=(count, 2))
    return [(i, Point(float(x), float(y))) for i, (x, y) in enumerate(xy)]


class TestBuild:
    def test_empty(self):
        tree = KDTree.build([])
        assert len(tree) == 0
        assert tree.query_circle(Point(0, 0), 1.0) == []
        assert tree.nearest(Point(0, 0), 3) == []

    def test_single(self):
        tree = KDTree.build([("only", Point(0.5, 0.5))])
        assert tree.query_circle(Point(0.5, 0.5), 0.0) == ["only"]
        assert tree.nearest(Point(0, 0))[0][0] == "only"

    def test_iteration_preserves_items(self):
        rng = np.random.default_rng(0)
        points = random_points(rng, 37)
        tree = KDTree.build(points)
        assert sorted(item for item, _ in tree) == list(range(37))

    def test_duplicate_locations(self):
        tree = KDTree.build(
            [("a", Point(0.3, 0.3)), ("b", Point(0.3, 0.3)), ("c", Point(0.8, 0.8))]
        )
        assert sorted(tree.query_circle(Point(0.3, 0.3), 0.0)) == ["a", "b"]


class TestQueries:
    @pytest.mark.parametrize("count", [3, 25, 200])
    def test_circle_matches_brute_force(self, count):
        rng = np.random.default_rng(count)
        points = random_points(rng, count)
        tree = KDTree.build(points)
        for _ in range(30):
            center = Point(*rng.uniform(0, 1, size=2))
            radius = float(rng.uniform(0, 0.6))
            expected = sorted(
                item for item, p in points if p.distance_to(center) <= radius
            )
            assert sorted(tree.query_circle(center, radius)) == expected

    def test_negative_radius(self):
        tree = KDTree.build([(0, Point(0, 0))])
        with pytest.raises(ValueError):
            tree.query_circle(Point(0, 0), -1)

    def test_box_matches_brute_force(self):
        rng = np.random.default_rng(5)
        points = random_points(rng, 150)
        tree = KDTree.build(points)
        for _ in range(25):
            x1, x2 = sorted(rng.uniform(0, 1, size=2))
            y1, y2 = sorted(rng.uniform(0, 1, size=2))
            box = BoundingBox(x1, y1, x2, y2)
            expected = sorted(i for i, p in points if box.contains_point(p))
            assert sorted(tree.query_box(box)) == expected

    def test_nearest_matches_brute_force(self):
        rng = np.random.default_rng(6)
        points = random_points(rng, 90)
        tree = KDTree.build(points)
        for _ in range(25):
            center = Point(*rng.uniform(0, 1, size=2))
            k = int(rng.integers(1, 8))
            result = tree.nearest(center, k)
            expected = sorted(p.distance_to(center) for _, p in points)[:k]
            assert [d for _, d in result] == pytest.approx(expected)

    def test_nearest_k_larger_than_size(self):
        tree = KDTree.build([(i, Point(i / 10, 0)) for i in range(4)])
        assert len(tree.nearest(Point(0, 0), 100)) == 4


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 120), st.integers(0, 2**31))
def test_three_indexes_agree(count, seed):
    rng = np.random.default_rng(seed)
    points = random_points(rng, count)
    kdtree = KDTree.build(points)
    rtree = RTree.bulk_load(points)
    grid = GridIndex.build(points, cell_size=0.15)
    for _ in range(4):
        center = Point(float(rng.uniform(0, 1)), float(rng.uniform(0, 1)))
        radius = float(rng.uniform(0, 0.7))
        expected = sorted(rtree.query_circle(center, radius))
        assert sorted(kdtree.query_circle(center, radius)) == expected
        assert sorted(grid.query_circle(center, radius)) == expected
