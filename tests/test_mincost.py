"""Tests for the min-cost max-flow substrate (vs networkx oracle)."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flow.mincost import MinCostFlowNetwork, min_cost_max_flow


class TestBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            MinCostFlowNetwork(0)
        net = MinCostFlowNetwork(2)
        with pytest.raises(ValueError):
            net.add_edge(0, 9, 1, 0.0)
        with pytest.raises(ValueError):
            net.add_edge(0, 1, -1, 0.0)
        with pytest.raises(ValueError):
            min_cost_max_flow(net, 0, 0)

    def test_single_edge(self):
        net = MinCostFlowNetwork(2)
        net.add_edge(0, 1, 3, 2.0)
        result = min_cost_max_flow(net, 0, 1)
        assert result.flow_value == 3
        assert result.total_cost == pytest.approx(6.0)

    def test_prefers_cheap_path(self):
        net = MinCostFlowNetwork(4)
        net.add_edge(0, 1, 1, 10.0)
        net.add_edge(0, 2, 1, 1.0)
        net.add_edge(1, 3, 1, 0.0)
        net.add_edge(2, 3, 1, 0.0)
        # Only one unit needed? No — max flow is 2 here; check cost order.
        result = min_cost_max_flow(net, 0, 3)
        assert result.flow_value == 2
        assert result.total_cost == pytest.approx(11.0)

    def test_negative_costs_supported(self):
        net = MinCostFlowNetwork(3)
        net.add_edge(0, 1, 1, -5.0)
        net.add_edge(1, 2, 1, 1.0)
        result = min_cost_max_flow(net, 0, 2)
        assert result.flow_value == 1
        assert result.total_cost == pytest.approx(-4.0)

    def test_disconnected(self):
        net = MinCostFlowNetwork(3)
        net.add_edge(0, 1, 5, 1.0)
        result = min_cost_max_flow(net, 0, 2)
        assert result.flow_value == 0
        assert result.total_cost == 0.0


@settings(max_examples=40, deadline=None)
@given(st.integers(2, 8), st.integers(0, 24), st.integers(0, 2**31))
def test_matches_networkx(node_count, edge_count, seed):
    """Flow value matches Dinic-style max flow; cost matches networkx's
    max_flow_min_cost on integer-cost graphs."""
    rng = np.random.default_rng(seed)
    net = MinCostFlowNetwork(node_count)
    graph = nx.DiGraph()
    graph.add_nodes_from(range(node_count))
    for _ in range(edge_count):
        tail, head = rng.integers(0, node_count, size=2)
        if tail == head:
            continue
        capacity = int(rng.integers(1, 6))
        cost = int(rng.integers(0, 10))
        net.add_edge(int(tail), int(head), capacity, float(cost))
        if graph.has_edge(int(tail), int(head)):
            # networkx's simple API dislikes parallel edges; merge them
            # only when costs coincide, otherwise skip this instance.
            if graph[int(tail)][int(head)]["weight"] != cost:
                return
            graph[int(tail)][int(head)]["capacity"] += capacity
        else:
            graph.add_edge(int(tail), int(head), capacity=capacity, weight=cost)

    source, sink = 0, node_count - 1
    expected_flow = (
        nx.maximum_flow_value(graph, source, sink) if graph.edges else 0
    )
    result = min_cost_max_flow(net, source, sink)
    assert result.flow_value == expected_flow
    if expected_flow:
        flow_dict = nx.max_flow_min_cost(graph, source, sink)
        expected_cost = nx.cost_of_flow(graph, flow_dict)
        assert result.total_cost == pytest.approx(expected_cost)
