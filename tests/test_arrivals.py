"""Tests for task arrival processes and their simulator integration."""

import numpy as np
import pytest

from repro.core.tpg import solve_tpg
from repro.simulation.arrivals import DiurnalArrivals, PoissonArrivals, TopUpArrivals
from repro.simulation.batch import BatchConfig, BatchSimulator
from repro.simulation.population import Population


class TestProcesses:
    def test_top_up(self):
        process = TopUpArrivals(target=20)
        assert process.count(0, 0, rng=0) == 20
        assert process.count(1, 12, rng=0) == 8
        assert process.count(2, 25, rng=0) == 0

    def test_top_up_validation(self):
        with pytest.raises(ValueError):
            TopUpArrivals(target=-1)

    def test_poisson_mean(self):
        process = PoissonArrivals(rate=7.0)
        rng = np.random.default_rng(0)
        counts = [process.count(r, 0, rng) for r in range(2000)]
        assert np.mean(counts) == pytest.approx(7.0, abs=0.3)
        assert min(counts) >= 0

    def test_poisson_validation(self):
        with pytest.raises(ValueError):
            PoissonArrivals(rate=-0.1)

    def test_diurnal_rate_profile(self):
        process = DiurnalArrivals(base=10.0, amplitude=0.5, period=8)
        # Peak at a quarter period, trough at three quarters.
        assert process.rate_at(2) == pytest.approx(15.0)
        assert process.rate_at(6) == pytest.approx(5.0)
        assert process.rate_at(0) == pytest.approx(10.0)

    def test_diurnal_validation(self):
        with pytest.raises(ValueError):
            DiurnalArrivals(base=-1.0)
        with pytest.raises(ValueError):
            DiurnalArrivals(base=1.0, amplitude=2.0)
        with pytest.raises(ValueError):
            DiurnalArrivals(base=1.0, period=0)

    def test_diurnal_counts_follow_rate(self):
        process = DiurnalArrivals(base=20.0, amplitude=0.8, period=4)
        rng = np.random.default_rng(1)
        peak = np.mean([process.count(1, 0, rng) for _ in range(500)])
        trough = np.mean([process.count(3, 0, rng) for _ in range(500)])
        assert peak > trough


class TestSimulatorIntegration:
    @pytest.fixture(scope="class")
    def population(self):
        return Population.synthetic(120, 50, seed=3)

    def _config(self, arrivals):
        return BatchConfig(
            rounds=4,
            workers_per_round=50,
            tasks_per_round=10,
            speed_range=(0.05, 0.2),
            radius_range=(0.2, 0.4),
            task_arrivals=arrivals,
        )

    def test_default_matches_topup(self, population):
        explicit = BatchSimulator(
            population,
            self._config(TopUpArrivals(target=10)),
            solve_tpg,
            seed=7,
        ).run()
        implicit = BatchSimulator(
            population, self._config(None), solve_tpg, seed=7
        ).run()
        assert [r.task_count for r in explicit.rounds] == [
            r.task_count for r in implicit.rounds
        ]
        assert explicit.total_score == pytest.approx(implicit.total_score)

    def test_poisson_varies_task_counts(self, population):
        report = BatchSimulator(
            population,
            self._config(PoissonArrivals(rate=8.0)),
            solve_tpg,
            seed=8,
        ).run()
        counts = [r.task_count for r in report.rounds]
        assert len(set(counts)) > 1  # stochastic demand actually varies

    def test_diurnal_runs(self, population):
        report = BatchSimulator(
            population,
            self._config(DiurnalArrivals(base=8.0, amplitude=0.9, period=4)),
            solve_tpg,
            seed=9,
        ).run()
        assert len(report.rounds) == 4
