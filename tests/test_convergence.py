"""Tests for the convergence trace (Lemma V.1 instantiated)."""

import pytest

from repro.core.validity import compute_valid_pairs
from repro.experiments.convergence import trace_convergence

from tests.conftest import make_dense_instance


class TestTraceConvergence:
    def test_gain_accounting(self):
        instance = make_dense_instance(40, 8, seed=1)
        trace = trace_convergence(instance, init="random", seed=0)
        assert trace.converged
        assert sum(trace.round_gains) == pytest.approx(trace.total_gain)
        # Every non-final round has a strictly positive potential gain.
        assert all(gain >= -1e-9 for gain in trace.round_gains)

    def test_final_round_gains_nothing(self):
        instance = make_dense_instance(30, 6, seed=2)
        trace = trace_convergence(instance)
        assert trace.round_gains[-1] == pytest.approx(0.0, abs=1e-9)

    def test_final_score_below_upper_bound(self):
        for seed in range(3):
            instance = make_dense_instance(30, 6, seed=seed)
            trace = trace_convergence(instance)
            assert trace.final_score <= trace.upper_bound_value + 1e-9

    def test_tpg_init_converges_in_fewer_rounds_than_random(self):
        """The Algorithm 3 line-1 rationale: a good initial profile
        shortens the dynamics (holds on the large majority of seeds)."""
        faster = 0
        for seed in range(5):
            instance = make_dense_instance(40, 8, seed=seed)
            pairs = compute_valid_pairs(instance)
            tpg_trace = trace_convergence(instance, pairs, init="tpg")
            random_trace = trace_convergence(
                instance, pairs, init="random", seed=seed
            )
            if tpg_trace.rounds <= random_trace.rounds:
                faster += 1
        assert faster >= 4

    def test_diminishing_gains_common(self):
        """The TSI motivation: per-round gains typically shrink."""
        diminishing = 0
        for seed in range(5):
            instance = make_dense_instance(40, 8, seed=10 + seed)
            trace = trace_convergence(instance, init="random", seed=seed)
            if trace.gains_are_diminishing:
                diminishing += 1
        assert diminishing >= 3
