"""Tests for utility helpers (rng, stopwatch, errors)."""

import time

import numpy as np
import pytest

from repro.utils.errors import (
    CapacityError,
    InvalidInstanceError,
    ReproError,
    ValidityError,
)
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timer import Stopwatch


class TestErrors:
    def test_hierarchy(self):
        for error in (InvalidInstanceError, ValidityError, CapacityError):
            assert issubclass(error, ReproError)
        assert issubclass(ReproError, Exception)


class TestRng:
    def test_ensure_rng_from_int(self):
        a = ensure_rng(7)
        b = ensure_rng(7)
        assert a.integers(1000) == b.integers(1000)

    def test_ensure_rng_passthrough(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng

    def test_ensure_rng_none(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_spawn_rngs_independent_streams(self):
        children = spawn_rngs(3, 4)
        assert len(children) == 4
        draws = [rng.integers(10**9) for rng in children]
        assert len(set(draws)) > 1

    def test_spawn_rngs_reproducible(self):
        first = [rng.integers(10**9) for rng in spawn_rngs(5, 3)]
        second = [rng.integers(10**9) for rng in spawn_rngs(5, 3)]
        assert first == second

    def test_spawn_rngs_from_generator(self):
        children = spawn_rngs(np.random.default_rng(1), 2)
        assert len(children) == 2

    def test_spawn_rngs_negative_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_spawn_rngs_zero(self):
        assert spawn_rngs(0, 0) == []


class TestStopwatch:
    def test_context_manager_accumulates(self):
        watch = Stopwatch()
        with watch:
            time.sleep(0.01)
        with watch:
            time.sleep(0.01)
        assert watch.elapsed >= 0.02
        assert len(watch.laps) == 2
        assert watch.mean_lap == pytest.approx(watch.elapsed / 2)

    def test_manual_start_stop(self):
        watch = Stopwatch()
        watch.start()
        lap = watch.stop()
        assert lap >= 0.0
        assert watch.elapsed == lap

    def test_double_start_rejected(self):
        watch = Stopwatch()
        watch.start()
        with pytest.raises(RuntimeError):
            watch.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset(self):
        watch = Stopwatch()
        with watch:
            pass
        watch.reset()
        assert watch.elapsed == 0.0
        assert watch.laps == []
        assert watch.mean_lap == 0.0
