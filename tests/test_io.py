"""Round-trip tests for dataset/instance persistence."""

import numpy as np
import pytest

from repro.datasets.io import (
    instance_from_dict,
    instance_to_dict,
    load_instance,
    load_meetup_dataset,
    save_instance,
    save_meetup_dataset,
)
from repro.datasets.meetup import generate_meetup_dataset

from tests.conftest import make_dense_instance


class TestInstanceRoundTrip:
    def test_dict_round_trip(self):
        instance = make_dense_instance(12, 3, seed=1)
        restored = instance_from_dict(instance_to_dict(instance))
        assert restored.workers == instance.workers
        assert restored.tasks == instance.tasks
        assert restored.quality == instance.quality
        assert restored.min_group_size == instance.min_group_size
        assert restored.now == instance.now

    def test_file_round_trip(self, tmp_path):
        instance = make_dense_instance(8, 2, seed=2)
        path = tmp_path / "batch.json"
        save_instance(instance, path)
        restored = load_instance(path)
        assert restored.quality == instance.quality
        assert restored.workers == instance.workers

    def test_unknown_version_rejected(self):
        instance = make_dense_instance(5, 2, min_group_size=2, capacity=2, seed=0)
        payload = instance_to_dict(instance)
        payload["format_version"] = 999
        with pytest.raises(ValueError):
            instance_from_dict(payload)

    def test_solvers_agree_after_round_trip(self, tmp_path):
        from repro.core.tpg import solve_tpg

        instance = make_dense_instance(20, 4, seed=3)
        path = tmp_path / "batch.json"
        save_instance(instance, path)
        restored = load_instance(path)
        assert solve_tpg(restored).total_score() == pytest.approx(
            solve_tpg(instance).total_score()
        )


class TestMeetupRoundTrip:
    def test_npz_round_trip(self, tmp_path):
        dataset = generate_meetup_dataset(
            user_count=60, event_count=25, group_count=12, seed=4
        )
        path = tmp_path / "city.npz"
        save_meetup_dataset(dataset, path)
        restored = load_meetup_dataset(path)
        np.testing.assert_array_equal(
            restored.user_locations, dataset.user_locations
        )
        np.testing.assert_array_equal(
            restored.event_locations, dataset.event_locations
        )
        assert restored.memberships == dataset.memberships
        assert restored.quality == dataset.quality

    def test_empty_memberships_survive(self, tmp_path):
        dataset = generate_meetup_dataset(
            user_count=30, event_count=10, group_count=3, seed=5
        )
        path = tmp_path / "city.npz"
        save_meetup_dataset(dataset, path)
        restored = load_meetup_dataset(path)
        assert len(restored.memberships) == 30
