"""Integration tests: every example script runs end-to-end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


def test_wedding_catering_reproduces_example1():
    output = run_example("wedding_catering.py")
    assert "total = 0.2" in output
    assert "total = 1.8" in output
    assert "{w1, w4} -> t1" in output


def test_quickstart_runs_all_approaches():
    output = run_example("quickstart.py", "7")
    for name in ("RAND", "MFLOW", "TPG", "GT", "GT+LUB", "GT+TSI", "GT+ALL"):
        assert name in output
    assert "UPPER" in output
    assert "pure Nash equilibrium" in output


@pytest.mark.slow
def test_wifi_campaign_runs():
    output = run_example("wifi_survey_campaign.py")
    assert "campaign totals:" in output
    assert "GT" in output and "RAND" in output


def test_meetup_city_study_tiny():
    output = run_example("meetup_city_study.py", "--tiny")
    assert "== default setting: all approaches ==" in output
    assert "Figure 2" in output


def test_equilibrium_analysis_runs():
    output = run_example("equilibrium_analysis.py")
    assert "empirical PoS estimate" in output
    assert "batch GT score" in output


def test_learning_platform_runs():
    output = run_example("learning_platform.py")
    assert "cold start realized" in output
    assert "estimate MAE" in output


def test_road_network_city_runs():
    output = run_example("road_network_city.py")
    assert "valid pairs:" in output
    assert "street grid" in output
    assert "batch map" in output
