"""Tests for the swap-based local-search polish."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exact import solve_exact
from repro.core.game import solve_game_theoretic
from repro.core.local_search import solve_local_search
from repro.core.validity import compute_valid_pairs
from repro.datasets.synthetic import generate_instance

from tests.conftest import make_dense_instance


class TestLocalSearch:
    def test_never_worse_than_start(self):
        for seed in range(4):
            instance = make_dense_instance(30, 6, seed=seed)
            pairs = compute_valid_pairs(instance)
            result = solve_local_search(instance, pairs)
            assert result.final_score >= result.initial_score - 1e-9
            assert result.improvement >= -1e-9

    def test_feasible(self):
        instance = make_dense_instance(30, 6, seed=5)
        pairs = compute_valid_pairs(instance)
        result = solve_local_search(instance, pairs)
        result.assignment.check_feasible()

    def test_start_assignment_untouched(self):
        instance = make_dense_instance(25, 5, seed=6)
        pairs = compute_valid_pairs(instance)
        start = solve_game_theoretic(instance, pairs).assignment
        pairs_before = start.to_pairs()
        solve_local_search(instance, pairs, start=start)
        assert start.to_pairs() == pairs_before

    def test_swap_escapes_a_nash_trap(self):
        """A crafted instance where the Nash assignment is swap-improvable:
        two full tasks each hold one worker who belongs in the other."""
        import numpy as np

        from repro.core.assignment import Assignment
        from repro.core.model import Instance, Task, Worker
        from repro.core.quality import CooperationMatrix
        from repro.spatial.geometry import Point

        # Communities {0,1} and {2,3}; B=2, capacity 2 per task.
        q = np.zeros((4, 4))
        for (i, k), value in {(0, 1): 0.9, (2, 3): 0.9, (0, 2): 0.2, (1, 3): 0.2}.items():
            q[i, k] = q[k, i] = value
        origin = Point(0.5, 0.5)
        workers = [
            Worker(worker_id=i, location=origin, speed=1.0, radius=1.0)
            for i in range(4)
        ]
        tasks = [
            Task(task_id=j, location=origin, capacity=2, deadline=5.0)
            for j in range(2)
        ]
        instance = Instance(
            workers=workers, tasks=tasks, quality=CooperationMatrix(q),
            min_group_size=2,
        )
        pairs = compute_valid_pairs(instance)

        # Mismatched full assignment: {0,2} and {1,3} — a local trap for
        # unilateral moves (both tasks full, leaving gives 0).
        trapped = Assignment(instance, pairs)
        for worker, task in [(0, 0), (2, 0), (1, 1), (3, 1)]:
            trapped.assign(worker, task)
        assert trapped.total_score() == pytest.approx(0.8)

        result = solve_local_search(instance, pairs, start=trapped)
        assert result.swaps >= 1
        assert result.final_score == pytest.approx(3.6)

    def test_max_passes_respected(self):
        instance = make_dense_instance(20, 4, seed=7)
        result = solve_local_search(instance, max_passes=1)
        assert result.passes == 1

    def test_empty_instance(self):
        instance = generate_instance(0, 0, seed=0)
        result = solve_local_search(instance)
        assert result.final_score == 0.0

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10**6))
    def test_property_bounded_by_exact_optimum(self, seed):
        instance = make_dense_instance(
            8, 2, capacity=3, min_group_size=2, seed=seed
        )
        pairs = compute_valid_pairs(instance)
        polished = solve_local_search(instance, pairs)
        optimum = solve_exact(instance, pairs).total_score()
        assert polished.final_score <= optimum + 1e-9
