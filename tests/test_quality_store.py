"""Backend parity and lifecycle tests for ``repro.core.quality_store``.

The contract under test: the dense, sparse and shared-memory quality
backends hold the same floats and feed them through the same numpy
reductions, so every consumer — revenue, GT, TPG, the fallback chain,
the sweep executor — produces **repr-identical** results regardless of
backend. Plus the sparse store's LRU row cache and the shared segment's
create/attach/unlink lifecycle (nothing may leak, even on Ctrl-C).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fallback import FallbackSolver
from repro.core.game import solve_game_theoretic
from repro.core.model import Instance
from repro.core.quality import CooperationMatrix
from repro.core.quality_store import (
    QUALITY_BACKENDS,
    DenseQualityStore,
    QualityStore,
    SharedDenseQualityStore,
    SparseQualityStore,
)
from repro.core.tpg import solve_tpg_with_stats
from repro.core.validity import compute_valid_pairs
from repro.datasets.synthetic import generate_instance, sparse_community_quality
from repro.simulation.population import Population
from repro.utils.errors import InvalidInstanceError

SEED_GRID = (0, 1, 2)


def _with_quality(instance: Instance, quality) -> Instance:
    return Instance(
        workers=instance.workers,
        tasks=instance.tasks,
        quality=quality,
        min_group_size=instance.min_group_size,
        now=instance.now,
    )


def _reference_matrix(size: int = 60, seed: int = 7) -> CooperationMatrix:
    """A dense community matrix with plenty of prior-valued entries."""
    return sparse_community_quality(size, community_size=12, seed=seed).to_dense()


class TestProtocol:
    def test_all_backends_satisfy_the_protocol(self):
        dense = _reference_matrix(20)
        sparse = SparseQualityStore.from_dense(dense, prior=0.3)
        shared = SharedDenseQualityStore.create(dense)
        try:
            for store in (dense, sparse, shared):
                assert isinstance(store, QualityStore)
        finally:
            shared.close()
            shared.unlink()

    def test_dense_backend_is_the_cooperation_matrix(self):
        assert DenseQualityStore is CooperationMatrix

    def test_backend_names(self):
        assert QUALITY_BACKENDS == ("dense", "sparse", "shared")


class TestSparseStoreParity:
    """Every read of the sparse store must equal the dense oracle."""

    @pytest.fixture()
    def pair(self):
        dense = _reference_matrix()
        sparse = SparseQualityStore.from_dense(dense, prior=0.3)
        return dense, sparse

    def test_round_trip_is_exact(self, pair):
        dense, sparse = pair
        assert np.array_equal(sparse.to_dense().values, dense.values)
        assert sparse.size == dense.size
        assert sparse.nbytes < dense.nbytes

    def test_rows_cols_and_pairs(self, pair):
        dense, sparse = pair
        for worker in (0, 13, 59):
            assert np.array_equal(sparse.q_row(worker), dense.q_row(worker))
            assert np.array_equal(sparse.q_col(worker), dense.q_col(worker))
        assert repr(sparse.pair(3, 44)) == repr(dense.pair(3, 44))
        with pytest.raises(ValueError, match="self-pair"):
            sparse.pair(5, 5)

    def test_gather_and_sums_are_repr_identical(self, pair):
        dense, sparse = pair
        rng = np.random.default_rng(0)
        for _ in range(25):
            index = np.sort(rng.choice(dense.size, size=6, replace=False))
            assert np.array_equal(sparse.gather(index), dense.gather(index))
            assert repr(sparse.ordered_pair_sum(index)) == repr(
                dense.ordered_pair_sum(index)
            )
            assert repr(sparse.submatrix_sum(index)) == repr(
                dense.submatrix_sum(index)
            )
            worker = int(rng.integers(dense.size))
            members = index[index != worker]
            assert repr(sparse.cross_sum(worker, members)) == repr(
                dense.cross_sum(worker, members)
            )

    def test_top_and_bottom_qualities(self, pair):
        dense, sparse = pair
        for worker in (0, 31):
            for count in (1, 4, 10):
                assert np.array_equal(
                    sparse.top_qualities(worker, count),
                    dense.top_qualities(worker, count),
                )
                assert np.array_equal(
                    sparse.bottom_qualities(worker, count),
                    dense.bottom_qualities(worker, count),
                )

    def test_restricted_to_matches_dense(self, pair):
        dense, sparse = pair
        workers = [3, 8, 21, 40, 55]
        assert np.array_equal(
            sparse.restricted_to(workers).to_dense().values,
            dense.restricted_to(workers).values,
        )

    def test_symmetry_detection(self, pair):
        dense, sparse = pair
        assert sparse.is_symmetric() == dense.is_symmetric()

    def test_structural_pair_sum_matches_the_reduction(self, pair):
        dense, sparse = pair
        index = np.array([2, 9, 17, 33])
        assert sparse.structural_pair_sum(index) == pytest.approx(
            dense.ordered_pair_sum(index)
        )

    def test_from_history_matches_dense_from_history(self):
        history = {
            (0, 1): [0.9, 0.8],
            (1, 0): [0.4],  # later orientation wins, as in the dense path
            (2, 3): [0.6, 0.7, 0.65],
            (4, 5): [],
        }
        dense = CooperationMatrix.from_history(8, history)
        sparse = SparseQualityStore.from_history(8, history)
        assert np.array_equal(sparse.to_dense().values, dense.values)


class TestSparseValidation:
    def test_duplicate_entries_rejected(self):
        with pytest.raises(InvalidInstanceError, match="duplicate"):
            SparseQualityStore(4, 0.3, [0, 0], [1, 1], [0.5, 0.6])

    def test_diagonal_entries_rejected(self):
        with pytest.raises(InvalidInstanceError, match="diagonal"):
            SparseQualityStore(4, 0.3, [2], [2], [0.5])

    def test_out_of_range_indices_rejected(self):
        with pytest.raises(InvalidInstanceError, match="out of range"):
            SparseQualityStore(4, 0.3, [0], [4], [0.5])

    def test_out_of_range_values_rejected(self):
        with pytest.raises(InvalidInstanceError, match=r"\[0, 1\]"):
            SparseQualityStore(4, 0.3, [0], [1], [1.5])

    def test_prior_must_be_a_probability(self):
        with pytest.raises(InvalidInstanceError, match="prior"):
            SparseQualityStore(4, 1.5, [], [], [])


class TestRowCacheLRU:
    def test_misses_hits_and_evictions(self):
        sparse = SparseQualityStore.from_dense(
            _reference_matrix(30), prior=0.3, row_cache_size=2
        )
        sparse.q_row(0)
        sparse.q_row(1)
        info = sparse.row_cache_info()
        assert (info.hits, info.misses, info.evictions) == (0, 2, 0)
        sparse.q_row(0)  # hit, refreshes row 0's recency
        sparse.q_row(2)  # evicts row 1 (least recently used)
        info = sparse.row_cache_info()
        assert (info.hits, info.misses, info.evictions) == (1, 3, 1)
        assert info.currsize == 2
        assert info.maxsize == 2
        sparse.q_row(1)  # was evicted: a miss again
        assert sparse.row_cache_info().misses == 4

    def test_symmetric_store_shares_storage_but_not_counters(self):
        """Symmetric stores keep ONE physical row cache, yet attribute
        traffic per orientation: ``q_row`` books on the row ledger,
        ``q_col`` on the column ledger. (A previous version surfaced the
        shared cache's counters from *both* ``row_cache_info`` and
        ``col_cache_info``, double-counting every access in aggregate
        dashboards.)"""
        sparse = SparseQualityStore.from_dense(_reference_matrix(30), prior=0.3)
        sparse.q_row(4)
        row = sparse.row_cache_info()
        col = sparse.col_cache_info()
        assert (row.hits, row.misses) == (0, 1)
        assert (col.hits, col.misses) == (0, 0)  # no column traffic yet
        sparse.q_col(4)  # served from the shared cache: a *column* hit
        row = sparse.row_cache_info()
        col = sparse.col_cache_info()
        assert (row.hits, row.misses) == (0, 1)
        assert (col.hits, col.misses) == (1, 0)
        # Both views see the one physical cache's occupancy.
        assert row.currsize == col.currsize == 1

    def test_symmetric_counters_sum_to_physical_traffic(self):
        """row + col ledgers account for every access exactly once."""
        sparse = SparseQualityStore.from_dense(
            _reference_matrix(30), prior=0.3, row_cache_size=2
        )
        sparse.q_col(0)  # miss (col)
        sparse.q_row(0)  # hit (row)
        sparse.q_row(1)  # miss (row)
        sparse.q_col(2)  # miss (col), evicts row 0
        row = sparse.row_cache_info()
        col = sparse.col_cache_info()
        assert row.hits + col.hits == 1
        assert row.misses + col.misses == 3
        assert row.evictions + col.evictions == 1
        assert (col.misses, col.evictions) == (2, 1)  # eviction blamed on q_col

    def test_cached_rows_are_read_only(self):
        sparse = SparseQualityStore.from_dense(_reference_matrix(20), prior=0.3)
        row = sparse.q_row(3)
        with pytest.raises(ValueError):
            row[0] = 0.5

    def test_cache_size_must_be_positive(self):
        with pytest.raises(ValueError, match="row_cache_size"):
            SparseQualityStore(4, 0.3, [], [], [], row_cache_size=0)


class TestSolverParity:
    """The tentpole contract: repr-identical solver results per backend."""

    @pytest.mark.parametrize("seed", SEED_GRID)
    def test_gt_tpg_and_fallback_identical_across_backends(self, seed):
        sparse_instance = generate_instance(
            100, 25, seed=seed, quality_backend="sparse"
        )
        dense = sparse_instance.quality.to_dense()
        shared = SharedDenseQualityStore.create(dense)
        try:
            fingerprints = []
            for quality in (dense, sparse_instance.quality, shared):
                instance = _with_quality(sparse_instance, quality)
                valid_pairs = compute_valid_pairs(instance)
                gt = solve_game_theoretic(instance, valid_pairs)
                tpg = solve_tpg_with_stats(instance, valid_pairs)
                gtall = solve_game_theoretic(
                    instance, valid_pairs, epsilon=0.05, lazy_update=True
                )
                fallback = FallbackSolver(
                    lambda inst, pairs: solve_game_theoretic(inst, pairs).assignment,
                    budget=None,
                    label="GT",
                    seed=seed,
                )(instance, valid_pairs)
                fingerprints.append(
                    {
                        "gt": (repr(gt.assignment.to_pairs()), repr(gt.final_score)),
                        "tpg": (
                            repr(tpg.assignment.to_pairs()),
                            repr(tpg.assignment.total_score()),
                        ),
                        "gtall": (
                            repr(gtall.assignment.to_pairs()),
                            repr(gtall.final_score),
                        ),
                        "fallback": (
                            repr(fallback.to_pairs()),
                            repr(fallback.total_score()),
                        ),
                    }
                )
        finally:
            shared.close()
            shared.unlink()
        assert fingerprints[0] == fingerprints[1] == fingerprints[2]

    def test_population_locations_identical_across_backends(self):
        dense_pop = Population.synthetic(120, 40, seed=5)
        sparse_pop = Population.synthetic(
            120, 40, seed=5, quality_backend="sparse"
        )
        assert np.array_equal(
            dense_pop.worker_locations, sparse_pop.worker_locations
        )
        assert np.array_equal(
            dense_pop.task_locations, sparse_pop.task_locations
        )
        assert isinstance(sparse_pop.quality, SparseQualityStore)

    def test_settings_reject_unknown_backends(self):
        from repro.experiments.config import ExperimentSettings

        with pytest.raises(ValueError, match="quality_backend"):
            ExperimentSettings(quality_backend="bogus")
        # "shared" is an executor transport, not a population setting.
        with pytest.raises(ValueError, match="quality_backend"):
            ExperimentSettings(quality_backend="shared")

    def test_meetup_rejects_the_sparse_backend(self):
        from repro.experiments.config import ExperimentSettings
        from repro.experiments.runner import build_population

        settings = ExperimentSettings(dataset="meetup", quality_backend="sparse")
        with pytest.raises(ValueError, match="meetup"):
            build_population(settings, seed=0)


class TestSharedMemoryLifecycle:
    def test_attach_sees_the_creators_floats(self):
        dense = _reference_matrix(25)
        shared = SharedDenseQualityStore.create(dense)
        try:
            attached = SharedDenseQualityStore.attach(shared.name, dense.size)
            assert np.array_equal(attached.values, dense.values)
            assert not attached.owner
            attached.close()
            attached.close()  # idempotent
        finally:
            shared.close()
            shared.unlink()

    def test_unlink_destroys_the_segment(self):
        shared = SharedDenseQualityStore.create(_reference_matrix(10))
        name = shared.name
        shared.close()
        shared.unlink()
        with pytest.raises(FileNotFoundError):
            SharedDenseQualityStore.attach(name, 10)

    def test_same_process_attach_does_not_break_creator_cleanup(self):
        # Attaching inside the creating process must leave the creator's
        # resource-tracker registration alone, or unlink() would race the
        # tracker at interpreter exit.
        shared = SharedDenseQualityStore.create(_reference_matrix(10))
        attached = SharedDenseQualityStore.attach(shared.name, 10)
        attached.close()
        shared.close()
        shared.unlink()  # must not raise

    def test_attacher_never_unlinks(self):
        dense = _reference_matrix(10)
        shared = SharedDenseQualityStore.create(dense)
        try:
            attached = SharedDenseQualityStore.attach(shared.name, 10)
            attached.close()
            attached.unlink()  # no-op for non-owners
            again = SharedDenseQualityStore.attach(shared.name, 10)
            assert np.array_equal(again.values, dense.values)
            again.close()
        finally:
            shared.close()
            shared.unlink()


class TestSegmentRegistry:
    """The on-disk name registry every create()/unlink() maintains."""

    @pytest.fixture(autouse=True)
    def _isolated_registry(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SHM_REGISTRY", str(tmp_path))

    def test_create_registers_and_unlink_unregisters(self):
        import os

        from repro.core.quality_store import registered_segments

        assert registered_segments() == []
        shared = SharedDenseQualityStore.create(_reference_matrix(10))
        try:
            entries = registered_segments()
            assert [entry["name"] for entry in entries] == [shared.name]
            assert entries[0]["pid"] == os.getpid()
            assert entries[0]["size"] == 10
        finally:
            shared.close()
            shared.unlink()
        assert registered_segments() == []

    def test_reap_leaves_live_owners_alone(self):
        from repro.core.quality_store import reap_orphans

        shared = SharedDenseQualityStore.create(_reference_matrix(10))
        try:
            report = reap_orphans()
            assert report.live == [shared.name]
            assert report.reaped == [] and report.stale == []
            # The segment is untouched.
            attached = SharedDenseQualityStore.attach(shared.name, 10)
            attached.close()
        finally:
            shared.close()
            shared.unlink()

    def test_force_reaps_even_live_owners(self):
        from multiprocessing import resource_tracker, shared_memory

        from repro.core.quality_store import reap_orphans, register_segment

        shm = shared_memory.SharedMemory(create=True, size=64)
        # Forget the segment locally so the reaper — not this process's
        # resource tracker — is the only thing that can clean it up.
        resource_tracker.unregister(shm._name, "shared_memory")
        register_segment(shm.name, 64)
        shm.close()
        report = reap_orphans(force=True)
        assert report.reaped == [shm.name]
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=shm.name)

    def test_stale_sidecars_are_swept(self, tmp_path):
        import json

        from repro.core.quality_store import reap_orphans, registered_segments

        (tmp_path / "repro-gone.json").write_text(
            json.dumps({"name": "repro-gone", "pid": 1, "size": 8}),
            encoding="utf-8",
        )
        report = reap_orphans(force=True)  # force skips the pid-1 check
        assert report.stale == ["repro-gone"]
        assert report.reaped == []
        assert registered_segments() == []
        assert "scanned 1 registered segment(s)" in report.summary()
        assert "stale 1" in report.summary()


class TestOrphanReaping:
    """A SIGKILLed creator's segment must be reapable afterwards."""

    def test_killed_creator_segment_is_reaped(self, monkeypatch, tmp_path):
        import os
        import subprocess
        import sys
        from multiprocessing import shared_memory

        from repro.core.quality_store import (
            reap_orphans,
            registered_segments,
        )

        # The child creates a registered segment, detaches it from its
        # own resource tracker (a SIGKILL that also takes the tracker
        # down — or lands before the tracker registered the name — is
        # exactly the leak the registry exists for), then kills itself.
        script = (
            "import os, signal\n"
            "import numpy as np\n"
            "from repro.core.quality import CooperationMatrix\n"
            "from repro.core.quality_store import SharedDenseQualityStore\n"
            "from multiprocessing import resource_tracker\n"
            "matrix = CooperationMatrix(np.zeros((6, 6)))\n"
            "shared = SharedDenseQualityStore.create(matrix)\n"
            "resource_tracker.unregister(shared._shm._name, 'shared_memory')\n"
            "print(shared.name, flush=True)\n"
            "os.kill(os.getpid(), signal.SIGKILL)\n"
        )
        env = dict(os.environ)
        env["REPRO_SHM_REGISTRY"] = str(tmp_path)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            timeout=60,
        )
        assert proc.returncode == -9, proc.stderr
        name = proc.stdout.strip()
        assert name

        # The segment outlived its creator...
        leaked = shared_memory.SharedMemory(name=name)
        leaked.close()
        # ...and the registry knows, under a now-dead pid.
        monkeypatch.setenv("REPRO_SHM_REGISTRY", str(tmp_path))
        entries = registered_segments()
        assert [entry["name"] for entry in entries] == [name]
        assert entries[0]["pid"] != os.getpid()
        report = reap_orphans()
        assert report.reaped == [name]
        assert registered_segments() == []
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


class TestExecutorSharedBackend:
    """SweepExecutor with ``quality_backend='shared'``: parity + cleanup."""

    def _specs(self, seed: int = 0):
        from dataclasses import replace

        from repro.experiments.config import ExperimentSettings
        from repro.experiments.parallel import build_cell_specs

        quick = ExperimentSettings(
            rounds=2,
            workers_per_round=40,
            tasks_per_round=10,
            speed_range=(0.05, 0.2),
            radius_range=(0.2, 0.4),
            dataset="unif",
        )
        return build_cell_specs(
            "shared-test",
            "workers_per_round",
            [30, 40],
            lambda settings, value: replace(settings, workers_per_round=int(value)),
            quick,
            ("RAND", "GT"),
            seed,
        )

    def _fingerprint(self, results):
        return [
            (
                result.spec.approach,
                result.spec.value,
                repr(result.outcome.total_score) if result.outcome else None,
            )
            for result in results
        ]

    def test_shared_pool_matches_serial_and_unlinks(self):
        from repro.experiments.parallel import SweepExecutor

        serial_results, _ = SweepExecutor(n_jobs=1).run(self._specs())
        executor = SweepExecutor(n_jobs=2, quality_backend="shared")
        shared_results, _ = executor.run(self._specs())
        assert self._fingerprint(shared_results) == self._fingerprint(
            serial_results
        )
        assert executor.last_shared_segments, "pool path should create segments"
        for name in executor.last_shared_segments:
            with pytest.raises(FileNotFoundError):
                SharedDenseQualityStore.attach(name, 1)

    def test_interrupt_still_unlinks_segments(self, monkeypatch):
        from repro.experiments.parallel import SweepExecutor

        executor = SweepExecutor(n_jobs=2, quality_backend="shared")

        def interrupted(remaining, results, journal):
            raise KeyboardInterrupt

        monkeypatch.setattr(executor, "_run_pool", interrupted)
        with pytest.raises(KeyboardInterrupt):
            executor.run(self._specs())
        assert executor.last_shared_segments, "segments were created pre-pool"
        for name in executor.last_shared_segments:
            with pytest.raises(FileNotFoundError):
                SharedDenseQualityStore.attach(name, 1)

    def test_executor_rejects_unknown_backend(self):
        from repro.experiments.parallel import SweepExecutor

        with pytest.raises(ValueError, match="quality_backend"):
            SweepExecutor(quality_backend="bogus")

    def test_sparse_settings_sweep_parallel_parity(self):
        from repro.experiments.config import ExperimentSettings
        from repro.experiments.figures import fig7_workers

        quick = ExperimentSettings(
            rounds=2,
            workers_per_round=40,
            tasks_per_round=10,
            speed_range=(0.05, 0.2),
            radius_range=(0.2, 0.4),
            dataset="unif",
        )
        kwargs = dict(
            base=quick,
            values=(30, 40),
            approaches=("RAND", "GT"),
            seed=1,
            quality_backend="sparse",
        )
        serial = fig7_workers(**kwargs, n_jobs=1)
        parallel = fig7_workers(**kwargs, n_jobs=2)
        serial_scores = [
            {name: repr(out.total_score) for name, out in point.outcomes.items()}
            for point in serial.points
        ]
        parallel_scores = [
            {name: repr(out.total_score) for name, out in point.outcomes.items()}
            for point in parallel.points
        ]
        assert serial_scores == parallel_scores
