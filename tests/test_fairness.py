"""Tests for the fairness analysis module."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.game import solve_game_theoretic
from repro.core.tpg import solve_tpg
from repro.core.validity import compute_valid_pairs
from repro.experiments.fairness import (
    fairness_report,
    gini_coefficient,
    worker_utilities,
)

from tests.conftest import make_dense_instance


class TestGini:
    def test_equal_distribution_is_zero(self):
        assert gini_coefficient(np.full(10, 3.0)) == pytest.approx(0.0, abs=1e-9)

    def test_maximally_unequal(self):
        values = np.zeros(100)
        values[0] = 1.0
        assert gini_coefficient(values) == pytest.approx(0.99, abs=1e-9)

    def test_empty_and_zero(self):
        assert gini_coefficient(np.array([])) == 0.0
        assert gini_coefficient(np.zeros(5)) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gini_coefficient(np.array([-1.0, 2.0]))

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(0, 100), min_size=1, max_size=50))
    def test_property_in_unit_interval(self, values):
        gini = gini_coefficient(np.array(values))
        assert -1e-9 <= gini <= 1.0

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.floats(0.01, 100), min_size=1, max_size=30),
        st.floats(0.1, 10),
    )
    def test_property_scale_invariant(self, values, factor):
        data = np.array(values)
        assert gini_coefficient(data) == pytest.approx(
            gini_coefficient(data * factor), abs=1e-9
        )


class TestWorkerUtilities:
    def test_idle_workers_zero(self):
        instance = make_dense_instance(10, 2, seed=0)
        from repro.core.assignment import Assignment

        utilities = worker_utilities(Assignment(instance))
        assert (utilities == 0.0).all()

    def test_sum_of_utilities_vs_total_score(self):
        """For groups within capacity, the sum of member utilities is
        related to (not equal to) Q — a sanity check that utilities are
        per-member marginal contributions, all non-negative at Nash."""
        instance = make_dense_instance(30, 6, seed=1)
        pairs = compute_valid_pairs(instance)
        result = solve_game_theoretic(instance, pairs)
        utilities = worker_utilities(result.equilibrium)
        assert (utilities >= -1e-9).all()


class TestFairnessReport:
    def test_nash_is_envy_free(self):
        instance = make_dense_instance(30, 6, seed=2)
        pairs = compute_valid_pairs(instance)
        result = solve_game_theoretic(instance, pairs)
        report = fairness_report(result.equilibrium, pairs)
        assert report.is_envy_free()
        assert report.envy_count == 0
        assert report.min_utility >= -1e-9

    def test_gt_no_less_fair_than_tpg(self):
        """The paper's fairness motivation: the equilibrium has no
        envious workers, while TPG typically leaves some."""
        envy_tpg = []
        for seed in range(4):
            instance = make_dense_instance(36, 6, seed=seed)
            pairs = compute_valid_pairs(instance)
            tpg = solve_tpg(instance, pairs)
            envy_tpg.append(fairness_report(tpg, pairs).envy_count)
            result = solve_game_theoretic(instance, pairs)
            assert fairness_report(result.equilibrium, pairs).envy_count == 0
        assert max(envy_tpg) >= 0  # defined for TPG too (often positive)

    def test_report_fields(self):
        instance = make_dense_instance(20, 4, seed=3)
        pairs = compute_valid_pairs(instance)
        report = fairness_report(solve_tpg(instance, pairs), pairs)
        assert report.assigned_workers >= 0
        assert 0.0 <= report.gini <= 1.0
        assert report.mean_utility >= report.min_utility - 1e-12

    def test_empty_assignment(self):
        from repro.core.assignment import Assignment

        instance = make_dense_instance(10, 2, seed=4)
        pairs = compute_valid_pairs(instance)
        report = fairness_report(Assignment(instance, pairs), pairs)
        assert report.assigned_workers == 0
        assert report.mean_utility == 0.0
