"""Tests for the exact branch-and-bound solver."""

import itertools

import pytest

from repro.core.assignment import Assignment
from repro.core.exact import solve_exact
from repro.core.game import solve_game_theoretic
from repro.core.tpg import solve_tpg
from repro.core.validity import compute_valid_pairs
from repro.datasets.synthetic import generate_instance
from repro.utils.errors import InvalidInstanceError

from tests.conftest import make_dense_instance, make_example1_instance


def brute_force_optimum(instance, pairs) -> float:
    """Enumerate every strategy profile (tiny instances only)."""
    choices = [
        [None, *pairs.tasks_for_worker[worker]]
        for worker in range(instance.worker_count)
    ]
    best = 0.0
    for profile in itertools.product(*choices):
        counts = [0] * instance.task_count
        feasible = True
        for task in profile:
            if task is None:
                continue
            counts[task] += 1
            if counts[task] > instance.tasks[task].capacity:
                feasible = False
                break
        if not feasible:
            continue
        assignment = Assignment(instance)
        for worker, task in enumerate(profile):
            if task is not None:
                assignment.assign(worker, task)
        best = max(best, assignment.total_score())
    return best


class TestExact:
    def test_matches_brute_force(self):
        for seed in range(4):
            instance = make_dense_instance(
                7, 2, capacity=3, min_group_size=2, seed=seed
            )
            pairs = compute_valid_pairs(instance)
            exact = solve_exact(instance, pairs)
            assert exact.total_score() == pytest.approx(
                brute_force_optimum(instance, pairs)
            )

    def test_dominates_heuristics(self):
        for seed in range(4):
            instance = make_dense_instance(
                8, 2, capacity=3, min_group_size=2, seed=10 + seed
            )
            pairs = compute_valid_pairs(instance)
            optimal = solve_exact(instance, pairs).total_score()
            assert optimal >= solve_tpg(instance, pairs).total_score() - 1e-9
            assert (
                optimal
                >= solve_game_theoretic(instance, pairs).final_score - 1e-9
            )

    def test_example1_optimum(self):
        instance, _, _ = make_example1_instance()
        pairs = compute_valid_pairs(instance)
        assert solve_exact(instance, pairs).total_score() == pytest.approx(1.8)

    def test_rejects_large_search_space(self):
        instance = make_dense_instance(40, 8, seed=0)
        with pytest.raises(InvalidInstanceError):
            solve_exact(instance, node_limit=1000)

    def test_feasible_result(self):
        instance = make_dense_instance(8, 2, min_group_size=2, capacity=3, seed=5)
        pairs = compute_valid_pairs(instance)
        result = solve_exact(instance, pairs)
        result.check_feasible()

    def test_empty_instance(self):
        instance = generate_instance(0, 0, seed=0)
        assert solve_exact(instance).total_score() == 0.0
