"""Tests for simulation metrics aggregation and export."""

import csv

import pytest

from repro.core.tpg import solve_tpg
from repro.simulation.batch import BatchConfig, BatchSimulator, SimulationReport
from repro.simulation.metrics import aggregate, read_jsonl, write_csv, write_jsonl
from repro.simulation.population import Population


@pytest.fixture(scope="module")
def report() -> SimulationReport:
    population = Population.synthetic(120, 40, seed=0)
    config = BatchConfig(
        rounds=3,
        workers_per_round=50,
        tasks_per_round=12,
        speed_range=(0.05, 0.2),
        radius_range=(0.2, 0.4),
    )
    return BatchSimulator(population, config, solve_tpg, seed=1).run()


class TestAggregate:
    def test_totals_match_report(self, report):
        stats = aggregate(report)
        assert stats.rounds == 3
        assert stats.total_score == pytest.approx(report.total_score)
        assert stats.total_completed_tasks == report.total_completed_tasks
        assert stats.mean_batch_seconds == pytest.approx(report.mean_batch_seconds)

    def test_rates_in_unit_interval(self, report):
        stats = aggregate(report)
        assert 0.0 <= stats.assignment_rate <= 1.0
        assert 0.0 <= stats.completion_rate <= 1.0
        assert stats.max_batch_seconds >= stats.mean_batch_seconds / 3

    def test_empty_report(self):
        stats = aggregate(SimulationReport())
        assert stats.rounds == 0
        assert stats.total_score == 0.0
        assert stats.assignment_rate == 0.0
        assert stats.score_per_completed_task == 0.0


class TestExport:
    def test_csv_round_trip(self, report, tmp_path):
        path = tmp_path / "rounds.csv"
        write_csv(report, path)
        with open(path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(report.rounds)
        assert float(rows[0]["score"]) == pytest.approx(report.rounds[0].score)

    def test_jsonl_round_trip(self, report, tmp_path):
        path = tmp_path / "rounds.jsonl"
        write_jsonl(report, path)
        restored = read_jsonl(path)
        assert len(restored.rounds) == len(report.rounds)
        assert restored.total_score == pytest.approx(report.total_score)
        assert restored.rounds[1] == report.rounds[1]

    def test_jsonl_skips_blank_lines(self, report, tmp_path):
        path = tmp_path / "rounds.jsonl"
        write_jsonl(report, path)
        with open(path, "a") as handle:
            handle.write("\n\n")
        restored = read_jsonl(path)
        assert len(restored.rounds) == len(report.rounds)
