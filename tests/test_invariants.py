"""Cross-cutting invariants over random instances.

These tie the whole pipeline together: every solver's output obeys the
analytic bounds, the solver hierarchy holds, and structural monotonicity
properties of the bound and validity layers are preserved.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import upper_bound
from repro.core.game import solve_game_theoretic
from repro.core.model import Instance
from repro.core.tpg import solve_tpg
from repro.core.validity import compute_valid_pairs
from repro.datasets.synthetic import generate_instance
from repro.experiments.config import DEFAULT_APPROACH_ORDER, make_solver


def sparse_instance(seed):
    return generate_instance(
        60,
        12,
        speed_range=(0.02, 0.1),
        radius_range=(0.1, 0.3),
        seed=seed,
    )


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10**6))
def test_every_approach_below_upper_bound(seed):
    instance = sparse_instance(seed)
    pairs = compute_valid_pairs(instance)
    bound = upper_bound(instance, pairs).value
    for name in DEFAULT_APPROACH_ORDER:
        assignment = make_solver(name, seed=seed)(instance, pairs)
        assignment.check_feasible()
        assert assignment.total_score() <= bound + 1e-9


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10**6))
def test_gt_dominates_tpg_on_sparse_instances(seed):
    instance = sparse_instance(seed)
    pairs = compute_valid_pairs(instance)
    tpg = solve_tpg(instance, pairs).total_score()
    gt = solve_game_theoretic(instance, pairs).final_score
    assert gt >= tpg - 1e-9


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10**6))
def test_upper_bound_monotone_in_workers(seed):
    """Adding workers to an instance can only raise UPPER: both sides of
    Equation 9 are monotone in the worker pool."""
    full = generate_instance(
        30, 6, speed_range=(0.1, 0.4), radius_range=(0.2, 0.5), seed=seed
    )
    keep = list(range(20))
    reduced = Instance(
        workers=[full.workers[i] for i in keep],
        tasks=full.tasks,
        quality=full.quality.restricted_to(keep),
        min_group_size=full.min_group_size,
        now=full.now,
    )
    # The reduced instance's q_hat values can only be <= the full ones
    # (fewer partners to pick the top B-1 from), and each task sees a
    # subset of candidates.
    assert (
        upper_bound(reduced).value <= upper_bound(full).value + 1e-9
    )


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10**6))
def test_valid_pairs_monotone_in_deadline(seed):
    """Extending every deadline can only add valid pairs."""
    tight = generate_instance(40, 8, remaining_time=1.0, seed=seed)
    loose = Instance(
        workers=tight.workers,
        tasks=[
            type(task)(
                task_id=task.task_id,
                location=task.location,
                capacity=task.capacity,
                deadline=task.deadline + 5.0,
                created_time=task.created_time,
            )
            for task in tight.tasks
        ],
        quality=tight.quality,
        min_group_size=tight.min_group_size,
        now=tight.now,
    )
    tight_pairs = compute_valid_pairs(tight)
    loose_pairs = compute_valid_pairs(loose)
    for worker in range(tight.worker_count):
        assert set(tight_pairs.tasks_for_worker[worker]) <= set(
            loose_pairs.tasks_for_worker[worker]
        )


@settings(max_examples=8, deadline=None)
@given(st.integers(0, 10**6))
def test_score_invariant_under_worker_relabeling(seed):
    """Permuting worker identities permutes the assignment but not the
    achievable score (TPG is deterministic given the index order, so we
    compare against the score of the permuted-back assignment)."""
    instance = generate_instance(
        25, 5, speed_range=(0.1, 0.4), radius_range=(0.3, 0.6), seed=seed
    )
    rng = np.random.default_rng(seed)
    permutation = rng.permutation(instance.worker_count)
    permuted = Instance(
        workers=[instance.workers[i] for i in permutation],
        tasks=instance.tasks,
        quality=instance.quality.restricted_to(permutation),
        min_group_size=instance.min_group_size,
        now=instance.now,
    )
    original_pairs = compute_valid_pairs(instance)
    permuted_pairs = compute_valid_pairs(permuted)
    # Validity structure must be the permutation image of the original.
    for new_index, old_index in enumerate(permutation):
        assert permuted_pairs.tasks_for_worker[new_index] == (
            original_pairs.tasks_for_worker[old_index]
        )
    # Relabeling changes the best-response visit order, which can settle
    # in a *different* Nash equilibrium of the potential game, so the
    # two scores need not be close (observed gaps at this tiny scale
    # reach ~27%). A score tolerance wide enough to cover equilibrium
    # spread asserts nothing, so instead verify each side against the
    # oracles directly: both solves reach a genuine pure Nash
    # equilibrium, both scores survive a from-scratch recompute, and the
    # permuted equilibrium pulled back through the permutation is a
    # feasible equilibrium of the *original* game with the same score.
    from repro.core.assignment import Assignment
    from repro.core.game import verify_nash_equilibrium

    original = solve_game_theoretic(instance, original_pairs)
    permuted_result = solve_game_theoretic(permuted, permuted_pairs)
    for result, pairs in (
        (original, original_pairs),
        (permuted_result, permuted_pairs),
    ):
        assert result.converged
        assert result.assignment.recompute_total() == pytest.approx(
            result.final_score, abs=1e-9
        )
        assert verify_nash_equilibrium(result.equilibrium, pairs) == []

    pullback = Assignment(instance, original_pairs)
    pullback.allow_overflow = True
    for new_index, task in permuted_result.equilibrium.to_pairs():
        pullback.assign(int(permutation[new_index]), task)
    # Pair sums are permutation-invariant up to summation order.
    assert pullback.recompute_total() == pytest.approx(
        permuted_result.equilibrium.recompute_total(), abs=1e-9
    )
    # The pulled-back profile is an equilibrium of the original game:
    # the permuted score is genuinely *reachable* there, which is the
    # invariant the old rel=0.35 score comparison tried to approximate
    # (and could only assert up to an arbitrary spread guess).
    assert verify_nash_equilibrium(pullback, original_pairs) == []
