"""Tests for the robustness layer: fault injection, group repair, and
the anytime solver fallback chain.

The contracts under test:

* fault injection is a pure function of the seed — same seed, same
  :class:`~repro.simulation.faults.FaultEvent` stream;
* a disabled fault model leaves every per-round score bit-identical to
  the historical fault-free path;
* group repair only produces Definition-3-valid, capacity-respecting
  assignments, and the retry-then-abandon policy is bounded;
* the fallback chain degrades tier by tier under a too-small budget but
  always returns a feasible assignment, and with no budget it is
  bit-identical to the unwrapped solver.
"""

from __future__ import annotations

import time

import pytest

from repro.core.fallback import DegradationRecord, FallbackSolver, default_tiers
from repro.core.game import solve_game_theoretic
from repro.core.tpg import solve_tpg
from repro.core.validity import compute_valid_pairs
from repro.datasets.synthetic import generate_instance
from repro.simulation.batch import BatchConfig, BatchSimulator
from repro.simulation.faults import FaultInjector, FaultModel
from repro.simulation.population import Population
from repro.utils.errors import (
    DegradedResultError,
    ReproError,
    SolverTimeoutError,
)


def tpg_solver(instance, valid_pairs):
    return solve_tpg(instance, valid_pairs)


@pytest.fixture(scope="module")
def population() -> Population:
    return Population.synthetic(150, 60, seed=5)


def quick_config(**overrides) -> BatchConfig:
    defaults = dict(
        rounds=4,
        workers_per_round=60,
        tasks_per_round=15,
        capacity=4,
        min_group_size=3,
        remaining_time=3.0,
        speed_range=(0.05, 0.2),
        radius_range=(0.2, 0.4),
    )
    defaults.update(overrides)
    return BatchConfig(**defaults)


FAULTY = FaultModel(
    no_show_rate=0.25,
    dropout_rate=0.15,
    cancellation_rate=0.1,
    location_noise_sigma=0.02,
)


class TestFaultModel:
    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            FaultModel(no_show_rate=1.5)
        with pytest.raises(ValueError):
            FaultModel(dropout_rate=-0.1)
        with pytest.raises(ValueError):
            FaultModel(cancellation_rate=2.0)
        with pytest.raises(ValueError):
            FaultModel(location_noise_sigma=-0.01)
        with pytest.raises(ValueError):
            FaultModel(dropout_release=0.0)
        with pytest.raises(ValueError):
            FaultModel(max_task_retries=-1)

    def test_enabled_property(self):
        assert not FaultModel().enabled
        assert not FaultModel(repair=False, max_task_retries=0).enabled
        assert FaultModel(no_show_rate=0.1).enabled
        assert FaultModel(location_noise_sigma=0.01).enabled


class TestBatchConfigValidation:
    def test_rejects_nonpositive_durations(self):
        with pytest.raises(ValueError):
            quick_config(task_duration=0.0)
        with pytest.raises(ValueError):
            quick_config(task_duration=-1.0)
        with pytest.raises(ValueError):
            quick_config(batch_interval=0.0)

    def test_rejects_bad_ranges(self):
        with pytest.raises(ValueError):
            quick_config(speed_range=(0.0, 0.1))
        with pytest.raises(ValueError):
            quick_config(speed_range=(0.2, 0.1))
        with pytest.raises(ValueError):
            quick_config(radius_range=(-0.1, 0.2))
        with pytest.raises(ValueError):
            quick_config(radius_range=(0.4, 0.2))


class TestFaultDeterminism:
    def test_same_seed_same_event_stream(self, population):
        config = quick_config(faults=FAULTY)
        reports = [
            BatchSimulator(population, config, tpg_solver, seed=9).run()
            for _ in range(2)
        ]
        assert reports[0].fault_events == reports[1].fault_events
        assert reports[0].fault_events  # the rates above actually fire
        assert [r.score for r in reports[0].rounds] == [
            r.score for r in reports[1].rounds
        ]

    def test_different_seed_different_stream(self, population):
        config = quick_config(faults=FAULTY)
        a = BatchSimulator(population, config, tpg_solver, seed=9).run()
        b = BatchSimulator(population, config, tpg_solver, seed=10).run()
        assert a.fault_events != b.fault_events

    def test_disabled_model_is_bit_identical_to_no_model(self, population):
        baseline = BatchSimulator(
            population, quick_config(), tpg_solver, seed=9
        ).run()
        disabled = BatchSimulator(
            population, quick_config(faults=FaultModel()), tpg_solver, seed=9
        ).run()
        assert [repr(r.score) for r in disabled.rounds] == [
            repr(r.score) for r in baseline.rounds
        ]
        assert not disabled.fault_events

    def test_injector_draws_nothing_for_zero_rates(self):
        injector = FaultInjector(FaultModel(), rounds=3, seed=0)
        assert not injector.no_shows(0, 10).any()
        assert not injector.dropouts(0, 10).any()
        cancelled, events = injector.cancellations(0, [1, 2, 3])
        assert not cancelled and not events


class TestFaultEffects:
    def test_faulty_run_scores_at_most_clean_run(self, population):
        """No-shows and dissolutions can only remove committed revenue."""
        clean = BatchSimulator(
            population, quick_config(), tpg_solver, seed=9
        ).run()
        faulty = BatchSimulator(
            population,
            quick_config(faults=FaultModel(no_show_rate=0.5, repair=False)),
            tpg_solver,
            seed=9,
        ).run()
        assert faulty.total_score <= clean.total_score
        assert faulty.total_dissolved_groups > 0

    def test_repair_backfill_keeps_assignment_feasible(self, population):
        """Backfill goes through Assignment.assign, which enforces
        Definition 3 validity and capacity — here we pin that the repair
        pass actually exercises it without tripping feasibility."""
        model = FaultModel(no_show_rate=0.35, repair=True)
        config = quick_config(faults=model, workers_per_round=80)

        checked = []
        original = tpg_solver

        def checking_solver(instance, valid_pairs):
            assignment = original(instance, valid_pairs)
            checked.append(assignment)
            return assignment

        report = BatchSimulator(
            population, config, checking_solver, seed=3
        ).run()
        # Post-dispatch assignments (after no-shows + repair) stay feasible:
        # the simulator's own check_feasible ran, and each surviving group
        # reported in completed_tasks met the minimum size.
        for assignment in checked:
            assignment.check_feasible()
        kinds = report.fault_counts
        assert kinds.get("no_show", 0) > 0
        assert (
            report.total_repaired_groups + report.total_dissolved_groups > 0
        )
        if report.total_repaired_groups:
            assert kinds.get("backfill", 0) > 0

    def test_retry_is_bounded_by_max_task_retries(self, population):
        """With repair off and certain no-shows, every group dissolves and
        every task is abandoned after its bounded retries."""
        model = FaultModel(no_show_rate=1.0, repair=False, max_task_retries=0)
        config = quick_config(faults=model)
        report = BatchSimulator(population, config, tpg_solver, seed=3).run()
        kinds = report.fault_counts
        assert kinds.get("dissolve", 0) > 0
        # retries exhausted immediately -> every dissolve abandons its task
        assert kinds.get("abandon", 0) == kinds.get("dissolve", 0)
        assert report.total_completed_tasks == 0

    def test_round_trip_through_jsonl(self, population, tmp_path):
        from repro.simulation.metrics import read_jsonl, write_jsonl

        config = quick_config(faults=FAULTY)
        report = BatchSimulator(population, config, tpg_solver, seed=9).run()
        path = tmp_path / "rounds.jsonl"
        write_jsonl(report, path)
        restored = read_jsonl(path)
        assert repr(restored.rounds) == repr(report.rounds)


def small_instance(seed=0):
    instance = generate_instance(
        worker_count=60,
        task_count=12,
        speed_range=(0.05, 0.2),
        radius_range=(0.2, 0.4),
        seed=seed,
    )
    return instance, compute_valid_pairs(instance)


class TestFallbackChain:
    def test_no_budget_is_bit_identical_to_unwrapped(self):
        instance, pairs = small_instance()
        direct = solve_game_theoretic(instance, pairs, seed=1).assignment
        wrapped = FallbackSolver(
            lambda i, p: solve_game_theoretic(i, p, seed=1).assignment,
            label="GT",
        )
        via_chain = wrapped(instance, pairs)
        assert repr(sorted(via_chain.to_pairs())) == repr(
            sorted(direct.to_pairs())
        )
        record = wrapped.degradation_log[0]
        assert not record.degraded
        assert record.answered_by == "GT"

    def test_tiny_budget_degrades_to_floor_and_stays_feasible(self):
        instance, pairs = small_instance()

        def sleepy(i, p):
            time.sleep(5.0)
            raise AssertionError("should have been abandoned")

        chain = FallbackSolver(
            sleepy,
            budget=1e-4,
            label="SLOW",
            seed=0,
        )
        assignment = chain(instance, pairs)
        assignment.check_feasible()
        record = chain.degradation_log[0]
        assert record.degraded
        assert record.answered_by == "RAND"
        assert record.attempts[0].outcome == "timeout"
        # Intermediate tiers were skipped (no budget left for a watchdog).
        assert {a.outcome for a in record.attempts[1:-1]} <= {
            "skipped",
            "timeout",
        }
        assert record.attempts[-1].outcome == "answered"
        assert "DEGRADED to RAND" in record.summary()

    def test_generous_budget_answers_with_primary(self):
        instance, pairs = small_instance()
        chain = FallbackSolver(
            lambda i, p: solve_tpg(i, p), budget=60.0, label="TPG"
        )
        assignment = chain(instance, pairs)
        assignment.check_feasible()
        record = chain.degradation_log[0]
        assert not record.degraded
        assert record.answered_by == "TPG"

    def test_erroring_primary_falls_through_to_next_tier(self):
        instance, pairs = small_instance()

        def broken(i, p):
            raise ReproError("solver exploded")

        chain = FallbackSolver(broken, budget=60.0, label="BROKEN", seed=0)
        assignment = chain(instance, pairs)
        assignment.check_feasible()
        record = chain.degradation_log[0]
        assert record.degraded
        assert record.answered_by == "TPG"  # first ladder tier below primary
        assert record.attempts[0].outcome == "error"
        assert "solver exploded" in record.reason

    def test_on_degrade_raise(self):
        instance, pairs = small_instance()

        def broken(i, p):
            raise ReproError("nope")

        chain = FallbackSolver(
            broken, budget=60.0, label="BROKEN", on_degrade="raise"
        )
        with pytest.raises(DegradedResultError):
            chain(instance, pairs)
        # The degradation was still recorded before raising.
        assert chain.degradation_log[0].degraded

    def test_stats_log_surfaces_degradations(self):
        instance, pairs = small_instance()

        def broken(i, p):
            raise ReproError("nope")

        chain = FallbackSolver(broken, budget=60.0, label="BROKEN")
        chain(instance, pairs)
        stats = chain.stats_log[0]
        assert stats.solver == "BROKEN~anytime"
        assert stats.degraded_solves == 1
        assert stats.fallback_answers == {"TPG": 1}
        assert "degraded=1" in stats.summary()
        assert any(key.startswith("tier:") for key in stats.phase_seconds)

    def test_error_taxonomy(self):
        assert issubclass(SolverTimeoutError, ReproError)
        assert issubclass(DegradedResultError, ReproError)
        with pytest.raises(ValueError):
            FallbackSolver(tpg_solver, budget=0.0)
        with pytest.raises(ValueError):
            FallbackSolver(tpg_solver, on_degrade="explode")

    def test_default_tiers_ladder(self):
        names = [name for name, _ in default_tiers(seed=0)]
        assert names == ["TPG", "PGREEDY", "RAND"]

    def test_degradation_record_reason_empty_when_primary_answered(self):
        record = DegradationRecord(
            budget_seconds=1.0, answered_by="GT", degraded=False
        )
        assert record.reason == ""
        assert "within budget" in record.summary()


class TestSimulatorWithFallback:
    def test_budgeted_simulation_always_completes(self, population):
        """Even an impossibly small per-batch budget yields a full,
        feasible simulation — the anytime guarantee end to end."""

        def sleepy(instance, valid_pairs):
            time.sleep(5.0)
            raise AssertionError("unreachable")

        chain = FallbackSolver(sleepy, budget=1e-4, label="SLOW", seed=0)
        config = quick_config(rounds=2)
        report = BatchSimulator(population, config, chain, seed=3).run()
        assert len(report.rounds) == 2
        assert all(record.degraded for record in chain.degradation_log)
        assert all(
            record.answered_by == "RAND"
            for record in chain.degradation_log
        )
