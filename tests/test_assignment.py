"""Tests for the Assignment state object, including property-based
consistency of the incremental revenue maintenance."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assignment import UNASSIGNED, Assignment
from repro.core.revenue import group_revenue
from repro.core.validity import ValidPairs, compute_valid_pairs
from repro.utils.errors import CapacityError, ValidityError

from tests.conftest import make_dense_instance


@pytest.fixture
def instance():
    return make_dense_instance(20, 4, capacity=4, min_group_size=3, seed=1)


@pytest.fixture
def pairs(instance):
    return compute_valid_pairs(instance)


class TestBasicOperations:
    def test_initial_state(self, instance):
        assignment = Assignment(instance)
        assert assignment.total_score() == 0.0
        assert assignment.assigned_worker_count() == 0
        assert assignment.task_of(0) == UNASSIGNED
        assert not assignment.is_assigned(0)
        assert assignment.to_pairs() == []

    def test_assign_and_members(self, instance):
        assignment = Assignment(instance)
        assignment.assign(0, 1)
        assignment.assign(5, 1)
        assert assignment.members(1) == (0, 5)
        assert assignment.task_of(0) == 1
        assert assignment.assigned_count(1) == 2
        assert assignment.to_pairs() == [(0, 1), (5, 1)]

    def test_double_assign_rejected(self, instance):
        assignment = Assignment(instance)
        assignment.assign(0, 1)
        with pytest.raises(ValidityError):
            assignment.assign(0, 2)

    def test_unassign(self, instance):
        assignment = Assignment(instance)
        assignment.assign(0, 1)
        assert assignment.unassign(0) == 1
        assert assignment.task_of(0) == UNASSIGNED
        with pytest.raises(ValidityError):
            assignment.unassign(0)

    def test_move(self, instance):
        assignment = Assignment(instance)
        assignment.assign(0, 1)
        assignment.move(0, 2)
        assert assignment.task_of(0) == 2
        assert assignment.members(1) == ()

    def test_capacity_enforced(self, instance):
        assignment = Assignment(instance)
        for worker in range(instance.tasks[0].capacity):
            assignment.assign(worker, 0)
        with pytest.raises(CapacityError):
            assignment.assign(10, 0)

    def test_overflow_allowed_when_enabled(self, instance):
        assignment = Assignment(instance, allow_overflow=True)
        for worker in range(instance.tasks[0].capacity + 2):
            assignment.assign(worker, 0)
        assert assignment.assigned_count(0) == instance.tasks[0].capacity + 2
        # Revenue equals the best-capacity-subset revenue.
        expected = group_revenue(
            instance.quality,
            assignment.members(0),
            instance.tasks[0].capacity,
            instance.min_group_size,
        )
        assert assignment.revenue_of(0) == pytest.approx(expected)

    def test_validity_enforced(self, instance, pairs):
        assignment = Assignment(instance, pairs)
        invalid = None
        for worker in range(instance.worker_count):
            for task in range(instance.task_count):
                if not pairs.is_valid(worker, task):
                    invalid = (worker, task)
                    break
            if invalid:
                break
        if invalid is None:
            pytest.skip("dense instance has no invalid pair")
        with pytest.raises(ValidityError):
            assignment.assign(*invalid)

    def test_revenue_zero_below_minimum(self, instance):
        assignment = Assignment(instance)
        assignment.assign(0, 0)
        assignment.assign(1, 0)
        assert assignment.revenue_of(0) == 0.0
        assignment.assign(2, 0)
        assert assignment.revenue_of(0) > 0.0

    def test_copy_is_independent(self, instance):
        assignment = Assignment(instance)
        assignment.assign(0, 0)
        clone = assignment.copy()
        clone.assign(1, 0)
        assert assignment.assigned_count(0) == 1
        assert clone.assigned_count(0) == 2

    def test_repr_mentions_score(self, instance):
        assignment = Assignment(instance)
        assert "score=" in repr(assignment)


class TestMarginals:
    def test_join_gain_matches_actual_join(self, instance):
        assignment = Assignment(instance)
        for worker, task in [(0, 0), (1, 0), (4, 0), (7, 1), (8, 1)]:
            assignment.assign(worker, task)
        for worker, task in [(2, 0), (9, 1), (3, 2)]:
            predicted = assignment.join_gain(worker, task)
            before = assignment.total_score()
            assignment.assign(worker, task)
            actual = assignment.total_score() - before
            assert predicted == pytest.approx(actual)
            assignment.unassign(worker)

    def test_leave_delta_matches_actual_leave(self, instance):
        assignment = Assignment(instance)
        for worker, task in [(0, 0), (1, 0), (4, 0), (6, 0)]:
            assignment.assign(worker, task)
        for worker in (0, 1, 4, 6):
            predicted = assignment.leave_delta(worker)
            before = assignment.total_score()
            task = assignment.unassign(worker)
            actual = before - assignment.total_score()
            assert predicted == pytest.approx(actual)
            assignment.assign(worker, task)

    def test_leave_delta_idle_worker(self, instance):
        assignment = Assignment(instance)
        assert assignment.leave_delta(3) == 0.0


class TestFeasibility:
    def test_check_feasible_passes(self, instance, pairs):
        assignment = Assignment(instance, pairs)
        worker = pairs.workers_for_task[0][0]
        assignment.assign(worker, 0)
        assignment.check_feasible()

    def test_clamp_to_capacity(self, instance):
        assignment = Assignment(instance, allow_overflow=True)
        capacity = instance.tasks[0].capacity
        for worker in range(capacity + 3):
            assignment.assign(worker, 0)
        score_before = assignment.total_score()
        dropped = assignment.clamp_to_capacity()
        assert len(dropped) == 3
        assert assignment.assigned_count(0) == capacity
        # Clamping removes only uncounted members: score unchanged.
        assert assignment.total_score() == pytest.approx(score_before)
        assignment.check_feasible()

    def test_drop_incomplete_groups(self, instance):
        assignment = Assignment(instance)
        assignment.assign(0, 0)
        assignment.assign(1, 0)  # below B=3
        assignment.assign(2, 1)
        assignment.assign(3, 1)
        assignment.assign(4, 1)  # complete
        dropped = assignment.drop_incomplete_groups()
        assert sorted(dropped) == [0, 1]
        assert assignment.members(1) == (2, 3, 4)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10**6), st.integers(10, 25), st.integers(2, 5))
def test_property_incremental_score_matches_scratch(seed, worker_count, task_count):
    """A random mutation sequence keeps the cached score equal to a
    from-scratch Equation 3 evaluation."""
    instance = make_dense_instance(
        worker_count, task_count, capacity=4, min_group_size=3, seed=seed
    )
    rng = np.random.default_rng(seed)
    assignment = Assignment(instance, allow_overflow=True)
    for _ in range(60):
        worker = int(rng.integers(worker_count))
        if assignment.is_assigned(worker) and rng.random() < 0.4:
            assignment.unassign(worker)
        else:
            task = int(rng.integers(task_count))
            if assignment.is_assigned(worker):
                assignment.move(worker, task)
            else:
                assignment.assign(worker, task)
    assert assignment.total_score() == pytest.approx(
        assignment.recompute_total(), abs=1e-8
    )


class TestCopyClonesRevenueCache:
    def test_state_dict_round_trip_covers_all_slots(self, instance, pairs):
        from repro.core.revenue import RevenueCache

        assignment = Assignment(instance, pairs)
        for worker in range(instance.worker_count):
            for task in pairs.tasks_for_worker[worker]:
                if assignment.assigned_count(task) < instance.tasks[task].capacity:
                    assignment.assign(worker, task)
                    break
        clone = assignment.copy()
        original_state = assignment.revenue_cache.state_dict()
        clone_state = clone.revenue_cache.state_dict()
        # Every slot is present in both (clone() raises on fields it
        # does not know how to copy, so additions cannot slip through).
        assert set(original_state) == set(RevenueCache.__slots__)
        assert set(clone_state) == set(RevenueCache.__slots__)
        for name in RevenueCache.__slots__:
            left, right = original_state[name], clone_state[name]
            if isinstance(left, np.ndarray):
                assert np.array_equal(left, right), name
            else:
                assert left == right, name
        # The quality store is shared (immutable), arrays are not.
        assert clone.revenue_cache.quality is assignment.revenue_cache.quality
        assert clone.revenue_cache.pair_sums is not assignment.revenue_cache.pair_sums

    def test_clone_preserves_instrumentation_counters(self, instance, pairs):
        # The old hand-copy dropped full_evaluations/incremental_updates.
        assignment = Assignment(instance, pairs)
        worker = next(
            w for w in range(instance.worker_count) if pairs.tasks_for_worker[w]
        )
        assignment.assign(worker, pairs.tasks_for_worker[worker][0])
        clone = assignment.copy()
        assert (
            clone.revenue_cache.incremental_updates
            == assignment.revenue_cache.incremental_updates
        )
        assert (
            clone.revenue_cache.full_evaluations
            == assignment.revenue_cache.full_evaluations
        )

    def test_clone_mutation_isolation(self, instance, pairs):
        assignment = Assignment(instance, pairs)
        clone = assignment.copy()
        worker = next(
            w for w in range(instance.worker_count) if pairs.tasks_for_worker[w]
        )
        clone.assign(worker, pairs.tasks_for_worker[worker][0])
        assert not assignment.is_assigned(worker)
        assert assignment.total_score() == 0.0
        assert assignment.audit() == []
        assert clone.audit() == []
