"""Degenerate-but-legal inputs pushed through every solver.

Real deployments produce weird batches: nobody in range, all qualities
zero, identical locations, a single task, B exactly equal to capacity.
Every registered approach must return a feasible assignment on all of
them without crashing, and scores must respect the trivial bounds.
"""

import numpy as np
import pytest

from repro.core.bounds import upper_bound
from repro.core.model import Instance, Task, Worker
from repro.core.quality import CooperationMatrix
from repro.core.validity import compute_valid_pairs
from repro.experiments.config import (
    APPROACHES,
    DEFAULT_APPROACH_ORDER,
    EXTENSION_APPROACHES,
    make_solver,
)
from repro.spatial.geometry import Point

ALL_APPROACHES = DEFAULT_APPROACH_ORDER + EXTENSION_APPROACHES


def co_located_instance(worker_count, task_count, quality, capacity=4, b=3):
    origin = Point(0.5, 0.5)
    workers = [
        Worker(worker_id=i, location=origin, speed=1.0, radius=1.0)
        for i in range(worker_count)
    ]
    tasks = [
        Task(task_id=j, location=origin, capacity=capacity, deadline=5.0)
        for j in range(task_count)
    ]
    return Instance(workers, tasks, quality, min_group_size=b)


def run_all_approaches(instance):
    pairs = compute_valid_pairs(instance)
    bound = upper_bound(instance, pairs).value
    results = {}
    for name in ALL_APPROACHES:
        assignment = make_solver(name, seed=0)(instance, pairs)
        assignment.check_feasible()
        score = assignment.total_score()
        assert -1e-9 <= score <= bound + 1e-9, f"{name}: {score} vs UPPER {bound}"
        results[name] = score
    return results


class TestDegenerateBatches:
    def test_nobody_in_range(self):
        workers = [
            Worker(worker_id=0, location=Point(0.0, 0.0), speed=0.01, radius=0.01),
            Worker(worker_id=1, location=Point(0.0, 0.1), speed=0.01, radius=0.01),
            Worker(worker_id=2, location=Point(0.1, 0.0), speed=0.01, radius=0.01),
        ]
        tasks = [Task(task_id=0, location=Point(0.9, 0.9), capacity=3, deadline=1.0)]
        instance = Instance(
            workers, tasks, CooperationMatrix.random_uniform(3, seed=0),
            min_group_size=3,
        )
        results = run_all_approaches(instance)
        assert all(score == 0.0 for score in results.values())

    def test_all_zero_quality(self):
        quality = CooperationMatrix(np.zeros((9, 9)))
        instance = co_located_instance(9, 2, quality)
        results = run_all_approaches(instance)
        assert all(score == pytest.approx(0.0) for score in results.values())

    def test_all_perfect_quality(self):
        """Uniform quality 1: any full group is optimal; every approach
        that fills groups reaches the same per-task revenue."""
        quality = CooperationMatrix(np.ones((8, 8)))
        instance = co_located_instance(8, 2, quality)
        results = run_all_approaches(instance)
        # GT should realize two full 4-groups: revenue 4 each, total 8.
        assert results["GT"] == pytest.approx(8.0)
        assert results["TPG"] == pytest.approx(8.0)

    def test_single_task_exact_b(self):
        quality = CooperationMatrix.random_uniform(3, seed=1)
        instance = co_located_instance(3, 1, quality, capacity=3, b=3)
        results = run_all_approaches(instance)
        expected = quality.ordered_pair_sum([0, 1, 2]) / 2
        for name in ("TPG", "GT", "GT+ALL", "LSEARCH"):
            assert results[name] == pytest.approx(expected)

    def test_more_capacity_than_workers(self):
        quality = CooperationMatrix.random_uniform(4, seed=2)
        instance = co_located_instance(4, 3, quality, capacity=4, b=3)
        run_all_approaches(instance)

    def test_pair_tasks(self):
        """B = capacity = 2: the pure matching regime of Example 1."""
        quality = CooperationMatrix.random_uniform(6, seed=3)
        instance = co_located_instance(6, 3, quality, capacity=2, b=2)
        results = run_all_approaches(instance)
        assert results["GT"] >= results["RAND"] - 1e-9

    def test_one_worker_zero_everything(self):
        quality = CooperationMatrix(np.zeros((1, 1)))
        instance = co_located_instance(1, 1, quality, capacity=3, b=3)
        results = run_all_approaches(instance)
        assert all(score == 0.0 for score in results.values())

    def test_many_tasks_few_workers(self):
        quality = CooperationMatrix.random_uniform(5, seed=4)
        instance = co_located_instance(5, 20, quality, capacity=3, b=3)
        results = run_all_approaches(instance)
        # At most one task can be completed... actually floor(5/3) = 1.
        for name, score in results.items():
            assert score >= 0.0


class TestRegistryCompleteness:
    def test_battery_covers_every_registered_approach(self):
        assert set(ALL_APPROACHES) == set(APPROACHES)
