"""Tests for the seeded process-chaos layer (``repro.chaos``).

The contract under test: injection decisions are a pure function of
``(policy, scope, index, attempt)`` — reproducible across processes and
runs — activation travels through the environment to pool children of
either start method, the supervising process is never killed or hung by
its own injector, and the :class:`~repro.utils.procpool.FanoutPool`
supervisor recovers from injected SIGKILLs (rebuild + re-enqueue) while
quarantining provably poisonous items instead of looping forever.
"""

from __future__ import annotations

import os

import pytest

from repro.chaos import policy as chaos_policy
from repro.chaos.policy import (
    CHAOS_ACTIONS,
    CHAOS_ENV_VAR,
    ChaosInjector,
    ChaosPolicy,
    ChaosUnpickleError,
    activate,
    attach_checkpoint,
    chaos_context,
    current_injector,
)
from repro.utils.procpool import FanoutPool, RetryPolicy


def _double(item, submitted_at):
    """Module-level pool worker (pools pickle workers by reference)."""
    return item * 2


class TestPolicyValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError, match="kill_rate"):
            ChaosPolicy(kill_rate=-0.1)
        with pytest.raises(ValueError, match="raise_rate"):
            ChaosPolicy(raise_rate=1.5)

    def test_rates_must_sum_to_at_most_one(self):
        with pytest.raises(ValueError, match="sum"):
            ChaosPolicy(kill_rate=0.6, hang_rate=0.6)
        # Exactly 1.0 is allowed — every attempt draws some action.
        ChaosPolicy(kill_rate=0.5, raise_rate=0.5)

    def test_hang_seconds_and_max_attempt(self):
        with pytest.raises(ValueError, match="hang_seconds"):
            ChaosPolicy(hang_seconds=0.0)
        with pytest.raises(ValueError, match="max_attempt"):
            ChaosPolicy(max_attempt=0)

    def test_enabled_property(self):
        assert not ChaosPolicy().enabled  # the default policy is inert
        assert ChaosPolicy(kill_rate=0.01).enabled
        assert ChaosPolicy(attach_exit_rate=0.01).enabled

    def test_spec_round_trips_exactly(self):
        policy = ChaosPolicy(
            kill_rate=0.125,
            hang_rate=0.0625,
            raise_rate=0.25,
            attach_exit_rate=0.03125,
            hang_seconds=12.5,
            max_attempt=3,
            only_indices=(2, 5),
            seed=42,
        )
        assert ChaosPolicy.from_spec(policy.to_spec()) == policy
        assert ChaosPolicy.from_spec(ChaosPolicy().to_spec()) == ChaosPolicy()


class TestInjectorDeterminism:
    def test_rate_one_always_fires_rate_zero_never(self):
        always = ChaosInjector(ChaosPolicy(kill_rate=1.0, max_attempt=1))
        never = ChaosInjector(ChaosPolicy())
        for index in range(8):
            assert always.decide("cell", index, 1) == "kill"
            assert never.decide("cell", index, 1) is None

    def test_decisions_are_pure_functions_of_the_key(self):
        policy = ChaosPolicy(
            kill_rate=0.25, hang_rate=0.25, raise_rate=0.25,
            attach_exit_rate=0.25, max_attempt=5, seed=7,
        )
        a, b = ChaosInjector(policy), ChaosInjector(policy)
        decisions = set()
        for index in range(32):
            decision = a.decide("cell", index, 1)
            assert b.decide("cell", index, 1) == decision
            decisions.add(decision)
        # Rates sum to 1.0: every draw lands in some band, and over 32
        # indices all four actions show up.
        assert decisions == set(CHAOS_ACTIONS)

    def test_scopes_draw_independent_schedules(self):
        policy = ChaosPolicy(kill_rate=0.5, seed=0)
        injector = ChaosInjector(policy)
        cell = [injector.decide("cell", i, 1) for i in range(64)]
        shard = [injector.decide("shard", i, 1) for i in range(64)]
        assert cell != shard

    def test_max_attempt_bounds_injection(self):
        injector = ChaosInjector(ChaosPolicy(kill_rate=1.0, max_attempt=2))
        assert injector.decide("pool", 0, 1) == "kill"
        assert injector.decide("pool", 0, 2) == "kill"
        assert injector.decide("pool", 0, 3) is None

    def test_only_indices_pins_the_victims(self):
        injector = ChaosInjector(
            ChaosPolicy(kill_rate=1.0, only_indices=(1, 3), max_attempt=99)
        )
        decisions = [injector.decide("pool", i, 1) for i in range(5)]
        assert decisions == [None, "kill", None, "kill", None]


class TestActivation:
    def test_activate_sets_and_restores_the_env_spec(self, monkeypatch):
        monkeypatch.delenv(CHAOS_ENV_VAR, raising=False)
        assert current_injector() is None
        policy = ChaosPolicy(raise_rate=0.5, seed=3)
        with activate(policy):
            assert os.environ[CHAOS_ENV_VAR] == policy.to_spec()
            injector = current_injector()
            assert injector is not None
            assert injector.policy == policy
        assert CHAOS_ENV_VAR not in os.environ
        assert current_injector() is None

    def test_activate_restores_a_previous_spec(self, monkeypatch):
        outer = ChaosPolicy(kill_rate=0.1)
        monkeypatch.setenv(CHAOS_ENV_VAR, outer.to_spec())
        with activate(ChaosPolicy(raise_rate=0.9)):
            assert current_injector().policy.raise_rate == 0.9
        assert os.environ[CHAOS_ENV_VAR] == outer.to_spec()


class TestInlineChaos:
    """The supervising process only ever honors "raise" on itself."""

    def test_inline_raise_fires(self):
        with activate(ChaosPolicy(raise_rate=1.0, max_attempt=99)):
            with pytest.raises(ChaosUnpickleError, match="cell\\[0\\]"):
                with chaos_context("cell", 0, 1, inline=True):
                    pass

    def test_inline_kill_and_hang_are_suppressed(self):
        ran = False
        with activate(
            ChaosPolicy(kill_rate=0.5, hang_rate=0.5, max_attempt=99)
        ):
            with chaos_context("cell", 0, 1, inline=True):
                ran = True  # the process survived its own injector
        assert ran

    def test_attach_exit_arms_and_disarms_the_checkpoint(self):
        with activate(ChaosPolicy(attach_exit_rate=1.0, max_attempt=99)):
            with chaos_context("cell", 0, 1):
                assert chaos_policy._PENDING_ATTACH_EXIT
            assert not chaos_policy._PENDING_ATTACH_EXIT

    def test_attach_checkpoint_is_a_noop_when_disarmed(self):
        attach_checkpoint()  # must not os._exit


class TestFanoutPoolSupervision:
    """Injected SIGKILLs: rebuild + re-enqueue, quarantine true killers.

    ``fork`` start method so the children inherit this test module
    without import-path gymnastics; the supervision code is start-method
    agnostic.
    """

    def test_killed_child_recovers_on_the_clean_reattempt(self):
        policy = ChaosPolicy(kill_rate=1.0, only_indices=(0,), max_attempt=1)
        pool = FanoutPool(
            n_jobs=2,
            retries=1,
            mp_context="fork",
            retry_policy=RetryPolicy(backoff_base=0.0),
        )
        with activate(policy):
            outcomes = pool.run(_double, [1, 2, 3])
        assert [o.payload for o in outcomes] == [2, 4, 6]
        assert all(o.succeeded for o in outcomes)
        assert pool.last_rebuilds >= 1

    def test_always_killing_item_is_quarantined_not_looped(self):
        # max_attempt=99: item 0 kills every pool it touches, including
        # its solo retrial — proof of guilt, quarantined as poison.
        policy = ChaosPolicy(kill_rate=1.0, only_indices=(0,), max_attempt=99)
        pool = FanoutPool(
            n_jobs=2,
            retries=0,
            mp_context="fork",
            retry_policy=RetryPolicy(backoff_base=0.0),
        )
        with activate(policy):
            outcomes = pool.run(_double, [1, 2, 3])
        assert not outcomes[0].succeeded
        assert outcomes[0].kind == "poison"
        assert "quarantined" in outcomes[0].error
        # The bystanders were re-run to completion, not lost.
        assert [o.payload for o in outcomes[1:]] == [4, 6]
        assert pool.last_rebuilds >= 3  # two shared breaks + the solo one

    def test_injected_raise_consumes_a_retry(self):
        policy = ChaosPolicy(raise_rate=1.0, only_indices=(1,), max_attempt=1)
        pool = FanoutPool(
            n_jobs=2,
            retries=1,
            mp_context="fork",
            retry_policy=RetryPolicy(backoff_base=0.0),
        )
        with activate(policy):
            outcomes = pool.run(_double, [1, 2, 3])
        assert [o.payload for o in outcomes] == [2, 4, 6]
        assert outcomes[1].attempts == 2
        assert pool.last_rebuilds == 0  # a raise never breaks the pool


class TestCampaign:
    def test_raise_only_campaign_passes_and_counts_recoveries(self, tmp_path):
        from repro.chaos import run_campaign

        report = run_campaign(
            seed=0,
            sweeps=1,
            n_jobs=2,
            kill_rate=0.0,
            hang_rate=0.0,
            raise_rate=1.0,
            attach_exit_rate=0.0,
            timeout=60.0,
            workdir=tmp_path,
            approaches=("RAND", "GT"),
            values=(30,),
            mp_context="fork",
        )
        assert report.ok
        assert report.parity == [True]
        assert report.resume_parity == [True]
        assert report.failed_cells == 0
        assert report.retried_cells == 2  # every cell raised once
        assert report.journal_recovered_lines >= 1  # the torn-tail drill
        payload = report.to_dict()
        assert payload["ok"] is True
        assert payload["cells_per_sweep"] == 2

    def test_report_rendering(self):
        from repro.chaos import ChaosCampaignReport
        from repro.experiments.reporting import format_chaos_report

        good = ChaosCampaignReport(
            seed=0, sweeps=1, cells_per_sweep=4,
            parity=[True], resume_parity=[True], retried_cells=3,
        )
        text = format_chaos_report(good)
        assert "chaos campaign PASS" in text
        assert "3 retried cell(s)" in text
        bad = ChaosCampaignReport(
            seed=0, sweeps=1, cells_per_sweep=4,
            parity=[False], resume_parity=[True],
            leaked_segments=["psm_dead"],
        )
        text = format_chaos_report(bad)
        assert "chaos campaign FAIL" in text
        assert "MISMATCH" in text
        assert "LEAKED" in text and "psm_dead" in text


class TestChaosCli:
    def test_reap_subcommand(self, capsys, monkeypatch, tmp_path):
        from repro.cli import main

        monkeypatch.setenv("REPRO_SHM_REGISTRY", str(tmp_path))
        assert main(["chaos", "--reap"]) == 0
        out = capsys.readouterr().out
        assert "scanned 0 registered segment(s)" in out
