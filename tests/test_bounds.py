"""Tests for the Lemma V.2/V.3 bounds and the Equation 9 UPPER bound."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    highest_average_quality,
    lowest_average_quality,
    price_of_anarchy_lower_bound,
    task_upper_bound,
    upper_bound,
)
from repro.core.game import solve_game_theoretic
from repro.core.quality import CooperationMatrix
from repro.core.revenue import worker_average_quality
from repro.core.tpg import solve_tpg, solve_tpg_with_stats
from repro.core.validity import compute_valid_pairs
from repro.datasets.synthetic import generate_instance

from tests.conftest import make_dense_instance


class TestWorkerBounds:
    def test_q_hat_mean_of_top(self):
        q = np.array(
            [
                [0, 0.9, 0.1, 0.5],
                [0.9, 0, 0.2, 0.3],
                [0.1, 0.2, 0, 0.8],
                [0.5, 0.3, 0.8, 0],
            ]
        )
        matrix = CooperationMatrix(q)
        assert highest_average_quality(matrix, 0, 3) == pytest.approx(0.7)
        assert lowest_average_quality(matrix, 0, 3) == pytest.approx(0.3)

    def test_single_worker_matrix(self):
        matrix = CooperationMatrix(np.zeros((1, 1)))
        assert highest_average_quality(matrix, 0, 3) == 0.0
        assert lowest_average_quality(matrix, 0, 3) == 0.0

    @settings(max_examples=40, deadline=None)
    @given(st.integers(4, 12), st.integers(3, 5), st.integers(0, 10**6))
    def test_lemma_v2_v3_sandwich(self, size, min_group, seed):
        """Any group average lies between q_check and q_hat."""
        rng = np.random.default_rng(seed)
        matrix = CooperationMatrix.random_uniform(size, seed=seed)
        min_group = min(min_group, size)
        group_size = int(rng.integers(min_group, size + 1))
        members = rng.permutation(size)[:group_size].tolist()
        worker = members[0]
        average = worker_average_quality(
            matrix, worker, members, capacity=group_size
        )
        assert average <= highest_average_quality(matrix, worker, min_group) + 1e-9
        assert average >= lowest_average_quality(matrix, worker, min_group) - 1e-9

    @given(st.integers(2, 10), st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_check_below_hat(self, size, seed):
        matrix = CooperationMatrix.random_uniform(size, seed=seed)
        for worker in range(size):
            assert lowest_average_quality(matrix, worker, 3) <= (
                highest_average_quality(matrix, worker, 3) + 1e-12
            )


class TestUpperBound:
    def test_upper_dominates_all_solvers(self):
        for seed in range(5):
            instance = make_dense_instance(30, 6, seed=seed)
            pairs = compute_valid_pairs(instance)
            bound = upper_bound(instance, pairs)
            assert solve_tpg(instance, pairs).total_score() <= bound.value + 1e-9
            assert (
                solve_game_theoretic(instance, pairs).final_score
                <= bound.value + 1e-9
            )

    def test_value_is_min_of_sides(self):
        instance = make_dense_instance(20, 4, seed=1)
        bound = upper_bound(instance)
        assert bound.value == pytest.approx(min(bound.task_side, bound.worker_side))

    def test_task_without_enough_workers_contributes_zero(self):
        instance = generate_instance(
            6, 2, radius_range=(0.0001, 0.0002), seed=2
        )
        pairs = compute_valid_pairs(instance)
        bound = upper_bound(instance, pairs)
        if pairs.pair_count == 0:
            assert bound.value == 0.0

    def test_task_upper_bound_respects_capacity(self):
        instance = make_dense_instance(20, 3, capacity=3, seed=3)
        pairs = compute_valid_pairs(instance)
        bound = upper_bound(instance, pairs)
        q_hat = bound.q_hat
        for task in range(instance.task_count):
            value = task_upper_bound(instance, task, pairs, q_hat)
            workers = pairs.workers_for_task[task]
            if len(workers) >= instance.min_group_size:
                top = sorted((q_hat[w] for w in workers), reverse=True)[:3]
                assert value == pytest.approx(sum(top))

    def test_empty_instance(self):
        instance = generate_instance(0, 0, seed=0)
        assert upper_bound(instance).value == 0.0


class TestPriceOfAnarchy:
    def test_poa_bound_in_unit_interval_when_sensible(self):
        instance = make_dense_instance(30, 5, seed=4)
        pairs = compute_valid_pairs(instance)
        bound = upper_bound(instance, pairs)
        stats = solve_tpg_with_stats(instance, pairs)
        poa = price_of_anarchy_lower_bound(instance, stats.seeded_tasks, bound)
        assert poa >= 0.0

    def test_poa_zero_on_empty(self):
        instance = generate_instance(0, 0, seed=0)
        bound = upper_bound(instance)
        assert price_of_anarchy_lower_bound(instance, 0, bound) == 0.0

    def test_gt_score_between_poa_bound_and_upper(self):
        """Theorem V.2 instantiated: N_init * B * q_check <= GT score <= UPPER."""
        instance = make_dense_instance(40, 6, seed=5)
        pairs = compute_valid_pairs(instance)
        bound = upper_bound(instance, pairs)
        result = solve_game_theoretic(instance, pairs)
        q_check_min = float(bound.q_check.min())
        lower = result.seeded_tasks * instance.min_group_size * q_check_min
        assert lower - 1e-9 <= result.final_score <= bound.value + 1e-9
