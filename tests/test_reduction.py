"""Tests for the executable Theorem II.1 reduction (k-set packing)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exact import solve_exact
from repro.core.reduction import (
    KSetPackingInstance,
    reduce_k_set_packing,
    solve_k_set_packing,
)
from repro.utils.errors import InvalidInstanceError


def make_random_ksp(rng, universe=9, subset_size=3, subset_count=5):
    """Random pair-disjoint exact-size k-SP instance."""
    used_pairs: set[tuple[int, int]] = set()
    subsets: list[frozenset[int]] = []
    attempts = 0
    while len(subsets) < subset_count and attempts < 200:
        attempts += 1
        candidate = frozenset(
            rng.choice(universe, size=subset_size, replace=False).tolist()
        )
        pairs = {
            tuple(sorted(p))
            for p in __import__("itertools").combinations(candidate, 2)
        }
        if pairs & used_pairs or candidate in subsets:
            continue
        used_pairs |= pairs
        subsets.append(candidate)
    weights = tuple(float(rng.uniform(0.5, 3.0)) for _ in subsets)
    return KSetPackingInstance(
        universe=universe, subsets=tuple(subsets), weights=weights, k=subset_size
    )


class TestKSPModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            KSetPackingInstance(2, (frozenset(),), (1.0,), k=2)
        with pytest.raises(ValueError):
            KSetPackingInstance(2, (frozenset({0, 1}),), (1.0,), k=1)
        with pytest.raises(ValueError):
            KSetPackingInstance(2, (frozenset({0, 5}),), (1.0,), k=2)
        with pytest.raises(ValueError):
            KSetPackingInstance(2, (frozenset({0, 1}),), (-1.0,), k=2)
        with pytest.raises(ValueError):
            KSetPackingInstance(2, (frozenset({0, 1}),), (1.0, 2.0), k=2)

    def test_pair_disjoint_detection(self):
        overlapping = KSetPackingInstance(
            4,
            (frozenset({0, 1, 2}), frozenset({0, 1, 3})),
            (1.0, 1.0),
            k=3,
        )
        assert not overlapping.is_pair_disjoint()
        disjoint = KSetPackingInstance(
            5,
            (frozenset({0, 1, 2}), frozenset({0, 3, 4})),
            (1.0, 1.0),
            k=3,
        )
        assert disjoint.is_pair_disjoint()


class TestKSPSolver:
    def test_simple(self):
        ksp = KSetPackingInstance(
            4,
            (frozenset({0, 1}), frozenset({2, 3}), frozenset({1, 2})),
            (1.0, 1.0, 1.5),
            k=2,
        )
        chosen, value = solve_k_set_packing(ksp)
        assert value == pytest.approx(2.0)
        assert chosen == [0, 1]

    def test_single_heavy_wins(self):
        ksp = KSetPackingInstance(
            4,
            (frozenset({0, 1}), frozenset({2, 3}), frozenset({1, 2})),
            (1.0, 1.0, 5.0),
            k=2,
        )
        chosen, value = solve_k_set_packing(ksp)
        assert value == pytest.approx(5.0)
        assert chosen == [2]


class TestReduction:
    def test_rejects_shared_pairs(self):
        ksp = KSetPackingInstance(
            4,
            (frozenset({0, 1, 2}), frozenset({0, 1, 3})),
            (1.0, 1.0),
            k=3,
        )
        with pytest.raises(InvalidInstanceError):
            reduce_k_set_packing(ksp)

    def test_rejects_mixed_sizes(self):
        ksp = KSetPackingInstance(
            5,
            (frozenset({0, 1, 2}), frozenset({3, 4})),
            (1.0, 1.0),
            k=3,
        )
        with pytest.raises(InvalidInstanceError):
            reduce_k_set_packing(ksp)

    def test_full_subset_revenue_equals_weight(self):
        from repro.core.revenue import group_revenue

        ksp = KSetPackingInstance(
            6,
            (frozenset({0, 1, 2}), frozenset({3, 4, 5})),
            (2.0, 1.0),
            k=3,
        )
        instance, valid, scale = reduce_k_set_packing(ksp)
        for j, subset in enumerate(ksp.subsets):
            revenue = group_revenue(
                instance.quality,
                sorted(subset),
                instance.tasks[j].capacity,
                instance.min_group_size,
            )
            assert revenue == pytest.approx(scale * ksp.weights[j])

    def test_validity_mirrors_membership(self):
        ksp = KSetPackingInstance(
            5,
            (frozenset({0, 1, 2}), frozenset({0, 3, 4})),
            (1.0, 1.0),
            k=3,
        )
        _, valid, _ = reduce_k_set_packing(ksp)
        assert valid.tasks_for_worker[0] == (0, 1)
        assert valid.tasks_for_worker[1] == (0,)
        assert valid.tasks_for_worker[3] == (1,)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10**6))
    def test_property_casc_optimum_equals_packing_optimum(self, seed):
        """The heart of Theorem II.1: solving the reduced CA-SC instance
        exactly yields the k-SP optimum (scaled)."""
        rng = np.random.default_rng(seed)
        ksp = make_random_ksp(rng, universe=8, subset_size=3, subset_count=4)
        if not ksp.subsets:
            return
        instance, valid, scale = reduce_k_set_packing(ksp)
        _, packing_value = solve_k_set_packing(ksp)
        casc_value = solve_exact(instance, valid).total_score()
        assert casc_value == pytest.approx(scale * packing_value, abs=1e-9)
