"""Tests for the from-scratch R-tree: correctness vs brute force,
structural invariants, bulk loading, deletion, and kNN."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial.geometry import BoundingBox, Point
from repro.spatial.rtree import RTree


def brute_circle(points, center, radius):
    return sorted(
        item for item, p in points if p.distance_to(center) <= radius
    )


def brute_box(points, box):
    return sorted(item for item, p in points if box.contains_point(p))


def random_points(rng, count):
    xy = rng.uniform(0, 1, size=(count, 2))
    return [(i, Point(float(x), float(y))) for i, (x, y) in enumerate(xy)]


class TestConstruction:
    def test_empty_tree(self):
        tree = RTree()
        assert len(tree) == 0
        assert tree.query_circle(Point(0, 0), 10) == []
        assert tree.query_box(BoundingBox(0, 0, 1, 1)) == []
        assert tree.nearest(Point(0, 0), 3) == []

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            RTree(max_entries=1)
        with pytest.raises(ValueError):
            RTree(max_entries=8, min_entries=5)

    def test_insert_and_len(self):
        tree = RTree(max_entries=4)
        for i in range(20):
            tree.insert(i, Point(i * 0.05, i * 0.05))
        assert len(tree) == 20
        tree.check_invariants()

    def test_duplicates_allowed(self):
        tree = RTree()
        tree.insert("a", Point(0.5, 0.5))
        tree.insert("b", Point(0.5, 0.5))
        assert sorted(tree.query_circle(Point(0.5, 0.5), 0.0)) == ["a", "b"]

    def test_bulk_load_sizes(self):
        rng = np.random.default_rng(1)
        for count in (0, 1, 7, 8, 9, 64, 200):
            points = random_points(rng, count)
            tree = RTree.bulk_load(points, max_entries=8)
            assert len(tree) == count
            tree.check_invariants()
            assert sorted(item for item, _ in tree) == list(range(count))

    def test_bulk_load_is_shallower_than_insertion(self):
        rng = np.random.default_rng(2)
        points = random_points(rng, 500)
        bulk = RTree.bulk_load(points, max_entries=8)
        grown = RTree(max_entries=8)
        for item, point in points:
            grown.insert(item, point)
        assert bulk.height <= grown.height


class TestQueries:
    @pytest.mark.parametrize("count", [5, 40, 300])
    @pytest.mark.parametrize("loader", ["insert", "bulk"])
    def test_circle_query_matches_brute_force(self, count, loader):
        rng = np.random.default_rng(count)
        points = random_points(rng, count)
        if loader == "bulk":
            tree = RTree.bulk_load(points, max_entries=6)
        else:
            tree = RTree(max_entries=6)
            for item, point in points:
                tree.insert(item, point)
        for _ in range(25):
            center = Point(*rng.uniform(0, 1, size=2))
            radius = float(rng.uniform(0, 0.5))
            assert sorted(tree.query_circle(center, radius)) == brute_circle(
                points, center, radius
            )

    def test_box_query_matches_brute_force(self):
        rng = np.random.default_rng(9)
        points = random_points(rng, 200)
        tree = RTree.bulk_load(points)
        for _ in range(25):
            x1, x2 = sorted(rng.uniform(0, 1, size=2))
            y1, y2 = sorted(rng.uniform(0, 1, size=2))
            box = BoundingBox(x1, y1, x2, y2)
            assert sorted(tree.query_box(box)) == brute_box(points, box)

    def test_negative_radius_rejected(self):
        tree = RTree()
        with pytest.raises(ValueError):
            tree.query_circle(Point(0, 0), -0.1)

    def test_nearest_matches_brute_force(self):
        rng = np.random.default_rng(4)
        points = random_points(rng, 120)
        tree = RTree.bulk_load(points)
        for _ in range(20):
            center = Point(*rng.uniform(0, 1, size=2))
            k = int(rng.integers(1, 10))
            result = tree.nearest(center, k)
            assert len(result) == k
            expected = sorted(p.distance_to(center) for _, p in points)[:k]
            assert [d for _, d in result] == pytest.approx(expected)

    def test_nearest_k_zero(self):
        tree = RTree.bulk_load([(0, Point(0, 0))])
        assert tree.nearest(Point(0, 0), 0) == []

    def test_nearest_k_exceeds_size(self):
        tree = RTree.bulk_load([(i, Point(i, 0)) for i in range(3)])
        assert len(tree.nearest(Point(0, 0), 10)) == 3


class TestDeletion:
    def test_delete_missing_returns_false(self):
        tree = RTree.bulk_load([(0, Point(0.1, 0.1))])
        assert not tree.delete(0, Point(0.9, 0.9))
        assert not tree.delete(1, Point(0.1, 0.1))
        assert len(tree) == 1

    def test_delete_then_query(self):
        rng = np.random.default_rng(5)
        points = random_points(rng, 100)
        tree = RTree.bulk_load(points, max_entries=5)
        removed = set()
        for item, point in points[::3]:
            assert tree.delete(item, point)
            removed.add(item)
            tree.check_invariants()
        assert len(tree) == 100 - len(removed)
        remaining = [(i, p) for i, p in points if i not in removed]
        center = Point(0.5, 0.5)
        assert sorted(tree.query_circle(center, 0.4)) == brute_circle(
            remaining, center, 0.4
        )

    def test_delete_everything(self):
        rng = np.random.default_rng(6)
        points = random_points(rng, 60)
        tree = RTree(max_entries=4)
        for item, point in points:
            tree.insert(item, point)
        for item, point in points:
            assert tree.delete(item, point)
        assert len(tree) == 0
        assert tree.query_circle(Point(0.5, 0.5), 1.0) == []


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(0, 1, allow_nan=False), st.floats(0, 1, allow_nan=False)
        ),
        min_size=0,
        max_size=80,
    ),
    st.integers(0, 2**31),
)
def test_property_mixed_workload(point_list, seed):
    """Random insert/query/delete workload agrees with brute force."""
    rng = np.random.default_rng(seed)
    tree = RTree(max_entries=4)
    alive: list[tuple[int, Point]] = []
    for i, (x, y) in enumerate(point_list):
        tree.insert(i, Point(x, y))
        alive.append((i, Point(x, y)))
        if rng.random() < 0.2 and alive:
            victim = alive.pop(int(rng.integers(len(alive))))
            assert tree.delete(*victim)
    tree.check_invariants()
    center = Point(float(rng.uniform(0, 1)), float(rng.uniform(0, 1)))
    radius = float(rng.uniform(0, math.sqrt(2)))
    assert sorted(tree.query_circle(center, radius)) == brute_circle(
        alive, center, radius
    )
