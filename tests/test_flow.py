"""Tests for the flow substrate: network bookkeeping, Dinic vs the
networkx oracle, min-cut certification, and the bipartite helper."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flow.bipartite import max_bipartite_assignment
from repro.flow.dinic import max_flow
from repro.flow.graph import FlowNetwork


class TestFlowNetwork:
    def test_bad_node_count(self):
        with pytest.raises(ValueError):
            FlowNetwork(0)

    def test_add_edge_validation(self):
        net = FlowNetwork(2)
        with pytest.raises(ValueError):
            net.add_edge(0, 5, 1)
        with pytest.raises(ValueError):
            net.add_edge(0, 1, -1)
        with pytest.raises(ValueError):
            net.add_edge(0, 1, 1.5)

    def test_add_node(self):
        net = FlowNetwork(1)
        new = net.add_node()
        assert new == 1
        net.add_edge(0, 1, 3)  # must not raise

    def test_residual_twins(self):
        net = FlowNetwork(2)
        index = net.add_edge(0, 1, 5)
        forward = net.edges[index]
        backward = net.edges[forward.reverse_index]
        assert backward.capacity == 0
        assert backward.head == 0
        assert net.edges[backward.reverse_index] is forward

    def test_outgoing_excludes_twins(self):
        net = FlowNetwork(3)
        net.add_edge(0, 1, 1)
        net.add_edge(1, 2, 1)
        assert [e.head for e in net.outgoing(1)] == [2]

    def test_reset_flow(self):
        net = FlowNetwork(2)
        net.add_edge(0, 1, 1)
        max_flow(net, 0, 1)
        assert net.edges[0].flow == 1
        net.reset_flow()
        assert all(edge.flow == 0 for edge in net.edges)


class TestDinicSmall:
    def test_single_edge(self):
        net = FlowNetwork(2)
        net.add_edge(0, 1, 7)
        assert max_flow(net, 0, 1).value == 7

    def test_source_equals_sink(self):
        net = FlowNetwork(2)
        with pytest.raises(ValueError):
            max_flow(net, 0, 0)

    def test_disconnected(self):
        net = FlowNetwork(3)
        net.add_edge(0, 1, 4)
        assert max_flow(net, 0, 2).value == 0

    def test_classic_diamond(self):
        # source 0, sink 3; two paths sharing nothing.
        net = FlowNetwork(4)
        net.add_edge(0, 1, 3)
        net.add_edge(0, 2, 2)
        net.add_edge(1, 3, 2)
        net.add_edge(2, 3, 3)
        assert max_flow(net, 0, 3).value == 4

    def test_needs_residual_reversal(self):
        # Greedy augmentation down the middle edge must be undone.
        net = FlowNetwork(4)
        net.add_edge(0, 1, 1)
        net.add_edge(0, 2, 1)
        net.add_edge(1, 2, 1)
        net.add_edge(1, 3, 1)
        net.add_edge(2, 3, 1)
        assert max_flow(net, 0, 3).value == 2

    def test_conservation_checked(self):
        net = FlowNetwork(4)
        net.add_edge(0, 1, 3)
        net.add_edge(1, 2, 2)
        net.add_edge(2, 3, 5)
        max_flow(net, 0, 3)
        net.check_conservation(0, 3)

    def test_min_cut_certifies_value(self):
        net = FlowNetwork(4)
        edges = [(0, 1, 3), (0, 2, 2), (1, 3, 2), (2, 3, 3), (1, 2, 1)]
        for tail, head, cap in edges:
            net.add_edge(tail, head, cap)
        result = max_flow(net, 0, 3)
        cut = result.min_cut_source_side
        assert 0 in cut and 3 not in cut
        cut_capacity = sum(
            cap for tail, head, cap in edges if tail in cut and head not in cut
        )
        assert cut_capacity == result.value


def random_network(rng, node_count, edge_count, max_capacity=10):
    net = FlowNetwork(node_count)
    graph = nx.DiGraph()
    graph.add_nodes_from(range(node_count))
    for _ in range(edge_count):
        tail, head = rng.integers(0, node_count, size=2)
        if tail == head:
            continue
        capacity = int(rng.integers(1, max_capacity + 1))
        net.add_edge(int(tail), int(head), capacity)
        if graph.has_edge(int(tail), int(head)):
            graph[int(tail)][int(head)]["capacity"] += capacity
        else:
            graph.add_edge(int(tail), int(head), capacity=capacity)
    return net, graph


@settings(max_examples=60, deadline=None)
@given(
    st.integers(2, 12),
    st.integers(0, 40),
    st.integers(0, 2**31),
)
def test_dinic_matches_networkx(node_count, edge_count, seed):
    rng = np.random.default_rng(seed)
    net, graph = random_network(rng, node_count, edge_count)
    source, sink = 0, node_count - 1
    expected = nx.maximum_flow_value(graph, source, sink) if graph.edges else 0
    result = max_flow(net, source, sink)
    assert result.value == expected
    net.check_conservation(source, sink)
    # Every forward edge respects its capacity; every flow non-negative.
    for edge in net.edges:
        if edge.is_forward:
            assert 0 <= edge.flow <= edge.capacity


class TestBipartite:
    def test_validation(self):
        with pytest.raises(ValueError):
            max_bipartite_assignment(2, 1, [[0]], [1])
        with pytest.raises(ValueError):
            max_bipartite_assignment(1, 1, [[0]], [1, 2])
        with pytest.raises(ValueError):
            max_bipartite_assignment(1, 1, [[3]], [1])

    def test_simple(self):
        assignment, value = max_bipartite_assignment(2, 1, [[0], [0]], [1])
        assert value == 1
        assert len(assignment) == 1

    def test_capacities_respected(self):
        assignment, value = max_bipartite_assignment(
            5, 2, [[0, 1]] * 5, [2, 2]
        )
        assert value == 4
        counts = {0: 0, 1: 0}
        for task in assignment.values():
            counts[task] += 1
        assert counts == {0: 2, 1: 2}

    def test_matches_networkx_on_random_bipartite(self):
        rng = np.random.default_rng(7)
        for _ in range(15):
            workers = int(rng.integers(1, 12))
            tasks = int(rng.integers(1, 6))
            capacities = rng.integers(1, 4, size=tasks).tolist()
            valid = [
                sorted(
                    set(
                        rng.integers(0, tasks, size=rng.integers(0, tasks + 1))
                        .tolist()
                    )
                )
                for _ in range(workers)
            ]
            assignment, value = max_bipartite_assignment(
                workers, tasks, valid, capacities
            )
            graph = nx.DiGraph()
            graph.add_node("s")
            graph.add_node("t")
            for w in range(workers):
                graph.add_edge("s", f"w{w}", capacity=1)
                for task in valid[w]:
                    graph.add_edge(f"w{w}", f"t{task}", capacity=1)
            for task in range(tasks):
                graph.add_edge(f"t{task}", "t", capacity=capacities[task])
            expected = (
                nx.maximum_flow_value(graph, "s", "t")
                if graph.has_node("t") and graph.out_degree("s")
                else 0
            )
            assert value == expected
            # Assignment is consistent with the declared validity.
            for worker, task in assignment.items():
                assert task in valid[worker]
