"""Kernel parity suite — ``python`` vs ``native`` must be repr-identical.

The contract under test (``repro.core.kernels`` module docstring): the
choice of best-response kernel never changes an assignment — not its
pairs, not its score repr, not its string form — on any quality-store
backend, with or without numba installed. The suite runs in full on
both configurations: when numba is absent the ``native`` kernel
exercises the numpy fallback (and the counters prove which path ran);
the numba-specific compile test skips gracefully.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.audit.corpus import load_corpus_entry
from repro.audit.fuzzer import _KERNEL_SHAPES, fuzz_instance
from repro.core.fallback import FallbackSolver
from repro.core.kernels import (
    DEFAULT_KERNEL,
    KERNELS,
    NUMBA_AVAILABLE,
    PAIRWISE_CLIFF,
    KernelBuffers,
    counted_subset_select,
    gather_block,
    ordered_row_sums,
    resolve_kernel,
    segment_sums_ordered,
    verify_pairwise_cliff,
)
from repro.core.model import Instance
from repro.core.quality_store import (
    SharedDenseQualityStore,
    SparseQualityStore,
)
from repro.core.stats import SolverStats
from repro.core.validity import compute_valid_pairs
from repro.experiments.config import make_solver
from tests.conftest import make_dense_instance

CORPUS_DIR = "tests/data/audit_corpus"
BACKENDS = ("dense", "sparse", "shared")
#: All three dispatch through the kernel under ``native``: the GT family
#: via prepass/rescan gain scoring, TPG via the stage-1 group kernel.
PARITY_APPROACHES = ("GT", "GT+ALL", "TPG")


def _with_backend(instance: Instance, backend: str):
    """``(instance on backend, cleanup-or-None)`` — audit-runner idiom."""
    dense = instance.quality.to_dense()
    if backend == "dense":
        return instance, None
    if backend == "sparse":
        store = SparseQualityStore.from_dense(dense, prior=0.0)
    else:
        store = SharedDenseQualityStore.create(dense)
    swapped = Instance(
        workers=instance.workers,
        tasks=instance.tasks,
        quality=store,
        min_group_size=instance.min_group_size,
        now=instance.now,
    )
    if backend == "shared":
        def cleanup() -> None:
            store.close()
            store.unlink()

        return swapped, cleanup
    return swapped, None


def _signature(assignment) -> tuple:
    return (
        tuple(assignment.to_pairs()),
        repr(assignment.total_score()),
        repr(assignment),
    )


def _solve(instance, approach: str, kernel: str):
    pairs = compute_valid_pairs(instance)
    solver = make_solver(approach, epsilon=0.01, seed=5, kernel=kernel)
    assignment = solver(instance, pairs)
    log = getattr(solver, "stats_log", None)
    stats = SolverStats.merged(log) if log else None
    return _signature(assignment), stats


class TestResolveKernel:
    def test_known_names_pass_through(self):
        for name in KERNELS:
            assert resolve_kernel(name) == name
        assert DEFAULT_KERNEL in KERNELS

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            resolve_kernel("fortran")


class TestSegmentSumsOrdered:
    def test_matches_sequential_python_sum_bitwise(self):
        rng = np.random.default_rng(9)
        values = rng.uniform(0.0, 1.0, size=64)
        lengths = np.array([0, 1, 2, 3, 7, 8, 9, 16, 18], dtype=np.intp)
        starts = np.zeros_like(lengths)
        np.cumsum(lengths[:-1], out=starts[1:])
        sums = segment_sums_ordered(values, starts, lengths)
        for i, (start, length) in enumerate(zip(starts, lengths)):
            expected = 0.0
            for value in values[start : start + length]:
                expected = expected + float(value)
            assert repr(float(sums[i])) == repr(expected), f"segment {i}"

    def test_empty_input(self):
        empty = np.array([], dtype=np.intp)
        assert segment_sums_ordered(np.array([]), empty, empty).size == 0


class TestKernelBuffers:
    def test_dense_and_csr_agree(self, dense_instance):
        sparse = SparseQualityStore.from_dense(
            dense_instance.quality.to_dense(), prior=0.0
        )
        dense_buffers = dense_instance.quality.as_kernel_buffers()
        csr_buffers = sparse.as_kernel_buffers()
        assert dense_buffers.is_dense and not csr_buffers.is_dense
        size = dense_instance.worker_count
        assert dense_buffers.size == csr_buffers.size == size
        assert dense_buffers.dense.shape == (size, size)
        # Rebuild the dense matrix from the CSR key/value arrays.
        rebuilt = np.full((size, size), csr_buffers.prior)
        np.fill_diagonal(rebuilt, 0.0)
        rows, cols = np.divmod(csr_buffers.row_keys, size)
        rebuilt[rows, cols] = csr_buffers.row_values
        assert np.array_equal(rebuilt, dense_buffers.dense)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("approach", PARITY_APPROACHES)
class TestKernelParity:
    def test_native_matches_python_repr_exactly(self, approach, backend):
        base = make_dense_instance(30, 6, seed=2)
        instance, cleanup = _with_backend(base, backend)
        try:
            python_sig, _ = _solve(instance, approach, "python")
            native_sig, native_stats = _solve(instance, approach, "native")
        finally:
            if cleanup is not None:
                cleanup()
        assert native_sig == python_sig
        assert native_stats is not None
        ran = (
            native_stats.kernel_compiled_calls
            + native_stats.kernel_fallback_calls
        )
        assert ran > 0, "native solve never entered the kernel"
        if not NUMBA_AVAILABLE:
            assert native_stats.kernel_compiled_calls == 0


class TestFallbackChainParity:
    def test_budgetless_fallback_wrapper_is_kernel_invariant(self):
        instance = make_dense_instance(25, 5, seed=4)
        pairs = compute_valid_pairs(instance)
        signatures = []
        for kernel in KERNELS:
            primary = make_solver("GT+ALL", epsilon=0.01, seed=5, kernel=kernel)
            wrapped = FallbackSolver(primary, budget=None, label="GT+ALL")
            signatures.append(_signature(wrapped(instance, pairs)))
            assert not wrapped.degradation_log[-1].degraded
        assert signatures[0] == signatures[1]


class TestKernelBoundaryShapes:
    """The fuzzer's kernel-boundary layouts and their committed repros."""

    @pytest.mark.parametrize(
        "name",
        ["kernel_group8", "kernel_solo_worker", "kernel_zero_pairs"],
    )
    def test_corpus_entry_is_kernel_invariant(self, name):
        instance, metadata = load_corpus_entry(f"{CORPUS_DIR}/{name}.json")
        assert metadata["findings"] == []
        python_sig, _ = _solve(instance, "GT", "python")
        native_sig, _ = _solve(instance, "GT", "native")
        assert native_sig == python_sig

    def test_group8_saturates_vector_limit(self):
        from repro.core.game import _VECTOR_GROUP_LIMIT

        instance, _ = load_corpus_entry(f"{CORPUS_DIR}/kernel_group8.json")
        assert instance.worker_count == _VECTOR_GROUP_LIMIT + 1
        assert instance.tasks[0].capacity == _VECTOR_GROUP_LIMIT

    def test_fuzzer_emits_every_shape_deterministically(self):
        seen = {}
        for index in range(400):
            seed = (606, index)
            instance = fuzz_instance(seed)
            capacity = instance.tasks[0].capacity
            if instance.worker_count == 1:
                seen.setdefault("solo", seed)
            elif instance.task_count == 1 and (
                instance.worker_count,
                capacity,
            ) == (9, 8):
                seen.setdefault("group8", seed)
            elif instance.task_count == 1 and (
                instance.worker_count,
                capacity,
            ) == (9, 6):
                seen.setdefault("peelcliff", seed)
            elif instance.task_count == 1 and (
                instance.worker_count,
                capacity,
            ) == (9, 7):
                seen.setdefault("tiedpeel", seed)
            elif instance.task_count == 1 and instance.worker_count in (
                8,
                10,
            ) and capacity == instance.worker_count - 1:
                seen.setdefault("peelfit", seed)
            elif not any(compute_valid_pairs(instance).tasks_for_worker):
                seen.setdefault("nopairs", seed)
            if len(seen) == len(_KERNEL_SHAPES):
                break
        assert set(seen) == set(_KERNEL_SHAPES)
        for seed in seen.values():
            first = fuzz_instance(seed)
            second = fuzz_instance(seed)
            assert repr(first.workers) == repr(second.workers)
            assert repr(first.tasks) == repr(second.tasks)


class TestPairwiseCliff:
    """The peel kernel's bit-identity proof leans on numpy summing
    sequentially below 8 elements and block-pairwise at 8. These tests
    are the tripwire for a numpy release moving that threshold."""

    def test_real_numpy_matches_the_assumed_cliff(self):
        verify_pairwise_cliff()  # must not raise on the pinned numpy

    def test_cliff_constant_matches_the_oracle_limit(self):
        from repro.core.revenue import _VECTOR_PEEL_LIMIT

        assert PAIRWISE_CLIFF == _VECTOR_PEEL_LIMIT + 1 == 8

    def test_always_sequential_impostor_is_rejected(self):
        # A numpy whose sum stayed sequential at 8 elements would make
        # the scalar-branch replay diverge from the oracle.
        def sequential(values):
            total = 0.0
            for value in values:
                total = total + float(value)
            return total

        with pytest.raises(RuntimeError, match="_VECTOR_PEEL_LIMIT"):
            verify_pairwise_cliff(sum_func=sequential)

    def test_early_pairwise_impostor_is_rejected(self):
        # ... and one that went pairwise below 8 breaks the endgame.
        def pairwise(values):
            values = [float(v) for v in values]
            if len(values) == 1:
                return values[0]
            mid = (len(values) + 1) // 2
            return pairwise(values[:mid]) + pairwise(values[mid:])

        with pytest.raises(RuntimeError, match="_VECTOR_PEEL_LIMIT"):
            verify_pairwise_cliff(sum_func=pairwise)

    def test_ordered_row_sums_is_strictly_sequential(self):
        rng = np.random.default_rng(11)
        matrix = rng.uniform(0.0, 1.0, size=(9, 9))
        sums = ordered_row_sums(matrix)
        for row in range(9):
            expected = 0.0
            for value in matrix[row]:
                expected = expected + float(value)
            assert repr(float(sums[row])) == repr(expected)
        assert ordered_row_sums(np.empty((3, 0))).tolist() == [0.0] * 3


class TestGatherBlock:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_multi_row_gather_matches_dense_lookup(self, backend):
        base = make_dense_instance(24, 5, seed=7)
        instance, cleanup = _with_backend(base, backend)
        try:
            dense = base.quality.to_dense().values
            rng = np.random.default_rng(3)
            rows = rng.integers(0, 24, size=6)
            cols = rng.integers(0, 24, size=9)
            block = gather_block(
                instance.quality.as_kernel_buffers(), rows, cols
            )
            expected = dense[rows[:, None], cols].copy()
            expected[rows[:, None] == cols[None, :]] = 0.0
            assert np.array_equal(block, expected)
            # The store-level protocol method routes through the same path.
            assert np.array_equal(
                instance.quality.gather_rows(rows, cols), block
            )
        finally:
            if cleanup is not None:
                cleanup()

    def test_square_gather_matches_legacy_gather(self):
        base = make_dense_instance(20, 4, seed=8)
        sparse = SparseQualityStore.from_dense(
            base.quality.to_dense(), prior=0.25
        )
        index = np.array([1, 4, 9, 13, 17])
        assert np.array_equal(
            sparse.gather(index), sparse.gather_rows(index, index)
        )


class TestCountedSubsetSelectParity:
    """The peel kernel must reproduce the scalar oracle bit-for-bit at
    every kept size around the pairwise cliff, on every backend."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_peel_matches_oracle_across_the_cliff(self, backend):
        from repro.core.revenue import best_counted_subset

        base = make_dense_instance(16, 3, seed=9)
        instance, cleanup = _with_backend(base, backend)
        try:
            quality = instance.quality
            buffers = quality.as_kernel_buffers()
            rng = np.random.default_rng(4)
            for members_count in (7, 8, 9, 10, 12):
                members = sorted(
                    int(w)
                    for w in rng.choice(16, size=members_count, replace=False)
                )
                for size in range(members_count + 1):
                    oracle = best_counted_subset(quality, members, size)
                    kernel = counted_subset_select(buffers, members, size)
                    assert kernel == oracle, (backend, members_count, size)
        finally:
            if cleanup is not None:
                cleanup()

    def test_peel_boundary_shapes_are_kernel_invariant(self):
        from repro.audit.fuzzer import _kernel_boundary_instance

        for shape in ("peelcliff", "peelfit", "tiedpeel"):
            for seed in range(3):
                instance = _kernel_boundary_instance(
                    shape, np.random.default_rng(seed)
                )
                python_sig, _ = _solve(instance, "GT", "python")
                native_sig, stats = _solve(instance, "GT", "native")
                assert native_sig == python_sig, (shape, seed)

    def test_native_gt_counts_peel_dispatches_on_overflow(self):
        from repro.audit.fuzzer import _kernel_boundary_instance

        instance = _kernel_boundary_instance(
            "tiedpeel", np.random.default_rng(0)
        )
        _, python_stats = _solve(instance, "GT", "python")
        _, native_stats = _solve(instance, "GT", "native")
        assert python_stats.peel_kernel_calls == 0
        assert native_stats.peel_kernel_calls > 0


@pytest.mark.skipif(not NUMBA_AVAILABLE, reason="numba not installed")
class TestCompiledKernels:
    def test_compiled_path_reports_compiled_calls(self):
        instance = make_dense_instance(20, 4, seed=6)
        _, stats = _solve(instance, "GT", "native")
        assert stats is not None and stats.kernel_compiled_calls > 0
        assert stats.kernel_fallback_calls == 0
