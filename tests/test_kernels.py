"""Kernel parity suite — ``python`` vs ``native`` must be repr-identical.

The contract under test (``repro.core.kernels`` module docstring): the
choice of best-response kernel never changes an assignment — not its
pairs, not its score repr, not its string form — on any quality-store
backend, with or without numba installed. The suite runs in full on
both configurations: when numba is absent the ``native`` kernel
exercises the numpy fallback (and the counters prove which path ran);
the numba-specific compile test skips gracefully.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.audit.corpus import load_corpus_entry
from repro.audit.fuzzer import _KERNEL_SHAPES, fuzz_instance
from repro.core.fallback import FallbackSolver
from repro.core.kernels import (
    DEFAULT_KERNEL,
    KERNELS,
    NUMBA_AVAILABLE,
    KernelBuffers,
    resolve_kernel,
    segment_sums_ordered,
)
from repro.core.model import Instance
from repro.core.quality_store import (
    SharedDenseQualityStore,
    SparseQualityStore,
)
from repro.core.stats import SolverStats
from repro.core.validity import compute_valid_pairs
from repro.experiments.config import make_solver
from tests.conftest import make_dense_instance

CORPUS_DIR = "tests/data/audit_corpus"
BACKENDS = ("dense", "sparse", "shared")
#: All three dispatch through the kernel under ``native``: the GT family
#: via prepass/rescan gain scoring, TPG via the stage-1 group kernel.
PARITY_APPROACHES = ("GT", "GT+ALL", "TPG")


def _with_backend(instance: Instance, backend: str):
    """``(instance on backend, cleanup-or-None)`` — audit-runner idiom."""
    dense = instance.quality.to_dense()
    if backend == "dense":
        return instance, None
    if backend == "sparse":
        store = SparseQualityStore.from_dense(dense, prior=0.0)
    else:
        store = SharedDenseQualityStore.create(dense)
    swapped = Instance(
        workers=instance.workers,
        tasks=instance.tasks,
        quality=store,
        min_group_size=instance.min_group_size,
        now=instance.now,
    )
    if backend == "shared":
        def cleanup() -> None:
            store.close()
            store.unlink()

        return swapped, cleanup
    return swapped, None


def _signature(assignment) -> tuple:
    return (
        tuple(assignment.to_pairs()),
        repr(assignment.total_score()),
        repr(assignment),
    )


def _solve(instance, approach: str, kernel: str):
    pairs = compute_valid_pairs(instance)
    solver = make_solver(approach, epsilon=0.01, seed=5, kernel=kernel)
    assignment = solver(instance, pairs)
    log = getattr(solver, "stats_log", None)
    stats = SolverStats.merged(log) if log else None
    return _signature(assignment), stats


class TestResolveKernel:
    def test_known_names_pass_through(self):
        for name in KERNELS:
            assert resolve_kernel(name) == name
        assert DEFAULT_KERNEL in KERNELS

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            resolve_kernel("fortran")


class TestSegmentSumsOrdered:
    def test_matches_sequential_python_sum_bitwise(self):
        rng = np.random.default_rng(9)
        values = rng.uniform(0.0, 1.0, size=64)
        lengths = np.array([0, 1, 2, 3, 7, 8, 9, 16, 18], dtype=np.intp)
        starts = np.zeros_like(lengths)
        np.cumsum(lengths[:-1], out=starts[1:])
        sums = segment_sums_ordered(values, starts, lengths)
        for i, (start, length) in enumerate(zip(starts, lengths)):
            expected = 0.0
            for value in values[start : start + length]:
                expected = expected + float(value)
            assert repr(float(sums[i])) == repr(expected), f"segment {i}"

    def test_empty_input(self):
        empty = np.array([], dtype=np.intp)
        assert segment_sums_ordered(np.array([]), empty, empty).size == 0


class TestKernelBuffers:
    def test_dense_and_csr_agree(self, dense_instance):
        sparse = SparseQualityStore.from_dense(
            dense_instance.quality.to_dense(), prior=0.0
        )
        dense_buffers = dense_instance.quality.as_kernel_buffers()
        csr_buffers = sparse.as_kernel_buffers()
        assert dense_buffers.is_dense and not csr_buffers.is_dense
        size = dense_instance.worker_count
        assert dense_buffers.size == csr_buffers.size == size
        assert dense_buffers.dense.shape == (size, size)
        # Rebuild the dense matrix from the CSR key/value arrays.
        rebuilt = np.full((size, size), csr_buffers.prior)
        np.fill_diagonal(rebuilt, 0.0)
        rows, cols = np.divmod(csr_buffers.row_keys, size)
        rebuilt[rows, cols] = csr_buffers.row_values
        assert np.array_equal(rebuilt, dense_buffers.dense)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("approach", PARITY_APPROACHES)
class TestKernelParity:
    def test_native_matches_python_repr_exactly(self, approach, backend):
        base = make_dense_instance(30, 6, seed=2)
        instance, cleanup = _with_backend(base, backend)
        try:
            python_sig, _ = _solve(instance, approach, "python")
            native_sig, native_stats = _solve(instance, approach, "native")
        finally:
            if cleanup is not None:
                cleanup()
        assert native_sig == python_sig
        assert native_stats is not None
        ran = (
            native_stats.kernel_compiled_calls
            + native_stats.kernel_fallback_calls
        )
        assert ran > 0, "native solve never entered the kernel"
        if not NUMBA_AVAILABLE:
            assert native_stats.kernel_compiled_calls == 0


class TestFallbackChainParity:
    def test_budgetless_fallback_wrapper_is_kernel_invariant(self):
        instance = make_dense_instance(25, 5, seed=4)
        pairs = compute_valid_pairs(instance)
        signatures = []
        for kernel in KERNELS:
            primary = make_solver("GT+ALL", epsilon=0.01, seed=5, kernel=kernel)
            wrapped = FallbackSolver(primary, budget=None, label="GT+ALL")
            signatures.append(_signature(wrapped(instance, pairs)))
            assert not wrapped.degradation_log[-1].degraded
        assert signatures[0] == signatures[1]


class TestKernelBoundaryShapes:
    """The fuzzer's kernel-boundary layouts and their committed repros."""

    @pytest.mark.parametrize(
        "name",
        ["kernel_group8", "kernel_solo_worker", "kernel_zero_pairs"],
    )
    def test_corpus_entry_is_kernel_invariant(self, name):
        instance, metadata = load_corpus_entry(f"{CORPUS_DIR}/{name}.json")
        assert metadata["findings"] == []
        python_sig, _ = _solve(instance, "GT", "python")
        native_sig, _ = _solve(instance, "GT", "native")
        assert native_sig == python_sig

    def test_group8_saturates_vector_limit(self):
        from repro.core.game import _VECTOR_GROUP_LIMIT

        instance, _ = load_corpus_entry(f"{CORPUS_DIR}/kernel_group8.json")
        assert instance.worker_count == _VECTOR_GROUP_LIMIT + 1
        assert instance.tasks[0].capacity == _VECTOR_GROUP_LIMIT

    def test_fuzzer_emits_every_shape_deterministically(self):
        seen = {}
        for index in range(400):
            seed = (606, index)
            instance = fuzz_instance(seed)
            if instance.worker_count == 1:
                seen.setdefault("solo", seed)
            elif instance.worker_count == 9 and instance.task_count == 1 and (
                instance.tasks[0].capacity == 8
            ):
                seen.setdefault("group8", seed)
            elif not any(compute_valid_pairs(instance).tasks_for_worker):
                seen.setdefault("nopairs", seed)
            if len(seen) == len(_KERNEL_SHAPES):
                break
        assert set(seen) == set(_KERNEL_SHAPES)
        for seed in seen.values():
            first = fuzz_instance(seed)
            second = fuzz_instance(seed)
            assert repr(first.workers) == repr(second.workers)
            assert repr(first.tasks) == repr(second.tasks)


@pytest.mark.skipif(not NUMBA_AVAILABLE, reason="numba not installed")
class TestCompiledKernels:
    def test_compiled_path_reports_compiled_calls(self):
        instance = make_dense_instance(20, 4, seed=6)
        _, stats = _solve(instance, "GT", "native")
        assert stats is not None and stats.kernel_compiled_calls > 0
        assert stats.kernel_fallback_calls == 0
