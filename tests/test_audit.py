"""Tests for the differential audit harness (``repro.audit``).

The load-bearing cases mirror the harness's acceptance contract:

* the **mutation self-test** — with a deliberately injected pair-sum
  off-by-one the harness must flag the divergence and shrink the repro
  to at most 6 workers / 3 tasks;
* the **zero-findings run** — with the mutation removed, corpus replay
  plus a seeded fuzz run must come back clean (the fuzz budget defaults
  to the 30 s acceptance run; set ``AUDIT_TEST_BUDGET`` to shorten local
  iterations);
* the invariant auditor's oracle agrees with
  ``Assignment.recompute_total()`` on the fuzz corpus.
"""

import json
import os

import numpy as np
import pytest

from repro.audit import (
    AuditFinding,
    audit_assignment,
    audit_instance,
    fuzz_instance,
    injected_pair_sum_bug,
    iter_corpus,
    load_corpus_entry,
    oracle_total,
    run_audit,
    run_differential,
    run_self_test,
    save_corpus_entry,
    shrink_instance,
)
from repro.audit.fuzzer import FuzzConfig
from repro.audit.runner import DEFAULT_CORPUS_DIR
from repro.core.assignment import Assignment
from repro.core.validity import compute_valid_pairs
from repro.experiments.config import make_solver

from tests.conftest import make_dense_instance

#: Budget (seconds) of the acceptance fuzz run; override locally via
#: AUDIT_TEST_BUDGET for faster iteration.
FUZZ_BUDGET = float(os.environ.get("AUDIT_TEST_BUDGET", "30"))


def _solved(instance, approach="GT+ALL", seed=0):
    pairs = compute_valid_pairs(instance)
    solver = make_solver(approach, seed=seed)
    return solver(instance, pairs), pairs


class TestInvariantAuditor:
    @pytest.mark.parametrize("approach", ["GT+ALL", "TPG", "PGREEDY", "MFLOW"])
    def test_clean_solver_output_has_no_findings(self, approach):
        instance = make_dense_instance(seed=11)
        assignment, _ = _solved(instance, approach)
        assert audit_assignment(assignment) == []
        # The Assignment.audit hook is the same check.
        assert assignment.audit() == []

    def test_pair_sum_corruption_is_flagged(self):
        instance = make_dense_instance(seed=3)
        assignment, _ = _solved(instance)
        task = next(
            t
            for t in range(instance.task_count)
            if len(assignment.members(t)) >= instance.min_group_size
        )
        assignment.revenue_cache.pair_sums[task] += 1.0
        assignment.revenue_cache._refresh(task)
        checks = {finding.check for finding in assignment.audit()}
        assert "equation2" in checks
        assert "equation3" in checks
        assert "revenue-drift" in checks

    def test_join_order_ulp_noise_is_not_drift(self):
        # Regression: replaying shard_halo_two_moves.json under
        # RAND(seed=1) leaves one task's incremental pair sum exactly one
        # ulp off the flat recompute — the joins accumulate one cross_sum
        # per worker while recompute_total reduces the gathered submatrix
        # in a single pass. Same state, different association; the drift
        # check must tolerate it.
        from repro.core.baselines.random_assign import solve_random
        from repro.utils.rng import ensure_rng

        instance, _ = load_corpus_entry(
            DEFAULT_CORPUS_DIR / "shard_halo_two_moves.json"
        )
        assignment = solve_random(instance, seed=ensure_rng(1))
        total = assignment.total_score()
        recomputed = assignment.recompute_total()
        assert abs(total - recomputed) <= 1e-9 * max(1.0, abs(recomputed))
        assert audit_assignment(assignment) == []

    def test_b_threshold_violation_is_flagged(self):
        instance = make_dense_instance(seed=3)
        assignment = Assignment(instance)
        assignment.assign(0, 0)  # one member < B = 3
        assignment.revenue_cache.revenues[0] = 1.0  # forged revenue
        checks = {finding.check for finding in assignment.audit()}
        assert "b-threshold" in checks

    def test_invalid_pair_is_flagged(self):
        instance = make_dense_instance(seed=5)
        pairs = compute_valid_pairs(instance)
        invalid = next(
            (worker, task)
            for worker in range(instance.worker_count)
            for task in range(instance.task_count)
            if not pairs.is_valid(worker, task)
        )
        assignment = Assignment(instance)  # no ValidPairs guard attached
        assignment.assign(*invalid)
        checks = {finding.check for finding in assignment.audit()}
        assert "definition3" in checks

    def test_capacity_violation_is_flagged(self):
        instance = make_dense_instance(seed=7)
        pairs = compute_valid_pairs(instance)
        assignment = Assignment(instance, pairs, allow_overflow=True)
        task = 0
        workers = [w for w in pairs.workers_for_task[task]]
        capacity = instance.tasks[task].capacity
        assert len(workers) > capacity
        for worker in workers[: capacity + 1]:
            assignment.assign(worker, task)
        # Overflow states are exempt; final assignments are not.
        assert "definition4-capacity" not in {
            f.check for f in assignment.audit()
        }
        assignment.allow_overflow = False
        assert "definition4-capacity" in {f.check for f in assignment.audit()}

    def test_disjointness_violation_is_flagged(self):
        instance = make_dense_instance(seed=9)
        assignment, _ = _solved(instance)
        worker = next(
            w
            for w in range(instance.worker_count)
            if assignment.is_assigned(w)
        )
        other_task = (assignment.task_of(worker) + 1) % instance.task_count
        # Corrupt the internals: list the worker on a second task.
        assignment.revenue_cache._members[other_task].append(worker)
        checks = {finding.check for finding in assignment.audit()}
        assert "definition4-disjoint" in checks

    def test_oracle_matches_recompute_total_on_fuzz_corpus(self):
        for index in range(25):
            instance = fuzz_instance((404, index))
            assignment, _ = _solved(instance, "PGREEDY")
            oracle = oracle_total(assignment)
            recomputed = assignment.recompute_total()
            assert oracle == pytest.approx(recomputed, rel=1e-9, abs=1e-12)
            assert assignment.audit() == []


class TestDifferentialRunner:
    def test_clean_instance_has_no_findings(self):
        findings = run_differential(fuzz_instance((1, 1)))
        assert findings == []

    def test_backend_divergence_is_flagged(self, monkeypatch):
        from repro.core.quality_store import SparseQualityStore
        from repro.experiments import config

        def evil_factory(epsilon, seed, kernel="python"):
            def solver(instance, valid_pairs):
                assignment = make_solver("PGREEDY")(instance, valid_pairs)
                if isinstance(instance.quality, SparseQualityStore):
                    # Backend-dependent behaviour: drop one assignment.
                    for worker in range(instance.worker_count):
                        if assignment.is_assigned(worker):
                            assignment.unassign(worker)
                            break
                return assignment

            return solver

        monkeypatch.setitem(config.APPROACHES, "EVIL", evil_factory)
        # (2, 4) is a seed where PGREEDY assigns workers, so the evil
        # sparse-backend drop actually diverges from the dense reference.
        instance = fuzz_instance((2, 4))
        findings = run_differential(instance, approaches=("EVIL",))
        assert any(f.check == "differential" for f in findings)
        assert any("backend=sparse" in f.context for f in findings)

    def test_solver_crash_becomes_finding(self, monkeypatch):
        from repro.experiments import config

        def crashing_factory(epsilon, seed, kernel="python"):
            def solver(instance, valid_pairs):
                raise RuntimeError("boom")

            return solver

        monkeypatch.setitem(config.APPROACHES, "CRASH", crashing_factory)
        findings = run_differential(
            fuzz_instance((3, 3)), approaches=("CRASH",)
        )
        assert findings
        assert all(f.check == "crash" for f in findings)
        assert any("boom" in f.detail for f in findings)

    def test_validity_parity_divergence_is_flagged(self, monkeypatch):
        from repro.audit import differential
        from repro.core.validity import ValidPairs

        real = differential.compute_valid_pairs

        def broken(instance, strategy="grid", travel_model=None):
            pairs = real(instance, strategy, travel_model)
            if strategy == "kdtree" and pairs.pair_count:
                lists = [list(t) for t in pairs.tasks_for_worker]
                for tasks in lists:
                    if tasks:
                        tasks.pop()  # drop one valid pair
                        break
                return ValidPairs.from_worker_lists(
                    lists, instance.task_count
                )
            return pairs

        monkeypatch.setattr(differential, "compute_valid_pairs", broken)
        instance = make_dense_instance(seed=1)
        findings = differential.run_differential(
            instance, approaches=("PGREEDY",), backends=("dense",)
        )
        assert any(f.check == "validity-parity" for f in findings)

    def test_four_way_validity_parity_on_boundary_instances(self):
        # The satellite fix tightened the range query to
        # min(r_i, v_i * max_remaining); parity across all four
        # strategies on boundary-heavy instances is the regression net.
        for index in range(30):
            instance = fuzz_instance((7, index))
            findings = run_differential(
                instance, approaches=(), backends=("dense",)
            )
            assert findings == []


class TestFuzzerAndShrink:
    def test_fuzzing_is_deterministic(self):
        from repro.datasets.io import instance_to_dict

        first = fuzz_instance((5, 7))
        second = fuzz_instance((5, 7))
        assert instance_to_dict(first) == instance_to_dict(second)

    def test_boundaries_are_exercised(self):
        saw_zero_speed = saw_tight_capacity = False
        saw_expired = saw_colocated = False
        for index in range(60):
            instance = fuzz_instance((99, index))
            if any(w.speed == 0.0 for w in instance.workers):
                saw_zero_speed = True
            if any(
                t.capacity == instance.min_group_size for t in instance.tasks
            ):
                saw_tight_capacity = True
            if any(t.deadline < instance.now for t in instance.tasks):
                saw_expired = True
            worker_points = {
                (w.location.x, w.location.y) for w in instance.workers
            }
            if any(
                (t.location.x, t.location.y) in worker_points
                for t in instance.tasks
            ):
                saw_colocated = True
        assert saw_zero_speed and saw_tight_capacity
        assert saw_expired and saw_colocated

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FuzzConfig(min_workers=1)
        with pytest.raises(ValueError):
            FuzzConfig(min_tasks=0)

    def test_shrink_reaches_predicate_minimum(self):
        # Seed (8, 0) draws the fully random recipe (the kernel-boundary
        # shapes ignore the size bounds, so a boundary draw could not
        # satisfy the predicate in the first place).
        instance = fuzz_instance(
            (8, 0), FuzzConfig(min_workers=8, max_workers=8, min_tasks=3, max_tasks=3)
        )
        shrunk = shrink_instance(
            instance,
            lambda i: i.worker_count >= 3 and i.task_count >= 2,
        )
        assert shrunk.worker_count == 3
        assert shrunk.task_count == 2
        # Quality store was carved down consistently.
        assert shrunk.quality.size == 3

    def test_shrink_returns_input_when_not_failing(self):
        instance = fuzz_instance((12, 0))
        assert shrink_instance(instance, lambda i: False) is instance


class TestCorpus:
    def test_round_trip(self, tmp_path):
        from repro.datasets.io import instance_to_dict

        instance = fuzz_instance((21, 0))
        finding = AuditFinding(check="equation2", detail="demo")
        path = save_corpus_entry(
            tmp_path / "entry.json",
            instance,
            description="round trip",
            seed=(21, 0),
            findings=[finding],
        )
        loaded, metadata = load_corpus_entry(path)
        assert instance_to_dict(loaded) == instance_to_dict(instance)
        assert metadata["description"] == "round trip"
        assert metadata["seed"] == [21, 0]
        assert metadata["findings"] == [str(finding)]

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"corpus_version": 999}))
        with pytest.raises(ValueError, match="corpus version"):
            load_corpus_entry(path)

    def test_iter_missing_directory_is_empty(self, tmp_path):
        assert list(iter_corpus(tmp_path / "nope")) == []

    def test_committed_corpus_is_readable(self):
        entries = list(iter_corpus(DEFAULT_CORPUS_DIR))
        assert len(entries) >= 3
        for path, instance, metadata in entries:
            assert instance.worker_count >= 1
            assert metadata["description"]


class TestMutationSelfTest:
    def test_injected_bug_is_detected_and_shrunk(self):
        result = run_self_test(seed=0)
        assert result.detected
        assert result.shrunk_workers <= 6
        assert result.shrunk_tasks <= 3
        checks = {finding.check for finding in result.findings}
        assert "equation2" in checks or "revenue-drift" in checks

    def test_mutation_restores_join(self):
        from repro.core.revenue import RevenueCache

        original = RevenueCache.join
        with injected_pair_sum_bug():
            assert RevenueCache.join is not original
        assert RevenueCache.join is original

    def test_audit_session_writes_shrunk_repro(self, tmp_path):
        with injected_pair_sum_bug():
            outcome = run_audit(
                budget=60.0,
                seed=0,
                corpus_dir=None,
                out_dir=tmp_path,
                approaches=("PGREEDY",),
                backends=("dense",),
                strategies=("grid",),
                max_instances=20,
            )
        assert not outcome.ok
        assert outcome.repro_paths
        shrunk, metadata = load_corpus_entry(outcome.repro_paths[0])
        assert shrunk.worker_count <= 6
        assert shrunk.task_count <= 3
        assert metadata["findings"]


class TestZeroFindings:
    def test_corpus_replay_is_clean(self):
        outcome = run_audit(budget=0.0, seed=0, corpus_dir=DEFAULT_CORPUS_DIR)
        assert outcome.ok, [str(f) for _, f in outcome.findings]
        assert outcome.corpus_replayed >= 3
        assert outcome.instances_fuzzed == 0

    def test_seeded_fuzz_is_clean(self):
        # The acceptance run: a fresh seeded fuzz session over the full
        # approach x backend x strategy cross-product must come back
        # clean now that the known bugs are fixed.
        outcome = run_audit(
            budget=FUZZ_BUDGET, seed=2026, corpus_dir=None, out_dir=None
        )
        assert outcome.ok, [str(f) for _, f in outcome.findings]
        assert outcome.instances_fuzzed > 0


class TestCli:
    def test_audit_subcommand_clean(self, capsys):
        from repro.cli import main

        code = main(
            [
                "audit",
                "--budget",
                "1",
                "--seed",
                "1",
                "--corpus",
                str(DEFAULT_CORPUS_DIR),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "no findings" in out

    def test_audit_self_test_subcommand(self, capsys):
        from repro.cli import main

        code = main(["audit", "--self-test", "--seed", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "self-test passed" in out
