"""Geo-sharded solving: partition invariants, remaps, identity, stats."""

import numpy as np
import pytest

from repro.core.model import Instance, Task, Worker
from repro.core.model import _validate_carved_copies
from repro.core.quality_store import DenseQualityStore
from repro.core.sharding import (
    carve_shard,
    partition_instance,
    resolve_shard_request,
    solve_sharded,
)
from repro.core.validity import compute_valid_pairs
from repro.datasets.synthetic import generate_instance
from repro.experiments.config import ExperimentSettings, make_solver
from repro.spatial.geometry import Point
from repro.utils.errors import InvalidInstanceError


@pytest.fixture(scope="module")
def seed_grid():
    instance = generate_instance(150, 40, seed=5)
    return instance, compute_valid_pairs(instance)


@pytest.fixture(scope="module")
def boundary_instance():
    instance = generate_instance(
        120, 30, seed=3, radius_range=(0.04, 0.08)
    )
    return instance, compute_valid_pairs(instance)


def two_cluster_instance(separation=0.6, cluster_radius=0.02):
    """Two far-apart clusters — partitions with zero border workers."""
    rng = np.random.default_rng(11)
    workers = []
    tasks = []
    # base center chosen off any reach-grid cell corner so a tight
    # cluster really occupies a single cell
    centers = [(0.225, 0.225), (0.225 + separation, 0.225 + separation)]
    for cluster, (cx, cy) in enumerate(centers):
        for i in range(20):
            dx, dy = rng.uniform(-cluster_radius, cluster_radius, size=2)
            workers.append(
                Worker(
                    worker_id=cluster * 100 + i,
                    location=Point(cx + dx, cy + dy),
                    speed=0.03,
                    radius=0.05,
                )
            )
        for j in range(5):
            dx, dy = rng.uniform(-cluster_radius, cluster_radius, size=2)
            tasks.append(
                Task(
                    task_id=cluster * 100 + j,
                    location=Point(cx + dx, cy + dy),
                    capacity=4,
                    deadline=3.0,
                )
            )
    quality = rng.uniform(0.0, 1.0, size=(len(workers), len(workers)))
    quality = (quality + quality.T) / 2.0
    np.fill_diagonal(quality, 0.0)
    return Instance(
        workers=workers,
        tasks=tasks,
        quality=DenseQualityStore(quality),
        min_group_size=3,
    )


# ---------------------------------------------------------------------------
# resolve_shard_request
# ---------------------------------------------------------------------------
def test_resolve_shard_request_accepts_auto_and_ints():
    assert resolve_shard_request("auto") == "auto"
    assert resolve_shard_request(" AUTO ") == "auto"
    assert resolve_shard_request(4) == 4
    assert resolve_shard_request("4") == 4


@pytest.mark.parametrize("bad", [0, -1, "0", "many", 1.5, True])
def test_resolve_shard_request_rejects(bad):
    with pytest.raises(ValueError):
        resolve_shard_request(bad)


def test_experiment_settings_validate_shards():
    assert ExperimentSettings(shards="auto").shards == "auto"
    assert ExperimentSettings(shards="3").shards == 3
    with pytest.raises(ValueError):
        ExperimentSettings(shards=0)
    with pytest.raises(ValueError):
        ExperimentSettings(halo_rounds=-1)


def test_experiment_settings_validate_shard_timeout():
    assert ExperimentSettings(shard_timeout=None).shard_timeout is None
    assert ExperimentSettings(shard_timeout=5.0).shard_timeout == 5.0
    with pytest.raises(ValueError, match="shard_timeout"):
        ExperimentSettings(shard_timeout=-1.0)


def test_solve_sharded_rejects_bad_shard_timeout(seed_grid):
    instance, valid_pairs = seed_grid
    with pytest.raises(ValueError, match="shard_timeout"):
        solve_sharded(instance, valid_pairs, approach="GT", shard_timeout=0.0)


# ---------------------------------------------------------------------------
# partition invariants
# ---------------------------------------------------------------------------
def test_partition_covers_every_entity_exactly_once(seed_grid):
    instance, _ = seed_grid
    plan = partition_instance(instance, shards=4)
    assert plan.shard_count >= 2
    worker_cover = np.concatenate(
        [plan.workers_of(s) for s in range(plan.shard_count)]
    )
    task_cover = np.concatenate(
        [plan.tasks_of(s) for s in range(plan.shard_count)]
    )
    assert sorted(worker_cover.tolist()) == list(range(instance.worker_count))
    assert sorted(task_cover.tolist()) == list(range(instance.task_count))
    assert plan.worker_shard.min() >= 0
    assert plan.worker_shard.max() < plan.shard_count


def test_border_superset_of_cross_shard_valid_pairs(boundary_instance):
    instance, valid_pairs = boundary_instance
    plan = partition_instance(instance, shards=3)
    assert plan.shard_count >= 2
    cross_workers = {
        worker
        for worker, task in valid_pairs.iter_pairs()
        if plan.worker_shard[worker] != plan.task_shard[task]
    }
    border = set(plan.border_worker_indices().tolist())
    assert cross_workers <= border
    # strictness: the reach-bound classification is conservative, so on
    # a contiguous uniform instance it marks more than the actual
    # cross-shard pairs
    assert len(border) > len(cross_workers)


def test_partition_single_cell_collapses_to_one_shard():
    # everything within one reach-sized grid cell — no split possible
    instance = two_cluster_instance(separation=0.0, cluster_radius=0.001)
    plan = partition_instance(instance, shards=8)
    assert plan.shard_count == 1
    assert plan.border_worker_count == 0


def test_partition_is_deterministic(seed_grid):
    instance, _ = seed_grid
    a = partition_instance(instance, shards="auto")
    b = partition_instance(instance, shards="auto")
    assert a.shard_count == b.shard_count
    assert np.array_equal(a.worker_shard, b.worker_shard)
    assert np.array_equal(a.task_shard, b.task_shard)
    assert np.array_equal(a.worker_border, b.worker_border)


# ---------------------------------------------------------------------------
# carve + id remaps
# ---------------------------------------------------------------------------
def test_carve_shard_remap_round_trip(boundary_instance):
    instance, valid_pairs = boundary_instance
    plan = partition_instance(instance, shards=3)
    for shard in range(plan.shard_count):
        if plan.workers_of(shard).size == 0 or plan.tasks_of(shard).size == 0:
            continue
        piece = carve_shard(instance, valid_pairs, plan, shard)
        assert np.all(np.diff(piece.worker_ids) > 0)
        assert np.all(np.diff(piece.task_ids) > 0)
        # every local valid pair maps back to a global valid pair whose
        # endpoints both live in this shard
        for local_worker, local_task in piece.valid_pairs.iter_pairs():
            worker = int(piece.worker_ids[local_worker])
            task = int(piece.task_ids[local_task])
            assert valid_pairs.is_valid(worker, task)
            assert plan.worker_shard[worker] == shard
            assert plan.task_shard[task] == shard
        # and the restriction is lossless for in-shard pairs
        in_shard = sum(
            1
            for worker, task in valid_pairs.iter_pairs()
            if plan.worker_shard[worker] == shard
            and plan.task_shard[task] == shard
        )
        assert piece.valid_pairs.pair_count == in_shard
        # interior workers keep their whole valid set
        for local_worker, worker in enumerate(piece.worker_ids):
            if not plan.worker_border[worker]:
                assert len(
                    piece.valid_pairs.tasks_for_worker[local_worker]
                ) == len(valid_pairs.tasks_for_worker[int(worker)])
        # carved records are fresh copies, never aliases
        for local_worker, worker in enumerate(piece.worker_ids):
            original = instance.workers[int(worker)]
            carved = piece.instance.workers[local_worker]
            assert carved is not original
            assert carved.location is not original.location
            assert carved.worker_id == original.worker_id


def test_carve_rejects_unsorted_indices(seed_grid):
    instance, _ = seed_grid
    with pytest.raises(InvalidInstanceError):
        instance.carve([2, 1], [0])
    with pytest.raises(InvalidInstanceError):
        instance.carve([0, 0], [0])


def test_validate_carved_copies_rejects_aliases(seed_grid):
    instance, _ = seed_grid
    worker = instance.workers[0]
    task = instance.tasks[0]
    with pytest.raises(InvalidInstanceError, match="aliases"):
        _validate_carved_copies([worker], [worker], [], [])
    fresh_worker = Worker(
        worker_id=worker.worker_id,
        location=worker.location,  # aliased location
        speed=worker.speed,
        radius=worker.radius,
        arrival_time=worker.arrival_time,
    )
    with pytest.raises(InvalidInstanceError, match="aliases"):
        _validate_carved_copies([fresh_worker], [worker], [], [])
    drifted = Task(
        task_id=task.task_id,
        location=Point(float(task.location.x), float(task.location.y)),
        capacity=task.capacity + 1,
        deadline=task.deadline,
        created_time=task.created_time,
    )
    with pytest.raises(InvalidInstanceError, match="drifted"):
        _validate_carved_copies([], [], [drifted], [task])


# ---------------------------------------------------------------------------
# solve identity and reproducibility
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("approach", ["GT", "TPG"])
def test_shards_one_is_bit_identical_to_monolithic(seed_grid, approach):
    instance, valid_pairs = seed_grid
    mono = make_solver(approach, seed=9)(instance, valid_pairs)
    via_factory = make_solver(approach, seed=9, shards=1)(
        instance, valid_pairs
    )
    via_solver = solve_sharded(
        instance, valid_pairs, approach=approach, seed=9, shards=1
    ).assignment
    for candidate in (via_factory, via_solver):
        assert candidate.to_pairs() == mono.to_pairs()
        assert repr(candidate) == repr(mono)
        assert repr(candidate.total_score()) == repr(mono.total_score())


@pytest.mark.parametrize("approach", ["GT", "TPG"])
def test_zero_border_sharded_equals_monolithic(approach):
    instance = two_cluster_instance()
    valid_pairs = compute_valid_pairs(instance)
    plan = partition_instance(instance, shards=2)
    assert plan.shard_count == 2
    assert plan.border_worker_count == 0
    result = solve_sharded(
        instance, valid_pairs, approach=approach, shards=2
    )
    mono = make_solver(approach)(instance, valid_pairs)
    assert result.assignment.to_pairs() == mono.to_pairs()
    assert repr(result.assignment.recompute_total()) == repr(
        mono.recompute_total()
    )


def test_sharded_runs_are_bit_reproducible(boundary_instance):
    instance, valid_pairs = boundary_instance
    runs = [
        solve_sharded(
            instance,
            valid_pairs,
            approach="GT",
            seed=4,
            shards=3,
            halo_rounds=2,
        )
        for _ in range(2)
    ]
    assert runs[0].assignment.to_pairs() == runs[1].assignment.to_pairs()
    assert repr(runs[0].assignment) == repr(runs[1].assignment)
    assert runs[0].halo_moves == runs[1].halo_moves


def test_sharded_assignment_is_feasible_and_counted(boundary_instance):
    instance, valid_pairs = boundary_instance
    result = solve_sharded(
        instance, valid_pairs, approach="GT", shards=3, halo_rounds=2
    )
    result.assignment.check_feasible()
    stats = result.stats
    assert stats.shard_count == result.plan.shard_count
    assert stats.border_workers == result.plan.border_worker_count
    assert stats.halo_rounds == result.halo_rounds_run
    assert stats.halo_moves == result.halo_moves
    assert "shard_solve" in stats.phase_seconds
    payload = stats.to_dict()
    for key in ("shard_count", "border_workers", "halo_rounds", "halo_moves"):
        assert key in payload
    assert f"shards={stats.shard_count}" in stats.summary()


def test_shard_failover_recovers_from_killed_child(boundary_instance):
    """Chaos-driven failover: one shard child SIGKILLs itself on every
    attempt (including the solo retrial), so the shard is re-solved
    inline via the fallback ladder — counted, bit-identical, auditable.
    """
    from repro.chaos.policy import ChaosPolicy, activate

    instance, valid_pairs = boundary_instance
    kwargs = dict(approach="GT", seed=4, shards=3, halo_rounds=2)
    clean = solve_sharded(instance, valid_pairs, **kwargs)
    assert clean.stats.shard_failures == 0
    assert clean.stats.shard_failovers == 0

    # only_indices pins shard 0 as the sole victim; max_attempt=99 makes
    # it kill every pool it touches, forcing quarantine then failover.
    policy = ChaosPolicy(
        kill_rate=1.0, only_indices=(0,), max_attempt=99, seed=0
    )
    with activate(policy):
        chaotic = solve_sharded(
            instance, valid_pairs, n_jobs=2, **kwargs
        )
    stats = chaotic.stats
    assert stats.shard_failures == 1
    assert stats.shard_failovers == 1
    # The failover re-solve is the same deterministic primary (no
    # timeout budget -> bit-identical passthrough), so the merged
    # assignment matches the clean run exactly and audits clean.
    assert chaotic.assignment.audit() == []
    assert chaotic.assignment.to_pairs() == clean.assignment.to_pairs()
    assert repr(chaotic.assignment.total_score()) == repr(
        clean.assignment.total_score()
    )
    payload = stats.to_dict()
    assert payload["shard_failures"] == 1
    assert payload["shard_failovers"] == 1
    assert "shard_failures=1" in stats.summary()


def test_make_solver_rejects_unshardable_approach():
    with pytest.raises(ValueError, match="sharded"):
        make_solver("RAND", shards=2)


def test_sharded_check_clean_on_boundary_instance(boundary_instance):
    from repro.audit.differential import run_sharded_check

    instance, _ = boundary_instance
    findings = run_sharded_check(
        instance, approaches=("GT",), shards=2, gap_tolerance=None
    )
    assert findings == []
