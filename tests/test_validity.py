"""Tests for the Definition 3 valid-pair computation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.validity import ValidPairs, compute_valid_pairs
from repro.datasets.synthetic import generate_instance

from tests.conftest import make_dense_instance


class TestValidPairsStructure:
    def test_from_worker_lists_transposes(self):
        pairs = ValidPairs.from_worker_lists([[0, 1], [1], []], task_count=2)
        assert pairs.tasks_for_worker == ((0, 1), (1,), ())
        assert pairs.workers_for_task == ((0,), (0, 1))
        assert pairs.pair_count == 3

    def test_duplicates_deduplicated(self):
        pairs = ValidPairs.from_worker_lists([[1, 1, 0]], task_count=2)
        assert pairs.tasks_for_worker == ((0, 1),)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            ValidPairs.from_worker_lists([[5]], task_count=2)

    def test_is_valid_and_iter(self):
        pairs = ValidPairs.from_worker_lists([[0], [1]], task_count=2)
        assert pairs.is_valid(0, 0)
        assert not pairs.is_valid(0, 1)
        assert sorted(pairs.iter_pairs()) == [(0, 0), (1, 1)]


class TestComputeValidPairs:
    def test_unknown_strategy(self):
        instance = make_dense_instance(10, 3)
        with pytest.raises(ValueError):
            compute_valid_pairs(instance, strategy="quadtree")

    def test_matches_definition(self):
        instance = make_dense_instance(25, 5, seed=3)
        pairs = compute_valid_pairs(instance)
        for worker in range(instance.worker_count):
            for task in range(instance.task_count):
                assert pairs.is_valid(worker, task) == instance.is_pair_valid(
                    worker, task
                )

    @pytest.mark.parametrize("strategy", ["rtree", "grid", "kdtree", "matrix"])
    def test_strategies_agree(self, strategy):
        instance = generate_instance(60, 15, seed=5)
        reference = compute_valid_pairs(instance, strategy="matrix")
        result = compute_valid_pairs(instance, strategy=strategy)
        assert result == reference

    def test_empty_instances(self):
        instance = make_dense_instance(4, 2)
        empty_workers = generate_instance(0, 3, seed=0)
        assert compute_valid_pairs(empty_workers).pair_count == 0
        empty_tasks = generate_instance(5, 0, seed=0)
        assert compute_valid_pairs(empty_tasks).pair_count == 0
        assert compute_valid_pairs(instance).pair_count >= 0

    def test_deadline_excludes_pairs(self):
        # Tiny remaining time: only on-the-spot workers qualify.
        tight = generate_instance(
            50, 10, remaining_time=1e-6, radius_range=(0.5, 0.9), seed=2
        )
        loose = generate_instance(
            50, 10, remaining_time=10.0, radius_range=(0.5, 0.9), seed=2
        )
        tight_pairs = compute_valid_pairs(tight).pair_count
        loose_pairs = compute_valid_pairs(loose).pair_count
        assert tight_pairs < loose_pairs

    def test_radius_monotone(self):
        small = generate_instance(50, 10, radius_range=(0.02, 0.05), seed=4)
        large = generate_instance(50, 10, radius_range=(0.4, 0.8), seed=4)
        assert (
            compute_valid_pairs(small).pair_count
            <= compute_valid_pairs(large).pair_count
        )


@settings(max_examples=20, deadline=None)
@given(
    st.integers(0, 40),
    st.integers(0, 10),
    st.integers(0, 10**6),
)
def test_property_strategies_always_agree(worker_count, task_count, seed):
    instance = generate_instance(
        worker_count,
        task_count,
        speed_range=(0.05, 0.4),
        radius_range=(0.05, 0.6),
        seed=seed,
    )
    matrix = compute_valid_pairs(instance, strategy="matrix")
    grid = compute_valid_pairs(instance, strategy="grid")
    rtree = compute_valid_pairs(instance, strategy="rtree")
    kdtree = compute_valid_pairs(instance, strategy="kdtree")
    assert matrix == grid == rtree == kdtree


class TestReachLimitRegression:
    def test_reach_limit_is_speed_bounded(self):
        # Regression: ``_reach_limit`` returned ``r_i`` alone, ignoring
        # that a worker can never pass ``v_i * max_remaining`` before
        # every deadline expires. The fixed bound is
        # ``min(r_i, v_i * max_remaining)`` (plus float slack).
        from repro.core.validity import _max_remaining, _reach_limit

        instance = generate_instance(
            5, 3, speed_range=(0.01, 0.02), radius_range=(0.8, 0.9), seed=0
        )
        max_remaining = _max_remaining(instance)
        for worker_index, worker in enumerate(instance.workers):
            limit = _reach_limit(instance, worker_index, max_remaining)
            assert limit <= worker.radius
            assert limit <= worker.speed * max_remaining * (1.0 + 1e-9)

    def test_zero_speed_worker_reaches_only_distance_zero(self):
        from repro.core.validity import _max_remaining, _reach_limit
        from repro.core.model import Instance, Task, Worker
        from repro.core.quality import CooperationMatrix
        from repro.spatial.geometry import Point
        import numpy as np

        workers = [
            Worker(worker_id=0, location=Point(0.5, 0.5), speed=0.0, radius=1.0),
            Worker(worker_id=1, location=Point(0.0, 0.0), speed=1.0, radius=1.0),
        ]
        tasks = [
            Task(task_id=0, location=Point(0.5, 0.5), capacity=2, deadline=2.0,
                 created_time=0.0),
            Task(task_id=1, location=Point(0.6, 0.5), capacity=2, deadline=2.0,
                 created_time=0.0),
        ]
        quality = CooperationMatrix(np.array([[0.0, 0.5], [0.5, 0.0]]))
        instance = Instance(
            workers=workers, tasks=tasks, quality=quality,
            min_group_size=2, now=0.0,
        )
        assert _reach_limit(instance, 0, _max_remaining(instance)) == 0.0
        # The radius-0 range query still returns the co-located task:
        # <w0, t0> is valid (distance 0), <w0, t1> is not.
        for strategy in ("rtree", "grid", "kdtree", "matrix"):
            pairs = compute_valid_pairs(instance, strategy=strategy)
            assert pairs.is_valid(0, 0), strategy
            assert not pairs.is_valid(0, 1), strategy
            assert pairs.is_valid(1, 0) and pairs.is_valid(1, 1), strategy

    def test_expired_deadlines_and_empty_task_lists(self):
        from repro.core.validity import _max_remaining

        expired = generate_instance(8, 3, remaining_time=1.0, seed=5)
        expired = type(expired)(
            workers=expired.workers,
            tasks=expired.tasks,
            quality=expired.quality,
            min_group_size=expired.min_group_size,
            now=max(t.deadline for t in expired.tasks) + 1.0,
        )
        assert _max_remaining(expired) == 0.0
        for strategy in ("rtree", "grid", "kdtree", "matrix"):
            assert compute_valid_pairs(expired, strategy=strategy).pair_count == 0

    def test_speed_bound_preserves_four_way_parity(self):
        # Slow workers with big radii are exactly where the new bound
        # prunes; the four strategies must keep agreeing there.
        for seed in range(6):
            instance = generate_instance(
                40, 8,
                speed_range=(0.005, 0.05),
                radius_range=(0.3, 0.9),
                remaining_time=2.0,
                seed=seed,
            )
            reference = compute_valid_pairs(instance, strategy="matrix")
            for strategy in ("rtree", "grid", "kdtree"):
                assert compute_valid_pairs(instance, strategy=strategy) == reference


class TestIncrementalValidityIndex:
    """The delta-maintained task index must match the full rebuild
    round-by-round, and its reach bound must tighten when the task that
    carries the longest deadline leaves the pool."""

    @staticmethod
    def _instance(workers, tasks, now):
        import numpy as np

        from repro.core.model import Instance
        from repro.core.quality import CooperationMatrix

        count = len(workers)
        q = np.full((count, count), 0.5)
        return Instance(
            workers=workers,
            tasks=tasks,
            quality=CooperationMatrix(q),
            min_group_size=2,
            now=now,
        )

    def test_matches_full_rebuild_across_evolving_pool(self):
        import numpy as np

        from repro.core.model import Task, Worker
        from repro.core.validity import IncrementalValidityIndex
        from repro.spatial.geometry import Point

        rng = np.random.default_rng(11)
        index = IncrementalValidityIndex(cell_size=0.2)
        pool: list[Task] = []
        next_id = 0
        for round_index in range(6):
            now = float(round_index)
            # Expiries leave, a few arrivals join, one random departure
            # (a served task) leaves.
            pool = [task for task in pool if task.deadline >= now]
            if pool and round_index % 2:
                pool.pop(int(rng.integers(len(pool))))
            for _ in range(4):
                x, y = rng.random(2)
                pool.append(
                    Task(
                        task_id=next_id,
                        location=Point(float(x), float(y)),
                        capacity=3,
                        deadline=now + float(rng.uniform(0.5, 3.0)),
                        created_time=now,
                    )
                )
                next_id += 1
            workers = [
                Worker(
                    worker_id=i,
                    location=Point(float(rng.random()), float(rng.random())),
                    speed=float(rng.uniform(0.05, 0.3)),
                    radius=float(rng.uniform(0.1, 0.4)),
                )
                for i in range(12)
            ]
            instance = self._instance(workers, list(pool), now)
            index.sync(instance.tasks)
            assert len(index) == len(pool)
            incremental = index.compute(instance)
            rebuilt = compute_valid_pairs(instance, strategy="grid")
            assert incremental == rebuilt, f"round {round_index}"

    def test_expired_candidate_tightens_reach_bound(self):
        from repro.core.model import Task, Worker
        from repro.core.validity import (
            IncrementalValidityIndex,
            _max_remaining,
        )
        from repro.spatial.geometry import Point

        # Round 0: the worker's only candidate is a long-deadline task
        # 0.2 away. Round 1: it has expired; the surviving task's
        # deadline is much shorter. A bound cached from round 0 would
        # still cover distance speed * ~2.0 — wide enough to (wrongly)
        # keep scanning the far cell — so the pin is that the index's
        # max_remaining re-derives from the live pool.
        worker = Worker(
            worker_id=0, location=Point(0.0, 0.0), speed=0.1, radius=1.0
        )
        only_candidate = Task(
            task_id=0, location=Point(0.2, 0.0), capacity=3, deadline=2.0
        )
        far_short = Task(
            task_id=1, location=Point(0.9, 0.0), capacity=3,
            deadline=2.5, created_time=0.0,
        )
        index = IncrementalValidityIndex(cell_size=0.2)

        index.sync([only_candidate, far_short])
        first = self._instance([worker], [only_candidate, far_short], now=0.0)
        assert index.max_remaining(0.0) == _max_remaining(first)
        pairs = index.compute(first)
        assert pairs.tasks_for_worker[0] == (0,)

        # Between rounds both tasks' deadlines pass; a new nearby task
        # with a short fuse arrives.
        fresh = Task(
            task_id=2, location=Point(0.01, 0.0), capacity=3,
            deadline=3.2, created_time=3.0,
        )
        index.sync([fresh])
        second = self._instance([worker], [fresh], now=3.0)
        # The bound tightened: 0.2 (remaining) not 2.0 (stale round-0).
        assert index.max_remaining(3.0) == _max_remaining(second)
        assert index.max_remaining(3.0) == pytest.approx(0.2)
        incremental = index.compute(second)
        assert incremental == compute_valid_pairs(second, strategy="grid")
        # Positional index 0 — the fresh task is reachable (0.1 travel).
        assert incremental.tasks_for_worker[0] == (0,)

    def test_sync_rejects_duplicate_ids_and_unsynced_compute(self):
        from repro.core.model import Task, Worker
        from repro.core.validity import IncrementalValidityIndex
        from repro.spatial.geometry import Point

        task = Task(task_id=0, location=Point(0.5, 0.5), capacity=3, deadline=2.0)
        index = IncrementalValidityIndex(cell_size=0.25)
        with pytest.raises(ValueError):
            index.sync([task, task])
        worker = Worker(worker_id=0, location=Point(0.5, 0.5), speed=0.1, radius=1.0)
        instance = self._instance([worker], [task], now=0.0)
        with pytest.raises(ValueError):
            index.compute(instance)
