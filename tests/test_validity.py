"""Tests for the Definition 3 valid-pair computation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.validity import ValidPairs, compute_valid_pairs
from repro.datasets.synthetic import generate_instance

from tests.conftest import make_dense_instance


class TestValidPairsStructure:
    def test_from_worker_lists_transposes(self):
        pairs = ValidPairs.from_worker_lists([[0, 1], [1], []], task_count=2)
        assert pairs.tasks_for_worker == ((0, 1), (1,), ())
        assert pairs.workers_for_task == ((0,), (0, 1))
        assert pairs.pair_count == 3

    def test_duplicates_deduplicated(self):
        pairs = ValidPairs.from_worker_lists([[1, 1, 0]], task_count=2)
        assert pairs.tasks_for_worker == ((0, 1),)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            ValidPairs.from_worker_lists([[5]], task_count=2)

    def test_is_valid_and_iter(self):
        pairs = ValidPairs.from_worker_lists([[0], [1]], task_count=2)
        assert pairs.is_valid(0, 0)
        assert not pairs.is_valid(0, 1)
        assert sorted(pairs.iter_pairs()) == [(0, 0), (1, 1)]


class TestComputeValidPairs:
    def test_unknown_strategy(self):
        instance = make_dense_instance(10, 3)
        with pytest.raises(ValueError):
            compute_valid_pairs(instance, strategy="quadtree")

    def test_matches_definition(self):
        instance = make_dense_instance(25, 5, seed=3)
        pairs = compute_valid_pairs(instance)
        for worker in range(instance.worker_count):
            for task in range(instance.task_count):
                assert pairs.is_valid(worker, task) == instance.is_pair_valid(
                    worker, task
                )

    @pytest.mark.parametrize("strategy", ["rtree", "grid", "kdtree", "matrix"])
    def test_strategies_agree(self, strategy):
        instance = generate_instance(60, 15, seed=5)
        reference = compute_valid_pairs(instance, strategy="matrix")
        result = compute_valid_pairs(instance, strategy=strategy)
        assert result == reference

    def test_empty_instances(self):
        instance = make_dense_instance(4, 2)
        empty_workers = generate_instance(0, 3, seed=0)
        assert compute_valid_pairs(empty_workers).pair_count == 0
        empty_tasks = generate_instance(5, 0, seed=0)
        assert compute_valid_pairs(empty_tasks).pair_count == 0
        assert compute_valid_pairs(instance).pair_count >= 0

    def test_deadline_excludes_pairs(self):
        # Tiny remaining time: only on-the-spot workers qualify.
        tight = generate_instance(
            50, 10, remaining_time=1e-6, radius_range=(0.5, 0.9), seed=2
        )
        loose = generate_instance(
            50, 10, remaining_time=10.0, radius_range=(0.5, 0.9), seed=2
        )
        tight_pairs = compute_valid_pairs(tight).pair_count
        loose_pairs = compute_valid_pairs(loose).pair_count
        assert tight_pairs < loose_pairs

    def test_radius_monotone(self):
        small = generate_instance(50, 10, radius_range=(0.02, 0.05), seed=4)
        large = generate_instance(50, 10, radius_range=(0.4, 0.8), seed=4)
        assert (
            compute_valid_pairs(small).pair_count
            <= compute_valid_pairs(large).pair_count
        )


@settings(max_examples=20, deadline=None)
@given(
    st.integers(0, 40),
    st.integers(0, 10),
    st.integers(0, 10**6),
)
def test_property_strategies_always_agree(worker_count, task_count, seed):
    instance = generate_instance(
        worker_count,
        task_count,
        speed_range=(0.05, 0.4),
        radius_range=(0.05, 0.6),
        seed=seed,
    )
    matrix = compute_valid_pairs(instance, strategy="matrix")
    grid = compute_valid_pairs(instance, strategy="grid")
    rtree = compute_valid_pairs(instance, strategy="rtree")
    kdtree = compute_valid_pairs(instance, strategy="kdtree")
    assert matrix == grid == rtree == kdtree
