"""Run the library's docstring examples as tests.

Keeps the documentation honest: every ``>>>`` example in the listed
modules (and the package-level quickstart) must execute and produce the
shown output.
"""

import doctest

import pytest

import repro
import repro.core.quality
import repro.core.revenue
import repro.flow.bipartite
import repro.flow.graph
import repro.spatial.grid
import repro.spatial.kdtree
import repro.spatial.rtree
import repro.utils.timer

MODULES = [
    repro,
    repro.core.quality,
    repro.core.revenue,
    repro.flow.bipartite,
    repro.flow.graph,
    repro.spatial.grid,
    repro.spatial.kdtree,
    repro.spatial.rtree,
    repro.utils.timer,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{result.failed} doctest failures in {module.__name__}"
    # Every module in this list is expected to actually contain examples.
    assert result.attempted > 0, f"no doctests found in {module.__name__}"
