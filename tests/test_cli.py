"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def instance_file(tmp_path):
    path = tmp_path / "batch.json"
    code = main(
        [
            "generate",
            "--workers",
            "60",
            "--tasks",
            "12",
            "--radius-min",
            "0.2",
            "--radius-max",
            "0.4",
            "--speed-min",
            "0.05",
            "--speed-max",
            "0.2",
            "--seed",
            "3",
            "--out",
            str(path),
        ]
    )
    assert code == 0
    return path


class TestGenerate:
    def test_writes_instance(self, instance_file, capsys):
        assert instance_file.exists()
        payload = json.loads(instance_file.read_text())
        assert len(payload["workers"]) == 60
        assert len(payload["tasks"]) == 12


class TestSolve:
    @pytest.mark.parametrize("approach", ["RAND", "TPG", "GT+ALL"])
    def test_solve_approaches(self, instance_file, tmp_path, capsys, approach):
        out = tmp_path / "assignment.json"
        code = main(
            [
                "solve",
                str(instance_file),
                "--approach",
                approach,
                "--out",
                str(out),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert approach in printed
        assert "UPPER" in printed
        pairs = json.loads(out.read_text())["pairs"]
        assert all(len(pair) == 2 for pair in pairs)


class TestEvaluate:
    def test_round_trip_evaluation(self, instance_file, tmp_path, capsys):
        out = tmp_path / "assignment.json"
        main(["solve", str(instance_file), "--approach", "TPG", "--out", str(out)])
        code = main(["evaluate", str(instance_file), str(out)])
        assert code == 0
        assert "feasible: score=" in capsys.readouterr().out

    def test_infeasible_assignment_rejected(self, instance_file, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        # Assign the same worker twice.
        bad.write_text(json.dumps({"pairs": [[0, 0], [0, 1]]}))
        code = main(["evaluate", str(instance_file), str(bad)])
        assert code == 1
        assert "INFEASIBLE" in capsys.readouterr().err


class TestSimulate:
    def test_simulate_with_exports(self, tmp_path, capsys):
        csv_path = tmp_path / "rounds.csv"
        jsonl_path = tmp_path / "rounds.jsonl"
        code = main(
            [
                "simulate",
                "--approach",
                "TPG",
                "--rounds",
                "2",
                "--workers",
                "60",
                "--tasks",
                "15",
                "--seed",
                "2",
                "--csv",
                str(csv_path),
                "--jsonl",
                str(jsonl_path),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "total score" in printed
        assert csv_path.exists() and jsonl_path.exists()
        from repro.simulation.metrics import read_jsonl

        assert len(read_jsonl(jsonl_path).rounds) == 2

    def test_simulate_extension_approach(self, capsys):
        code = main(
            [
                "simulate",
                "--approach",
                "ONLINE",
                "--rounds",
                "2",
                "--workers",
                "50",
                "--tasks",
                "10",
            ]
        )
        assert code == 0
        assert "ONLINE" in capsys.readouterr().out


class TestProfile:
    def test_profile_generated_instance(self, tmp_path, capsys):
        out = tmp_path / "profile.json"
        code = main(
            [
                "profile",
                "--workers",
                "60",
                "--tasks",
                "12",
                "--approach",
                "GT",
                "--seed",
                "3",
                "--top",
                "3",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "profile[GT]" in printed
        assert "validity:" in printed and "solve:" in printed
        payload = json.loads(out.read_text())
        assert [phase["phase"] for phase in payload["phases"]] == [
            "validity",
            "solve",
        ]
        for phase in payload["phases"]:
            assert phase["hotspots"], phase["phase"]
            assert len(phase["hotspots"]) <= 3
            # Sorted by self time — the documented reading order.
            tottimes = [spot["tottime"] for spot in phase["hotspots"]]
            assert tottimes == sorted(tottimes, reverse=True)

    def test_profile_instance_file_native_kernel(self, instance_file, capsys):
        code = main(
            [
                "profile",
                "--instance",
                str(instance_file),
                "--kernel",
                "native",
                "--top",
                "2",
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "kernel=native" in printed
        assert "solver stats:" in printed


class TestErrorHandling:
    def test_missing_instance_file(self, capsys):
        code = main(["solve", "/nonexistent/batch.json"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_corrupt_instance_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        code = main(["solve", str(bad)])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_wrong_format_version(self, tmp_path, capsys):
        bad = tmp_path / "v999.json"
        bad.write_text(json.dumps({"format_version": 999}))
        code = main(["solve", str(bad)])
        assert code == 2
