"""Tests for the experiment harness: approach registry, runner, figure
sweeps (scaled down) and reporting."""

import pytest

from repro.experiments.config import (
    APPROACHES,
    DEFAULT_APPROACH_ORDER,
    TABLE_II,
    ExperimentSettings,
    make_solver,
)
from repro.experiments.figures import fig2_capacity, fig6_epsilon
from repro.experiments.reporting import (
    figure_to_markdown,
    format_figure,
    format_sweep_table,
)
from repro.experiments.runner import build_population, run_approaches

from tests.conftest import make_dense_instance


QUICK = ExperimentSettings(
    rounds=2,
    workers_per_round=60,
    tasks_per_round=12,
    speed_range=(0.05, 0.2),
    radius_range=(0.2, 0.4),
    dataset="unif",
)


class TestConfig:
    def test_registry_covers_paper_approaches(self):
        assert set(DEFAULT_APPROACH_ORDER) == {
            "RAND",
            "MFLOW",
            "TPG",
            "GT",
            "GT+LUB",
            "GT+TSI",
            "GT+ALL",
        }
        assert set(DEFAULT_APPROACH_ORDER) <= set(APPROACHES)

    def test_registry_covers_extension_approaches(self):
        from repro.experiments.config import EXTENSION_APPROACHES

        assert set(EXTENSION_APPROACHES) == {"WFLOW", "PGREEDY", "ONLINE", "LSEARCH"}
        assert set(EXTENSION_APPROACHES) <= set(APPROACHES)
        instance = make_dense_instance(20, 4, seed=1)
        from repro.core.validity import compute_valid_pairs

        pairs = compute_valid_pairs(instance)
        for name in EXTENSION_APPROACHES:
            make_solver(name, seed=0)(instance, pairs).check_feasible()

    def test_table_ii_values_match_paper(self):
        assert TABLE_II["capacity"] == (3, 4, 5, 6)
        assert TABLE_II["epsilon"] == (0.0, 0.01, 0.03, 0.05, 0.08)
        assert TABLE_II["workers_per_round"] == (500, 800, 1000, 2000, 5000)
        assert TABLE_II["tasks_per_round"] == (100, 300, 500, 800, 1000)

    def test_defaults_match_table_ii_bold(self):
        settings = ExperimentSettings()
        assert settings.capacity == 4
        assert settings.workers_per_round == 1000
        assert settings.tasks_per_round == 500
        assert settings.rounds == 10
        assert settings.min_group_size == 3
        assert settings.epsilon == 0.05

    def test_unknown_approach(self):
        with pytest.raises(ValueError):
            make_solver("ILP")

    def test_scaled(self):
        settings = ExperimentSettings().scaled(0.1)
        assert settings.workers_per_round == 100
        assert settings.tasks_per_round == 50
        assert settings.rounds == 2
        with pytest.raises(ValueError):
            ExperimentSettings().scaled(0.0)

    def test_every_solver_runs(self):
        instance = make_dense_instance(20, 4, seed=0)
        from repro.core.validity import compute_valid_pairs

        pairs = compute_valid_pairs(instance)
        for name in DEFAULT_APPROACH_ORDER:
            solver = make_solver(name, seed=0)
            assignment = solver(instance, pairs)
            assignment.check_feasible()


class TestRunner:
    def test_build_population_kinds(self):
        unif = build_population(QUICK, seed=0)
        assert unif.worker_pool_size >= QUICK.workers_per_round
        skew = build_population(
            ExperimentSettings(dataset="skew", workers_per_round=40, tasks_per_round=10),
            seed=0,
        )
        assert skew.worker_pool_size >= 40
        with pytest.raises(ValueError):
            build_population(ExperimentSettings(dataset="gowalla"), seed=0)

    def test_run_approaches_shapes(self):
        population = build_population(QUICK, seed=0)
        point = run_approaches(
            population,
            QUICK,
            approaches=("RAND", "TPG", "GT"),
            parameter="demo",
            value=1,
            seed=0,
        )
        assert set(point.outcomes) == {"RAND", "TPG", "GT"}
        assert point.upper > 0.0
        for outcome in point.outcomes.values():
            assert outcome.total_score >= 0.0
            assert outcome.mean_batch_seconds >= 0.0
            assert len(outcome.report.rounds) == QUICK.rounds

    def test_ordering_gt_tpg_rand(self):
        """The paper's qualitative result at small scale: GT >= TPG (both
        well above RAND), and every score below UPPER."""
        population = build_population(QUICK, seed=1)
        point = run_approaches(
            population, QUICK, approaches=("RAND", "TPG", "GT"), seed=1
        )
        assert point.score("GT") >= point.score("TPG") - 1e-6
        assert point.score("TPG") > point.score("RAND")
        assert point.score("GT") <= point.upper + 1e-6


class TestFigures:
    def test_fig2_scaled_down(self):
        result = fig2_capacity(
            base=QUICK.scaled(1.0),
            values=(3, 4),
            approaches=("TPG", "GT"),
            seed=0,
        )
        assert result.parameter == "capacity"
        assert result.values() == [3, 4]
        for point in result.points:
            assert set(point.outcomes) == {"TPG", "GT"}

    def test_fig6_epsilon_gt_tsi_only(self):
        result = fig6_epsilon(
            base=QUICK,
            values=(0.0, 0.08),
            seed=0,
        )
        assert result.approaches == ("GT+TSI",)
        scores = [point.score("GT+TSI") for point in result.points]
        # eps = 0 (exact convergence) scores at least as high as eps = 0.08.
        assert scores[0] >= scores[1] - 1e-6


class TestReporting:
    @pytest.fixture(scope="class")
    def small_result(self):
        return fig2_capacity(
            base=QUICK,
            values=(3, 4),
            approaches=("TPG", "GT"),
            seed=0,
        )

    def test_format_figure_contains_both_panels(self, small_result):
        text = format_figure(small_result)
        assert "(a) Total Cooperation Score" in text
        assert "(b) Batch Running Time" in text
        assert "UPPER" in text
        assert "TPG" in text and "GT" in text

    def test_markdown_table_syntax(self, small_result):
        text = figure_to_markdown(small_result)
        assert "| capacity |" in text or "| capacity " in text
        assert "|---" in text

    def test_sweep_table_rows(self, small_result):
        text = format_sweep_table(
            small_result, lambda p, a: p.score(a), "scores"
        )
        lines = text.splitlines()
        assert len(lines) == 2 + 1 + len(small_result.points)


class TestRunAllCLI:
    def test_cli_runs_one_figure(self, tmp_path, capsys):
        from repro.experiments.run_all import main

        out = tmp_path / "results.md"
        code = main(
            [
                "--figures",
                "fig6",
                "--scale",
                "0.05",
                "--seed",
                "1",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "Figure 6" in printed
        assert out.exists()
        assert "Figure 6" in out.read_text()


class TestExtensionFigure:
    def test_fig9_ladder_ordering(self):
        """The extension ladder at small scale: batching beats online,
        pairwise-aware beats flow-based, local search >= GT."""
        from repro.experiments.figures import fig9_extensions

        result = fig9_extensions(
            base=QUICK,
            values=(60,),
            approaches=("ONLINE", "MFLOW", "TPG", "GT+ALL", "LSEARCH"),
            seed=2,
        )
        point = result.points[0]
        assert point.score("TPG") >= point.score("MFLOW") - 1e-6
        assert point.score("GT+ALL") >= point.score("ONLINE") - 1e-6
        assert point.score("LSEARCH") >= point.score("GT+ALL") - 1e-6


    def test_cli_charts_flag(self, capsys):
        from repro.experiments.run_all import main

        code = main(["--figures", "fig6", "--scale", "0.05", "--charts"])
        assert code == 0
        printed = capsys.readouterr().out
        assert "shared scale" in printed  # sparkline header
