"""White-box tests for the LUB invalidation rules (Theorems V.3/V.4).

These exercise ``_BestResponseDynamics._after_membership_change``
directly: pure growth must keep cached-best watchers clean, an exchange
must apply the quality comparisons, and shrinks must invalidate everyone.
"""

import numpy as np
import pytest

from repro.core.assignment import Assignment
from repro.core.game import _BestResponseDynamics
from repro.core.model import Instance, Task, Worker
from repro.core.quality import CooperationMatrix
from repro.core.validity import compute_valid_pairs
from repro.spatial.geometry import Point


def make_setup(q: np.ndarray, capacity: int = 3, b: int = 2):
    count = q.shape[0]
    origin = Point(0.5, 0.5)
    workers = [
        Worker(worker_id=i, location=origin, speed=1.0, radius=1.0)
        for i in range(count)
    ]
    tasks = [
        Task(task_id=j, location=origin, capacity=capacity, deadline=5.0)
        for j in range(2)
    ]
    instance = Instance(
        workers, tasks, CooperationMatrix(q), min_group_size=b
    )
    pairs = compute_valid_pairs(instance)
    assignment = Assignment(instance, pairs, allow_overflow=True)
    dynamics = _BestResponseDynamics(
        instance, pairs, assignment, tolerance=1e-9, lazy_update=True
    )
    return instance, pairs, assignment, dynamics


class TestLUBInvalidation:
    def test_pure_growth_keeps_cached_best_clean(self):
        q = np.full((5, 5), 0.5)
        instance, pairs, assignment, dynamics = make_setup(q)
        # Worker 4's cached best response is task 0; workers 2, 3 cache
        # task 1.
        dynamics._dirty[:] = False
        dynamics._cached_best[:] = [0, 0, 1, 1, 0]
        assignment.assign(0, 0)
        dynamics._after_membership_change(0)
        # Worker 4 (cached best == 0, per Theorem V.3) stays clean...
        assert not dynamics._dirty[4]
        # ...while workers cached on other tasks must rescan.
        assert dynamics._dirty[2]
        assert dynamics._dirty[3]

    def test_shrink_invalidates_everyone(self):
        q = np.full((5, 5), 0.5)
        instance, pairs, assignment, dynamics = make_setup(q)
        assignment.assign(0, 0)
        assignment.assign(1, 0)
        dynamics._counted[0] = dynamics._counted_subset(0)
        dynamics._dirty[:] = False
        assignment.unassign(1)
        dynamics._after_membership_change(0)
        assert dynamics._dirty.all()

    def test_exchange_applies_quality_comparison(self):
        # Task capacity 2; members {0, 1}. Worker 2 joins and crowds out
        # worker 1 (worker 2 pairs better with 0 than 1 does).
        q = np.zeros((5, 5))
        q[0, 1] = q[1, 0] = 0.4
        q[0, 2] = q[2, 0] = 0.9
        # Watcher 3: prefers the leaver (q[3,1]=0.8 > q[3,2]=0.1).
        q[3, 1] = q[1, 3] = 0.8
        q[3, 2] = q[2, 3] = 0.1
        # Watcher 4: prefers the joiner (q[4,2]=0.7 > q[4,1]=0.2).
        q[4, 2] = q[2, 4] = 0.7
        q[4, 1] = q[1, 4] = 0.2
        instance, pairs, assignment, dynamics = make_setup(q, capacity=2, b=2)
        assignment.assign(0, 0)
        assignment.assign(1, 0)
        dynamics._counted[0] = dynamics._counted_subset(0)
        dynamics._dirty[:] = False
        # Watchers 3 and 4 both cache task 1 (not the changed task).
        dynamics._cached_best[:] = [0, 0, 1, 1, 1]
        assignment.assign(2, 0)  # overflow: counted subset becomes {0, 2}
        dynamics._after_membership_change(0)
        # Theorem V.4 (cached best != changed task): dirty iff the worker
        # prefers the joiner over the leaver.
        assert not dynamics._dirty[3]  # prefers leaver: cannot be lured
        assert dynamics._dirty[4]  # prefers joiner: may now want task 0

    def test_exchange_cached_on_task_theorem_v3(self):
        q = np.zeros((5, 5))
        q[0, 1] = q[1, 0] = 0.4
        q[0, 2] = q[2, 0] = 0.9
        q[3, 1] = q[1, 3] = 0.8  # prefers the crowded-out worker 1
        q[3, 2] = q[2, 3] = 0.1
        q[4, 2] = q[2, 4] = 0.7  # prefers the joiner 2
        q[4, 1] = q[1, 4] = 0.2
        instance, pairs, assignment, dynamics = make_setup(q, capacity=2, b=2)
        assignment.assign(0, 0)
        assignment.assign(1, 0)
        dynamics._counted[0] = dynamics._counted_subset(0)
        dynamics._dirty[:] = False
        # Watchers 3 and 4 cache the changed task itself.
        dynamics._cached_best[:] = [0, 0, 1, 0, 0]
        assignment.assign(2, 0)
        dynamics._after_membership_change(0)
        # Theorem V.3 (cached best == changed task): dirty iff the worker
        # preferred the leaver (its anchor there was crowded out).
        assert dynamics._dirty[3]
        assert not dynamics._dirty[4]

    def test_mover_itself_always_dirty_on_exchange(self):
        q = np.zeros((4, 4))
        q[0, 1] = q[1, 0] = 0.4
        q[0, 2] = q[2, 0] = 0.9
        instance, pairs, assignment, dynamics = make_setup(q, capacity=2, b=2)
        assignment.assign(0, 0)
        assignment.assign(1, 0)
        dynamics._counted[0] = dynamics._counted_subset(0)
        dynamics._dirty[:] = False
        assignment.assign(2, 0)
        dynamics._after_membership_change(0)
        assert dynamics._dirty[1]  # the crowded-out worker
        assert dynamics._dirty[2]  # the joiner
