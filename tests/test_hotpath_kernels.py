"""Parity suite for the PR 9 hot-path kernels.

Three surfaces, each with a scalar oracle it must match repr-exactly:

* the **mid-round dirty rescan** — after an accepted move the native
  engine re-scores all affected prepass rows in one batched call; the
  python kernel replays the same scalar scans, so assignments, per-round
  move counts and every evaluation counter must agree bitwise;
* the **stage-1 group kernel** — TPG's ``greedy_best_group`` /
  ``exact_best_group`` evaluated through ``kernels.best_group`` vs the
  store-backed python path (shared selection primitives make this
  bit-identical by construction; the tests enforce it stays that way);
* the **vectorized validity construction** — covered by
  ``tests/test_validity.py`` and the differential harness; here the
  profiling harness riding on the same PR gets its smoke coverage.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.audit.corpus import load_corpus_entry
from repro.core.assignment import Assignment
from repro.core.game import (
    DEFAULT_TOLERANCE,
    _BestResponseDynamics,
    solve_game_theoretic,
)
from repro.core.kernels import NUMBA_AVAILABLE, best_group
from repro.core.model import Instance
from repro.core.quality_store import (
    SharedDenseQualityStore,
    SparseQualityStore,
)
from repro.core.sharding.reconcile import seed_border_groups
from repro.core.stats import SolverStats
from repro.core.tpg import (
    EXACT_SEED_THRESHOLD,
    greedy_best_group,
    solve_tpg,
    solve_tpg_with_stats,
)
from repro.core.validity import compute_valid_pairs
from tests.conftest import make_dense_instance

CORPUS_DIR = "tests/data/audit_corpus"
BACKENDS = ("dense", "sparse", "shared")


def _with_backend(instance: Instance, backend: str):
    """``(instance on backend, cleanup-or-None)`` — audit-runner idiom."""
    dense = instance.quality.to_dense()
    if backend == "dense":
        return instance, None
    if backend == "sparse":
        store = SparseQualityStore.from_dense(dense, prior=0.0)
    else:
        store = SharedDenseQualityStore.create(dense)
    swapped = Instance(
        workers=instance.workers,
        tasks=instance.tasks,
        quality=store,
        min_group_size=instance.min_group_size,
        now=instance.now,
    )
    if backend == "shared":

        def cleanup() -> None:
            store.close()
            store.unlink()

        return swapped, cleanup
    return swapped, None


def _signature(assignment) -> tuple:
    return (
        tuple(assignment.to_pairs()),
        repr(assignment.total_score()),
        repr(assignment),
    )


def _contended_instance() -> Instance:
    """Dense 60w/12t batch where best-response actually moves workers.

    Smaller dense fixtures converge at the TPG seed (zero moves), which
    would leave the mid-round rescan path untested.
    """
    return make_dense_instance(60, 12, seed=3)


# ---------------------------------------------------------------------------
# Mid-round dirty rescan
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize(
    "label, kwargs",
    [
        ("GT", dict(epsilon=0.0, lazy_update=False)),
        ("GT+ALL", dict(epsilon=0.01, lazy_update=True)),
    ],
)
class TestMidRoundRescanParity:
    def test_solve_assignment_and_counters_match(self, label, kwargs, backend):
        base = _contended_instance()
        instance, cleanup = _with_backend(base, backend)
        try:
            valid_pairs = compute_valid_pairs(instance)
            python = solve_game_theoretic(
                instance, valid_pairs, kernel="python", **kwargs
            )
            native = solve_game_theoretic(
                instance, valid_pairs, kernel="native", **kwargs
            )
        finally:
            if cleanup is not None:
                cleanup()
        assert _signature(native.assignment) == _signature(python.assignment)
        assert repr(native.final_score) == repr(python.final_score)
        assert (native.moves, native.rounds) == (python.moves, python.rounds)
        # The batched refresh must not change *when* gains are evaluated,
        # only where the arithmetic runs — counter parity proves it.
        for counter in ("gain_evaluations", "cache_hits", "cache_misses"):
            assert getattr(native.stats, counter) == getattr(
                python.stats, counter
            ), counter
        assert python.stats.rescan_batches == 0
        assert native.moves > 0, "fixture must force mid-round moves"
        assert native.stats.rescan_batches > 0
        assert native.stats.rescan_rows >= native.stats.rescan_batches


class TestScriptedRescanRounds:
    """Forced-move scripts driving the dynamics engine round by round."""

    def _scripted(self, instance, valid_pairs, kernel, orders):
        assignment = Assignment(instance, valid_pairs, allow_overflow=True)
        for worker, task in solve_tpg(instance, valid_pairs).to_pairs():
            assignment.assign(worker, task)
        stats = SolverStats()
        dynamics = _BestResponseDynamics(
            instance,
            valid_pairs,
            assignment,
            DEFAULT_TOLERANCE,
            lazy_update=False,
            stats=stats,
            kernel=kernel,
        )
        trace = []
        for order in orders:
            moves, gain = dynamics.run_round(players=order)
            trace.append(
                (
                    moves,
                    repr(gain),
                    repr(sorted(assignment.to_pairs())),
                    repr(assignment.total_score()),
                )
            )
        return trace, stats

    def test_full_rounds_use_batched_rescan_and_match(self):
        instance = _contended_instance()
        valid_pairs = compute_valid_pairs(instance)
        orders = [None] * 4
        python_trace, python_stats = self._scripted(
            instance, valid_pairs, "python", orders
        )
        native_trace, native_stats = self._scripted(
            instance, valid_pairs, "native", orders
        )
        assert native_trace == python_trace
        assert sum(step[0] for step in python_trace) > 0
        assert native_stats.rescan_batches > 0
        assert python_stats.rescan_batches == 0
        assert (
            native_stats.gain_evaluations == python_stats.gain_evaluations
        )

    def test_restricted_orders_match_without_prepass(self):
        """Reconcile-style restricted rounds: custom player orders skip
        the all-workers prepass by design, falling back to the
        single-row kernel rescans — parity must hold there too."""
        instance = _contended_instance()
        valid_pairs = compute_valid_pairs(instance)
        count = instance.worker_count
        permutation = (
            np.random.default_rng(7).permutation(count).tolist()
        )
        orders = [
            list(range(count)),
            list(reversed(range(count))),
            permutation,
        ]
        python_trace, _ = self._scripted(
            instance, valid_pairs, "python", orders
        )
        native_trace, native_stats = self._scripted(
            instance, valid_pairs, "native", orders
        )
        assert native_trace == python_trace
        assert sum(step[0] for step in python_trace) > 0
        assert native_stats.rescan_batches == 0  # documented: no prepass


# ---------------------------------------------------------------------------
# TPG stage-1 group kernel
# ---------------------------------------------------------------------------

#: (candidate_count, group_size) shapes spanning both selection regimes
#: and the exactly-8-member boundary (= game._VECTOR_GROUP_LIMIT, the
#: scalar/vector watershed elsewhere in the engine): exact enumeration
#: at count <= EXACT_SEED_THRESHOLD, greedy above it.
GROUP_SHAPES = (
    (8, 8),  # exact, single combination, 8-member group
    (9, 8),  # exact, 8-member group with a real choice
    (12, 3),  # exact, at the threshold
    (13, 3),  # greedy, just past the threshold
    (20, 8),  # greedy, 8-member group
    (24, 2),  # greedy, pair groups
)


class TestStageOneGroupKernel:
    @pytest.mark.parametrize("backend", ("dense", "sparse"))
    @pytest.mark.parametrize("count, size", GROUP_SHAPES)
    def test_best_group_matches_store_path(self, count, size, backend):
        base = make_dense_instance(40, 6, seed=9)
        instance, cleanup = _with_backend(base, backend)
        try:
            quality = instance.quality
            buffers = quality.as_kernel_buffers()
            rng = np.random.default_rng(count * 31 + size)
            for trial in range(3):
                candidates = sorted(
                    int(x)
                    for x in rng.choice(
                        instance.worker_count, size=count, replace=False
                    )
                )
                store_group, store_score = greedy_best_group(
                    quality, candidates, size
                )
                stats = SolverStats()
                kernel_group, kernel_score = greedy_best_group(
                    quality, candidates, size, buffers=buffers, stats=stats
                )
                assert kernel_group == store_group, (count, size, trial)
                assert repr(kernel_score) == repr(store_score)
                assert len(kernel_group) == size
                dispatched = (
                    stats.kernel_compiled_calls + stats.kernel_fallback_calls
                )
                assert dispatched > 0
        finally:
            if cleanup is not None:
                cleanup()

    def test_exact_regime_boundary_is_honoured(self):
        # C(12, 3) enumerates; 13 candidates go greedy — both through
        # the kernel, both matching the store path (previous test); here
        # we pin the threshold itself so a drive-by change is visible.
        assert EXACT_SEED_THRESHOLD == 12

    def test_too_few_candidates_returns_empty(self):
        instance = make_dense_instance(10, 2, seed=1)
        buffers = instance.quality.as_kernel_buffers()
        group, score = greedy_best_group(
            instance.quality, [1, 2], 3, buffers=buffers
        )
        assert group == [] and score == 0.0

    @pytest.mark.parametrize(
        "name",
        ["kernel_group8", "kernel_solo_worker", "kernel_zero_pairs"],
    )
    def test_tpg_corpus_entry_is_kernel_invariant(self, name):
        instance, metadata = load_corpus_entry(f"{CORPUS_DIR}/{name}.json")
        assert metadata["findings"] == []
        valid_pairs = compute_valid_pairs(instance)
        python = solve_tpg_with_stats(
            instance, valid_pairs, kernel="python"
        )
        native = solve_tpg_with_stats(
            instance, valid_pairs, kernel="native"
        )
        assert _signature(native.assignment) == _signature(python.assignment)
        assert native.seeded_tasks == python.seeded_tasks

    def test_tpg_native_reports_kernel_dispatches(self):
        instance = _contended_instance()
        valid_pairs = compute_valid_pairs(instance)
        native = solve_tpg_with_stats(instance, valid_pairs, kernel="native")
        dispatched = (
            native.stats.kernel_compiled_calls
            + native.stats.kernel_fallback_calls
        )
        assert dispatched > 0, "native stage 1 never entered the kernel"
        if not NUMBA_AVAILABLE:
            assert native.stats.kernel_compiled_calls == 0
        python = solve_tpg_with_stats(instance, valid_pairs, kernel="python")
        assert (
            python.stats.kernel_compiled_calls
            + python.stats.kernel_fallback_calls
        ) == 0

    def test_best_group_rejects_short_candidate_lists(self):
        # best_group's contract: the caller (greedy/exact_best_group)
        # guarantees len(candidates) >= size >= 2 — the guard lives
        # there, so tpg.greedy_best_group with buffers stays total.
        instance = make_dense_instance(12, 2, seed=2)
        buffers = instance.quality.as_kernel_buffers()
        group, score = best_group(buffers, list(range(4)), 3)
        assert len(group) == 3
        assert isinstance(score, float)


class TestSeedBorderGroupsKernel:
    def test_border_seeding_is_kernel_invariant(self):
        instance = _contended_instance()
        valid_pairs = compute_valid_pairs(instance)

        def run(kernel):
            assignment = Assignment(instance, valid_pairs, allow_overflow=True)
            stats = SolverStats()
            seeded = seed_border_groups(
                instance,
                valid_pairs,
                assignment,
                range(instance.worker_count),
                range(instance.task_count),
                kernel=kernel,
                stats=stats,
            )
            return seeded, _signature(assignment), stats

        python_seeded, python_sig, python_stats = run("python")
        native_seeded, native_sig, native_stats = run("native")
        assert native_seeded == python_seeded > 0
        assert native_sig == python_sig
        assert (
            native_stats.kernel_compiled_calls
            + native_stats.kernel_fallback_calls
        ) > 0
        assert (
            python_stats.kernel_compiled_calls
            + python_stats.kernel_fallback_calls
        ) == 0
