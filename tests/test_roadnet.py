"""Tests for the road-network travel substrate."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.validity import compute_valid_pairs
from repro.spatial.geometry import Point
from repro.spatial.roadnet import (
    EuclideanTravel,
    RoadNetwork,
    RoadNetworkTravel,
    grid_network,
    random_geometric_network,
)

from tests.conftest import make_dense_instance


class TestRoadNetwork:
    def test_add_edge_validation(self):
        network = RoadNetwork()
        a = network.add_node(Point(0, 0))
        b = network.add_node(Point(1, 0))
        with pytest.raises(ValueError):
            network.add_edge(a, 9)
        with pytest.raises(ValueError):
            network.add_edge(a, a)
        with pytest.raises(ValueError):
            network.add_edge(a, b, weight=-1.0)

    def test_default_weight_is_length(self):
        network = RoadNetwork()
        a = network.add_node(Point(0, 0))
        b = network.add_node(Point(0.3, 0.4))
        network.add_edge(a, b)
        assert network.shortest_distances(a)[b] == pytest.approx(0.5)

    def test_grid_network_shape(self):
        network = grid_network(4, 5)
        assert network.node_count == 20
        assert network.edge_count == 4 * 4 + 3 * 5  # horizontal + vertical

    def test_grid_network_validation(self):
        with pytest.raises(ValueError):
            grid_network(1, 5)

    def test_random_geometric(self):
        network = random_geometric_network(40, connect_radius=0.3, seed=0)
        assert network.node_count == 40
        assert network.edge_count > 0

    def test_nearest_node(self):
        network = grid_network(3, 3)
        corner = network.nearest_node(Point(0.02, 0.03))
        assert network.node_points[corner] == Point(0.0, 0.0)

    def test_dijkstra_matches_networkx(self):
        rng = np.random.default_rng(3)
        network = random_geometric_network(30, connect_radius=0.35, seed=3)
        graph = nx.Graph()
        for node in range(network.node_count):
            graph.add_node(node)
        for node in range(network.node_count):
            for neighbour, weight in network.adjacency[node]:
                graph.add_edge(node, neighbour, weight=weight)
        source = int(rng.integers(network.node_count))
        expected = nx.single_source_dijkstra_path_length(graph, source)
        distances = network.shortest_distances(source)
        for node in range(network.node_count):
            if node in expected:
                assert distances[node] == pytest.approx(expected[node])
            else:
                assert np.isinf(distances[node])

    def test_shortest_distances_validation(self):
        network = grid_network(2, 2)
        with pytest.raises(ValueError):
            network.shortest_distances(99)


class TestTravelModels:
    def test_euclidean_model(self):
        model = EuclideanTravel()
        assert model.distance(Point(0, 0), Point(3, 4)) == 5.0
        batch = model.distances_from(Point(0, 0), [Point(1, 0), Point(0, 2)])
        assert batch.tolist() == [1.0, 2.0]

    def test_empty_network_rejected(self):
        with pytest.raises(ValueError):
            RoadNetworkTravel(RoadNetwork())

    def test_road_distance_dominates_euclidean(self):
        network = grid_network(5, 5, seed=0)
        model = RoadNetworkTravel(network)
        rng = np.random.default_rng(1)
        for _ in range(30):
            a = Point(*rng.uniform(0, 1, size=2))
            b = Point(*rng.uniform(0, 1, size=2))
            assert model.distance(a, b) >= a.distance_to(b) - 1e-9

    def test_manhattan_like_detour(self):
        """On a street grid, the corner-to-corner trip is ~L1, not L2."""
        network = grid_network(11, 11)
        model = RoadNetworkTravel(network)
        distance = model.distance(Point(0, 0), Point(1, 1))
        assert distance == pytest.approx(2.0, abs=0.05)

    def test_disconnected_fallback(self):
        network = RoadNetwork()
        network.add_node(Point(0.1, 0.1))
        network.add_node(Point(0.9, 0.9))
        # No edges: components are disconnected; direct walking applies.
        model = RoadNetworkTravel(network)
        assert model.distance(Point(0.1, 0.1), Point(0.9, 0.9)) == pytest.approx(
            Point(0.1, 0.1).distance_to(Point(0.9, 0.9))
        )


class TestValidityIntegration:
    def test_road_validity_subset_of_euclidean(self):
        instance = make_dense_instance(40, 8, seed=2)
        euclidean = compute_valid_pairs(instance)
        road = compute_valid_pairs(
            instance,
            travel_model=RoadNetworkTravel(grid_network(6, 6)),
        )
        for worker in range(instance.worker_count):
            assert set(road.tasks_for_worker[worker]) <= set(
                euclidean.tasks_for_worker[worker]
            )

    def test_euclidean_travel_model_matches_default(self):
        instance = make_dense_instance(30, 6, seed=3)
        default = compute_valid_pairs(instance)
        modelled = compute_valid_pairs(instance, travel_model=EuclideanTravel())
        assert default == modelled

    def test_solvers_run_on_road_validity(self):
        from repro.core.tpg import solve_tpg

        instance = make_dense_instance(30, 6, seed=4)
        road = compute_valid_pairs(
            instance, travel_model=RoadNetworkTravel(grid_network(5, 5))
        )
        assignment = solve_tpg(instance, road)
        assignment.check_feasible()

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10**6))
    def test_property_subset_holds(self, seed):
        from repro.datasets.synthetic import generate_instance

        instance = generate_instance(
            25, 6, speed_range=(0.1, 0.4), radius_range=(0.2, 0.5), seed=seed
        )
        euclidean = compute_valid_pairs(instance)
        road = compute_valid_pairs(
            instance,
            travel_model=RoadNetworkTravel(grid_network(4, 4, seed=seed)),
        )
        assert road.pair_count <= euclidean.pair_count