"""Tests for the batch-based framework (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.tpg import solve_tpg
from repro.simulation.batch import BatchConfig, BatchSimulator
from repro.simulation.population import Population


def tpg_solver(instance, valid_pairs):
    return solve_tpg(instance, valid_pairs)


@pytest.fixture(scope="module")
def population() -> Population:
    return Population.synthetic(150, 60, seed=5)


def quick_config(**overrides) -> BatchConfig:
    defaults = dict(
        rounds=4,
        workers_per_round=60,
        tasks_per_round=15,
        capacity=4,
        min_group_size=3,
        remaining_time=3.0,
        speed_range=(0.05, 0.2),
        radius_range=(0.2, 0.4),
    )
    defaults.update(overrides)
    return BatchConfig(**defaults)


class TestPopulation:
    def test_synthetic_shapes(self, population):
        assert population.worker_pool_size == 150
        assert population.task_pool_size == 60

    def test_validation(self):
        from repro.core.quality import CooperationMatrix

        with pytest.raises(ValueError):
            Population(
                worker_locations=np.zeros((5, 3)),
                task_locations=np.zeros((2, 2)),
                quality=CooperationMatrix.random_uniform(5, seed=0),
            )
        with pytest.raises(ValueError):
            Population(
                worker_locations=np.zeros((5, 2)),
                task_locations=np.zeros((2, 2)),
                quality=CooperationMatrix.random_uniform(4, seed=0),
            )

    def test_from_meetup(self):
        from repro.datasets.meetup import generate_meetup_dataset

        dataset = generate_meetup_dataset(
            user_count=40, event_count=15, group_count=8, seed=1
        )
        population = Population.from_meetup(dataset)
        assert population.worker_pool_size == 40
        assert population.task_pool_size == 15

    def test_sample_workers_distinct_and_excluding(self, population):
        rng = np.random.default_rng(0)
        exclude = {0, 1, 2}
        sample = population.sample_workers(30, rng, exclude=exclude)
        assert len(sample) == 30
        assert len(set(sample.tolist())) == 30
        assert not (set(sample.tolist()) & exclude)

    def test_sample_workers_exhausted_pool(self, population):
        rng = np.random.default_rng(0)
        sample = population.sample_workers(
            1000, rng, exclude=set(range(100))
        )
        assert len(sample) == 50

    def test_sample_task_sites_with_replacement(self, population):
        rng = np.random.default_rng(0)
        sites = population.sample_task_sites(200, rng)
        assert len(sites) == 200
        assert sites.min() >= 0
        assert sites.max() < 60

    def test_quality_kinds(self):
        uniform = Population.synthetic(30, 10, quality_kind="uniform", seed=0)
        assert uniform.quality.size == 30
        with pytest.raises(ValueError):
            Population.synthetic(30, 10, quality_kind="zipf", seed=0)


class TestBatchConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            quick_config(rounds=0)
        with pytest.raises(ValueError):
            quick_config(capacity=2, min_group_size=3)
        with pytest.raises(ValueError):
            quick_config(remaining_time=0.0)


class TestBatchSimulator:
    def test_runs_all_rounds(self, population):
        simulator = BatchSimulator(population, quick_config(), tpg_solver, seed=0)
        report = simulator.run()
        assert len(report.rounds) == 4
        assert report.total_score >= 0.0
        assert report.mean_batch_seconds > 0.0

    def test_round_metrics_consistent(self, population):
        simulator = BatchSimulator(population, quick_config(), tpg_solver, seed=1)
        report = simulator.run()
        for metrics in report.rounds:
            assert metrics.worker_count <= 60
            assert metrics.task_count <= 15
            assert metrics.assigned_workers <= metrics.worker_count
            assert metrics.completed_tasks <= metrics.task_count
            assert metrics.score >= 0.0

    def test_same_seed_same_stream(self, population):
        """Two simulators with identical seeds see identical batches."""
        captured: list[list[tuple[int, int]]] = [[], []]

        def make_hook(slot):
            def hook(instance, valid_pairs):
                captured[slot].append(
                    (instance.worker_count, instance.task_count, valid_pairs.pair_count)
                )

            return hook

        for slot in (0, 1):
            BatchSimulator(
                population,
                quick_config(rounds=2),
                tpg_solver,
                seed=42,
                instance_hook=make_hook(slot),
            ).run()
        assert captured[0] == captured[1]

    def test_busy_workers_not_resampled(self, population):
        """A worker serving a long task cannot appear in the next batch."""
        seen: list[set[int]] = []
        served: list[set[int]] = []

        def hook(instance, valid_pairs):
            seen.append({w.worker_id for w in instance.workers})

        config = quick_config(
            rounds=2, task_duration=5.0, workers_per_round=140
        )
        simulator = BatchSimulator(
            population, config, tpg_solver, seed=3, instance_hook=hook
        )

        original_solver = simulator.solver

        def capturing_solver(instance, valid_pairs):
            assignment = original_solver(instance, valid_pairs)
            busy = {
                instance.workers[w].worker_id
                for w, _ in assignment.to_pairs()
                if assignment.assigned_count(assignment.task_of(w))
                >= config.min_group_size
            }
            served.append(busy)
            return assignment

        simulator.solver = capturing_solver
        simulator.run()
        assert len(seen) == 2
        # Workers serving groups in round 0 must be absent from round 1.
        assert not (served[0] & seen[1])

    def test_carryover_keeps_unserved_tasks(self, population):
        """With carryover, unserved tasks reappear until expiry."""
        task_ids: list[set[int]] = []

        def hook(instance, valid_pairs):
            task_ids.append({t.task_id for t in instance.tasks})

        config = quick_config(rounds=3, workers_per_round=10, tasks_per_round=12)
        BatchSimulator(
            population, config, tpg_solver, seed=4, instance_hook=hook
        ).run()
        # With only 10 workers most tasks go unserved and must carry over.
        assert task_ids[0] & task_ids[1]

    def test_no_carryover(self, population):
        task_ids: list[set[int]] = []

        def hook(instance, valid_pairs):
            task_ids.append({t.task_id for t in instance.tasks})

        config = quick_config(
            rounds=2, workers_per_round=10, carryover=False
        )
        BatchSimulator(
            population, config, tpg_solver, seed=5, instance_hook=hook
        ).run()
        assert not (task_ids[0] & task_ids[1])

    def test_expired_tasks_dropped(self, population):
        """Tasks older than their deadline never reappear."""
        rounds_seen: dict[int, list[int]] = {}

        def hook(instance, valid_pairs):
            index = len(set(rounds_seen.get(-1, [])))
            for task in instance.tasks:
                rounds_seen.setdefault(task.task_id, []).append(instance.now)

        config = quick_config(
            rounds=5, workers_per_round=5, remaining_time=2.0
        )
        BatchSimulator(
            population, config, tpg_solver, seed=6, instance_hook=hook
        ).run()
        for task_id, timestamps in rounds_seen.items():
            if task_id < 0:
                continue
            assert max(timestamps) - min(timestamps) <= 2.0 + 1e-9

    def test_random_solver_works_in_framework(self, population):
        from repro.core.baselines.random_assign import solve_random

        rng = np.random.default_rng(0)

        def solver(instance, valid_pairs):
            return solve_random(instance, valid_pairs, seed=rng)

        report = BatchSimulator(
            population, quick_config(), solver, seed=7
        ).run()
        assert len(report.rounds) == 4


class TestWorkerParticipation:
    def test_validation(self):
        with pytest.raises(ValueError):
            quick_config(worker_participation=0.0)
        with pytest.raises(ValueError):
            quick_config(worker_participation=1.5)

    def test_partial_participation_shrinks_batches(self, population):
        full = BatchSimulator(
            population, quick_config(), tpg_solver, seed=11
        ).run()
        partial = BatchSimulator(
            population,
            quick_config(worker_participation=0.5),
            tpg_solver,
            seed=11,
        ).run()
        assert sum(r.worker_count for r in partial.rounds) < sum(
            r.worker_count for r in full.rounds
        )
