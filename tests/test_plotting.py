"""Tests for the terminal visualizations."""

import pytest

from repro.core.tpg import solve_tpg
from repro.core.validity import compute_valid_pairs
from repro.experiments.plotting import render_curves, render_figure_charts, render_map

from tests.conftest import make_dense_instance


@pytest.fixture(scope="module")
def figure_result():
    from repro.experiments.figures import fig2_capacity
    from repro.experiments.config import ExperimentSettings

    quick = ExperimentSettings(
        rounds=2,
        workers_per_round=50,
        tasks_per_round=10,
        speed_range=(0.05, 0.2),
        radius_range=(0.2, 0.4),
        dataset="unif",
    )
    return fig2_capacity(
        base=quick, values=(3, 4), approaches=("RAND", "TPG"), seed=0
    )


class TestRenderMap:
    def test_grid_dimensions(self):
        instance = make_dense_instance(20, 3, seed=1)
        art = render_map(instance, width=40, height=12)
        lines = art.splitlines()
        assert lines[0] == "+" + "-" * 40 + "+"
        assert len(lines) == 12 + 3  # borders + legend
        assert all(len(line) == 42 for line in lines[:-1])

    def test_contains_tasks_and_workers(self):
        instance = make_dense_instance(20, 3, seed=2)
        art = render_map(instance)
        assert any(ch.isdigit() for ch in art)
        assert "." in art

    def test_assigned_workers_lettered(self):
        instance = make_dense_instance(20, 3, seed=3)
        pairs = compute_valid_pairs(instance)
        assignment = solve_tpg(instance, pairs)
        art = render_map(instance, assignment)
        assert any(ch in "abc" for ch in art)

    def test_bad_dimensions(self):
        instance = make_dense_instance(5, 2, min_group_size=2, capacity=2, seed=0)
        with pytest.raises(ValueError):
            render_map(instance, width=1)


class TestRenderCurves:
    def test_contains_all_series(self, figure_result):
        chart = render_curves(
            figure_result, lambda p, a: p.score(a), "scores"
        )
        assert "RAND" in chart and "TPG" in chart
        assert "x: 3 4" in chart

    def test_shared_scale_in_header(self, figure_result):
        chart = render_curves(
            figure_result, lambda p, a: p.score(a), "scores"
        )
        assert "shared scale" in chart

    def test_both_panels(self, figure_result):
        charts = render_figure_charts(figure_result)
        assert "(a) Total Cooperation Score" in charts
        assert "(b) Batch Running Time" in charts

    def test_empty_result(self):
        from repro.experiments.figures import FigureResult

        empty = FigureResult(figure="Figure X", parameter="p", approaches=("TPG",))
        assert "(no data)" in render_curves(empty, lambda p, a: 0.0, "scores")
