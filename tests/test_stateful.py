"""Stateful (model-based) property tests with hypothesis.

Three rule-based state machines drive long random operation sequences:

* the R-tree against a brute-force list model (insert/delete/query must
  always agree, invariants must always hold);
* the Assignment against a from-scratch Equation 2/3 evaluation
  (incremental pair sums and revenues must never drift);
* the RevenueCache directly, with random join/leave/exchange moves
  including deep overflow states, against :func:`group_revenue` — the
  incremental engine's determinism contract.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.core.assignment import UNASSIGNED, Assignment
from repro.core.quality import CooperationMatrix
from repro.core.revenue import RevenueCache, best_counted_subset, group_revenue
from repro.spatial.geometry import Point
from repro.spatial.rtree import RTree

from tests.conftest import make_dense_instance

coordinates = st.tuples(
    st.floats(0, 1, allow_nan=False), st.floats(0, 1, allow_nan=False)
)


class RTreeMachine(RuleBasedStateMachine):
    """The R-tree must behave exactly like a list of (id, point)."""

    def __init__(self):
        super().__init__()
        self.tree = RTree(max_entries=4)
        self.model: list[tuple[int, Point]] = []
        self.next_id = 0

    @rule(xy=coordinates)
    def insert(self, xy):
        point = Point(*xy)
        self.tree.insert(self.next_id, point)
        self.model.append((self.next_id, point))
        self.next_id += 1

    @rule(data=st.data())
    @precondition(lambda self: self.model)
    def delete_existing(self, data):
        index = data.draw(st.integers(0, len(self.model) - 1))
        item, point = self.model.pop(index)
        assert self.tree.delete(item, point)

    @rule(xy=coordinates)
    def delete_missing(self, xy):
        assert not self.tree.delete(-1, Point(*xy))

    @rule(xy=coordinates, radius=st.floats(0, 1.5))
    def query_circle(self, xy, radius):
        center = Point(*xy)
        expected = sorted(
            item for item, p in self.model if p.distance_to(center) <= radius
        )
        assert sorted(self.tree.query_circle(center, radius)) == expected

    @rule(xy=coordinates, k=st.integers(1, 5))
    def nearest(self, xy, k):
        center = Point(*xy)
        result = self.tree.nearest(center, k)
        expected = sorted(p.distance_to(center) for _, p in self.model)[:k]
        assert [round(d, 12) for _, d in result] == [round(d, 12) for d in expected]

    @invariant()
    def structure_is_sound(self):
        self.tree.check_invariants()
        assert len(self.tree) == len(self.model)


class AssignmentMachine(RuleBasedStateMachine):
    """Incremental revenue caches must match from-scratch evaluation."""

    def __init__(self):
        super().__init__()
        self.instance = make_dense_instance(14, 4, capacity=4, seed=99)
        self.assignment = Assignment(self.instance, allow_overflow=True)
        self.model_task_of = [UNASSIGNED] * self.instance.worker_count

    @initialize()
    def setup(self):
        pass

    @rule(worker=st.integers(0, 13), task=st.integers(0, 3))
    def assign_or_move(self, worker, task):
        if self.model_task_of[worker] == task:
            return
        self.assignment.move(worker, task)
        self.model_task_of[worker] = task

    @rule(worker=st.integers(0, 13))
    def unassign(self, worker):
        if self.model_task_of[worker] == UNASSIGNED:
            return
        self.assignment.unassign(worker)
        self.model_task_of[worker] = UNASSIGNED

    @invariant()
    def revenues_match_scratch(self):
        for task in range(self.instance.task_count):
            members = [
                worker
                for worker, assigned in enumerate(self.model_task_of)
                if assigned == task
            ]
            assert sorted(self.assignment.members(task)) == members
            expected = group_revenue(
                self.instance.quality,
                members,
                self.instance.tasks[task].capacity,
                self.instance.min_group_size,
            )
            assert abs(self.assignment.revenue_of(task) - expected) < 1e-8
        assert (
            abs(self.assignment.total_score() - self.assignment.recompute_total())
            < 1e-8
        )


class RevenueCacheMachine(RuleBasedStateMachine):
    """The incremental revenue engine against from-scratch Equation 2.

    Drives join/leave/exchange directly on a :class:`RevenueCache` whose
    tasks have mixed capacities and are allowed to overflow well past
    ``a_j``, so both the delta path and the peeling path are exercised.
    After every step each task's cached revenue, counted subset and the
    total must agree with the uncached oracle.
    """

    WORKERS = 12

    def __init__(self):
        super().__init__()
        self.quality = CooperationMatrix.random_uniform(self.WORKERS, seed=17)
        self.capacities = [2, 3, 4]
        self.minimum = 3
        self.cache = RevenueCache(self.quality, self.capacities, self.minimum)
        self.model: list[set[int]] = [set() for _ in self.capacities]

    def _task_of(self, worker):
        for task, members in enumerate(self.model):
            if worker in members:
                return task
        return None

    @rule(worker=st.integers(0, WORKERS - 1), task=st.integers(0, 2))
    def join(self, worker, task):
        if self._task_of(worker) is not None:
            return
        self.cache.join(worker, task)
        self.model[task].add(worker)

    @rule(worker=st.integers(0, WORKERS - 1))
    def leave(self, worker):
        task = self._task_of(worker)
        if task is None:
            return
        self.cache.leave(worker, task)
        self.model[task].discard(worker)

    @rule(
        task=st.integers(0, 2),
        entering=st.integers(0, WORKERS - 1),
        data=st.data(),
    )
    def exchange(self, task, entering, data):
        if not self.model[task] or self._task_of(entering) is not None:
            return
        leaving = data.draw(
            st.sampled_from(sorted(self.model[task])), label="leaving"
        )
        self.cache.exchange(task, leaving=leaving, entering=entering)
        self.model[task].discard(leaving)
        self.model[task].add(entering)

    @rule(task=st.integers(0, 2))
    def clear(self, task):
        self.cache.clear(task)
        self.model[task].clear()

    @invariant()
    def cache_matches_oracle(self):
        for task, members in enumerate(self.model):
            assert sorted(self.cache.members(task)) == sorted(members)
            expected = group_revenue(
                self.quality,
                sorted(members),
                self.capacities[task],
                self.minimum,
            )
            assert abs(self.cache.revenue(task) - expected) < 1e-9
            if len(members) > self.capacities[task]:
                # Over capacity the refresh peels from scratch, so the
                # counted subset (and the revenue) are exactly the
                # oracle's, not merely within tolerance.
                assert self.cache.counted_subset(task) == tuple(
                    best_counted_subset(
                        self.quality, sorted(members), self.capacities[task]
                    )
                )
                assert self.cache.revenue(task) == expected
        assert abs(self.cache.total() - self.cache.recompute_total()) < 1e-9


TestRevenueCacheStateful = RevenueCacheMachine.TestCase
TestRevenueCacheStateful.settings = settings(
    max_examples=30, stateful_step_count=60, deadline=None
)

TestRTreeStateful = RTreeMachine.TestCase
TestRTreeStateful.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)

TestAssignmentStateful = AssignmentMachine.TestCase
TestAssignmentStateful.settings = settings(
    max_examples=25, stateful_step_count=50, deadline=None
)
