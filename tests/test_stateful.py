"""Stateful (model-based) property tests with hypothesis.

Two rule-based state machines drive long random operation sequences:

* the R-tree against a brute-force list model (insert/delete/query must
  always agree, invariants must always hold);
* the Assignment against a from-scratch Equation 2/3 evaluation
  (incremental pair sums and revenues must never drift).
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.core.assignment import UNASSIGNED, Assignment
from repro.core.revenue import group_revenue
from repro.spatial.geometry import Point
from repro.spatial.rtree import RTree

from tests.conftest import make_dense_instance

coordinates = st.tuples(
    st.floats(0, 1, allow_nan=False), st.floats(0, 1, allow_nan=False)
)


class RTreeMachine(RuleBasedStateMachine):
    """The R-tree must behave exactly like a list of (id, point)."""

    def __init__(self):
        super().__init__()
        self.tree = RTree(max_entries=4)
        self.model: list[tuple[int, Point]] = []
        self.next_id = 0

    @rule(xy=coordinates)
    def insert(self, xy):
        point = Point(*xy)
        self.tree.insert(self.next_id, point)
        self.model.append((self.next_id, point))
        self.next_id += 1

    @rule(data=st.data())
    @precondition(lambda self: self.model)
    def delete_existing(self, data):
        index = data.draw(st.integers(0, len(self.model) - 1))
        item, point = self.model.pop(index)
        assert self.tree.delete(item, point)

    @rule(xy=coordinates)
    def delete_missing(self, xy):
        assert not self.tree.delete(-1, Point(*xy))

    @rule(xy=coordinates, radius=st.floats(0, 1.5))
    def query_circle(self, xy, radius):
        center = Point(*xy)
        expected = sorted(
            item for item, p in self.model if p.distance_to(center) <= radius
        )
        assert sorted(self.tree.query_circle(center, radius)) == expected

    @rule(xy=coordinates, k=st.integers(1, 5))
    def nearest(self, xy, k):
        center = Point(*xy)
        result = self.tree.nearest(center, k)
        expected = sorted(p.distance_to(center) for _, p in self.model)[:k]
        assert [round(d, 12) for _, d in result] == [round(d, 12) for d in expected]

    @invariant()
    def structure_is_sound(self):
        self.tree.check_invariants()
        assert len(self.tree) == len(self.model)


class AssignmentMachine(RuleBasedStateMachine):
    """Incremental revenue caches must match from-scratch evaluation."""

    def __init__(self):
        super().__init__()
        self.instance = make_dense_instance(14, 4, capacity=4, seed=99)
        self.assignment = Assignment(self.instance, allow_overflow=True)
        self.model_task_of = [UNASSIGNED] * self.instance.worker_count

    @initialize()
    def setup(self):
        pass

    @rule(worker=st.integers(0, 13), task=st.integers(0, 3))
    def assign_or_move(self, worker, task):
        if self.model_task_of[worker] == task:
            return
        self.assignment.move(worker, task)
        self.model_task_of[worker] = task

    @rule(worker=st.integers(0, 13))
    def unassign(self, worker):
        if self.model_task_of[worker] == UNASSIGNED:
            return
        self.assignment.unassign(worker)
        self.model_task_of[worker] = UNASSIGNED

    @invariant()
    def revenues_match_scratch(self):
        for task in range(self.instance.task_count):
            members = [
                worker
                for worker, assigned in enumerate(self.model_task_of)
                if assigned == task
            ]
            assert sorted(self.assignment.members(task)) == members
            expected = group_revenue(
                self.instance.quality,
                members,
                self.instance.tasks[task].capacity,
                self.instance.min_group_size,
            )
            assert abs(self.assignment.revenue_of(task) - expected) < 1e-8
        assert (
            abs(self.assignment.total_score() - self.assignment.recompute_total())
            < 1e-8
        )


TestRTreeStateful = RTreeMachine.TestCase
TestRTreeStateful.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)

TestAssignmentStateful = AssignmentMachine.TestCase
TestAssignmentStateful.settings = settings(
    max_examples=25, stateful_step_count=50, deadline=None
)
