"""Tests for the Task-Priority Greedy solver (Algorithm 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.quality import CooperationMatrix
from repro.core.tpg import greedy_best_group, solve_tpg, solve_tpg_with_stats
from repro.core.validity import compute_valid_pairs
from repro.datasets.synthetic import generate_instance

from tests.conftest import make_dense_instance, make_example1_instance


class TestGreedyBestGroup:
    def test_not_enough_candidates(self):
        q = CooperationMatrix.random_uniform(5, seed=0)
        assert greedy_best_group(q, [0, 1], 3) == ([], 0.0)
        assert greedy_best_group(q, [], 2) == ([], 0.0)

    def test_pair_is_exact(self):
        q = np.zeros((4, 4))
        q[0, 1] = q[1, 0] = 0.2
        q[2, 3] = q[3, 2] = 0.9
        matrix = CooperationMatrix(q)
        group, score = greedy_best_group(matrix, [0, 1, 2, 3], 2)
        assert sorted(group) == [2, 3]
        assert score == pytest.approx(1.8)

    def test_group_score_matches_revenue_formula(self):
        q = CooperationMatrix.random_uniform(10, seed=1)
        group, score = greedy_best_group(q, list(range(10)), 4)
        assert len(group) == 4
        assert score == pytest.approx(q.ordered_pair_sum(group) / 3)

    def test_subset_of_candidates(self):
        q = CooperationMatrix.random_uniform(10, seed=2)
        candidates = [1, 4, 7, 9]
        group, _ = greedy_best_group(q, candidates, 3)
        assert set(group) <= set(candidates)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10**6), st.integers(3, 8))
    def test_greedy_close_to_exhaustive(self, seed, count):
        import itertools

        q = CooperationMatrix.random_uniform(count, seed=seed)
        candidates = list(range(count))
        group, score = greedy_best_group(q, candidates, 3)
        best = max(
            q.ordered_pair_sum(list(combo)) / 2
            for combo in itertools.combinations(candidates, 3)
        )
        assert score >= 0.5 * best - 1e-9
        assert score <= best + 1e-9


class TestSolveTPG:
    def test_feasible_on_dense_instance(self):
        instance = make_dense_instance(30, 6, seed=2)
        pairs = compute_valid_pairs(instance)
        assignment = solve_tpg(instance, pairs)
        assignment.check_feasible()
        assert assignment.total_score() > 0

    def test_respects_validity_on_sparse_instance(self):
        instance = generate_instance(80, 15, seed=9)
        pairs = compute_valid_pairs(instance)
        assignment = solve_tpg(instance, pairs)
        assignment.check_feasible()
        for worker, task in assignment.to_pairs():
            assert pairs.is_valid(worker, task)

    def test_computes_valid_pairs_when_omitted(self):
        instance = make_dense_instance(20, 4, seed=3)
        assert solve_tpg(instance).total_score() == pytest.approx(
            solve_tpg(instance, compute_valid_pairs(instance)).total_score()
        )

    def test_beats_random_on_community_instance(self):
        from repro.core.baselines.random_assign import solve_random

        instance = make_dense_instance(40, 6, seed=4)
        pairs = compute_valid_pairs(instance)
        tpg_score = solve_tpg(instance, pairs).total_score()
        random_scores = [
            solve_random(instance, pairs, seed=s).total_score() for s in range(5)
        ]
        assert tpg_score >= max(random_scores)

    def test_solves_example1_optimally(self):
        instance, w, t = make_example1_instance()
        pairs = compute_valid_pairs(instance)
        assignment = solve_tpg(instance, pairs)
        # Optimal: {w1,w4} -> t1 and {w2,w3} -> t2, total 1.8.
        assert assignment.total_score() == pytest.approx(1.8)
        assert sorted(assignment.members(t["t1"])) == [w["w1"], w["w4"]]
        assert sorted(assignment.members(t["t2"])) == [w["w2"], w["w3"]]

    def test_no_workers(self):
        instance = generate_instance(0, 5, seed=0)
        assignment = solve_tpg(instance)
        assert assignment.total_score() == 0.0

    def test_no_tasks(self):
        instance = generate_instance(10, 0, seed=0)
        assignment = solve_tpg(instance)
        assert assignment.total_score() == 0.0

    def test_seeded_tasks_counted(self):
        instance = make_dense_instance(30, 5, seed=6)
        pairs = compute_valid_pairs(instance)
        result = solve_tpg_with_stats(instance, pairs)
        assert 0 <= result.seeded_tasks <= instance.task_count
        # Every seeded task has at least B members in the assignment.
        completed = result.assignment.completed_task_count()
        assert completed >= result.seeded_tasks or completed == result.seeded_tasks

    def test_stage_two_fills_to_capacity_when_profitable(self):
        # All-equal quality: every addition has positive gain, so seeded
        # tasks should fill completely while workers remain.
        q = CooperationMatrix(np.full((12, 12), 0.5))
        instance = make_dense_instance(12, 2, capacity=5, seed=7)
        instance = type(instance)(
            workers=instance.workers,
            tasks=instance.tasks,
            quality=q,
            min_group_size=instance.min_group_size,
        )
        pairs = compute_valid_pairs(instance)
        assignment = solve_tpg(instance, pairs)
        filled = sum(
            assignment.assigned_count(task) for task in range(instance.task_count)
        )
        available = sum(
            1
            for worker in range(instance.worker_count)
            if pairs.tasks_for_worker[worker]
        )
        expected = min(available, 5 * instance.task_count)
        assert filled == expected

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10**6))
    def test_property_always_feasible(self, seed):
        instance = generate_instance(
            40,
            8,
            speed_range=(0.05, 0.3),
            radius_range=(0.1, 0.5),
            seed=seed,
        )
        pairs = compute_valid_pairs(instance)
        assignment = solve_tpg(instance, pairs)
        assignment.check_feasible()
        assert assignment.total_score() >= -1e-9


class TestExactBestGroup:
    def test_exact_is_optimal(self):
        import itertools

        from repro.core.tpg import exact_best_group

        q = CooperationMatrix.random_uniform(8, seed=5)
        group, score = exact_best_group(q, list(range(8)), 3)
        best = max(
            q.ordered_pair_sum(list(combo)) / 2
            for combo in itertools.combinations(range(8), 3)
        )
        assert score == pytest.approx(best)
        assert len(group) == 3

    def test_exact_not_enough_candidates(self):
        from repro.core.tpg import exact_best_group

        q = CooperationMatrix.random_uniform(4, seed=0)
        assert exact_best_group(q, [0, 1], 3) == ([], 0.0)

    def test_greedy_uses_exact_below_threshold(self):
        """With <= EXACT_SEED_THRESHOLD candidates the greedy result must
        equal the exhaustive optimum."""
        from repro.core.tpg import EXACT_SEED_THRESHOLD, exact_best_group

        q = CooperationMatrix.random_uniform(EXACT_SEED_THRESHOLD, seed=6)
        candidates = list(range(EXACT_SEED_THRESHOLD))
        greedy_group, greedy_score = greedy_best_group(q, candidates, 3)
        exact_group, exact_score = exact_best_group(q, candidates, 3)
        assert greedy_score == pytest.approx(exact_score)
