"""Tests for the game-theoretic solver: stability (Nash), the exact
potential property (Theorem V.1), monotone convergence, and the LUB/TSI
optimizations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assignment import UNASSIGNED, Assignment
from repro.core.game import solve_game_theoretic, verify_nash_equilibrium
from repro.core.tpg import solve_tpg
from repro.core.validity import compute_valid_pairs
from repro.datasets.synthetic import generate_instance

from tests.conftest import make_dense_instance, make_example1_instance


class TestConvergenceAndStability:
    def test_converges_on_dense_instance(self):
        instance = make_dense_instance(30, 6, seed=1)
        pairs = compute_valid_pairs(instance)
        result = solve_game_theoretic(instance, pairs)
        assert result.converged
        assert result.rounds >= 1

    def test_result_is_nash_equilibrium(self):
        instance = make_dense_instance(36, 6, seed=2)
        pairs = compute_valid_pairs(instance)
        result = solve_game_theoretic(instance, pairs)
        deviations = verify_nash_equilibrium(result.equilibrium, pairs)
        assert deviations == []
        # The clamped deliverable keeps the equilibrium's total score.
        assert result.assignment.total_score() == pytest.approx(
            result.equilibrium.total_score()
        )

    def test_nash_from_random_init(self):
        instance = make_dense_instance(30, 5, seed=3)
        pairs = compute_valid_pairs(instance)
        result = solve_game_theoretic(instance, pairs, init="random", seed=0)
        assert result.converged
        assert verify_nash_equilibrium(result.equilibrium, pairs) == []

    def test_score_monotone_over_rounds(self):
        instance = make_dense_instance(40, 8, seed=4)
        result = solve_game_theoretic(instance, init="random", seed=1)
        history = [result.initial_score, *result.score_history]
        for before, after in zip(history, history[1:]):
            assert after >= before - 1e-9

    def test_gt_at_least_tpg(self):
        """Best-response from the TPG start can only climb the potential."""
        for seed in range(5):
            instance = make_dense_instance(30, 6, seed=seed)
            pairs = compute_valid_pairs(instance)
            tpg_score = solve_tpg(instance, pairs).total_score()
            gt_score = solve_game_theoretic(instance, pairs).final_score
            assert gt_score >= tpg_score - 1e-9

    def test_final_assignment_feasible(self):
        instance = generate_instance(60, 12, seed=5)
        pairs = compute_valid_pairs(instance)
        result = solve_game_theoretic(instance, pairs)
        result.assignment.check_feasible()

    def test_solves_example1_optimally(self):
        instance, w, t = make_example1_instance()
        pairs = compute_valid_pairs(instance)
        result = solve_game_theoretic(instance, pairs)
        assert result.final_score == pytest.approx(1.8)
        assert sorted(result.assignment.members(t["t1"])) == [w["w1"], w["w4"]]

    def test_empty_instance(self):
        instance = generate_instance(0, 0, seed=0)
        result = solve_game_theoretic(instance)
        assert result.final_score == 0.0
        assert result.converged

    def test_parameter_validation(self):
        instance = make_dense_instance(10, 2)
        with pytest.raises(ValueError):
            solve_game_theoretic(instance, epsilon=-0.1)
        with pytest.raises(ValueError):
            solve_game_theoretic(instance, max_rounds=0)
        with pytest.raises(ValueError):
            solve_game_theoretic(instance, init="warmstart")


class TestPotentialProperty:
    """Theorem V.1: a unilateral move changes the total score by exactly
    the mover's utility change."""

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10**6))
    def test_exact_potential_identity(self, seed):
        instance = make_dense_instance(15, 4, seed=seed)
        rng = np.random.default_rng(seed)
        assignment = Assignment(instance, allow_overflow=True)
        # Random starting profile.
        for worker in range(instance.worker_count):
            if rng.random() < 0.7:
                assignment.assign(worker, int(rng.integers(instance.task_count)))
        for _ in range(10):
            worker = int(rng.integers(instance.worker_count))
            target = int(rng.integers(instance.task_count))
            if assignment.task_of(worker) == target:
                continue
            old_utility = assignment.leave_delta(worker)
            new_utility = assignment.join_gain(worker, target)
            before = assignment.total_score()
            assignment.move(worker, target)
            after = assignment.total_score()
            assert after - before == pytest.approx(
                new_utility - old_utility, abs=1e-8
            )


class TestOptimizations:
    def test_lub_matches_plain_gt_closely(self):
        for seed in range(4):
            instance = make_dense_instance(40, 8, seed=seed)
            pairs = compute_valid_pairs(instance)
            plain = solve_game_theoretic(instance, pairs)
            lazy = solve_game_theoretic(instance, pairs, lazy_update=True)
            assert lazy.final_score >= 0.97 * plain.final_score

    def test_lub_converges(self):
        instance = make_dense_instance(40, 8, seed=9)
        result = solve_game_theoretic(instance, lazy_update=True)
        assert result.converged

    def test_tsi_stops_earlier_and_scores_close(self):
        instance = make_dense_instance(60, 10, seed=10)
        pairs = compute_valid_pairs(instance)
        plain = solve_game_theoretic(instance, pairs, init="random", seed=3)
        stopped = solve_game_theoretic(
            instance, pairs, init="random", seed=3, epsilon=0.05
        )
        assert stopped.rounds <= plain.rounds
        assert stopped.final_score <= plain.final_score + 1e-9
        assert stopped.final_score >= 0.8 * plain.final_score

    def test_epsilon_zero_equals_plain(self):
        instance = make_dense_instance(30, 6, seed=11)
        pairs = compute_valid_pairs(instance)
        plain = solve_game_theoretic(instance, pairs)
        zero = solve_game_theoretic(instance, pairs, epsilon=0.0)
        assert plain.final_score == pytest.approx(zero.final_score)

    def test_all_optimizations_together(self):
        instance = make_dense_instance(50, 8, seed=12)
        pairs = compute_valid_pairs(instance)
        plain = solve_game_theoretic(instance, pairs)
        both = solve_game_theoretic(
            instance, pairs, epsilon=0.05, lazy_update=True
        )
        both.assignment.check_feasible()
        assert both.final_score >= 0.9 * plain.final_score

    def test_max_rounds_cap(self):
        instance = make_dense_instance(40, 8, seed=13)
        result = solve_game_theoretic(instance, init="random", seed=0, max_rounds=1)
        assert result.rounds == 1


class TestCrowdOut:
    def test_joining_full_task_can_displace_weak_member(self):
        """A strong newcomer joins a full task; the weak member is crowded
        out of the counted subset and eventually idled by the clamp."""
        from repro.core.model import Instance, Task, Worker
        from repro.core.quality import CooperationMatrix
        from repro.spatial.geometry import Point

        # Workers 0-2 mutually great; worker 3 poor with everyone.
        q = np.full((4, 4), 0.9)
        q[3, :] = q[:, 3] = 0.05
        origin = Point(0.5, 0.5)
        workers = [
            Worker(worker_id=i, location=origin, speed=1.0, radius=1.0)
            for i in range(4)
        ]
        tasks = [Task(task_id=0, location=origin, capacity=3, deadline=5.0)]
        instance = Instance(
            workers=workers,
            tasks=tasks,
            quality=CooperationMatrix(q),
            min_group_size=3,
        )
        pairs = compute_valid_pairs(instance)
        result = solve_game_theoretic(instance, pairs)
        members = sorted(result.assignment.members(0))
        assert members == [0, 1, 2]
        assert result.assignment.task_of(3) == UNASSIGNED


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10**6))
def test_property_gt_always_nash_and_feasible(seed):
    instance = generate_instance(
        30,
        6,
        speed_range=(0.1, 0.4),
        radius_range=(0.2, 0.6),
        seed=seed,
    )
    pairs = compute_valid_pairs(instance)
    result = solve_game_theoretic(instance, pairs)
    result.assignment.check_feasible()
    assert result.converged
    assert verify_nash_equilibrium(result.equilibrium, pairs) == []


class TestPlayerOrder:
    def test_shuffled_order_converges_to_nash(self):
        instance = make_dense_instance(30, 6, seed=21)
        pairs = compute_valid_pairs(instance)
        result = solve_game_theoretic(
            instance, pairs, player_order="shuffled", seed=5
        )
        assert result.converged
        assert verify_nash_equilibrium(result.equilibrium, pairs) == []

    def test_shuffled_reproducible_with_seed(self):
        instance = make_dense_instance(30, 6, seed=22)
        pairs = compute_valid_pairs(instance)
        first = solve_game_theoretic(
            instance, pairs, init="random", player_order="shuffled", seed=9
        )
        second = solve_game_theoretic(
            instance, pairs, init="random", player_order="shuffled", seed=9
        )
        assert first.final_score == pytest.approx(second.final_score)
        assert first.assignment.to_pairs() == second.assignment.to_pairs()

    def test_unknown_order_rejected(self):
        instance = make_dense_instance(10, 2, seed=23)
        with pytest.raises(ValueError):
            solve_game_theoretic(instance, player_order="roundrobin")


class TestScoreAccounting:
    def test_final_score_is_exactly_last_history_entry(self):
        # Regression: an accumulated gain counter used to drift from the
        # per-round history by float rounding; both now read the same
        # incrementally maintained total, so equality is exact.
        for seed in (3, 11, 29):
            instance = make_dense_instance(40, 8, seed=seed)
            pairs = compute_valid_pairs(instance)
            result = solve_game_theoretic(instance, pairs)
            assert result.score_history
            assert result.final_score == result.score_history[-1]

    def test_final_score_matches_assignment_total(self):
        instance = make_dense_instance(35, 7, seed=4)
        pairs = compute_valid_pairs(instance)
        result = solve_game_theoretic(instance, pairs)
        # The clamp drops only uncounted members, preserving the score.
        assert result.assignment.total_score() == pytest.approx(
            result.final_score
        )

    def test_history_exact_under_tsi_and_lub(self):
        instance = make_dense_instance(40, 8, seed=13)
        pairs = compute_valid_pairs(instance)
        result = solve_game_theoretic(
            instance, pairs, epsilon=0.05, lazy_update=True
        )
        assert result.final_score == result.score_history[-1]


class TestVectorizedScan:
    def test_vectorized_best_alternative_matches_reference(self):
        # The batched numpy scan must agree with the scalar reference
        # loop bit-for-bit: same best task, same utility float.
        from repro.core.game import _BestResponseDynamics
        from repro.core.tpg import solve_tpg

        instance = make_dense_instance(40, 8, capacity=4, seed=31)
        pairs = compute_valid_pairs(instance)
        assignment = Assignment(instance, pairs, allow_overflow=True)
        for worker, task in solve_tpg(instance, pairs).to_pairs():
            assignment.assign(worker, task)
        dynamics = _BestResponseDynamics(
            instance, pairs, assignment, tolerance=1e-9, lazy_update=False
        )
        for worker in range(instance.worker_count):
            current_task = assignment.task_of(worker)
            current_utility = assignment.leave_delta(worker)
            vector = dynamics._best_alternative(
                worker, current_task, current_utility
            )
            reference = dynamics._best_alternative_reference(
                worker, current_task, current_utility
            )
            assert vector == reference

    def test_scan_memo_replays_identical_results(self):
        from repro.core.game import _BestResponseDynamics

        instance = make_dense_instance(30, 6, capacity=4, seed=37)
        pairs = compute_valid_pairs(instance)
        assignment = Assignment(instance, pairs, allow_overflow=True)
        dynamics = _BestResponseDynamics(
            instance, pairs, assignment, tolerance=1e-9, lazy_update=False
        )
        worker = 0
        first = dynamics._best_alternative(worker, UNASSIGNED, 0.0)
        hits_before = dynamics.stats.cache_hits
        second = dynamics._best_alternative(worker, UNASSIGNED, 0.0)
        assert second == first
        assert dynamics.stats.cache_hits == hits_before + 1
        # A membership change in a candidate task must invalidate the memo.
        task = pairs.tasks_for_worker[worker][0]
        joiner = next(
            w
            for w in pairs.workers_for_task[task]
            if w != worker and assignment.task_of(w) == UNASSIGNED
        )
        assignment.assign(joiner, task)
        misses_before = dynamics.stats.cache_misses
        dynamics._best_alternative(worker, UNASSIGNED, 0.0)
        assert dynamics.stats.cache_misses == misses_before + 1


class TestVectorGroupBoundary:
    """Regression pins for the batch/scalar boundary at sizes 7, 8, 9.

    The size-7 row qualities are adversarial: ``np.add.reduceat`` — which
    the batch path historically used for its segment sums — reorders
    their sum on current numpy (3.8759979999999996 instead of the
    sequential 3.875998), so the size-7 case fails on any revision whose
    batch reduction is not order-exact with the scalar ``join_gain``
    oracle. Sizes 8 and 9 pin the ``_VECTOR_GROUP_LIMIT`` guard: from
    eight members on, ``ndarray.sum()`` itself reorders, so those groups
    must keep going through the scalar path.
    """

    _ADVERSARIAL = [
        0.706547, 0.539262, 0.891565, 0.784268, 0.052465, 0.821664,
        0.080227, 0.613511, 0.442957,
    ]

    def _scan_instance(self, size):
        from repro.core.model import Instance, Task, Worker
        from repro.core.quality import CooperationMatrix
        from repro.spatial.geometry import Point

        count = size + 1
        # Only worker 0's row toward the members is non-zero: the
        # members' mutual qualities (hence pair_sums and the revenue) are
        # 0, so the scanned utility is exactly cross / size and a last-bit
        # error in the cross sum cannot be masked downstream.
        q = np.zeros((count, count))
        q[0, 1:] = self._ADVERSARIAL[:size]
        quality = CooperationMatrix(q)
        origin = Point(0.0, 0.0)
        workers = [
            Worker(worker_id=i, location=origin, speed=1.0, radius=10.0)
            for i in range(count)
        ]
        tasks = [
            Task(task_id=0, location=origin, capacity=count, deadline=100.0)
        ]
        return Instance(
            workers=workers, tasks=tasks, quality=quality, min_group_size=3
        )

    @pytest.mark.parametrize("size", [7, 8, 9])
    def test_boundary_sizes_bit_identical(self, size):
        from repro.core.game import _BestResponseDynamics

        instance = self._scan_instance(size)
        pairs = compute_valid_pairs(instance)
        assignment = Assignment(instance, pairs, allow_overflow=True)
        for member in range(1, size + 1):
            assignment.assign(member, 0)
        dynamics = _BestResponseDynamics(
            instance, pairs, assignment, tolerance=1e-9, lazy_update=False
        )
        vector_task, vector_utility = dynamics._best_alternative(
            0, UNASSIGNED, 0.0
        )
        ref_task, ref_utility = dynamics._best_alternative_reference(
            0, UNASSIGNED, 0.0
        )
        assert vector_task == ref_task == 0
        assert repr(float(vector_utility)) == repr(float(ref_utility))
