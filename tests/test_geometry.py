"""Unit and property tests for repro.spatial.geometry."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.spatial.geometry import (
    BoundingBox,
    Point,
    euclidean,
    pairwise_distances,
    travel_time,
)

coords = st.floats(
    min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
)


class TestPoint:
    def test_distance_basic(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_distance_zero(self):
        p = Point(1.5, -2.5)
        assert p.distance_to(p) == 0.0

    def test_as_tuple(self):
        assert Point(1.0, 2.0).as_tuple() == (1.0, 2.0)

    def test_translated(self):
        assert Point(1, 1).translated(2, -1) == Point(3, 0)

    def test_points_hashable(self):
        assert len({Point(0, 0), Point(0, 0), Point(1, 0)}) == 2

    @given(coords, coords, coords, coords)
    def test_distance_symmetric(self, x1, y1, x2, y2):
        a, b = Point(x1, y1), Point(x2, y2)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    @given(coords, coords, coords, coords, coords, coords)
    def test_triangle_inequality(self, x1, y1, x2, y2, x3, y3):
        a, b, c = Point(x1, y1), Point(x2, y2), Point(x3, y3)
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-9


class TestTravelTime:
    def test_basic(self):
        assert travel_time(Point(0, 0), Point(0, 2), speed=0.5) == 4.0

    def test_zero_speed_far(self):
        assert travel_time(Point(0, 0), Point(1, 0), speed=0.0) == math.inf

    def test_zero_speed_at_location(self):
        assert travel_time(Point(1, 1), Point(1, 1), speed=0.0) == 0.0

    def test_euclidean_helper(self):
        assert euclidean(Point(0, 0), Point(0, 3)) == 3.0


class TestPairwiseDistances:
    def test_matches_point_distance(self):
        a = np.array([[0.0, 0.0], [1.0, 1.0]])
        b = np.array([[3.0, 4.0]])
        result = pairwise_distances(a, b)
        assert result.shape == (2, 1)
        assert result[0, 0] == pytest.approx(5.0)
        assert result[1, 0] == pytest.approx(math.hypot(2, 3))

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            pairwise_distances(np.zeros((3,)), np.zeros((2, 2)))

    @given(st.integers(1, 6), st.integers(1, 6), st.integers(0, 10**6))
    def test_random_agreement_with_scalar(self, m, n, seed):
        rng = np.random.default_rng(seed)
        a = rng.uniform(-5, 5, size=(m, 2))
        b = rng.uniform(-5, 5, size=(n, 2))
        matrix = pairwise_distances(a, b)
        for i in range(m):
            for j in range(n):
                expected = Point(*a[i]).distance_to(Point(*b[j]))
                assert matrix[i, j] == pytest.approx(expected)


class TestBoundingBox:
    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox(1, 0, 0, 1)

    def test_from_circle(self):
        box = BoundingBox.from_circle(Point(0.5, 0.5), 0.25)
        assert box == BoundingBox(0.25, 0.25, 0.75, 0.75)

    def test_from_circle_negative_radius(self):
        with pytest.raises(ValueError):
            BoundingBox.from_circle(Point(0, 0), -1.0)

    def test_area_and_margin(self):
        box = BoundingBox(0, 0, 2, 3)
        assert box.area == 6
        assert box.margin == 5

    def test_union(self):
        a = BoundingBox(0, 0, 1, 1)
        b = BoundingBox(2, 2, 3, 3)
        assert a.union(b) == BoundingBox(0, 0, 3, 3)

    def test_enlargement(self):
        a = BoundingBox(0, 0, 1, 1)
        b = BoundingBox(1, 0, 2, 1)
        assert a.enlargement(b) == pytest.approx(1.0)

    def test_intersects(self):
        a = BoundingBox(0, 0, 1, 1)
        assert a.intersects(BoundingBox(0.5, 0.5, 2, 2))
        assert not a.intersects(BoundingBox(1.5, 1.5, 2, 2))
        # Touching boundaries count as intersecting.
        assert a.intersects(BoundingBox(1, 1, 2, 2))

    def test_contains(self):
        box = BoundingBox(0, 0, 1, 1)
        assert box.contains_point(Point(0.5, 0.5))
        assert box.contains_point(Point(1, 1))
        assert not box.contains_point(Point(1.01, 0.5))
        assert box.contains_box(BoundingBox(0.2, 0.2, 0.8, 0.8))
        assert not box.contains_box(BoundingBox(0.2, 0.2, 1.2, 0.8))

    def test_min_distance_inside_is_zero(self):
        box = BoundingBox(0, 0, 1, 1)
        assert box.min_distance_to_point(Point(0.5, 0.5)) == 0.0

    def test_min_distance_outside(self):
        box = BoundingBox(0, 0, 1, 1)
        assert box.min_distance_to_point(Point(4, 5)) == pytest.approx(5.0)

    def test_center(self):
        assert BoundingBox(0, 0, 2, 4).center() == Point(1, 2)

    @given(coords, coords, coords, coords)
    def test_union_contains_both(self, x1, y1, x2, y2):
        a = BoundingBox.from_point(Point(x1, y1))
        b = BoundingBox.from_point(Point(x2, y2))
        union = a.union(b)
        assert union.contains_box(a)
        assert union.contains_box(b)
