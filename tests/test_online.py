"""Tests for the online greedy assigner (batch-vs-online contrast)."""

import pytest

from repro.core.game import solve_game_theoretic
from repro.core.online import solve_online_greedy
from repro.core.validity import compute_valid_pairs
from repro.datasets.synthetic import generate_instance

from tests.conftest import make_dense_instance


class TestOnlineGreedy:
    def test_feasible(self):
        instance = make_dense_instance(30, 6, seed=1)
        pairs = compute_valid_pairs(instance)
        assignment = solve_online_greedy(instance, pairs)
        assignment.check_feasible()

    def test_deterministic(self):
        instance = make_dense_instance(30, 6, seed=2)
        pairs = compute_valid_pairs(instance)
        first = solve_online_greedy(instance, pairs).to_pairs()
        second = solve_online_greedy(instance, pairs).to_pairs()
        assert first == second

    def test_custom_arrival_order(self):
        instance = make_dense_instance(20, 4, seed=3)
        pairs = compute_valid_pairs(instance)
        order = list(reversed(range(20)))
        assignment = solve_online_greedy(instance, pairs, arrival_order=order)
        assignment.check_feasible()

    def test_arrival_order_validation(self):
        instance = make_dense_instance(10, 2, seed=4)
        with pytest.raises(ValueError):
            solve_online_greedy(instance, arrival_order=[0, 1])

    def test_batch_gt_beats_online(self):
        """The value of batching: GT's revisiting dominates one-shot
        online commitment on the same instances."""
        wins = 0
        for seed in range(5):
            instance = make_dense_instance(40, 6, seed=seed)
            pairs = compute_valid_pairs(instance)
            online = solve_online_greedy(instance, pairs).total_score()
            batch = solve_game_theoretic(instance, pairs).final_score
            if batch >= online - 1e-9:
                wins += 1
        assert wins == 5

    def test_empty_instance(self):
        instance = generate_instance(0, 0, seed=0)
        assert solve_online_greedy(instance).total_score() == 0.0

    def test_workers_fill_toward_minimum(self):
        """Online workers without positive gain still build toward B
        instead of idling en masse."""
        instance = make_dense_instance(12, 2, seed=6)
        pairs = compute_valid_pairs(instance)
        assignment = solve_online_greedy(instance, pairs)
        assert assignment.assigned_worker_count() > 0
