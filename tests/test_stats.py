"""Tests for the SolverStats observability layer.

Covers the dataclass mechanics (merge, ratios, serialization) and the
end-to-end wiring: the GT/TPG solvers attach populated stats to their
results, the approach factories accumulate a ``stats_log``, and the
experiment runner merges per-batch stats into the outcome.
"""

import pytest

from repro.core.game import solve_game_theoretic
from repro.core.stats import RoundStats, SolverStats
from repro.core.tpg import solve_tpg_with_stats
from repro.core.validity import compute_valid_pairs
from repro.experiments.config import make_solver

from tests.conftest import make_dense_instance


class TestSolverStatsDataclass:
    def test_merge_accumulates_counters(self):
        first = SolverStats(
            solver="GT",
            revenue_evaluations=3,
            gain_evaluations=10,
            cache_hits=2,
            cache_misses=8,
            total_seconds=0.5,
            phase_seconds={"init": 0.1},
            rounds=[RoundStats(index=0, seconds=0.2)],
        )
        second = SolverStats(
            solver="GT",
            revenue_evaluations=1,
            gain_evaluations=5,
            cache_hits=3,
            cache_misses=2,
            total_seconds=0.25,
            phase_seconds={"init": 0.05, "rounds": 0.2},
        )
        first.merge(second)
        assert first.revenue_evaluations == 4
        assert first.gain_evaluations == 15
        assert first.cache_hits == 5
        assert first.total_seconds == pytest.approx(0.75)
        assert first.phase_seconds["init"] == pytest.approx(0.15)
        assert first.phase_seconds["rounds"] == pytest.approx(0.2)
        assert len(first.rounds) == 1
        assert first.runs == 2

    def test_merged_classmethod(self):
        runs = [SolverStats(solver="TPG", gain_evaluations=i) for i in (1, 2, 3)]
        total = SolverStats.merged(runs)
        assert total is not None
        assert total.gain_evaluations == 6
        assert total.runs == 3
        assert SolverStats.merged([]) is None

    def test_cache_hit_ratio(self):
        stats = SolverStats(cache_hits=3, cache_misses=1)
        assert stats.cache_hit_ratio == pytest.approx(0.75)
        assert SolverStats().cache_hit_ratio == 0.0

    def test_to_dict_round_trips_fields(self):
        stats = SolverStats(
            solver="GT",
            gain_evaluations=7,
            rounds=[RoundStats(index=0, seconds=0.1, moves=2, gain=1.5)],
        )
        payload = stats.to_dict()
        assert payload["solver"] == "GT"
        assert payload["gain_evaluations"] == 7
        assert payload["rounds"][0]["moves"] == 2

    def test_summary_is_one_line(self):
        stats = SolverStats(solver="GT", gain_evaluations=12, total_seconds=0.1)
        line = stats.summary()
        assert "\n" not in line
        assert "evals=12" in line


class TestSolverInstrumentation:
    def test_gt_result_carries_populated_stats(self):
        instance = make_dense_instance(40, 8, seed=5)
        pairs = compute_valid_pairs(instance)
        result = solve_game_theoretic(instance, pairs)
        stats = result.stats
        assert stats is not None
        assert stats.solver == "GT"
        assert stats.gain_evaluations > 0
        assert stats.incremental_updates > 0
        assert len(stats.rounds) == result.rounds
        assert stats.total_seconds > 0.0
        assert "init" in stats.phase_seconds
        assert "rounds" in stats.phase_seconds
        # Round gains reconcile with the score history.
        total_gain = sum(r.gain for r in stats.rounds)
        assert total_gain == pytest.approx(
            result.final_score - result.initial_score, abs=1e-9
        )

    def test_lub_run_records_cache_hits(self):
        instance = make_dense_instance(40, 8, seed=6)
        pairs = compute_valid_pairs(instance)
        result = solve_game_theoretic(instance, pairs, lazy_update=True)
        stats = result.stats
        assert stats is not None
        assert stats.cache_hits > 0
        assert 0.0 < stats.cache_hit_ratio <= 1.0

    def test_tpg_stats_phases(self):
        instance = make_dense_instance(40, 8, seed=7)
        pairs = compute_valid_pairs(instance)
        result = solve_tpg_with_stats(instance, pairs)
        stats = result.stats
        assert stats is not None
        assert stats.solver == "TPG"
        assert "stage1" in stats.phase_seconds
        assert "stage2" in stats.phase_seconds
        assert stats.incremental_updates > 0

    def test_factory_solver_accumulates_stats_log(self):
        instance = make_dense_instance(30, 6, seed=8)
        pairs = compute_valid_pairs(instance)
        solver = make_solver("GT+ALL")
        solver(instance, pairs)
        solver(instance, pairs)
        log = solver.stats_log
        assert len(log) == 2
        assert all(entry.solver == "GT+ALL" for entry in log)
        merged = SolverStats.merged(log)
        assert merged.runs == 2
        assert merged.gain_evaluations == sum(e.gain_evaluations for e in log)

    def test_baseline_solvers_have_no_stats_log(self):
        solver = make_solver("RAND")
        assert not hasattr(solver, "stats_log")


class TestRunnerIntegration:
    def test_outcome_carries_merged_stats(self):
        from repro.experiments.config import ExperimentSettings
        from repro.experiments.runner import build_population, run_approaches

        settings = ExperimentSettings(
            rounds=2,
            workers_per_round=60,
            tasks_per_round=12,
            remaining_time=5.0,
            speed_range=(0.1, 0.2),
            radius_range=(0.3, 0.5),
            dataset="unif",
        )
        population = build_population(settings, seed=0)
        point = run_approaches(
            population, settings, approaches=("TPG", "GT+ALL"), seed=0
        )
        for name in ("TPG", "GT+ALL"):
            outcome = point.outcomes[name]
            assert outcome.stats is not None
            assert outcome.stats.solver == name
            assert outcome.stats.runs == settings.rounds
            assert outcome.stats.gain_evaluations > 0


class TestMergeRunsRegression:
    def test_merging_multi_run_aggregate_counts_all_runs(self):
        # Regression: ``merge`` used to add ``other.runs - 1``, so an
        # incoming aggregate of 3 runs contributed only 2 — merging
        # {runs: 3} into {runs: 1} yielded 3 instead of 4.
        target = SolverStats(solver="GT", runs=1)
        aggregate = SolverStats(solver="GT", runs=3)
        target.merge(aggregate)
        assert target.runs == 4

    def test_merged_of_aggregates_sums_runs(self):
        parts = [
            SolverStats(solver="TPG", runs=2, gain_evaluations=5),
            SolverStats(solver="TPG", runs=3, gain_evaluations=7),
        ]
        total = SolverStats.merged(parts)
        assert total.runs == 5
        assert total.gain_evaluations == 12

    def test_chained_merges_stay_consistent(self):
        # runs must behave like every other counter under re-merging:
        # merged(merged(a, b), c) == merged(a, b, c).
        a = SolverStats(solver="GT", runs=1)
        b = SolverStats(solver="GT", runs=1)
        c = SolverStats(solver="GT", runs=1)
        nested = SolverStats.merged([SolverStats.merged([a, b]), c])
        flat = SolverStats.merged([a, b, c])
        assert nested.runs == flat.runs == 3
