"""Shared fixtures for the CA-SC test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import Instance, Task, Worker
from repro.core.quality import CooperationMatrix
from repro.core.validity import compute_valid_pairs
from repro.datasets.synthetic import generate_instance
from repro.spatial.geometry import Point


def make_dense_instance(
    worker_count: int = 30,
    task_count: int = 6,
    capacity: int = 4,
    min_group_size: int = 3,
    seed: int = 0,
) -> Instance:
    """A small instance where most worker-task pairs are valid.

    Large radii/speeds so solvers have real choices; community-structured
    quality so cooperation-awareness matters.
    """
    return generate_instance(
        worker_count,
        task_count,
        capacity=capacity,
        min_group_size=min_group_size,
        speed_range=(0.2, 0.5),
        radius_range=(0.5, 0.9),
        remaining_time=3.0,
        seed=seed,
    )


@pytest.fixture
def dense_instance() -> Instance:
    return make_dense_instance()


@pytest.fixture
def dense_pairs(dense_instance):
    return compute_valid_pairs(dense_instance)


@pytest.fixture
def sparse_instance() -> Instance:
    """Paper-default sparsity: few valid pairs per worker."""
    return generate_instance(80, 12, seed=11)


def make_example1_instance() -> tuple[Instance, dict[str, int], dict[str, int]]:
    """The paper's Example 1 (Figure 1): 4 workers, 2 tasks, B = 2.

    Quality edges (Figure 1(b)): q(w1,w2)=0.1, q(w1,w4)=0.9, q(w2,w3)=0.9,
    q(w3,w4)=0.1. Worker w1 can only reach t1, workers w2..w4 reach both.
    Assigning {w1,w2}->t1 and {w3,w4}->t2 scores 0.2; the optimum
    {w1,w4}->t1 and {w2,w3}->t2 scores 1.8.

    The example counts each unordered pair once while Equation 2 sums
    ordered pairs, so each edge value v is stored as v/2 per direction —
    group scores then reproduce the paper's numbers exactly.
    """
    q = np.zeros((4, 4))
    edges = {(0, 1): 0.1, (0, 3): 0.9, (1, 2): 0.9, (2, 3): 0.1}
    for (i, k), value in edges.items():
        q[i, k] = q[k, i] = value / 2.0
    quality = CooperationMatrix(q)

    t1 = Point(0.3, 0.5)
    t2 = Point(0.7, 0.5)
    # w1 sits close to t1 with a small radius; the rest can reach both.
    workers = [
        Worker(worker_id=0, location=Point(0.25, 0.5), speed=1.0, radius=0.1),
        Worker(worker_id=1, location=Point(0.5, 0.5), speed=1.0, radius=0.5),
        Worker(worker_id=2, location=Point(0.5, 0.4), speed=1.0, radius=0.5),
        Worker(worker_id=3, location=Point(0.5, 0.6), speed=1.0, radius=0.5),
    ]
    tasks = [
        Task(task_id=0, location=t1, capacity=2, deadline=5.0),
        Task(task_id=1, location=t2, capacity=2, deadline=5.0),
    ]
    instance = Instance(
        workers=workers, tasks=tasks, quality=quality, min_group_size=2
    )
    worker_names = {"w1": 0, "w2": 1, "w3": 2, "w4": 3}
    task_names = {"t1": 0, "t2": 1}
    return instance, worker_names, task_names


@pytest.fixture
def example1():
    return make_example1_instance()
