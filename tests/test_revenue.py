"""Tests for Equation 2's revenue function and its marginal forms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.quality import CooperationMatrix
from repro.core.revenue import (
    best_counted_subset,
    group_revenue,
    marginal_gain,
    removal_delta,
    worker_average_quality,
)


def uniform_matrix(size, value):
    q = np.full((size, size), value)
    return CooperationMatrix(q)


class TestGroupRevenue:
    def test_below_minimum_is_zero(self):
        q = CooperationMatrix.random_uniform(5, seed=0)
        assert group_revenue(q, [0, 1], capacity=4, min_group_size=3) == 0.0
        assert group_revenue(q, [], capacity=4, min_group_size=3) == 0.0

    def test_equation_two_denominator(self):
        # Uniform quality c: group of size s scores s*(s-1)*c / (s-1) = s*c.
        q = uniform_matrix(6, 0.5)
        for size in (3, 4, 5):
            members = list(range(size))
            assert group_revenue(
                q, members, capacity=6, min_group_size=3
            ) == pytest.approx(size * 0.5)

    def test_paper_example_values(self):
        # Example 1: pairs (w1,w4)=0.9 and (w2,w3)=0.9 give 1.8 total;
        # (w1,w2)=0.1 and (w3,w4)=0.1 give 0.2. The paper counts each
        # unordered pair once while Equation 2 sums ordered pairs, so the
        # example's pair quality v is stored as v/2 per direction.
        q = np.zeros((4, 4))
        for (i, k), v in {(0, 1): 0.1, (0, 3): 0.9, (1, 2): 0.9, (2, 3): 0.1}.items():
            q[i, k] = q[k, i] = v / 2.0
        matrix = CooperationMatrix(q)
        good = group_revenue(matrix, [0, 3], 2, 2) + group_revenue(matrix, [1, 2], 2, 2)
        bad = group_revenue(matrix, [0, 1], 2, 2) + group_revenue(matrix, [2, 3], 2, 2)
        assert good == pytest.approx(1.8)
        assert bad == pytest.approx(0.2)

    def test_overflow_uses_best_subset(self):
        # Workers 0-2 cooperate perfectly; worker 3 poorly with everyone.
        q = np.full((4, 4), 1.0)
        q[3, :] = q[:, 3] = 0.05
        matrix = CooperationMatrix(q)
        full = group_revenue(matrix, [0, 1, 2, 3], capacity=3, min_group_size=2)
        best = group_revenue(matrix, [0, 1, 2], capacity=3, min_group_size=2)
        assert full == pytest.approx(best)

    def test_asymmetric_quality(self):
        q = np.array([[0, 0.2, 0], [0.8, 0, 0], [0, 0, 0]])
        matrix = CooperationMatrix(q)
        assert group_revenue(matrix, [0, 1], 2, 2) == pytest.approx(1.0)


class TestBestCountedSubset:
    def test_keeps_everything_when_size_sufficient(self):
        q = CooperationMatrix.random_uniform(5, seed=1)
        assert best_counted_subset(q, [2, 0, 4], 3) == [0, 2, 4]
        assert best_counted_subset(q, [2, 0], 5) == [0, 2]

    def test_negative_size_rejected(self):
        q = CooperationMatrix.random_uniform(3, seed=1)
        with pytest.raises(ValueError):
            best_counted_subset(q, [0, 1], -1)

    def test_duplicates_rejected(self):
        q = CooperationMatrix.random_uniform(3, seed=1)
        with pytest.raises(ValueError):
            best_counted_subset(q, [0, 0, 1], 2)

    def test_drops_weakest(self):
        q = np.full((4, 4), 0.9)
        q[3, :] = q[:, 3] = 0.01
        matrix = CooperationMatrix(q)
        assert best_counted_subset(matrix, [0, 1, 2, 3], 3) == [0, 1, 2]

    def test_deterministic_on_ties(self):
        matrix = uniform_matrix(5, 0.5)
        first = best_counted_subset(matrix, [4, 2, 0, 1, 3], 3)
        second = best_counted_subset(matrix, [0, 1, 2, 3, 4], 3)
        assert first == second

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10**6))
    def test_greedy_close_to_exhaustive(self, seed):
        """Greedy peeling finds a subset within 25% of the true optimum
        on small random groups (it is exact surprisingly often)."""
        import itertools

        rng = np.random.default_rng(seed)
        size = int(rng.integers(4, 7))
        matrix = CooperationMatrix.random_uniform(size, seed=seed)
        members = list(range(size))
        keep = size - 1
        greedy = best_counted_subset(matrix, members, keep)
        greedy_value = matrix.ordered_pair_sum(greedy)
        best_value = max(
            matrix.ordered_pair_sum(list(combo))
            for combo in itertools.combinations(members, keep)
        )
        assert greedy_value >= 0.75 * best_value - 1e-12


class TestMarginals:
    def test_marginal_matches_difference(self):
        q = CooperationMatrix.random_uniform(8, seed=3)
        members = [0, 2, 5]
        gain = marginal_gain(q, members, 6, capacity=5, min_group_size=3)
        expected = group_revenue(q, members + [6], 5, 3) - group_revenue(
            q, members, 5, 3
        )
        assert gain == pytest.approx(expected)

    def test_marginal_rejects_member(self):
        q = CooperationMatrix.random_uniform(4, seed=0)
        with pytest.raises(ValueError):
            marginal_gain(q, [0, 1], 1, 4, 2)

    def test_removal_delta_matches_difference(self):
        q = CooperationMatrix.random_uniform(8, seed=4)
        members = [1, 3, 4, 6]
        delta = removal_delta(q, members, 3, capacity=5, min_group_size=3)
        expected = group_revenue(q, members, 5, 3) - group_revenue(
            q, [1, 4, 6], 5, 3
        )
        assert delta == pytest.approx(expected)

    def test_removal_rejects_non_member(self):
        q = CooperationMatrix.random_uniform(4, seed=0)
        with pytest.raises(ValueError):
            removal_delta(q, [0, 1], 3, 4, 2)

    def test_crossing_b_boundary(self):
        """Adding the B-th worker jumps revenue from 0 to the full score."""
        q = uniform_matrix(4, 0.6)
        gain = marginal_gain(q, [0, 1], 2, capacity=4, min_group_size=3)
        assert gain == pytest.approx(3 * 0.6)

    def test_negative_gain_possible(self):
        q = np.full((4, 4), 0.9)
        q[3, :] = q[:, 3] = 0.0
        matrix = CooperationMatrix(q)
        gain = marginal_gain(matrix, [0, 1, 2], 3, capacity=4, min_group_size=3)
        assert gain < 0

    def test_worker_average_quality(self):
        q = uniform_matrix(5, 0.4)
        avg = worker_average_quality(q, 0, [0, 1, 2, 3], capacity=4)
        assert avg == pytest.approx(0.4)
        assert worker_average_quality(q, 0, [0], capacity=4) == 0.0


@settings(max_examples=50, deadline=None)
@given(st.integers(2, 10), st.integers(2, 6), st.integers(0, 10**6))
def test_property_revenue_invariants(group_size, min_group_size, seed):
    """Revenue is non-negative, zero below B, permutation invariant, and
    bounded by size * max_quality."""
    rng = np.random.default_rng(seed)
    matrix = CooperationMatrix.random_uniform(group_size + 2, seed=seed)
    members = rng.permutation(group_size + 2)[:group_size].tolist()
    capacity = max(group_size, min_group_size)
    value = group_revenue(matrix, members, capacity, min_group_size)
    assert value >= 0.0
    if group_size < min_group_size:
        assert value == 0.0
    else:
        shuffled = rng.permutation(members).tolist()
        assert group_revenue(matrix, shuffled, capacity, min_group_size) == (
            pytest.approx(value)
        )
        assert value <= group_size * 1.0 + 1e-9


@settings(max_examples=50, deadline=None)
@given(st.integers(3, 8), st.integers(0, 10**6))
def test_property_revenue_sum_of_averages(size, seed):
    """Q(W) equals the sum of the members' average qualities q_i(W_j) —
    the identity Section II uses to interpret Equation 2."""
    matrix = CooperationMatrix.random_uniform(size, seed=seed)
    members = list(range(size))
    total = group_revenue(matrix, members, capacity=size, min_group_size=2)
    summed = sum(
        worker_average_quality(matrix, worker, members, capacity=size)
        for worker in members
    )
    assert total == pytest.approx(summed)


class TestEquationTwoEdgeCases:
    """Regression tests for the B <= 1 edge cases (former crashes)."""

    def test_singleton_group_with_b1_scores_zero(self):
        # A singleton group has no cooperation pairs, so Equation 2's
        # numerator is empty and the revenue is 0 — this used to divide
        # by ``count - 1 == 0`` when min_group_size=1.
        q = CooperationMatrix.random_uniform(5, seed=0)
        assert group_revenue(q, [2], capacity=4, min_group_size=1) == 0.0
        assert group_revenue(q, [0], capacity=1, min_group_size=0) == 0.0

    def test_singleton_capacity_one_overflow(self):
        # Two members clamped to a capacity-1 best subset: the counted
        # group is a singleton, which must score 0, not crash.
        q = CooperationMatrix.random_uniform(5, seed=1)
        assert group_revenue(q, [0, 3], capacity=1, min_group_size=1) == 0.0

    def test_pair_group_with_b1_uses_normal_denominator(self):
        q = uniform_matrix(4, 0.3)
        assert group_revenue(q, [0, 1], capacity=4, min_group_size=1) == (
            pytest.approx(0.6)
        )

    def test_cache_join_gain_b1_singleton(self):
        from repro.core.revenue import RevenueCache

        q = CooperationMatrix.random_uniform(4, seed=2)
        cache = RevenueCache(q, capacities=[3], min_group_size=1)
        # Joining an empty task forms a singleton: gain must be 0.
        assert cache.join_gain(0, 0) == 0.0
        cache.join(0, 0)
        assert cache.revenue(0) == 0.0
        # Leaving the singleton symmetrically yields delta 0.
        assert cache.leave_delta(0, 0) == 0.0


def _backend_quality(matrix: CooperationMatrix, backend: str):
    """``(store, cleanup-or-None)`` with the matrix on one backend."""
    from repro.core.quality_store import (
        SharedDenseQualityStore,
        SparseQualityStore,
    )

    if backend == "dense":
        return matrix, None
    if backend == "sparse":
        return SparseQualityStore.from_dense(matrix, prior=0.0), None
    store = SharedDenseQualityStore.create(matrix)

    def cleanup() -> None:
        store.close()
        store.unlink()

    return store, cleanup


@pytest.mark.parametrize("kernel", ["python", "native"])
@pytest.mark.parametrize("backend", ["dense", "sparse", "shared"])
class TestBestCountedSubsetEdges:
    """Edge regimes of the peel, pinned on every backend x kernel."""

    def run(self, matrix, members, size, backend, kernel):
        quality, cleanup = _backend_quality(matrix, backend)
        try:
            return best_counted_subset(quality, members, size, kernel=kernel)
        finally:
            if cleanup is not None:
                cleanup()

    def test_size_zero_peels_to_empty(self, backend, kernel):
        matrix = CooperationMatrix.random_uniform(9, seed=3)
        assert self.run(matrix, list(range(9)), 0, backend, kernel) == []
        assert self.run(matrix, [], 0, backend, kernel) == []

    def test_size_equal_to_members_is_identity(self, backend, kernel):
        matrix = CooperationMatrix.random_uniform(9, seed=3)
        members = [6, 1, 8, 0, 3]
        kept = self.run(matrix, members, len(members), backend, kernel)
        assert kept == sorted(members)

    def test_duplicates_rejected_before_dispatch(self, backend, kernel):
        matrix = CooperationMatrix.random_uniform(5, seed=3)
        quality, cleanup = _backend_quality(matrix, backend)
        try:
            with pytest.raises(ValueError, match="duplicate"):
                best_counted_subset(quality, [0, 0, 1], 2, kernel=kernel)
            with pytest.raises(ValueError):
                best_counted_subset(quality, [0, 1], -1, kernel=kernel)
        finally:
            if cleanup is not None:
                cleanup()

    def test_all_tied_peels_highest_index_first(self, backend, kernel):
        # Uniform quality ties every contribution at every step; the
        # peel must shed indices from the top on both sides of the
        # pairwise cliff (10 -> 9 -> 8 -> 7 -> ... -> 3).
        matrix = uniform_matrix(10, 0.5)
        for size in (9, 8, 7, 3):
            kept = self.run(matrix, list(range(10)), size, backend, kernel)
            assert kept == list(range(size)), (backend, kernel, size)

    def test_cliff_sizes_match_python_oracle(self, backend, kernel):
        # kept counts 7/8/9 straddle numpy's pairwise-summation cliff;
        # every (members, size) cell must agree with the dense python
        # oracle repr-exactly.
        matrix = CooperationMatrix.random_uniform(12, seed=17)
        for members_count in (7, 8, 9, 10):
            members = list(range(members_count))
            for size in range(members_count):
                expected = best_counted_subset(matrix, members, size)
                assert (
                    self.run(matrix, members, size, backend, kernel)
                    == expected
                ), (backend, kernel, members_count, size)


class TestTieBreakPin:
    """The documented tie-break: ties peel the *highest* worker index."""

    def test_uniform_ties_keep_lowest_indices(self):
        # Every contribution ties on a uniform matrix, so the peel must
        # repeatedly drop the highest index: 4, then 3.
        matrix = uniform_matrix(5, 0.5)
        assert best_counted_subset(matrix, [0, 1, 2, 3, 4], 3) == [0, 1, 2]
        # Membership order must not matter.
        assert best_counted_subset(matrix, [3, 1, 4, 0, 2], 3) == [0, 1, 2]

    def test_partial_tie_between_two_members(self):
        # Workers 1 and 3 contribute identically (symmetric roles); the
        # higher index, 3, must be the one peeled.
        q = np.full((4, 4), 0.5)
        q[0, 2] = q[2, 0] = 0.9
        matrix = CooperationMatrix(q)
        assert best_counted_subset(matrix, [0, 1, 2, 3], 3) == [0, 1, 2]

    def test_tie_break_consistent_above_vector_limit(self):
        # Groups larger than the vectorized-peel limit use the scalar
        # reference loop; the tie-break must be the same there.
        matrix = uniform_matrix(10, 0.5)
        assert best_counted_subset(matrix, list(range(10)), 4) == [0, 1, 2, 3]


class TestRevenueCacheIncremental:
    def make_cache(self, seed=7, capacities=(3, 4), minimum=2):
        from repro.core.revenue import RevenueCache

        q = CooperationMatrix.random_uniform(10, seed=seed)
        return q, RevenueCache(q, list(capacities), minimum)

    def test_join_leave_matches_scratch(self):
        q, cache = self.make_cache()
        for worker in (0, 4, 2):
            cache.join(worker, 0)
            assert cache.revenue(0) == pytest.approx(cache.revenue_from_scratch(0))
        cache.leave(4, 0)
        assert cache.revenue(0) == pytest.approx(cache.revenue_from_scratch(0))

    def test_overflow_revenue_exactly_matches_scratch(self):
        # Over capacity the refresh re-peels from scratch, so the cached
        # revenue is exactly the oracle value (not just approximately).
        q, cache = self.make_cache(capacities=(2, 4))
        for worker in (0, 1, 2, 3):
            cache.join(worker, 0)
        assert cache.revenue(0) == cache.revenue_from_scratch(0)
        assert cache.counted_subset(0) == tuple(
            best_counted_subset(q, [0, 1, 2, 3], 2)
        )

    def test_exchange_is_leave_plus_join(self):
        q, cache = self.make_cache()
        cache.join(0, 1)
        cache.join(5, 1)
        cache.exchange(1, leaving=5, entering=8)
        assert cache.members(1) == (0, 8)
        assert cache.revenue(1) == pytest.approx(cache.revenue_from_scratch(1))

    def test_version_stamps_move_on_every_mutation(self):
        q, cache = self.make_cache()
        v0 = cache.versions[0]
        cache.join(3, 0)
        assert cache.versions[0] == v0 + 1
        cache.leave(3, 0)
        assert cache.versions[0] == v0 + 2
        cache.clear(0)
        assert cache.versions[0] == v0 + 3
        assert cache.versions[1] == 0

    def test_evaluation_counters(self):
        q, cache = self.make_cache(capacities=(2, 4))
        cache.join(0, 0)
        cache.join(1, 0)
        assert cache.incremental_updates == 2
        assert cache.full_evaluations == 0
        cache.join(2, 0)  # overflow: triggers a from-scratch peel
        assert cache.full_evaluations == 1
        cache.join_gain(3, 0)  # overflow probe counts as full evaluation
        assert cache.full_evaluations == 2

    def test_native_kernel_overflow_is_repr_identical(self):
        q, python_cache = self.make_cache(capacities=(2, 4))
        _, native_cache = self.make_cache(capacities=(2, 4))
        native_cache.kernel = "native"
        for worker in (0, 1, 2, 3):
            python_cache.join(worker, 0)
            native_cache.join(worker, 0)
        assert repr(native_cache.revenue(0)) == repr(python_cache.revenue(0))
        assert native_cache.counted_subset(0) == python_cache.counted_subset(0)
        assert python_cache.peel_kernel_calls == 0
        assert native_cache.peel_kernel_calls > 0
        # Overflow probes dispatch through the kernel too.
        probes_before = native_cache.peel_kernel_calls
        assert repr(native_cache.join_gain(4, 0)) == repr(
            python_cache.join_gain(4, 0)
        )
        assert native_cache.peel_kernel_calls > probes_before

    def test_clone_copies_kernel_and_peel_counter(self):
        q, cache = self.make_cache(capacities=(2, 4))
        cache.kernel = "native"
        for worker in (0, 1, 2):
            cache.join(worker, 0)
        clone = cache.clone()
        assert clone.kernel == "native"
        assert clone.peel_kernel_calls == cache.peel_kernel_calls > 0

    def test_join_gain_matches_mutation(self):
        q, cache = self.make_cache()
        cache.join(0, 0)
        cache.join(1, 0)
        for worker in (2, 9):
            predicted = cache.join_gain(worker, 0)
            before = cache.revenue(0)
            cache.join(worker, 0)
            assert cache.revenue(0) - before == pytest.approx(predicted)
            cache.leave(worker, 0)
