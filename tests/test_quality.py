"""Tests for the cooperation quality model (Equation 1, matrices)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.quality import (
    CooperationMatrix,
    estimate_pair_quality,
)
from repro.utils.errors import InvalidInstanceError

ratings = st.lists(st.floats(0, 1, allow_nan=False), max_size=10)


class TestEstimator:
    def test_paper_formula(self):
        # alpha=0.5, omega=0.5, mean rating 0.75 -> 0.25 + 0.375
        assert estimate_pair_quality([1.0, 0.5]) == pytest.approx(0.625)

    def test_no_history_falls_back_to_prior(self):
        assert estimate_pair_quality([]) == 0.5
        assert estimate_pair_quality([], base_quality=0.3) == 0.3

    def test_alpha_extremes(self):
        assert estimate_pair_quality([1.0], alpha=1.0) == 0.5
        assert estimate_pair_quality([1.0], alpha=0.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_pair_quality([0.5], alpha=1.5)
        with pytest.raises(ValueError):
            estimate_pair_quality([0.5], base_quality=-0.1)
        with pytest.raises(ValueError):
            estimate_pair_quality([1.5])

    @given(ratings)
    def test_always_in_unit_interval(self, scores):
        assert 0.0 <= estimate_pair_quality(scores) <= 1.0

    @given(ratings, st.floats(0, 1), st.floats(0, 1))
    def test_bounded_by_extremes(self, scores, base, alpha):
        value = estimate_pair_quality(scores, base, alpha)
        if scores:
            mean = sum(scores) / len(scores)
            assert min(base, mean) - 1e-12 <= value <= max(base, mean) + 1e-12


class TestMatrixConstruction:
    def test_shape_validation(self):
        with pytest.raises(InvalidInstanceError):
            CooperationMatrix(np.zeros((2, 3)))

    def test_range_validation(self):
        with pytest.raises(InvalidInstanceError):
            CooperationMatrix([[0, 2.0], [0.5, 0]])
        with pytest.raises(InvalidInstanceError):
            CooperationMatrix([[0, -0.1], [0.5, 0]])

    def test_nan_rejected(self):
        with pytest.raises(InvalidInstanceError):
            CooperationMatrix([[0, np.nan], [0.5, 0]])

    def test_diagonal_zeroed(self):
        matrix = CooperationMatrix([[1.0, 0.5], [0.5, 1.0]])
        assert matrix.values[0, 0] == 0.0
        assert matrix.values[1, 1] == 0.0

    def test_values_read_only(self):
        matrix = CooperationMatrix.random_uniform(4, seed=0)
        with pytest.raises(ValueError):
            matrix.values[0, 1] = 0.9

    def test_pair_access(self):
        matrix = CooperationMatrix([[0, 0.25], [0.75, 0]])
        assert matrix.pair(0, 1) == 0.25
        assert matrix.pair(1, 0) == 0.75
        with pytest.raises(ValueError):
            matrix.pair(1, 1)

    def test_equality(self):
        a = CooperationMatrix.random_uniform(5, seed=1)
        b = CooperationMatrix(a.values)
        assert a == b
        assert a != "not a matrix" or True  # NotImplemented path

    def test_from_history(self):
        matrix = CooperationMatrix.from_history(
            3, {(0, 1): [1.0, 1.0], (1, 2): [0.0]}
        )
        assert matrix.pair(0, 1) == pytest.approx(0.75)
        assert matrix.pair(1, 0) == pytest.approx(0.75)
        assert matrix.pair(1, 2) == pytest.approx(0.25)
        assert matrix.pair(0, 2) == pytest.approx(0.5)  # prior only

    def test_from_history_validation(self):
        with pytest.raises(InvalidInstanceError):
            CooperationMatrix.from_history(2, {(0, 0): [1.0]})
        with pytest.raises(InvalidInstanceError):
            CooperationMatrix.from_history(2, {(0, 5): [1.0]})

    def test_from_group_memberships_paper_configuration(self):
        # Two workers sharing 1 of 3 union groups:
        # q = 0.5*0.5 + 0.5 * 1/3
        matrix = CooperationMatrix.from_group_memberships(
            [{1, 2}, {2, 3}, set()]
        )
        assert matrix.pair(0, 1) == pytest.approx(0.25 + 0.5 / 3)
        assert matrix.pair(0, 2) == pytest.approx(0.25)
        assert matrix.is_symmetric()

    def test_from_group_memberships_matches_bruteforce(self):
        rng = np.random.default_rng(3)
        memberships = [
            set(rng.integers(0, 12, size=rng.integers(0, 6)).tolist())
            for _ in range(20)
        ]
        matrix = CooperationMatrix.from_group_memberships(memberships)
        for i in range(20):
            for k in range(i + 1, 20):
                union = len(memberships[i] | memberships[k])
                common = len(memberships[i] & memberships[k])
                jaccard = common / union if union else 0.0
                assert matrix.pair(i, k) == pytest.approx(0.25 + 0.5 * jaccard)

    def test_from_group_memberships_empty(self):
        assert CooperationMatrix.from_group_memberships([]).size == 0

    def test_random_uniform_bounds(self):
        matrix = CooperationMatrix.random_uniform(30, seed=0, low=0.2, high=0.8)
        off_diagonal = matrix.values[~np.eye(30, dtype=bool)]
        assert off_diagonal.min() >= 0.2
        assert off_diagonal.max() <= 0.8
        assert matrix.is_symmetric()

    def test_random_uniform_bad_range(self):
        with pytest.raises(ValueError):
            CooperationMatrix.random_uniform(5, low=0.9, high=0.1)

    def test_random_community_structure(self):
        matrix = CooperationMatrix.random_community(
            200, community_count=4, within=0.9, across=0.1, noise=0.02, seed=5
        )
        values = matrix.values[~np.eye(200, dtype=bool)]
        # Bimodal: some pairs near 0.9, some near 0.1.
        assert (values > 0.7).any()
        assert (values < 0.3).any()
        assert matrix.is_symmetric()

    def test_random_community_validation(self):
        with pytest.raises(ValueError):
            CooperationMatrix.random_community(10, community_count=0)


class TestMatrixQueries:
    def test_ordered_pair_sum(self):
        q = np.array([[0, 0.1, 0.2], [0.3, 0, 0.4], [0.5, 0.6, 0]])
        matrix = CooperationMatrix(q)
        assert matrix.ordered_pair_sum([0, 1, 2]) == pytest.approx(2.1)
        assert matrix.ordered_pair_sum([0, 2]) == pytest.approx(0.7)
        assert matrix.ordered_pair_sum([1]) == 0.0

    def test_ordered_pair_sum_rejects_duplicates(self):
        matrix = CooperationMatrix.random_uniform(4, seed=0)
        with pytest.raises(ValueError):
            matrix.ordered_pair_sum([1, 1])

    def test_cross_sum_is_pair_sum_increment(self):
        matrix = CooperationMatrix.random_uniform(8, seed=2)
        members = [0, 3, 5]
        before = matrix.ordered_pair_sum(members)
        after = matrix.ordered_pair_sum(members + [6])
        assert after - before == pytest.approx(matrix.cross_sum(6, members))

    def test_top_and_bottom_qualities(self):
        q = np.array(
            [
                [0, 0.9, 0.1, 0.5],
                [0.9, 0, 0.2, 0.3],
                [0.1, 0.2, 0, 0.8],
                [0.5, 0.3, 0.8, 0],
            ]
        )
        matrix = CooperationMatrix(q)
        assert matrix.top_qualities(0, 2).tolist() == [0.9, 0.5]
        assert matrix.bottom_qualities(0, 2).tolist() == [0.1, 0.5]
        # Requesting more than available returns everything.
        assert matrix.top_qualities(0, 10).tolist() == [0.9, 0.5, 0.1]

    def test_restricted_to(self):
        matrix = CooperationMatrix.random_uniform(6, seed=4)
        sub = matrix.restricted_to([1, 3, 5])
        assert sub.size == 3
        assert sub.pair(0, 1) == matrix.pair(1, 3)
        assert sub.pair(2, 0) == matrix.pair(5, 1)

    @given(st.integers(2, 12), st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_pair_sum_permutation_invariant(self, size, seed):
        rng = np.random.default_rng(seed)
        matrix = CooperationMatrix.random_uniform(size, seed=seed)
        members = rng.permutation(size)[: max(2, size // 2)]
        shuffled = rng.permutation(members)
        assert matrix.ordered_pair_sum(members) == pytest.approx(
            matrix.ordered_pair_sum(shuffled)
        )
