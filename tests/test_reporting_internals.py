"""White-box tests for table/chart formatting helpers."""

import pytest

from repro.experiments.plotting import _LEVELS, _sparkline
from repro.experiments.reporting import _format_value, _render


class TestFormatValue:
    def test_float_compact(self):
        assert _format_value(0.05) == "0.05"
        assert _format_value(3.0) == "3"

    def test_tuple_bracketed(self):
        assert _format_value((1, 5)) == "[1,5]"
        assert _format_value([10, 15]) == "[10,15]"

    def test_int_and_string(self):
        assert _format_value(42) == "42"
        assert _format_value("meetup") == "meetup"


class TestRender:
    def test_plain_alignment(self):
        text = _render(["a", "bbb"], [["1", "2"], ["333", "4"]], markdown=False)
        lines = text.splitlines()
        assert lines[1].startswith("-")
        # All rows padded to the same width.
        assert len(set(len(line) for line in lines)) == 1

    def test_markdown_structure(self):
        text = _render(["x", "y"], [["1", "2"]], markdown=True)
        lines = text.splitlines()
        assert lines[0] == "| x | y |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"

    def test_empty_rows(self):
        text = _render(["only"], [], markdown=False)
        assert "only" in text


class TestSparkline:
    def test_constant_series_renders_full_blocks(self):
        assert _sparkline([5.0, 5.0, 5.0], 5.0, 5.0) == _LEVELS[-1] * 3

    def test_monotone_series_monotone_levels(self):
        line = _sparkline([0.0, 0.5, 1.0], 0.0, 1.0)
        indices = [_LEVELS.index(ch) for ch in line]
        assert indices == sorted(indices)
        assert indices[0] == 0
        assert indices[-1] == len(_LEVELS) - 1

    def test_values_clamped_into_levels(self):
        line = _sparkline([-1.0, 2.0], 0.0, 1.0)
        assert all(ch in _LEVELS for ch in line)
