"""Tests for the empirical equilibrium-quality study (Section V-C)."""

import pytest

from repro.core.validity import compute_valid_pairs
from repro.experiments.equilibria import study_equilibria
from repro.datasets.synthetic import generate_instance

from tests.conftest import make_dense_instance, make_example1_instance


class TestStudyEquilibria:
    def test_invariant_chain(self):
        """theorem PoA bound <= sampled worst/OPT <= sampled best/OPT <= 1."""
        for seed in range(3):
            instance = make_dense_instance(
                8, 2, capacity=3, min_group_size=2, seed=seed
            )
            pairs = compute_valid_pairs(instance)
            study = study_equilibria(instance, pairs, samples=8, seed=seed)
            assert study.samples == 8
            assert study.worst_equilibrium <= study.best_equilibrium + 1e-9
            assert study.best_equilibrium <= study.optimum + 1e-9
            assert study.poa_estimate <= study.pos_estimate + 1e-9
            assert study.pos_estimate <= 1.0 + 1e-9
            # Every sampled equilibrium respects the theorem's PoA floor.
            if study.optimum > 0:
                assert (
                    study.poa_estimate
                    >= study.theorem_poa_bound - 1e-9
                )

    def test_example1_pos_is_one(self):
        """Example 1's game has an equilibrium at the optimum."""
        instance, _, _ = make_example1_instance()
        pairs = compute_valid_pairs(instance)
        study = study_equilibria(instance, pairs, samples=10, seed=0)
        assert study.optimum == pytest.approx(1.8)
        assert study.pos_estimate == pytest.approx(1.0)

    def test_sample_validation(self):
        instance = make_dense_instance(6, 2, min_group_size=2, capacity=2, seed=0)
        with pytest.raises(ValueError):
            study_equilibria(instance, samples=0)

    def test_empty_instance(self):
        instance = generate_instance(0, 0, seed=0)
        study = study_equilibria(instance, samples=2, seed=0)
        assert study.optimum == 0.0
        assert study.pos_estimate == 1.0
        assert study.poa_estimate == 1.0
