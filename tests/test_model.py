"""Tests for the problem model (Definitions 1-4 validation)."""

import numpy as np
import pytest

from repro.core.model import Instance, Task, Worker
from repro.core.quality import CooperationMatrix
from repro.spatial.geometry import Point
from repro.utils.errors import InvalidInstanceError


def simple_instance(**overrides):
    defaults = dict(
        workers=[
            Worker(worker_id=0, location=Point(0.1, 0.1), speed=0.5, radius=0.5),
            Worker(worker_id=1, location=Point(0.2, 0.2), speed=0.5, radius=0.5),
            Worker(worker_id=2, location=Point(0.3, 0.3), speed=0.5, radius=0.5),
        ],
        tasks=[Task(task_id=0, location=Point(0.2, 0.2), capacity=3, deadline=2.0)],
        quality=CooperationMatrix.random_uniform(3, seed=0),
        min_group_size=2,
        now=0.0,
    )
    defaults.update(overrides)
    return Instance(**defaults)


class TestWorker:
    def test_negative_speed_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Worker(worker_id=0, location=Point(0, 0), speed=-1.0, radius=0.5)

    def test_negative_radius_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Worker(worker_id=0, location=Point(0, 0), speed=1.0, radius=-0.5)

    def test_moved_to(self):
        worker = Worker(worker_id=3, location=Point(0, 0), speed=1.0, radius=0.5)
        moved = worker.moved_to(Point(1, 1))
        assert moved.location == Point(1, 1)
        assert moved.worker_id == 3
        assert worker.location == Point(0, 0)  # original untouched


class TestTask:
    def test_capacity_validation(self):
        with pytest.raises(InvalidInstanceError):
            Task(task_id=0, location=Point(0, 0), capacity=0, deadline=1.0)

    def test_deadline_before_creation_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Task(
                task_id=0,
                location=Point(0, 0),
                capacity=3,
                deadline=1.0,
                created_time=2.0,
            )

    def test_remaining_time(self):
        task = Task(task_id=0, location=Point(0, 0), capacity=3, deadline=5.0)
        assert task.remaining_time(2.0) == 3.0
        assert task.remaining_time(6.0) == -1.0


class TestInstance:
    def test_valid_construction(self):
        instance = simple_instance()
        assert instance.worker_count == 3
        assert instance.task_count == 1

    def test_min_group_size_validation(self):
        with pytest.raises(InvalidInstanceError):
            simple_instance(min_group_size=1)

    def test_matrix_shape_validation(self):
        with pytest.raises(InvalidInstanceError):
            simple_instance(quality=CooperationMatrix.random_uniform(5, seed=0))

    def test_capacity_below_b_rejected(self):
        with pytest.raises(InvalidInstanceError):
            simple_instance(
                tasks=[
                    Task(task_id=0, location=Point(0, 0), capacity=2, deadline=2.0)
                ],
                min_group_size=3,
                quality=CooperationMatrix.random_uniform(3, seed=0),
            )

    def test_location_arrays(self):
        instance = simple_instance()
        np.testing.assert_allclose(
            instance.worker_locations(),
            [[0.1, 0.1], [0.2, 0.2], [0.3, 0.3]],
        )
        np.testing.assert_allclose(instance.task_locations(), [[0.2, 0.2]])
        assert instance.capacities().tolist() == [3]

    def test_is_pair_valid(self):
        instance = simple_instance()
        assert instance.is_pair_valid(0, 0)

    def test_pair_invalid_outside_radius(self):
        instance = simple_instance(
            workers=[
                Worker(worker_id=0, location=Point(0.9, 0.9), speed=5.0, radius=0.05),
                Worker(worker_id=1, location=Point(0.2, 0.2), speed=0.5, radius=0.5),
                Worker(worker_id=2, location=Point(0.3, 0.3), speed=0.5, radius=0.5),
            ]
        )
        assert not instance.is_pair_valid(0, 0)

    def test_pair_invalid_too_slow(self):
        instance = simple_instance(
            workers=[
                Worker(worker_id=0, location=Point(0.9, 0.9), speed=0.01, radius=2.0),
                Worker(worker_id=1, location=Point(0.2, 0.2), speed=0.5, radius=0.5),
                Worker(worker_id=2, location=Point(0.3, 0.3), speed=0.5, radius=0.5),
            ]
        )
        assert not instance.is_pair_valid(0, 0)

    def test_pair_invalid_past_deadline(self):
        instance = simple_instance(now=3.0)
        assert not instance.is_pair_valid(0, 0)

    def test_zero_speed_worker_at_task_location(self):
        instance = simple_instance(
            workers=[
                Worker(worker_id=0, location=Point(0.2, 0.2), speed=0.0, radius=0.5),
                Worker(worker_id=1, location=Point(0.2, 0.2), speed=0.5, radius=0.5),
                Worker(worker_id=2, location=Point(0.3, 0.3), speed=0.5, radius=0.5),
            ]
        )
        assert instance.is_pair_valid(0, 0)

    def test_workers_tuple_immutable(self):
        instance = simple_instance()
        with pytest.raises((TypeError, AttributeError)):
            instance.workers[0] = None
