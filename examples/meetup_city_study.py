"""A city-scale study on the Meetup-like dataset (the paper's Section
VI-B setting, shrunk to demo size).

Builds the surrogate event-based social network — users clustered in
districts, groups with locality bias, Equation 1 qualities from co-group
Jaccard similarity — then (1) compares all seven approaches plus the
UPPER bound at the default setting, and (2) runs a miniature Figure 2
sweep over task capacity.

Run with::

    python examples/meetup_city_study.py          # demo size (~1 min)
    python examples/meetup_city_study.py --full   # paper-size population
"""

from __future__ import annotations

import sys

from repro.datasets.meetup import generate_meetup_dataset
from repro.experiments.config import DEFAULT_APPROACH_ORDER, ExperimentSettings
from repro.experiments.figures import fig2_capacity
from repro.experiments.reporting import format_figure
from repro.experiments.runner import run_approaches
from repro.simulation.population import Population


def main(full: bool = False, tiny: bool = False) -> None:
    if tiny:
        # Smoke-test size (used by the test suite).
        dataset = generate_meetup_dataset(
            user_count=150, event_count=50, group_count=30, seed=0
        )
        settings = ExperimentSettings(
            dataset="meetup",
            rounds=2,
            workers_per_round=60,
            tasks_per_round=15,
            speed_range=(0.05, 0.2),
            radius_range=(0.2, 0.4),
        )
    elif full:
        dataset = generate_meetup_dataset(seed=0)  # 3,525 users, 1,282 events
        settings = ExperimentSettings(dataset="meetup")
    else:
        dataset = generate_meetup_dataset(
            user_count=800, event_count=300, group_count=150, seed=0
        )
        settings = ExperimentSettings(
            dataset="meetup",
            rounds=4,
            workers_per_round=300,
            tasks_per_round=80,
        )
    population = Population.from_meetup(dataset)
    print(
        f"city: {dataset.user_count} users, {dataset.event_count} venues, "
        f"{dataset.group_count} interest groups"
    )

    print("\n== default setting: all approaches ==")
    point = run_approaches(
        population, settings, approaches=DEFAULT_APPROACH_ORDER, seed=0
    )
    print(f"{'approach':8s} {'score':>10s} {'of UPPER':>9s} {'batch time':>11s}")
    for name in DEFAULT_APPROACH_ORDER:
        outcome = point.outcomes[name]
        ratio = outcome.total_score / point.upper if point.upper else 0.0
        print(
            f"{name:8s} {outcome.total_score:10.1f} {ratio:8.1%} "
            f"{outcome.mean_batch_seconds * 1e3:9.1f}ms"
        )
    print(f"{'UPPER':8s} {point.upper:10.1f}")

    print("\n== miniature Figure 2: capacity sweep ==")
    result = fig2_capacity(
        base=settings,
        values=(3, 4, 5),
        approaches=("RAND", "TPG", "GT+ALL"),
        seed=0,
    )
    print(format_figure(result))


if __name__ == "__main__":
    main(full="--full" in sys.argv[1:], tiny="--tiny" in sys.argv[1:])
