"""Quickstart: solve one CA-SC batch with every approach.

Generates a synthetic batch (community-structured cooperation qualities),
computes the Definition 3 valid pairs, runs RAND / MFLOW / TPG / GT and
the GT variants, and prints each approach's total cooperation score
against the Equation 9 upper bound.

Run with::

    python examples/quickstart.py [seed]
"""

from __future__ import annotations

import sys
import time

from repro import (
    compute_valid_pairs,
    datasets,
    solve_game_theoretic,
    solve_mflow,
    solve_random,
    solve_tpg,
    upper_bound,
)


def main(seed: int = 42) -> None:
    # A batch of 400 workers and 80 tasks; every task wants up to 4
    # workers and needs at least 3 to start (the paper's defaults).
    instance = datasets.generate_instance(
        worker_count=400,
        task_count=80,
        capacity=4,
        min_group_size=3,
        speed_range=(0.02, 0.08),
        radius_range=(0.08, 0.18),
        seed=seed,
    )
    valid_pairs = compute_valid_pairs(instance)
    print(
        f"batch: {instance.worker_count} workers, {instance.task_count} tasks, "
        f"{valid_pairs.pair_count} valid worker-task pairs"
    )

    bound = upper_bound(instance, valid_pairs)
    print(f"UPPER (Equation 9): {bound.value:.2f}\n")

    def report(name: str, solve) -> None:
        started = time.perf_counter()
        assignment = solve()
        elapsed = time.perf_counter() - started
        score = assignment.total_score()
        ratio = score / bound.value if bound.value else 0.0
        print(
            f"{name:8s} score={score:8.2f}  ({ratio:5.1%} of UPPER)  "
            f"completed={assignment.completed_task_count():3d} tasks  "
            f"time={elapsed:.3f}s"
        )

    report("RAND", lambda: solve_random(instance, valid_pairs, seed=seed))
    report("MFLOW", lambda: solve_mflow(instance, valid_pairs))
    report("TPG", lambda: solve_tpg(instance, valid_pairs))
    report(
        "GT",
        lambda: solve_game_theoretic(instance, valid_pairs).assignment,
    )
    report(
        "GT+LUB",
        lambda: solve_game_theoretic(
            instance, valid_pairs, lazy_update=True
        ).assignment,
    )
    report(
        "GT+TSI",
        lambda: solve_game_theoretic(
            instance, valid_pairs, epsilon=0.05
        ).assignment,
    )
    report(
        "GT+ALL",
        lambda: solve_game_theoretic(
            instance, valid_pairs, epsilon=0.05, lazy_update=True
        ).assignment,
    )

    result = solve_game_theoretic(instance, valid_pairs)
    print(
        f"\nGT details: {result.rounds} best-response rounds, "
        f"{result.moves} strategy changes, "
        f"converged={result.converged} (pure Nash equilibrium)"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 42)
