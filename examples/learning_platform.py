"""A platform that *learns* cooperation qualities from ratings.

The paper assumes cooperation scores are known (estimated offline with
Equation 1). This example runs the estimator online: the platform starts
cold (every pair at the prior), assigns teams using its current
estimates, receives a requester rating for each completed task, folds
the rating into the Equation 1 histories, and gradually discovers the
latent community structure — realizing more and more *true* cooperation
quality per round.

Run with::

    python examples/learning_platform.py
"""

from __future__ import annotations

from repro.core.model import Instance
from repro.core.quality import CooperationMatrix
from repro.core.tpg import solve_tpg
from repro.datasets.synthetic import generate_tasks, generate_workers
from repro.simulation.feedback import run_learning_simulation

ROUNDS = 15
WORKERS = 60
TASKS = 12


def main(seed: int = 9) -> None:
    # The latent truth: strong communities the platform cannot see.
    true_quality = CooperationMatrix.random_community(
        WORKERS, community_count=4, within=0.9, across=0.1, noise=0.03, seed=seed
    )

    workers = generate_workers(
        WORKERS, speed_range=(0.2, 0.5), radius_range=(0.5, 0.9), seed=seed
    )
    tasks = generate_tasks(TASKS, capacity=4, remaining_time=3.0, seed=seed + 1)

    def make_instance(round_index, estimates, rng):
        # Same marketplace every round; only the platform's knowledge
        # (the estimate matrix) changes.
        return Instance(
            workers=workers, tasks=tasks, quality=estimates, min_group_size=3
        )

    trajectory = run_learning_simulation(
        true_quality,
        make_instance,
        solve_tpg,
        rounds=ROUNDS,
        rating_noise=0.05,
        seed=seed,
    )

    print(
        f"{'round':>5s} {'realized score':>14s} {'tasks':>6s} "
        f"{'pairs observed':>15s} {'estimate MAE':>13s}"
    )
    for entry in trajectory:
        print(
            f"{entry.round_index:5d} {entry.realized_score:14.2f} "
            f"{entry.completed_tasks:6d} {entry.observed_pairs:15d} "
            f"{entry.estimation_error:13.4f}"
        )

    first, last = trajectory[0], trajectory[-1]
    print(
        f"\ncold start realized {first.realized_score:.2f}; after "
        f"{ROUNDS} rounds of Equation 1 updates the platform realizes "
        f"{last.realized_score:.2f} "
        f"({last.realized_score / max(first.realized_score, 1e-9):.2f}x) "
        f"with estimate MAE {last.estimation_error:.4f}."
    )


if __name__ == "__main__":
    main()
