"""The paper's Example 1: catering work for two weddings.

Two wedding-catering tasks t1 and t2 each need two workers. Four workers
are available; worker w1 only accepts jobs near home (only t1 is inside
the working area), the others reach both venues. Historical cooperation
says w1 works beautifully with w4 (0.9) but poorly with w2 (0.1), and
w2-w3 are another great pair (0.9).

The naive pairing {w1,w2} -> t1, {w3,w4} -> t2 scores 0.2; the optimal
pairing {w1,w4} -> t1, {w2,w3} -> t2 scores 1.8 — nine times better
service from the same four people. Both TPG and the game-theoretic
solver find it.

Note on scoring: the paper counts each unordered worker pair once, while
Equation 2 sums ordered pairs; storing each edge value v as v/2 per
direction reproduces the paper's numbers exactly.

Run with::

    python examples/wedding_catering.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CooperationMatrix,
    Instance,
    Task,
    Worker,
    compute_valid_pairs,
    solve_exact,
    solve_game_theoretic,
    solve_tpg,
)
from repro.core.assignment import Assignment
from repro.spatial.geometry import Point

WORKER_NAMES = ["w1", "w2", "w3", "w4"]
TASK_NAMES = ["t1", "t2"]


def build_example() -> Instance:
    # Figure 1(b): cooperation edges, halved per direction (see module
    # docstring).
    q = np.zeros((4, 4))
    for (i, k), value in {
        (0, 1): 0.1,
        (0, 3): 0.9,
        (1, 2): 0.9,
        (2, 3): 0.1,
    }.items():
        q[i, k] = q[k, i] = value / 2.0

    workers = [
        # w1 lives next to venue t1 and keeps a small working radius.
        Worker(worker_id=0, location=Point(0.25, 0.5), speed=1.0, radius=0.1),
        Worker(worker_id=1, location=Point(0.5, 0.5), speed=1.0, radius=0.5),
        Worker(worker_id=2, location=Point(0.5, 0.4), speed=1.0, radius=0.5),
        Worker(worker_id=3, location=Point(0.5, 0.6), speed=1.0, radius=0.5),
    ]
    tasks = [
        Task(task_id=0, location=Point(0.3, 0.5), capacity=2, deadline=5.0),
        Task(task_id=1, location=Point(0.7, 0.5), capacity=2, deadline=5.0),
    ]
    return Instance(
        workers=workers,
        tasks=tasks,
        quality=CooperationMatrix(q),
        min_group_size=2,
    )


def describe(label: str, assignment: Assignment) -> None:
    groups = []
    for task in range(assignment.instance.task_count):
        members = sorted(assignment.members(task))
        names = "{" + ", ".join(WORKER_NAMES[m] for m in members) + "}"
        groups.append(f"{names} -> {TASK_NAMES[task]}")
    print(f"{label:18s} {';  '.join(groups)}   total = {assignment.total_score():.1f}")


def main() -> None:
    instance = build_example()
    valid_pairs = compute_valid_pairs(instance)

    print("Working areas (Definition 3):")
    for worker in range(4):
        reachable = [TASK_NAMES[t] for t in valid_pairs.tasks_for_worker[worker]]
        print(f"  {WORKER_NAMES[worker]} can serve: {', '.join(reachable)}")
    print()

    # The naive assignment the paper warns about.
    naive = Assignment(instance, valid_pairs)
    for worker, task in [(0, 0), (1, 0), (2, 1), (3, 1)]:
        naive.assign(worker, task)
    describe("naive pairing:", naive)

    describe("TPG:", solve_tpg(instance, valid_pairs))
    describe(
        "game-theoretic:",
        solve_game_theoretic(instance, valid_pairs).assignment,
    )
    optimal = solve_exact(instance, valid_pairs)
    describe("exact optimum:", optimal)

    assert optimal.total_score() == naive.total_score() * 9


if __name__ == "__main__":
    main()
