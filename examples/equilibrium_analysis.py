"""Equilibrium quality and worker fairness on a small instance.

Section V-C of the paper analyses the game-theoretic solver along three
axes: stability (a pure Nash equilibrium exists and is reached),
quality (price of stability / price of anarchy bounds), and the fairness
motivation (no worker envies another available slot at equilibrium).
This example measures all three on an instance small enough for the
exact solver:

1. samples many equilibria from random starts and compares best/worst
   against the true optimum (empirical PoS / PoA, next to Theorem V.2's
   analytic PoA floor);
2. contrasts the fairness of TPG's centrally-imposed assignment with the
   equilibrium (envy count, minimum utility, Gini inequality);
3. shows what one-shot *online* assignment loses against the paper's
   batch mode.

Run with::

    python examples/equilibrium_analysis.py
"""

from __future__ import annotations

from repro import compute_valid_pairs, datasets, solve_game_theoretic, solve_tpg
from repro.core.online import solve_online_greedy
from repro.experiments.equilibria import study_equilibria
from repro.experiments.fairness import fairness_report


def main(seed: int = 5) -> None:
    instance = datasets.generate_instance(
        worker_count=10,
        task_count=3,
        capacity=3,
        min_group_size=2,
        speed_range=(0.2, 0.5),
        radius_range=(0.5, 0.9),
        seed=seed,
    )
    pairs = compute_valid_pairs(instance)
    print(
        f"instance: {instance.worker_count} workers, {instance.task_count} "
        f"tasks, {pairs.pair_count} valid pairs (small enough to solve exactly)\n"
    )

    print("== equilibrium quality (Section V-C) ==")
    study = study_equilibria(instance, pairs, samples=25, seed=seed)
    print(f"exact optimum (OPT):        {study.optimum:.4f}")
    print(f"best sampled equilibrium:   {study.best_equilibrium:.4f}")
    print(f"worst sampled equilibrium:  {study.worst_equilibrium:.4f}")
    print(f"empirical PoS estimate:     {study.pos_estimate:.3f}  (Theorem V.2: PoS <= 1)")
    print(f"empirical PoA estimate:     {study.poa_estimate:.3f}")
    print(f"Theorem V.2 PoA floor:      {study.theorem_poa_bound:.3f}\n")

    print("== fairness: TPG vs Nash equilibrium ==")
    tpg = solve_tpg(instance, pairs)
    gt = solve_game_theoretic(instance, pairs)
    for label, report in [
        ("TPG", fairness_report(tpg, pairs)),
        ("GT (equilibrium)", fairness_report(gt.equilibrium, pairs)),
    ]:
        print(
            f"{label:18s} envious workers={report.envy_count:2d}  "
            f"min utility={report.min_utility:.3f}  "
            f"gini={report.gini:.3f}"
        )
    print("(a pure Nash equilibrium is envy-free by definition)\n")

    print("== batch vs online commitment ==")
    online = solve_online_greedy(instance, pairs)
    print(f"online greedy score:  {online.total_score():.4f}")
    print(f"batch GT score:       {gt.final_score:.4f}")
    print(f"exact optimum:        {study.optimum:.4f}")


if __name__ == "__main__":
    main()
