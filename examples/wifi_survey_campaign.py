"""A week-long Wi-Fi signal-strength survey run through Algorithm 1.

The paper's introduction motivates CA-SC with tasks like "collecting the
Wi-Fi signal strength in one building": each building needs a small team
whose members coordinate floor coverage, so team chemistry matters. This
example simulates a campaign over a campus-like map: measurement tasks
pop up at buildings every batch, surveyor availability churns as teams
work, and the platform assigns teams batch by batch.

It runs the same arrival stream under three policies (RAND, TPG, GT) and
prints per-round and cumulative results, showing how cooperation-aware
assignment compounds over a multi-batch campaign.

Run with::

    python examples/wifi_survey_campaign.py
"""

from __future__ import annotations

import numpy as np

from repro.core.baselines.random_assign import solve_random
from repro.core.game import solve_game_theoretic
from repro.core.tpg import solve_tpg
from repro.simulation.batch import BatchConfig, BatchSimulator
from repro.simulation.population import Population

CAMPAIGN = BatchConfig(
    rounds=8,                 # eight assignment batches
    workers_per_round=250,    # surveyors available per batch
    tasks_per_round=60,       # buildings needing measurement per batch
    capacity=4,               # at most four surveyors paid per building
    min_group_size=3,         # a building survey needs three people
    remaining_time=3.0,       # batches before a request expires
    speed_range=(0.03, 0.08),
    radius_range=(0.10, 0.20),
    task_duration=2.0,        # a survey occupies its team for two batches
)


def make_policies(seed: int):
    rng = np.random.default_rng(seed)
    return {
        "RAND": lambda instance, pairs: solve_random(instance, pairs, seed=rng),
        "TPG": solve_tpg,
        "GT": lambda instance, pairs: solve_game_theoretic(
            instance, pairs, epsilon=0.05, lazy_update=True
        ).assignment,
    }


def main(seed: int = 11) -> None:
    # The campus: surveyors cluster around a few labs (skewed locations),
    # and team chemistry follows research-group communities.
    population = Population.synthetic(
        worker_pool_size=600,
        task_pool_size=150,
        distribution="skewed",
        quality_kind="community",
        seed=seed,
    )

    print(
        f"campaign: {CAMPAIGN.rounds} batches, "
        f"{CAMPAIGN.workers_per_round} surveyors and "
        f"{CAMPAIGN.tasks_per_round} buildings per batch\n"
    )

    reports = {}
    for name, policy in make_policies(seed).items():
        simulator = BatchSimulator(population, CAMPAIGN, policy, seed=seed)
        reports[name] = simulator.run()

    header = f"{'batch':>5s} " + "".join(f"{name:>18s}" for name in reports)
    print(header)
    print("-" * len(header))
    for round_index in range(CAMPAIGN.rounds):
        row = f"{round_index:5d} "
        for report in reports.values():
            metrics = report.rounds[round_index]
            row += f"{metrics.score:10.1f} ({metrics.completed_tasks:3d}t)"
        print(row)

    print("\ncampaign totals:")
    for name, report in reports.items():
        print(
            f"  {name:5s} cooperation score {report.total_score:9.1f}, "
            f"{report.total_completed_tasks} surveys completed, "
            f"mean batch time {report.mean_batch_seconds * 1e3:.1f} ms"
        )

    gt = reports["GT"].total_score
    rand = reports["RAND"].total_score
    if rand > 0:
        print(
            f"\ncooperation-aware assignment delivered {gt / rand:.2f}x the "
            "cooperation quality of random dispatch on the same arrivals."
        )


if __name__ == "__main__":
    main()
