"""Euclidean vs road-network travel: what street detours cost.

The paper checks reachability with straight-line distance. On a real
street grid the trip from a worker to a task is longer (up to ~sqrt(2)x
on a Manhattan grid), so fewer worker-task pairs are actually valid —
and the achievable cooperation score drops. This example quantifies the
effect by solving the *same* batch under both travel models, and renders
the batch as an ASCII map.

Run with::

    python examples/road_network_city.py
"""

from __future__ import annotations

from repro import compute_valid_pairs, datasets, solve_game_theoretic, solve_tpg
from repro.experiments.plotting import render_map
from repro.spatial.roadnet import RoadNetworkTravel, grid_network


def main(seed: int = 4) -> None:
    instance = datasets.generate_instance(
        worker_count=250,
        task_count=50,
        capacity=4,
        min_group_size=3,
        speed_range=(0.03, 0.08),
        radius_range=(0.10, 0.20),
        seed=seed,
    )

    streets = grid_network(9, 9, jitter=0.01, seed=seed)
    euclidean_pairs = compute_valid_pairs(instance)
    road_pairs = compute_valid_pairs(
        instance, travel_model=RoadNetworkTravel(streets)
    )
    print(
        f"valid pairs: {euclidean_pairs.pair_count} (straight-line) vs "
        f"{road_pairs.pair_count} (via {streets.node_count}-intersection "
        f"street grid) — "
        f"{1 - road_pairs.pair_count / max(euclidean_pairs.pair_count, 1):.0%} "
        "of pairs are unreachable once streets are respected\n"
    )

    for label, pairs in [("straight-line", euclidean_pairs), ("street grid", road_pairs)]:
        tpg = solve_tpg(instance, pairs)
        gt = solve_game_theoretic(instance, pairs, epsilon=0.05, lazy_update=True)
        print(
            f"{label:14s} TPG score={tpg.total_score():8.2f}   "
            f"GT score={gt.final_score:8.2f}   "
            f"completed={gt.assignment.completed_task_count()} tasks"
        )

    gt_road = solve_game_theoretic(instance, road_pairs)
    print("\nbatch map under street-grid travel (letters = teams):")
    print(render_map(instance, gt_road.assignment, width=70, height=22))


if __name__ == "__main__":
    main()
