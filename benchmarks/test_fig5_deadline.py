"""Figure 5 — effect of the remaining time ``tau_j`` of tasks (Meetup).

Paper shape: scores rise from tau = 1 to 3 then flatten (the working
area becomes the binding constraint); GT-family times rise slightly.
"""

import pytest

from benchmarks.conftest import bench_solve, make_batch

REMAINING_TIMES = (1.0, 2.0, 3.0, 4.0, 5.0)


@pytest.mark.parametrize("tau", REMAINING_TIMES, ids=lambda t: f"tau{int(t)}")
def test_fig5_deadline(benchmark, approach, tau):
    instance, valid_pairs = make_batch(dataset="meetup", remaining_time=tau)
    benchmark.extra_info["remaining_time"] = tau
    bench_solve(benchmark, approach, instance, valid_pairs)
