"""Figure 2 — effect of the capacity ``a_j`` of tasks (Meetup data).

Paper shape: scores rise from a_j = 3 to 4, then flatten; GT family ~5%
above TPG, all far above MFLOW/RAND; RAND fastest, MFLOW slowest.
"""

import pytest

from benchmarks.conftest import bench_solve, make_batch

CAPACITIES = (3, 4, 5, 6)


@pytest.mark.parametrize("capacity", CAPACITIES)
def test_fig2_capacity(benchmark, approach, capacity):
    instance, valid_pairs = make_batch(dataset="meetup", capacity=capacity)
    benchmark.extra_info["capacity"] = capacity
    bench_solve(benchmark, approach, instance, valid_pairs)
