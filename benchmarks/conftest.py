"""Shared fixtures for the per-figure benchmark suite.

Each ``test_figN_*.py`` module regenerates one paper figure at a reduced
but qualitatively faithful scale: per parameter value and approach it
benchmarks the batch solve (the paper's panel (b)) and records the
achieved cooperation score and the Equation 9 upper bound in
``benchmark.extra_info`` (panel (a)). The full-size sweeps live in
``python -m repro.experiments.run_all``.
"""

from __future__ import annotations

from functools import lru_cache

import pytest

from repro.core.bounds import upper_bound
from repro.core.model import Instance, Task, Worker
from repro.core.validity import ValidPairs, compute_valid_pairs
from repro.datasets.meetup import generate_meetup_dataset
from repro.datasets.synthetic import gaussian_in_range, generate_locations
from repro.experiments.config import make_solver
from repro.spatial.geometry import Point
from repro.utils.rng import ensure_rng

BENCH_SEED = 0

#: Reduced Table II defaults used across the benchmark suite.
BENCH_WORKERS = 400
BENCH_TASKS = 100
BENCH_CAPACITY = 4
BENCH_MIN_GROUP = 3
BENCH_SPEED = (0.01, 0.05)
BENCH_RADIUS = (0.05, 0.10)
BENCH_TAU = 3.0

#: The approaches benchmarked for every figure (GT variants beyond these
#: are covered by test_fig6_epsilon.py and test_ablations.py).
BENCH_APPROACHES = ("RAND", "MFLOW", "TPG", "GT", "GT+ALL")


@lru_cache(maxsize=1)
def _meetup_population():
    dataset = generate_meetup_dataset(
        user_count=1200, event_count=400, group_count=250, seed=BENCH_SEED
    )
    return dataset


@lru_cache(maxsize=32)
def make_batch(
    dataset: str = "meetup",
    workers: int = BENCH_WORKERS,
    tasks: int = BENCH_TASKS,
    capacity: int = BENCH_CAPACITY,
    speed_range: tuple[float, float] = BENCH_SPEED,
    radius_range: tuple[float, float] = BENCH_RADIUS,
    remaining_time: float = BENCH_TAU,
    seed: int = BENCH_SEED,
) -> tuple[Instance, ValidPairs]:
    """One reproducible batch for a figure's parameter value.

    ``dataset="meetup"`` samples from the cached surrogate crawl (Figures
    2-5); ``"unif"`` generates synthetic uniform data (Figures 6-8).
    """
    rng = ensure_rng(seed)
    if dataset == "meetup":
        population = _meetup_population()
        worker_index = rng.choice(
            population.user_count, size=workers, replace=False
        )
        worker_xy = population.user_locations[worker_index]
        task_index = rng.integers(0, population.event_count, size=tasks)
        task_xy = population.event_locations[task_index]
        quality = population.quality.restricted_to(worker_index)
    elif dataset == "unif":
        from repro.core.quality import CooperationMatrix

        worker_xy = generate_locations(rng, workers, "uniform")
        task_xy = generate_locations(rng, tasks, "uniform")
        quality = CooperationMatrix.random_community(workers, seed=rng)
    else:
        raise ValueError(f"unknown dataset {dataset!r}")

    speeds = gaussian_in_range(rng, workers, *speed_range)
    radii = gaussian_in_range(rng, workers, *radius_range)
    worker_objects = [
        Worker(
            worker_id=i,
            location=Point(float(worker_xy[i][0]), float(worker_xy[i][1])),
            speed=float(speeds[i]),
            radius=float(radii[i]),
        )
        for i in range(workers)
    ]
    task_objects = [
        Task(
            task_id=j,
            location=Point(float(task_xy[j][0]), float(task_xy[j][1])),
            capacity=capacity,
            deadline=remaining_time,
        )
        for j in range(tasks)
    ]
    instance = Instance(
        workers=worker_objects,
        tasks=task_objects,
        quality=quality,
        min_group_size=BENCH_MIN_GROUP,
    )
    return instance, compute_valid_pairs(instance)


def bench_solve(benchmark, approach: str, instance, valid_pairs) -> None:
    """Benchmark one approach on one batch, recording score and UPPER."""
    solver = make_solver(approach, seed=BENCH_SEED)
    assignment = benchmark(solver, instance, valid_pairs)
    benchmark.extra_info["approach"] = approach
    benchmark.extra_info["score"] = round(assignment.total_score(), 3)
    benchmark.extra_info["completed_tasks"] = assignment.completed_task_count()
    benchmark.extra_info["upper"] = round(
        upper_bound(instance, valid_pairs).value, 3
    )


@pytest.fixture(params=BENCH_APPROACHES)
def approach(request) -> str:
    return request.param
