"""Performance guard — the repo's perf-trajectory record.

Runs the instrumented solvers (TPG, GT, GT+ALL) on seeded Table II
default-scale batches (m = 1000 workers, n = 500 tasks), checks that
every incremental score matches the from-scratch Equation 2/3 oracle
bit-for-bit, and writes ``BENCH_pr1.json`` next to this file: per-seed
per-batch solve times, scores, and the merged
:class:`~repro.core.stats.SolverStats` counters.

Usage::

    PYTHONPATH=src python benchmarks/bench_guard.py            # 3 seeds
    PYTHONPATH=src python benchmarks/bench_guard.py --repeats 4

Exit status is non-zero when an incremental score deviates from the
oracle — the cache drifting from Equation 2 is a correctness bug, never
a tolerance issue, because every cache path is bit-identical by
construction.

The ``baseline_reference`` block records the pre-incremental-engine
timings measured on the same machine when this guard was introduced, so
future sessions can read the speed trajectory without digging through
git history.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.game import solve_game_theoretic  # noqa: E402
from repro.core.tpg import solve_tpg_with_stats  # noqa: E402
from repro.core.validity import compute_valid_pairs  # noqa: E402
from repro.datasets.synthetic import generate_instance  # noqa: E402

#: Table II defaults (bold): m = 1000 workers, n = 500 tasks per batch.
DEFAULT_WORKERS = 1000
DEFAULT_TASKS = 500
DEFAULT_SEEDS = (0, 1, 2)
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_pr1.json"

#: Mean per-batch wall-clock of the pre-incremental-engine code at the
#: same scale and seeds, measured as min-of-4 repeats on the machine
#: that introduced this guard. The incremental engine's acceptance bar
#: was mean GT time improved >= 2x against these numbers.
BASELINE_REFERENCE = {
    "tpg_mean_seconds": 0.128,
    "gt_mean_seconds": 0.389,
    "gtall_mean_seconds": 0.204,
}


def _check_oracle(label: str, seed: int, assignment) -> list[str]:
    """Compare the incremental total against from-scratch Equation 3.

    The tolerance matches the stateful-test contract: the delta path
    accumulates pair sums one move at a time, so totals can differ from
    the single-pass from-scratch sum by float-accumulation noise (about
    one ulp per move); any cache bug shows up orders of magnitude above
    1e-9.
    """
    incremental = assignment.total_score()
    oracle = assignment.recompute_total()
    if not math.isclose(incremental, oracle, rel_tol=1e-9, abs_tol=1e-9):
        return [
            f"{label} seed={seed}: incremental score {incremental!r} "
            f"deviates from from-scratch oracle {oracle!r}"
        ]
    return []


def run_guard(
    seeds=DEFAULT_SEEDS,
    workers: int = DEFAULT_WORKERS,
    tasks: int = DEFAULT_TASKS,
    repeats: int = 3,
) -> tuple[dict, list[str]]:
    failures: list[str] = []
    record: dict = {
        "scale": {"workers": workers, "tasks": tasks, "seeds": list(seeds)},
        "repeats": repeats,
        "baseline_reference": dict(BASELINE_REFERENCE),
        "batches": {},
    }

    for seed in seeds:
        instance = generate_instance(workers, tasks, seed=seed)
        valid_pairs = compute_valid_pairs(instance)
        entry: dict = {}

        best_tpg = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            tpg = solve_tpg_with_stats(instance, valid_pairs)
            best_tpg = min(best_tpg, time.perf_counter() - started)
        failures += _check_oracle("TPG", seed, tpg.assignment)
        entry["tpg"] = {
            "seconds": best_tpg,
            "score": repr(tpg.assignment.total_score()),
            "seeded_tasks": tpg.seeded_tasks,
            "stats": tpg.stats.to_dict() if tpg.stats else None,
        }

        best_gt = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            gt = solve_game_theoretic(instance, valid_pairs)
            best_gt = min(best_gt, time.perf_counter() - started)
        failures += _check_oracle("GT", seed, gt.assignment)
        entry["gt"] = {
            "seconds": best_gt,
            "score": repr(gt.final_score),
            "rounds": gt.rounds,
            "moves": gt.moves,
            "converged": gt.converged,
            "stats": gt.stats.to_dict() if gt.stats else None,
        }

        best_gtall = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            gtall = solve_game_theoretic(
                instance, valid_pairs, epsilon=0.05, lazy_update=True
            )
            best_gtall = min(best_gtall, time.perf_counter() - started)
        failures += _check_oracle("GT+ALL", seed, gtall.assignment)
        entry["gtall"] = {
            "seconds": best_gtall,
            "score": repr(gtall.final_score),
            "rounds": gtall.rounds,
            "moves": gtall.moves,
            "stats": gtall.stats.to_dict() if gtall.stats else None,
        }

        record["batches"][str(seed)] = entry

    batches = record["batches"].values()
    record["summary"] = {
        solver: {
            "mean_seconds": sum(b[solver]["seconds"] for b in batches)
            / len(record["batches"]),
        }
        for solver in ("tpg", "gt", "gtall")
    }
    for solver in ("tpg", "gt", "gtall"):
        baseline = BASELINE_REFERENCE[f"{solver}_mean_seconds"]
        mean = record["summary"][solver]["mean_seconds"]
        record["summary"][solver]["speedup_vs_baseline"] = baseline / mean
    return record, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=DEFAULT_WORKERS)
    parser.add_argument("--tasks", type=int, default=DEFAULT_TASKS)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--out", type=Path, default=OUTPUT, help="output JSON path"
    )
    args = parser.parse_args(argv)

    record, failures = run_guard(
        workers=args.workers, tasks=args.tasks, repeats=args.repeats
    )
    args.out.write_text(json.dumps(record, indent=1) + "\n", encoding="utf-8")
    print(f"wrote {args.out}")
    for solver in ("tpg", "gt", "gtall"):
        summary = record["summary"][solver]
        print(
            f"{solver}: mean {summary['mean_seconds'] * 1e3:.1f} ms/batch "
            f"({summary['speedup_vs_baseline']:.2f}x vs pre-incremental baseline)"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("all incremental scores match the from-scratch oracle")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
