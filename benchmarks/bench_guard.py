"""Performance guard — the repo's perf-trajectory record.

Two sections, both written to ``BENCH_pr2.json`` next to the repo root:

* **solver_guard** — runs the instrumented solvers (TPG, GT, GT+ALL) on
  seeded Table II default-scale batches (m = 1000 workers, n = 500
  tasks), checks that every incremental score matches the from-scratch
  Equation 2/3 oracle bit-for-bit, and records per-seed solve times,
  scores, and the merged :class:`~repro.core.stats.SolverStats`.
* **parallel_sweep** — runs the Figure 7 worker sweep serially and with
  ``--jobs N`` through :class:`~repro.experiments.parallel.
  SweepExecutor`, records both wall-clocks plus the executor telemetry,
  and checks that every parallel score / upper bound / completed-task
  count is **bit-identical** to the serial run. The measured speedup is
  hardware-dependent (it needs free cores — ``cpu_count`` is recorded
  alongside so the number is interpretable); the telemetry's
  ``speedup_vs_serial_estimate`` additionally reports
  sum-of-cell-time / wall, the core-independent view.

A third section — the best-response kernel record — is written to
``BENCH_pr6.json``:

* **kernel_guard** — solves GT and GT+ALL on the seed grid with
  ``kernel="python"`` and ``kernel="native"`` and checks the assignments
  and scores are **repr-identical** (the ``repro.core.kernels``
  contract), recording per-kernel wall-clocks, the measured speedup,
  whether numba was importable (without it ``native`` runs the numpy
  fallback, so the speedup documents the fallback's ceiling, not the
  compiled kernel's), and the kernel counters from
  :class:`~repro.core.stats.SolverStats`.

A fourth group of sections — the quality-store scale record — is written
to ``BENCH_pr4.json``:

* **backend_parity** — builds the *same* community quality matrix as a
  :class:`~repro.core.quality_store.SparseQualityStore`, its dense
  ``to_dense()`` twin, and a shared-memory copy, then solves TPG, GT and
  GT+ALL on each over the seed grid and checks the assignments and
  scores are **repr-identical** across all three backends.
* **memory_scaling** — per worker count (default 2 000 / 8 000 /
  20 000), spawns one child process per backend that builds its
  production quality store plus a fixed read workload and reports
  ``ru_maxrss``; records peak RSS and wall for dense vs sparse. At
  n >= 20 000 the sparse backend must cut peak RSS by at least 5x or
  the guard fails.
* **shared_attach** — one-time shared-segment creation cost vs the
  per-worker zero-copy attach, against the per-process rebuild and
  memcpy costs it replaces.

A fifth section — the geo-sharded scale record — is written to
``BENCH_pr7.json``:

* **shard_scaling** — per worker count (default 20 000 / 100 000),
  spawns one child process per leg (monolithic GT, sharded GT twice)
  on a sparse-geometry synthetic population with the sparse quality
  backend, and records wall-clock, peak RSS, the revenue gap, the
  sharded pipeline's phase breakdown, and a *critical-path concurrency
  estimate* (what the sharded wall would be if the per-shard solves
  ran concurrently: partition + carve + slowest shard + reconcile).
  Gates: the two sharded runs must be **bit-identical** (same pairs,
  same repr'd score); at the largest size with a monolithic leg the
  revenue gap must stay <= 1% and the better of measured / estimated
  speedup must reach >= 3x (on a 1-core container the estimate is the
  honest number — recorded alongside ``cpu_count`` like the parallel
  sweep); the largest size runs sharded-only — the monolithic solve is
  not affordable there, completing it *is* the result.

A sixth section — the crash-recovery record — is written to
``BENCH_pr8.json``:

* **chaos_guard** — runs one small sweep three ways: serial (the
  oracle), over a spawn pool with the retry/backoff policy threaded but
  no chaos (must stay **repr-identical** to serial — the chaos-off
  parity gate), and over the same pool under an activated
  :class:`~repro.chaos.ChaosPolicy` SIGKILLing ~10% of first attempts
  (must also recover to repr-identical results with zero failed cells).
  Records cells/sec for the clean and chaotic legs plus the recovery
  overhead ratio — the price of supervision when children actually die.

A seventh section — the interpreted-hot-path record — is written to
``BENCH_pr9.json``:

* **hotpath_guard** — the full-loop kernel-coverage record. Per size
  (default 2 000 / 20 000 workers on the sparse-geometry population):
  (a) *validity* — the vectorized grid construction vs the scalar
  ``query_circle`` + ``_deadline_ok`` oracle, timed both end-to-end and
  on the candidate-scan stage alone (the stage the vectorization
  replaced — the end-to-end ratio is Amdahl-limited by the shared
  ``ValidPairs`` tuple assembly both paths pay, see
  docs/PERFORMANCE.md), with structural membership parity checked; at
  n >= 20 000 the scan-stage speedup must reach >= 5x. (b) *GT
  end-to-end* — ``kernel="python"`` vs ``kernel="native"`` (round-start
  prepass + mid-round rescan + TPG stage-1 kernels together), repr
  parity on pairs and score, rescan/kernel counters recorded; at the
  gate size the native speedup must reach >= 1.5x even on the numpy
  fallback (the compiled numba figure comes from the CI hotpath job and
  is folded in as ``compiled_reference`` when ``BENCH_pr6.json`` was
  measured with numba importable). (c) one sharded 100k leg solved with
  ``kernel="native"`` — completing it is the result. (d) embedded
  ``repro profile`` hotspot reports (python vs native at the smallest
  size) so the record shows *which* interpreted loops the kernels
  displaced, not just the ratio.

An eighth section — the shared-scalar-walls record — is written to
``BENCH_pr10.json``:

* **peel_guard** — the overflow counted-subset peel and bulk-gather
  record. (a) *parity* — GT solved across {dense, sparse, shared} x
  {python, native} on a small contended instance must produce one
  repr-identical fingerprint; direct ``counted_subset_select`` calls at
  the kept sizes straddling numpy's pairwise-summation cliff (7/8/9 and
  beyond) must equal the scalar ``best_counted_subset`` oracle on every
  backend, and ``gather_rows`` must equal the dense lookup. (b) *GT
  end-to-end* — python vs native on the *contended* population
  (tasks = workers // 16, capacity 8, dense reach): every join probe
  against a full task overflows and peels 9 members, the regime PR 9
  documented as kernel-invariant ("the shared scalar walls"); at the
  gate size the native speedup must reach >= 1.5x even on the numpy
  fallback. Records per-kernel peel dispatch counters alongside.

Usage::

    PYTHONPATH=src python benchmarks/bench_guard.py              # everything
    PYTHONPATH=src python benchmarks/bench_guard.py --repeats 4
    PYTHONPATH=src python benchmarks/bench_guard.py --jobs 8 --sweep-scale 0.5
    PYTHONPATH=src python benchmarks/bench_guard.py --skip-sweep
    PYTHONPATH=src python benchmarks/bench_guard.py --only-scale \\
        --scale-sizes 2000 8000 20000
    PYTHONPATH=src python benchmarks/bench_guard.py --only-shards \\
        --shard-sizes 20000 100000
    PYTHONPATH=src python benchmarks/bench_guard.py --only-hotpath \\
        --hotpath-sizes 2000 20000 --hotpath-shard-size 100000
    PYTHONPATH=src python benchmarks/bench_guard.py --only-peel \\
        --peel-sizes 4000 20000

Exit status is non-zero when an incremental score deviates from the
oracle or a parallel sweep result deviates from serial — both are
correctness bugs, never tolerance issues, because both paths are
bit-identical by construction.

The ``baseline_reference`` block records the pre-incremental-engine
timings measured on the same machine when this guard was introduced, so
future sessions can read the speed trajectory without digging through
git history.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.game import solve_game_theoretic  # noqa: E402
from repro.core.model import Instance  # noqa: E402
from repro.core.tpg import solve_tpg_with_stats  # noqa: E402
from repro.core.validity import compute_valid_pairs  # noqa: E402
from repro.datasets.synthetic import generate_instance  # noqa: E402

#: Table II defaults (bold): m = 1000 workers, n = 500 tasks per batch.
DEFAULT_WORKERS = 1000
DEFAULT_TASKS = 500
DEFAULT_SEEDS = (0, 1, 2)
DEFAULT_SWEEP_SCALE = 0.3
DEFAULT_JOBS = 4
DEFAULT_SCALE_SIZES = (2000, 8000, 20000)
#: Acceptance bar: at n >= this, sparse must cut peak RSS >= 5x.
RSS_RATIO_FLOOR = 5.0
RSS_RATIO_SIZE = 20000
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_pr2.json"
SCALE_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_pr4.json"
KERNEL_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_pr6.json"
SHARD_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_pr7.json"
CHAOS_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_pr8.json"
HOTPATH_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_pr9.json"

#: Interpreted-hot-path record: sizes and acceptance bars. Sizes use the
#: shard benchmark's sparse-geometry population (tasks = workers // 4,
#: sparse store, grid validity) so GT at 20k workers is affordable and
#: representative of the regime the kernels target. Gates apply at
#: HOTPATH_GATE_SIZE: the native GT end-to-end speedup must reach
#: >= 1.5x even on the numpy fallback, and the vectorized validity
#: candidate-scan stage must beat the scalar loop >= 5x (end-to-end
#: validity is recorded alongside but not gated — both paths share the
#: ValidPairs tuple assembly, an Amdahl floor the scan ratio excludes).
DEFAULT_HOTPATH_SIZES = (2000, 20000)
HOTPATH_GATE_SIZE = 20000
HOTPATH_GT_SPEEDUP_FLOOR = 1.5
VALIDITY_SCAN_SPEEDUP_FLOOR = 5.0
HOTPATH_SHARD_SIZE = 100000
HOTPATH_PROFILE_TOP = 10

#: Shared-scalar-walls record: sizes and acceptance bars. The peel
#: population keeps the hotpath family's dense reach but starves task
#: slots (tasks = workers // PEEL_TASK_DIVISOR, capacity
#: PEEL_CAPACITY): groups saturate at 8 members, so every further join
#: probe overflows and peels a 9-member group — one kept count past
#: numpy's pairwise cliff, the regime the PR 9 record documented as
#: bounded near 1x because both kernels ran the identical scalar peel.
#: The gate applies at PEEL_GATE_SIZE: native GT end-to-end must reach
#: >= PEEL_GT_SPEEDUP_FLOOR even on the numpy fallback.
PEEL_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_pr10.json"
DEFAULT_PEEL_SIZES = (4000, 20000)
PEEL_GATE_SIZE = 20000
PEEL_GT_SPEEDUP_FLOOR = 1.5
PEEL_TASK_DIVISOR = 16
PEEL_CAPACITY = 8
PEEL_PARITY_WORKERS = 1000
#: Chaos-guard kill probability per first attempt (see run_chaos_benchmark).
#: 0.2 is the smallest decade-ish rate whose seeded draws actually fire
#: on the 6-cell guard sweep (at 0.1 no cell draws a kill, so the
#: "chaotic" leg would measure nothing).
CHAOS_KILL_RATE = 0.2

#: Geo-sharded scale record: sizes, geometry and the acceptance bars.
#: The population is sparse-geometry (small working radii) with the
#: sparse quality backend — the regime sharding exists for; n tasks is
#: workers // 4. Monolithic legs only run up to SHARD_MONO_CAP (beyond
#: it the monolithic solve is the thing being avoided).
DEFAULT_SHARD_SIZES = (20000, 100000)
SHARD_MONO_CAP = 20000
SHARD_RADIUS_RANGE = (0.01, 0.02)
SHARD_SPEEDUP_FLOOR = 3.0
SHARD_GAP_CEILING = 0.01

#: Mean per-batch wall-clock of the pre-incremental-engine code at the
#: same scale and seeds, measured as min-of-4 repeats on the machine
#: that introduced this guard. The incremental engine's acceptance bar
#: was mean GT time improved >= 2x against these numbers.
BASELINE_REFERENCE = {
    "tpg_mean_seconds": 0.128,
    "gt_mean_seconds": 0.389,
    "gtall_mean_seconds": 0.204,
}


def _check_oracle(label: str, seed: int, assignment) -> list[str]:
    """Compare the incremental total against from-scratch Equation 3.

    The tolerance matches the stateful-test contract: the delta path
    accumulates pair sums one move at a time, so totals can differ from
    the single-pass from-scratch sum by float-accumulation noise (about
    one ulp per move); any cache bug shows up orders of magnitude above
    1e-9.
    """
    incremental = assignment.total_score()
    oracle = assignment.recompute_total()
    if not math.isclose(incremental, oracle, rel_tol=1e-9, abs_tol=1e-9):
        return [
            f"{label} seed={seed}: incremental score {incremental!r} "
            f"deviates from from-scratch oracle {oracle!r}"
        ]
    return []


def run_guard(
    seeds=DEFAULT_SEEDS,
    workers: int = DEFAULT_WORKERS,
    tasks: int = DEFAULT_TASKS,
    repeats: int = 3,
) -> tuple[dict, list[str]]:
    failures: list[str] = []
    record: dict = {
        "scale": {"workers": workers, "tasks": tasks, "seeds": list(seeds)},
        "repeats": repeats,
        "baseline_reference": dict(BASELINE_REFERENCE),
        "batches": {},
    }

    for seed in seeds:
        instance = generate_instance(workers, tasks, seed=seed)
        valid_pairs = compute_valid_pairs(instance)
        entry: dict = {}

        best_tpg = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            tpg = solve_tpg_with_stats(instance, valid_pairs)
            best_tpg = min(best_tpg, time.perf_counter() - started)
        failures += _check_oracle("TPG", seed, tpg.assignment)
        entry["tpg"] = {
            "seconds": best_tpg,
            "score": repr(tpg.assignment.total_score()),
            "seeded_tasks": tpg.seeded_tasks,
            "stats": tpg.stats.to_dict() if tpg.stats else None,
        }

        best_gt = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            gt = solve_game_theoretic(instance, valid_pairs)
            best_gt = min(best_gt, time.perf_counter() - started)
        failures += _check_oracle("GT", seed, gt.assignment)
        entry["gt"] = {
            "seconds": best_gt,
            "score": repr(gt.final_score),
            "rounds": gt.rounds,
            "moves": gt.moves,
            "converged": gt.converged,
            "stats": gt.stats.to_dict() if gt.stats else None,
        }

        best_gtall = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            gtall = solve_game_theoretic(
                instance, valid_pairs, epsilon=0.05, lazy_update=True
            )
            best_gtall = min(best_gtall, time.perf_counter() - started)
        failures += _check_oracle("GT+ALL", seed, gtall.assignment)
        entry["gtall"] = {
            "seconds": best_gtall,
            "score": repr(gtall.final_score),
            "rounds": gtall.rounds,
            "moves": gtall.moves,
            "stats": gtall.stats.to_dict() if gtall.stats else None,
        }

        record["batches"][str(seed)] = entry

    batches = record["batches"].values()
    record["summary"] = {
        solver: {
            "mean_seconds": sum(b[solver]["seconds"] for b in batches)
            / len(record["batches"]),
        }
        for solver in ("tpg", "gt", "gtall")
    }
    for solver in ("tpg", "gt", "gtall"):
        baseline = BASELINE_REFERENCE[f"{solver}_mean_seconds"]
        mean = record["summary"][solver]["mean_seconds"]
        record["summary"][solver]["speedup_vs_baseline"] = baseline / mean
    return record, failures


def _sweep_fingerprint(result) -> dict:
    """Everything a sweep computes that must be bit-identical across
    executors: scores, upper bounds and completed-task counts, keyed by
    parameter value and approach. Uses ``repr`` so comparison is exact
    down to the last float bit."""
    table: dict = {}
    for point in result.points:
        table[str(point.value)] = {
            "upper": repr(point.upper),
            "scores": {
                name: repr(outcome.total_score)
                for name, outcome in point.outcomes.items()
            },
            "completed": {
                name: outcome.completed_tasks
                for name, outcome in point.outcomes.items()
            },
        }
    return table


def run_sweep_benchmark(
    scale: float = DEFAULT_SWEEP_SCALE,
    jobs: int = DEFAULT_JOBS,
    seed: int = 0,
) -> tuple[dict, list[str]]:
    """Serial vs parallel Figure 7 sweep: wall-clocks + parity check."""
    from repro.experiments.figures import fig7_workers

    failures: list[str] = []

    started = time.perf_counter()
    serial = fig7_workers(scale=scale, seed=seed, n_jobs=1)
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    parallel = fig7_workers(scale=scale, seed=seed, n_jobs=jobs)
    parallel_seconds = time.perf_counter() - started

    serial_table = _sweep_fingerprint(serial)
    parallel_table = _sweep_fingerprint(parallel)
    if serial_table != parallel_table:
        failures.append(
            f"fig7 sweep at --jobs {jobs} is not bit-identical to serial"
        )
    for failure in parallel.failures:
        failures.append(
            f"fig7 parallel sweep cell failed: {failure.approach} at "
            f"{failure.parameter}={failure.value}: {failure.error}"
        )

    record = {
        "figure": "fig7_workers",
        "scale": scale,
        "seed": seed,
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "measured_speedup": (
            serial_seconds / parallel_seconds if parallel_seconds else 0.0
        ),
        "bit_identical": serial_table == parallel_table,
        "serial_telemetry": serial.telemetry.to_dict(),
        "parallel_telemetry": parallel.telemetry.to_dict(),
        "scores": serial_table,
    }
    return record, failures


def run_kernel_benchmark(
    seeds=DEFAULT_SEEDS,
    workers: int = DEFAULT_WORKERS,
    tasks: int = DEFAULT_TASKS,
    repeats: int = 3,
) -> tuple[dict, list[str]]:
    """Python vs native kernel: repr parity + per-kernel wall-clocks.

    Both kernels must produce the same assignment down to the last
    float bit (divergence is a correctness bug in
    ``repro.core.kernels``, never a tolerance issue). The measured
    speedup is honest about the environment: when numba is not
    importable the ``native`` kernel runs its numpy fallback, so the
    recorded number is the fallback's ceiling — the compiled figure has
    to come from an environment with numba (the CI kernel job).
    """
    from repro.core.kernels import NUMBA_AVAILABLE

    failures: list[str] = []
    record: dict = {
        "scale": {"workers": workers, "tasks": tasks, "seeds": list(seeds)},
        "repeats": repeats,
        "numba_available": NUMBA_AVAILABLE,
        "solvers": ["gt", "gtall"],
        "note": (
            "native == numba-compiled batched prepass when numba is "
            "importable, numpy fallback otherwise; either way the "
            "assignment is repr-identical to kernel='python'"
        ),
        "boundary_bugfix_note": (
            "this PR also fixed the _VECTOR_GROUP_LIMIT boundary: the "
            "historical np.add.reduceat batch reduction reorders "
            "segments of >= 3 elements on current numpy, diverging "
            "bitwise from the scalar join_gain path. The order-exact "
            "replacement changes last-bit utilities where the old path "
            "was wrong; on the seed grid plain GT is repr-identical to "
            "the pre-PR solver, while GT+ALL at seed 0 converges to a "
            "different (higher-scoring) equilibrium: 673.9239461574595 "
            "-> 675.5963027046109."
        ),
        "seeds": {},
    }
    configs = {
        "gt": dict(epsilon=0.0, lazy_update=False),
        "gtall": dict(epsilon=0.05, lazy_update=True),
    }
    for seed in seeds:
        instance = generate_instance(workers, tasks, seed=seed)
        valid_pairs = compute_valid_pairs(instance)
        entry: dict = {}
        for solver, kwargs in configs.items():
            per_kernel: dict = {}
            for kernel in ("python", "native"):
                best = float("inf")
                result = None
                for _ in range(repeats):
                    started = time.perf_counter()
                    result = solve_game_theoretic(
                        instance, valid_pairs, kernel=kernel, **kwargs
                    )
                    best = min(best, time.perf_counter() - started)
                failures += _check_oracle(
                    f"{solver}[{kernel}]", seed, result.assignment
                )
                per_kernel[kernel] = {
                    "seconds": best,
                    "score": repr(result.final_score),
                    "pairs": repr(result.assignment.to_pairs()),
                    "rounds": result.rounds,
                    "moves": result.moves,
                    "stats": result.stats.to_dict() if result.stats else None,
                }
            identical = per_kernel["python"]["score"] == per_kernel["native"][
                "score"
            ] and per_kernel["python"]["pairs"] == per_kernel["native"]["pairs"]
            if not identical:
                failures.append(
                    f"kernel parity {solver} seed={seed}: native diverges "
                    f"from python ({per_kernel['native']['score']} vs "
                    f"{per_kernel['python']['score']})"
                )
            entry[solver] = {
                "identical": identical,
                "speedup_native_vs_python": (
                    per_kernel["python"]["seconds"]
                    / per_kernel["native"]["seconds"]
                ),
                **{
                    kernel: {
                        key: value
                        for key, value in per_kernel[kernel].items()
                        if key != "pairs"  # repr'd pair lists are huge
                    }
                    for kernel in per_kernel
                },
            }
        record["seeds"][str(seed)] = entry
    record["summary"] = {}
    for solver in configs:
        entries = [record["seeds"][str(s)][solver] for s in seeds]
        python_mean = sum(e["python"]["seconds"] for e in entries) / len(entries)
        native_mean = sum(e["native"]["seconds"] for e in entries) / len(entries)
        record["summary"][solver] = {
            "python_mean_seconds": python_mean,
            "native_mean_seconds": native_mean,
            "speedup": python_mean / native_mean,
            "identical": all(e["identical"] for e in entries),
        }
    record["parity"] = all(
        entry["identical"] for entry in record["summary"].values()
    )
    return record, failures


def _with_quality(instance: Instance, quality) -> Instance:
    """The same workers/tasks served by a different quality backend."""
    return Instance(
        workers=instance.workers,
        tasks=instance.tasks,
        quality=quality,
        min_group_size=instance.min_group_size,
        now=instance.now,
    )


def _solve_fingerprint(instance: Instance) -> dict:
    """Repr-exact record of what each solver decides on ``instance``.

    ``repr`` of the (worker, task) pair list plus the incremental total,
    so any backend-induced difference — even one float bit — shows up.
    """
    valid_pairs = compute_valid_pairs(instance)
    fingerprint: dict = {}
    tpg = solve_tpg_with_stats(instance, valid_pairs)
    fingerprint["tpg"] = {
        "pairs": repr(tpg.assignment.to_pairs()),
        "score": repr(tpg.assignment.total_score()),
    }
    gt = solve_game_theoretic(instance, valid_pairs)
    fingerprint["gt"] = {
        "pairs": repr(gt.assignment.to_pairs()),
        "score": repr(gt.final_score),
    }
    gtall = solve_game_theoretic(
        instance, valid_pairs, epsilon=0.05, lazy_update=True
    )
    fingerprint["gtall"] = {
        "pairs": repr(gtall.assignment.to_pairs()),
        "score": repr(gtall.final_score),
    }
    return fingerprint


def run_backend_parity(
    seeds=DEFAULT_SEEDS,
    workers: int = DEFAULT_WORKERS,
    tasks: int = DEFAULT_TASKS,
) -> tuple[dict, list[str]]:
    """Dense / sparse / shared backends must make identical decisions.

    All three stores hold the *same* matrix (the sparse community store,
    its dense materialization, and a shared-memory copy of that), so any
    divergence is a backend bug, never a tolerance issue.
    """
    from repro.core.quality_store import SharedDenseQualityStore

    failures: list[str] = []
    record: dict = {
        "scale": {"workers": workers, "tasks": tasks, "seeds": list(seeds)},
        "solvers": ["tpg", "gt", "gtall"],
        "seeds": {},
    }
    for seed in seeds:
        sparse_instance = generate_instance(
            workers, tasks, seed=seed, quality_backend="sparse"
        )
        dense = sparse_instance.quality.to_dense()
        shared = SharedDenseQualityStore.create(dense)
        try:
            fingerprints = {
                "dense": _solve_fingerprint(_with_quality(sparse_instance, dense)),
                "sparse": _solve_fingerprint(sparse_instance),
                "shared": _solve_fingerprint(_with_quality(sparse_instance, shared)),
            }
        finally:
            shared.close()
            shared.unlink()
        identical = (
            fingerprints["dense"] == fingerprints["sparse"] == fingerprints["shared"]
        )
        if not identical:
            for backend in ("sparse", "shared"):
                for solver, expected in fingerprints["dense"].items():
                    got = fingerprints[backend][solver]
                    if got != expected:
                        failures.append(
                            f"backend parity seed={seed}: {backend} {solver} "
                            f"diverges from dense (score {got['score']} vs "
                            f"{expected['score']})"
                        )
        record["seeds"][str(seed)] = {
            "identical": identical,
            "scores": {
                solver: fingerprints["dense"][solver]["score"]
                for solver in fingerprints["dense"]
            },
        }
    record["identical"] = all(
        entry["identical"] for entry in record["seeds"].values()
    )
    return record, failures


def _measure_rss_child(backend: str, worker_count: int) -> int:
    """Child-process mode: build one backend's store, run a fixed read
    workload, print a JSON line with peak RSS — spawned by
    :func:`run_scale_benchmark` so each measurement gets a fresh
    address space (``ru_maxrss`` is a high-water mark)."""
    import resource

    from repro.core.quality import CooperationMatrix
    from repro.datasets.synthetic import sparse_community_quality

    started = time.perf_counter()
    if backend == "dense":
        store = CooperationMatrix.random_community(worker_count, seed=0)
    elif backend == "sparse":
        store = sparse_community_quality(worker_count, seed=0)
    else:
        raise ValueError(f"unknown backend {backend!r}")
    build_seconds = time.perf_counter() - started

    rng = np.random.default_rng(0)
    started = time.perf_counter()
    sink = 0.0
    for _ in range(200):
        group = np.sort(rng.choice(worker_count, size=6, replace=False))
        sink += store.ordered_pair_sum(group)
    for worker in rng.integers(0, worker_count, size=50):
        sink += float(store.q_row(int(worker)).sum())
    subset = np.sort(
        rng.choice(worker_count, size=min(200, worker_count), replace=False)
    )
    sink += float(store.gather(subset).sum())
    read_seconds = time.perf_counter() - started

    print(
        json.dumps(
            {
                "backend": backend,
                "workers": worker_count,
                "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
                "build_seconds": build_seconds,
                "read_seconds": read_seconds,
                "store_nbytes": store.nbytes,
                "checksum": sink,
            }
        )
    )
    return 0


def run_scale_benchmark(
    sizes=DEFAULT_SCALE_SIZES,
) -> tuple[dict, list[str]]:
    """Peak RSS + wall of dense vs sparse community stores per size.

    Each (backend, size) runs in its own child process so the RSS
    high-water mark reflects exactly one store build plus the shared
    read workload.
    """
    failures: list[str] = []
    record: dict = {"sizes": {}, "rss_kb_is_linux_kilobytes": True}
    for worker_count in sizes:
        entry: dict = {}
        for backend in ("dense", "sparse"):
            result = subprocess.run(
                [
                    sys.executable,
                    str(Path(__file__).resolve()),
                    "--measure-rss",
                    backend,
                    str(worker_count),
                ],
                capture_output=True,
                text=True,
            )
            if result.returncode != 0:
                failures.append(
                    f"RSS child {backend} n={worker_count} failed: "
                    f"{result.stderr.strip().splitlines()[-1:]}"
                )
                continue
            entry[backend] = json.loads(result.stdout.strip().splitlines()[-1])
        if "dense" in entry and "sparse" in entry:
            ratio = entry["dense"]["peak_rss_kb"] / entry["sparse"]["peak_rss_kb"]
            entry["rss_ratio_dense_over_sparse"] = ratio
            entry["nbytes_ratio"] = (
                entry["dense"]["store_nbytes"] / entry["sparse"]["store_nbytes"]
            )
            if worker_count >= RSS_RATIO_SIZE and ratio < RSS_RATIO_FLOOR:
                failures.append(
                    f"sparse backend cuts peak RSS only {ratio:.2f}x at "
                    f"n={worker_count}; the acceptance floor is "
                    f"{RSS_RATIO_FLOOR:g}x"
                )
        record["sizes"][str(worker_count)] = entry
    return record, failures


def run_attach_benchmark(
    worker_count: int = 4000, repeats: int = 5
) -> tuple[dict, list[str]]:
    """Shared-memory attach vs the per-process costs it replaces.

    A pool worker without the shared backend either rebuilds the
    population from its seed or receives a pickled copy (~one memcpy);
    with it, the worker attaches to the parent's segment zero-copy.
    """
    from repro.core.quality import CooperationMatrix
    from repro.core.quality_store import SharedDenseQualityStore

    failures: list[str] = []
    started = time.perf_counter()
    dense = CooperationMatrix.random_community(worker_count, seed=0)
    rebuild_seconds = time.perf_counter() - started

    started = time.perf_counter()
    copied = np.array(dense.values, copy=True)
    copy_seconds = time.perf_counter() - started
    del copied

    started = time.perf_counter()
    shared = SharedDenseQualityStore.create(dense)
    create_seconds = time.perf_counter() - started

    attach_seconds = float("inf")
    try:
        for _ in range(repeats):
            started = time.perf_counter()
            attached = SharedDenseQualityStore.attach(shared.name, worker_count)
            float(attached.q_row(0).sum())  # touch pages through the view
            attach_seconds = min(attach_seconds, time.perf_counter() - started)
            attached.close()
    finally:
        shared.close()
        shared.unlink()

    record = {
        "workers": worker_count,
        "matrix_nbytes": dense.nbytes,
        "rebuild_seconds": rebuild_seconds,
        "copy_seconds": copy_seconds,
        "create_seconds": create_seconds,
        "attach_seconds": attach_seconds,
        "attach_speedup_vs_rebuild": rebuild_seconds / attach_seconds,
        "attach_speedup_vs_copy": copy_seconds / attach_seconds,
        "repeats": repeats,
    }
    if attach_seconds >= rebuild_seconds:
        failures.append(
            f"shared-memory attach ({attach_seconds:.4f}s) is not cheaper "
            f"than a population rebuild ({rebuild_seconds:.4f}s) at "
            f"n={worker_count}"
        )
    return record, failures


def _shard_instance_pairs(worker_count: int):
    """The shard-benchmark population: sparse geometry, sparse store.

    Deterministic in ``worker_count`` alone so every child process of
    one benchmark run (and every future run) solves the same instance.
    Small working radii keep each worker's candidate set local — the
    regime the spatial partition exists for — and the grid validity
    strategy avoids the O(m x n) distance matrix at these sizes.
    """
    instance = generate_instance(
        worker_count,
        worker_count // 4,
        seed=0,
        radius_range=SHARD_RADIUS_RANGE,
        quality_backend="sparse",
    )
    return instance, compute_valid_pairs(instance, "grid")


#: Hot-path population reach — each worker sees a ~30-60 task candidate
#: set, the regime the batched kernels target. (At the shard family's
#: 0.01-0.02 radii a worker sees ~3 tasks; scalar scans win there and
#: the measurement says nothing about the batched paths.)
HOTPATH_RADIUS_RANGE = (0.03, 0.06)


def _hotpath_instance_pairs(worker_count: int):
    """The hot-path benchmark population: dense reach, capacity slack.

    Deliberately distinct from the shard family along two axes. Dense
    reach (see :data:`HOTPATH_RADIUS_RANGE`) gives the batched candidate
    scans real rows to batch. Capacity slack — task slots exceed the
    worker count — keeps best-response in *within-capacity* scoring,
    which is what the prepass/rescan kernels cover; on a contended
    population the overflow peels (``best_counted_subset``) dominate,
    run the identical scalar path under both kernels, and bound the
    measurable ratio near 1x regardless of kernel quality (the Amdahl
    companion to the validity scan-vs-assembly split;
    see docs/PERFORMANCE.md). The contended regime stays covered by the
    sharded-native leg, which runs on the shard family.
    """
    instance = generate_instance(
        worker_count,
        worker_count // 2,
        capacity=8,
        seed=0,
        radius_range=HOTPATH_RADIUS_RANGE,
        quality_backend="sparse",
    )
    return instance, compute_valid_pairs(instance, "grid")


def _measure_shard_child(leg: str, worker_count: int) -> int:
    """Child-process mode: run one shard-benchmark leg, print JSON.

    ``leg`` is ``mono`` (monolithic GT), ``sharded`` (auto-sharded GT)
    or ``sharded-native`` (the same sharded solve with the native
    evaluation kernels — the hotpath guard's 100k leg). A fresh process
    per leg keeps ``ru_maxrss`` honest and the monolithic leg's memory
    from flattering the sharded one.
    """
    import hashlib
    import resource

    from repro.core.sharding import solve_sharded
    from repro.experiments.config import make_solver

    instance, valid_pairs = _shard_instance_pairs(worker_count)

    started = time.perf_counter()
    if leg == "mono":
        assignment = make_solver("GT", seed=0)(instance, valid_pairs)
        extra: dict = {}
    elif leg in ("sharded", "sharded-native"):
        result = solve_sharded(
            instance,
            valid_pairs,
            approach="GT",
            seed=0,
            shards="auto",
            kernel="native" if leg == "sharded-native" else "python",
        )
        assignment = result.assignment
        extra = {
            # stats carry the counters on the passthrough path too,
            # where plan is None (auto collapsed to one shard)
            "shard_count": result.stats.shard_count,
            "border_workers": result.stats.border_workers,
            "shard_seconds": result.shard_seconds
            or [result.stats.total_seconds],
            "halo_rounds_run": result.halo_rounds_run,
            "halo_moves": result.halo_moves,
            "phase_seconds": dict(result.stats.phase_seconds),
        }
        if leg == "sharded-native":
            # The hotpath guard wants the kernel dispatch/rescan
            # counters, not just the wall-clock.
            extra["stats"] = result.stats.to_dict()
    else:
        raise ValueError(f"unknown leg {leg!r}")
    seconds = time.perf_counter() - started

    print(
        json.dumps(
            {
                "leg": leg,
                "workers": worker_count,
                "seconds": seconds,
                "score": repr(assignment.recompute_total()),
                "pairs_sha256": hashlib.sha256(
                    repr(sorted(assignment.to_pairs())).encode()
                ).hexdigest(),
                "assigned_workers": len(assignment.to_pairs()),
                "peak_rss_kb": resource.getrusage(
                    resource.RUSAGE_SELF
                ).ru_maxrss,
                **extra,
            }
        )
    )
    return 0


def _run_shard_leg(leg: str, worker_count: int) -> tuple[dict | None, str | None]:
    """Spawn one shard-benchmark leg; (payload, error) — one is None."""
    result = subprocess.run(
        [
            sys.executable,
            str(Path(__file__).resolve()),
            "--measure-shard",
            leg,
            str(worker_count),
        ],
        capture_output=True,
        text=True,
    )
    if result.returncode != 0:
        tail = result.stderr.strip().splitlines()[-1:]
        return None, f"shard leg {leg} n={worker_count} failed: {tail}"
    return json.loads(result.stdout.strip().splitlines()[-1]), None


def run_shard_benchmark(
    sizes=DEFAULT_SHARD_SIZES,
    mono_cap: int = SHARD_MONO_CAP,
) -> tuple[dict, list[str]]:
    """Monolithic vs geo-sharded GT at large m: walls, gap, parity.

    Per size: one monolithic leg (skipped above ``mono_cap`` — there
    the point is that the monolithic solve is not affordable, so the
    sharded leg completing *is* the result) and two sharded legs whose
    assignments must be bit-identical (the determinism contract).
    Alongside the measured 1-process wall-clock ratio, the record
    keeps a critical-path concurrency estimate — the sharded wall with
    the per-shard solves overlapped perfectly (partition + carve +
    slowest shard + reconcile) — which is the honest speedup figure on
    a core-starved container, same convention as ``parallel_sweep``.
    """
    failures: list[str] = []
    record: dict = {
        "geometry": {
            "radius_range": list(SHARD_RADIUS_RANGE),
            "tasks_per_worker": 0.25,
            "quality_backend": "sparse",
            "validity_strategy": "grid",
            "approach": "GT",
            "shards": "auto",
        },
        "cpu_count": os.cpu_count(),
        "mono_cap": mono_cap,
        "speedup_floor": SHARD_SPEEDUP_FLOOR,
        "gap_ceiling": SHARD_GAP_CEILING,
        "sizes": {},
    }
    for worker_count in sizes:
        entry: dict = {}
        sharded_runs = []
        for repeat in range(2):
            payload, error = _run_shard_leg("sharded", worker_count)
            if error:
                failures.append(error)
                break
            sharded_runs.append(payload)
        if len(sharded_runs) < 2:
            record["sizes"][str(worker_count)] = entry
            continue
        first, second = sharded_runs
        reproducible = (
            first["pairs_sha256"] == second["pairs_sha256"]
            and first["score"] == second["score"]
        )
        if not reproducible:
            failures.append(
                f"sharded GT n={worker_count} is not bit-reproducible: "
                f"{first['score']} vs {second['score']}"
            )
        entry["sharded"] = first
        entry["sharded_repeat_seconds"] = second["seconds"]
        entry["bit_reproducible"] = reproducible
        phases = first["phase_seconds"]
        critical_path = (
            phases.get("partition", 0.0)
            + phases.get("carve", 0.0)
            + max(first["shard_seconds"])
            + phases.get("reconcile", 0.0)
        )
        entry["critical_path_seconds"] = critical_path

        if worker_count <= mono_cap:
            payload, error = _run_shard_leg("mono", worker_count)
            if error:
                failures.append(error)
            else:
                entry["mono"] = payload
                mono_score = float(payload["score"])
                sharded_score = float(first["score"])
                gap = abs(mono_score - sharded_score) / max(
                    abs(mono_score), 1e-12
                )
                entry["revenue_gap"] = gap
                entry["measured_speedup"] = payload["seconds"] / first["seconds"]
                entry["concurrency_estimate"] = (
                    payload["seconds"] / critical_path
                )
                if gap > SHARD_GAP_CEILING:
                    failures.append(
                        f"sharded GT n={worker_count} revenue gap "
                        f"{gap:.4%} exceeds {SHARD_GAP_CEILING:.0%}"
                    )
                if (
                    max(
                        entry["measured_speedup"],
                        entry["concurrency_estimate"],
                    )
                    < SHARD_SPEEDUP_FLOOR
                ):
                    failures.append(
                        f"sharded GT n={worker_count}: neither measured "
                        f"({entry['measured_speedup']:.2f}x) nor "
                        f"critical-path "
                        f"({entry['concurrency_estimate']:.2f}x) speedup "
                        f"reaches {SHARD_SPEEDUP_FLOOR:g}x"
                    )
        record["sizes"][str(worker_count)] = entry
    return record, failures


def run_chaos_benchmark(
    seed: int = 0,
    jobs: int = 2,
    kill_rate: float = CHAOS_KILL_RATE,
) -> tuple[dict, list[str]]:
    """Chaos-off parity + the wall-clock price of crash recovery.

    Three legs over the same small sweep: a serial oracle, a clean
    spawn-pool run with the retry/backoff policy threaded (the chaos-off
    gate — supervision machinery must not change a single repr'd float),
    and a run under an activated kill-injecting :class:`ChaosPolicy`
    (children die on ~``kill_rate`` of first attempts; the supervisor
    must rebuild, retry and still match the oracle with zero failed
    cells). The recorded overhead ratio is chaotic wall / clean wall.
    """
    from dataclasses import replace

    from repro.chaos.campaign import _fingerprint
    from repro.chaos.policy import ChaosPolicy, activate
    from repro.experiments.config import ExperimentSettings
    from repro.experiments.parallel import SweepExecutor, build_cell_specs
    from repro.utils.procpool import RetryPolicy

    failures: list[str] = []
    base = ExperimentSettings(
        rounds=2,
        workers_per_round=40,
        tasks_per_round=10,
        speed_range=(0.05, 0.2),
        radius_range=(0.2, 0.4),
        dataset="unif",
    )
    values = [30, 40, 50]
    approaches = ("RAND", "GT")
    specs = build_cell_specs(
        figure="chaos-bench",
        parameter="workers_per_round",
        values=values,
        settings_for_value=lambda b, v: replace(b, workers_per_round=v),
        base=base,
        approaches=approaches,
        seed=seed,
    )

    serial_results, _ = SweepExecutor(n_jobs=1).run(specs)
    oracle = _fingerprint(serial_results)

    policy_kwargs = dict(
        n_jobs=jobs,
        timeout=60.0,
        retries=1,
        mp_context="spawn",
        retry_policy=RetryPolicy(seed=seed),
    )
    started = time.perf_counter()
    clean_results, clean_telemetry = SweepExecutor(**policy_kwargs).run(specs)
    clean_seconds = time.perf_counter() - started
    clean_identical = _fingerprint(clean_results) == oracle
    if not clean_identical:
        failures.append(
            "chaos-off pool sweep with the retry policy threaded is not "
            "repr-identical to serial"
        )

    policy = ChaosPolicy(kill_rate=kill_rate, max_attempt=1, seed=seed)
    started = time.perf_counter()
    with activate(policy):
        chaos_results, chaos_telemetry = SweepExecutor(**policy_kwargs).run(
            specs
        )
    chaos_seconds = time.perf_counter() - started
    chaos_identical = _fingerprint(chaos_results) == oracle
    if not chaos_identical:
        failures.append(
            f"sweep under kill_rate={kill_rate:g} chaos did not recover to "
            "repr-identical results"
        )
    if chaos_telemetry.failed_cells:
        failures.append(
            f"sweep under chaos lost {chaos_telemetry.failed_cells} cell(s)"
        )

    cells = len(specs)
    record = {
        "cells": cells,
        "jobs": jobs,
        "seed": seed,
        "kill_rate": kill_rate,
        "cpu_count": os.cpu_count(),
        "clean_seconds": clean_seconds,
        "chaos_seconds": chaos_seconds,
        "clean_cells_per_second": cells / clean_seconds,
        "chaos_cells_per_second": cells / chaos_seconds,
        "recovery_overhead_ratio": chaos_seconds / clean_seconds,
        "chaos_off_identical": clean_identical,
        "chaos_recovered_identical": chaos_identical,
        "clean_telemetry": clean_telemetry.to_dict(),
        "chaos_telemetry": chaos_telemetry.to_dict(),
    }
    return record, failures


def _validity_scan_seconds(
    instance: Instance, repeats: int
) -> tuple[float, float]:
    """Min-of-repeats wall of the candidate-scan stage, scalar vs
    vectorized, with each path's own grid pre-built outside the timer.

    This isolates exactly the loop the vectorization replaced: the
    per-worker ``query_circle`` + ``_deadline_ok`` scan vs one
    ``_grid_valid_lists`` call. The shared ``ValidPairs`` tuple assembly
    both end-to-end paths pay is deliberately excluded here (it is the
    Amdahl floor that caps the end-to-end ratio ~3x; see
    docs/PERFORMANCE.md).
    """
    from repro.core.validity import (
        _GRID_VECTOR_CELL_MULTIPLIER,
        _deadline_ok,
        _grid_valid_lists,
        _max_remaining,
        _reach_limit,
    )
    from repro.spatial.grid import GridIndex

    task_items = [
        (index, task.location) for index, task in enumerate(instance.tasks)
    ]
    mean_radius = float(
        np.mean([worker.radius for worker in instance.workers])
    )
    scalar_index = GridIndex.build(
        task_items, cell_size=max(mean_radius, 1e-6)
    )
    vector_index = GridIndex.build(
        task_items,
        cell_size=max(mean_radius * _GRID_VECTOR_CELL_MULTIPLIER, 1e-6),
    )
    max_remaining = _max_remaining(instance)

    scalar_best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        for worker_index, worker in enumerate(instance.workers):
            candidates = scalar_index.query_circle(
                worker.location,
                _reach_limit(instance, worker_index, max_remaining),
            )
            [
                task_index
                for task_index in candidates
                if _deadline_ok(instance, worker_index, task_index)
            ]
        scalar_best = min(scalar_best, time.perf_counter() - started)

    vector_best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        _grid_valid_lists(instance, vector_index, max_remaining)
        vector_best = min(vector_best, time.perf_counter() - started)
    return scalar_best, vector_best


def run_hotpath_benchmark(
    sizes=DEFAULT_HOTPATH_SIZES,
    repeats: int = 2,
    shard_size: int = HOTPATH_SHARD_SIZE,
    gate_size: int = HOTPATH_GATE_SIZE,
) -> tuple[dict, list[str]]:
    """Full-loop kernel coverage: validity, GT end-to-end, sharded 100k.

    Per size on the hot-path population (dense reach, capacity slack —
    see :func:`_hotpath_instance_pairs`): vectorized-vs-scalar
    validity (membership parity + scan-stage and end-to-end walls), and
    the GT solve with ``kernel="python"`` vs ``kernel="native"`` (repr
    parity on pairs and score, per-kernel stats with the rescan and
    kernel dispatch counters). Gates at ``gate_size``: scan-stage
    speedup >= VALIDITY_SCAN_SPEEDUP_FLOOR, native GT end-to-end
    speedup >= HOTPATH_GT_SPEEDUP_FLOOR (on whatever the environment
    provides — the numpy fallback locally, compiled numba in the CI
    hotpath job). ``shard_size`` adds one ``kernel="native"`` sharded
    leg in a child process (0 skips it); hotspot profiles at the
    smallest size show *which* loops the kernels displaced.
    """
    from repro.core.kernels import NUMBA_AVAILABLE
    from repro.core.validity import compute_valid_pairs_reference
    from repro.experiments.profiling import profile_solve

    failures: list[str] = []
    record: dict = {
        "geometry": {
            "radius_range": list(HOTPATH_RADIUS_RANGE),
            "tasks_per_worker": 0.5,
            "capacity": 8,
            "quality_backend": "sparse",
            "validity_strategy": "grid",
        },
        "repeats": repeats,
        "numba_available": NUMBA_AVAILABLE,
        "gate_size": gate_size,
        "gt_speedup_floor": HOTPATH_GT_SPEEDUP_FLOOR,
        "validity_scan_floor": VALIDITY_SCAN_SPEEDUP_FLOOR,
        "note": (
            "native == numba-compiled kernels when importable, numpy "
            "fallback otherwise; the GT gate applies to whichever this "
            "environment provides. The validity gate applies to the "
            "candidate-scan stage the vectorization replaced; end-to-end "
            "validity is recorded but not gated (shared tuple-assembly "
            "Amdahl floor, see docs/PERFORMANCE.md)."
        ),
        "sizes": {},
    }

    for worker_count in sizes:
        instance, valid_pairs = _hotpath_instance_pairs(worker_count)
        entry: dict = {}

        # -- validity: membership parity + walls --------------------
        reference = compute_valid_pairs_reference(instance)
        if reference.tasks_for_worker != valid_pairs.tasks_for_worker:
            failures.append(
                f"validity parity n={worker_count}: vectorized grid "
                "membership diverges from the scalar reference"
            )
        end_to_end_scalar = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            compute_valid_pairs_reference(instance)
            end_to_end_scalar = min(
                end_to_end_scalar, time.perf_counter() - started
            )
        end_to_end_vector = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            compute_valid_pairs(instance, "grid")
            end_to_end_vector = min(
                end_to_end_vector, time.perf_counter() - started
            )
        scan_scalar, scan_vector = _validity_scan_seconds(instance, repeats)
        entry["validity"] = {
            "pair_count": valid_pairs.pair_count,
            "membership_identical": (
                reference.tasks_for_worker == valid_pairs.tasks_for_worker
            ),
            "scalar_seconds": end_to_end_scalar,
            "vectorized_seconds": end_to_end_vector,
            "end_to_end_speedup": end_to_end_scalar / end_to_end_vector,
            "scan_scalar_seconds": scan_scalar,
            "scan_vectorized_seconds": scan_vector,
            "scan_speedup": scan_scalar / scan_vector,
        }
        if (
            worker_count >= gate_size
            and entry["validity"]["scan_speedup"] < VALIDITY_SCAN_SPEEDUP_FLOOR
        ):
            failures.append(
                f"validity scan stage n={worker_count}: "
                f"{entry['validity']['scan_speedup']:.2f}x is below the "
                f"{VALIDITY_SCAN_SPEEDUP_FLOOR:g}x floor"
            )

        # -- GT end-to-end: python vs native ------------------------
        per_kernel: dict = {}
        for kernel in ("python", "native"):
            best = float("inf")
            result = None
            for _ in range(repeats):
                started = time.perf_counter()
                result = solve_game_theoretic(
                    instance, valid_pairs, kernel=kernel
                )
                best = min(best, time.perf_counter() - started)
            failures += _check_oracle(
                f"hotpath GT[{kernel}]", 0, result.assignment
            )
            per_kernel[kernel] = {
                "seconds": best,
                "score": repr(result.final_score),
                "pairs": repr(result.assignment.to_pairs()),
                "rounds": result.rounds,
                "moves": result.moves,
                "stats": result.stats.to_dict() if result.stats else None,
            }
        identical = (
            per_kernel["python"]["score"] == per_kernel["native"]["score"]
            and per_kernel["python"]["pairs"] == per_kernel["native"]["pairs"]
        )
        if not identical:
            failures.append(
                f"hotpath GT parity n={worker_count}: native diverges from "
                f"python ({per_kernel['native']['score']} vs "
                f"{per_kernel['python']['score']})"
            )
        speedup = (
            per_kernel["python"]["seconds"] / per_kernel["native"]["seconds"]
        )
        entry["gt"] = {
            "identical": identical,
            "speedup_native_vs_python": speedup,
            **{
                kernel: {
                    key: value
                    for key, value in per_kernel[kernel].items()
                    if key != "pairs"  # repr'd pair lists are huge
                }
                for kernel in per_kernel
            },
        }
        if worker_count >= gate_size and speedup < HOTPATH_GT_SPEEDUP_FLOOR:
            failures.append(
                f"hotpath GT n={worker_count}: native end-to-end speedup "
                f"{speedup:.2f}x is below the "
                f"{HOTPATH_GT_SPEEDUP_FLOOR:g}x floor"
            )
        record["sizes"][str(worker_count)] = entry

    # -- hotspot profiles at the smallest size ----------------------
    profile_size = min(sizes)
    profile_instance, _ = _hotpath_instance_pairs(profile_size)
    record["profiles"] = {
        kernel: profile_solve(
            profile_instance,
            approach="GT",
            kernel=kernel,
            seed=0,
            top=HOTPATH_PROFILE_TOP,
        ).to_dict()
        for kernel in ("python", "native")
    }

    # -- one sharded 100k leg with the native kernels ---------------
    if shard_size:
        payload, error = _run_shard_leg("sharded-native", shard_size)
        if error:
            failures.append(error)
        else:
            record["sharded_native"] = payload

    # -- compiled reference: fold BENCH_pr6 when measured with numba --
    if KERNEL_OUTPUT.exists():
        kernel_payload = json.loads(KERNEL_OUTPUT.read_text(encoding="utf-8"))
        guard = kernel_payload.get("kernel_guard", {})
        record["compiled_reference"] = {
            "numba_available": guard.get("numba_available"),
            "scale": guard.get("scale"),
            "summary": guard.get("summary"),
        }
    return record, failures


def _peel_instance_pairs(worker_count: int):
    """The shared-scalar-walls population: dense reach, starved slots.

    Same reach geometry as the hotpath family, but task slots cover only
    half the workers (tasks = n // 16 at capacity 8), so best-response
    spends its rounds probing *full* tasks — every such probe overflows
    and runs a 9-member counted-subset peel. This is the population the
    hotpath record's docstring explicitly excluded because the peel used
    to run the identical scalar path under both kernels.
    """
    instance = generate_instance(
        worker_count,
        worker_count // PEEL_TASK_DIVISOR,
        capacity=PEEL_CAPACITY,
        seed=0,
        radius_range=HOTPATH_RADIUS_RANGE,
        quality_backend="sparse",
    )
    return instance, compute_valid_pairs(instance, "grid")


def run_peel_benchmark(
    sizes=DEFAULT_PEEL_SIZES,
    repeats: int = 2,
    gate_size: int = PEEL_GATE_SIZE,
) -> tuple[dict, list[str]]:
    """Peel + bulk-gather record: backend/kernel parity, then the gate.

    Parity: (a) the peel kernel vs the scalar oracle on every quality
    backend at kept sizes straddling the pairwise cliff, (b)
    ``gather_rows`` vs the dense lookup, (c) GT fingerprints across
    {dense, sparse, shared} x {python, native} on a small contended
    instance. Performance: python vs native GT per size on the
    contended population, gated at ``gate_size`` (see
    :data:`PEEL_GT_SPEEDUP_FLOOR`).
    """
    from repro.core.kernels import (
        NUMBA_AVAILABLE,
        counted_subset_select,
        gather_block,
    )
    from repro.core.quality_store import SharedDenseQualityStore
    from repro.core.revenue import best_counted_subset

    failures: list[str] = []
    record: dict = {
        "geometry": {
            "radius_range": list(HOTPATH_RADIUS_RANGE),
            "tasks_per_worker": 1.0 / PEEL_TASK_DIVISOR,
            "capacity": PEEL_CAPACITY,
            "quality_backend": "sparse",
            "validity_strategy": "grid",
        },
        "repeats": repeats,
        "numba_available": NUMBA_AVAILABLE,
        "gate_size": gate_size,
        "gt_speedup_floor": PEEL_GT_SPEEDUP_FLOOR,
        "note": (
            "native == numba-compiled peel endgame when importable, "
            "numpy fallback otherwise; the GT gate applies to whichever "
            "this environment provides. The population is deliberately "
            "overflow-dominated — the regime BENCH_pr9 documented as "
            "bounded near 1x under the old shared scalar peel."
        ),
    }

    # -- parity: peel kernel vs scalar oracle on every backend --------
    parity_instance, parity_pairs = _peel_instance_pairs(
        PEEL_PARITY_WORKERS
    )
    dense = parity_instance.quality.to_dense()
    shared = SharedDenseQualityStore.create(dense)
    peel_checks = 0
    gather_checks = 0
    rng = np.random.default_rng(0)
    try:
        stores = {
            "dense": dense,
            "sparse": parity_instance.quality,
            "shared": shared,
        }
        for members_count in (7, 8, 9, 10, 16):
            members = sorted(
                int(worker)
                for worker in rng.choice(
                    PEEL_PARITY_WORKERS, size=members_count, replace=False
                )
            )
            for size in range(members_count + 1):
                oracle = best_counted_subset(dense, members, size)
                for backend, store in stores.items():
                    kept = counted_subset_select(
                        store.as_kernel_buffers(), members, size
                    )
                    peel_checks += 1
                    if kept != oracle:
                        failures.append(
                            f"peel parity {backend} members="
                            f"{members_count} size={size}: kernel kept "
                            f"{kept} vs oracle {oracle}"
                        )
        for _ in range(20):
            rows = rng.integers(0, PEEL_PARITY_WORKERS, size=8)
            cols = rng.integers(0, PEEL_PARITY_WORKERS, size=12)
            expected = dense.values[rows[:, None], cols].copy()
            expected[rows[:, None] == cols[None, :]] = 0.0
            for backend, store in stores.items():
                gather_checks += 1
                block = store.gather_rows(rows, cols)
                if not np.array_equal(block, expected):
                    failures.append(
                        f"gather parity {backend}: gather_rows diverges "
                        "from the dense lookup"
                    )
                    break
                if not np.array_equal(
                    gather_block(store.as_kernel_buffers(), rows, cols),
                    expected,
                ):
                    failures.append(
                        f"gather parity {backend}: gather_block diverges "
                        "from the dense lookup"
                    )
                    break

        # -- parity: GT across backends x kernels ---------------------
        fingerprints: dict[str, dict[str, str]] = {}
        for backend, store in stores.items():
            instance = _with_quality(parity_instance, store)
            for kernel in ("python", "native"):
                result = solve_game_theoretic(
                    instance, parity_pairs, kernel=kernel
                )
                failures += _check_oracle(
                    f"peel parity GT[{backend}/{kernel}]",
                    0,
                    result.assignment,
                )
                fingerprints[f"{backend}/{kernel}"] = {
                    "score": repr(result.final_score),
                    "pairs": repr(result.assignment.to_pairs()),
                }
    finally:
        shared.close()
        shared.unlink()
    reference = fingerprints["dense/python"]
    for combo, fingerprint in fingerprints.items():
        if fingerprint != reference:
            failures.append(
                f"peel parity GT {combo}: diverges from dense/python "
                f"({fingerprint['score']} vs {reference['score']})"
            )
    record["parity"] = {
        "workers": PEEL_PARITY_WORKERS,
        "peel_checks": peel_checks,
        "gather_checks": gather_checks,
        "combos": sorted(fingerprints),
        "identical": all(
            fingerprint == reference
            for fingerprint in fingerprints.values()
        ),
        "score": reference["score"],
    }

    # -- GT end-to-end: python vs native per size ---------------------
    record["sizes"] = {}
    for worker_count in sizes:
        instance, valid_pairs = _peel_instance_pairs(worker_count)
        per_kernel: dict = {}
        for kernel in ("python", "native"):
            best = float("inf")
            result = None
            for _ in range(repeats):
                started = time.perf_counter()
                result = solve_game_theoretic(
                    instance, valid_pairs, kernel=kernel
                )
                best = min(best, time.perf_counter() - started)
            failures += _check_oracle(
                f"peel GT[{kernel}]", 0, result.assignment
            )
            per_kernel[kernel] = {
                "seconds": best,
                "score": repr(result.final_score),
                "pairs": repr(result.assignment.to_pairs()),
                "rounds": result.rounds,
                "moves": result.moves,
                "peel_kernel_calls": (
                    result.stats.peel_kernel_calls if result.stats else 0
                ),
                "stats": result.stats.to_dict() if result.stats else None,
            }
        identical = (
            per_kernel["python"]["score"] == per_kernel["native"]["score"]
            and per_kernel["python"]["pairs"] == per_kernel["native"]["pairs"]
        )
        if not identical:
            failures.append(
                f"peel GT parity n={worker_count}: native diverges from "
                f"python ({per_kernel['native']['score']} vs "
                f"{per_kernel['python']['score']})"
            )
        if per_kernel["native"]["peel_kernel_calls"] == 0:
            failures.append(
                f"peel GT n={worker_count}: native solve never "
                "dispatched the peel kernel — the population is not "
                "overflow-dominated"
            )
        speedup = (
            per_kernel["python"]["seconds"] / per_kernel["native"]["seconds"]
        )
        if worker_count >= gate_size and speedup < PEEL_GT_SPEEDUP_FLOOR:
            failures.append(
                f"peel GT n={worker_count}: native end-to-end speedup "
                f"{speedup:.2f}x is below the "
                f"{PEEL_GT_SPEEDUP_FLOOR:g}x floor"
            )
        record["sizes"][str(worker_count)] = {
            "identical": identical,
            "speedup_native_vs_python": speedup,
            **{
                kernel: {
                    key: value
                    for key, value in per_kernel[kernel].items()
                    if key != "pairs"  # repr'd pair lists are huge
                }
                for kernel in per_kernel
            },
        }
    return record, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=DEFAULT_WORKERS)
    parser.add_argument("--tasks", type=int, default=DEFAULT_TASKS)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--sweep-scale",
        type=float,
        default=DEFAULT_SWEEP_SCALE,
        help="workload scale of the serial-vs-parallel fig7 sweep",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=DEFAULT_JOBS,
        help="worker processes for the parallel sweep leg",
    )
    parser.add_argument(
        "--sweep-seed", type=int, default=0, help="seed of the fig7 sweep"
    )
    parser.add_argument(
        "--skip-sweep",
        action="store_true",
        help="only run the solver oracle guard",
    )
    parser.add_argument(
        "--skip-scale",
        action="store_true",
        help="skip the quality-store scale record (BENCH_pr4.json)",
    )
    parser.add_argument(
        "--skip-kernel",
        action="store_true",
        help="skip the best-response kernel record (BENCH_pr6.json)",
    )
    parser.add_argument(
        "--only-kernel",
        action="store_true",
        help="run only the best-response kernel record",
    )
    parser.add_argument(
        "--only-scale",
        action="store_true",
        help="run only the quality-store scale record",
    )
    parser.add_argument(
        "--scale-sizes",
        type=int,
        nargs="+",
        default=list(DEFAULT_SCALE_SIZES),
        metavar="N",
        help="worker counts of the dense-vs-sparse RSS measurement "
        f"(the >= {RSS_RATIO_FLOOR:g}x floor applies at n >= {RSS_RATIO_SIZE})",
    )
    parser.add_argument(
        "--attach-workers",
        type=int,
        default=4000,
        help="matrix size of the shared-memory attach measurement",
    )
    parser.add_argument(
        "--skip-shards",
        action="store_true",
        help="skip the geo-sharded scale record (BENCH_pr7.json)",
    )
    parser.add_argument(
        "--only-shards",
        action="store_true",
        help="run only the geo-sharded scale record",
    )
    parser.add_argument(
        "--shard-sizes",
        type=int,
        nargs="+",
        default=list(DEFAULT_SHARD_SIZES),
        metavar="N",
        help="worker counts of the monolithic-vs-sharded GT measurement "
        f"(monolithic legs run up to n = {SHARD_MONO_CAP})",
    )
    parser.add_argument(
        "--shard-mono-cap",
        type=int,
        default=SHARD_MONO_CAP,
        help="largest worker count that still gets a monolithic GT leg",
    )
    parser.add_argument(
        "--skip-chaos",
        action="store_true",
        help="skip the crash-recovery record (BENCH_pr8.json)",
    )
    parser.add_argument(
        "--only-chaos",
        action="store_true",
        help="run only the crash-recovery record",
    )
    parser.add_argument(
        "--chaos-kill-rate",
        type=float,
        default=CHAOS_KILL_RATE,
        help="per-first-attempt SIGKILL probability of the chaotic leg",
    )
    parser.add_argument(
        "--skip-hotpath",
        action="store_true",
        help="skip the interpreted-hot-path record (BENCH_pr9.json)",
    )
    parser.add_argument(
        "--only-hotpath",
        action="store_true",
        help="run only the interpreted-hot-path record",
    )
    parser.add_argument(
        "--hotpath-sizes",
        type=int,
        nargs="+",
        default=list(DEFAULT_HOTPATH_SIZES),
        metavar="N",
        help="worker counts of the validity + GT kernel measurement "
        f"(the gates apply at n >= {HOTPATH_GATE_SIZE})",
    )
    parser.add_argument(
        "--hotpath-repeats",
        type=int,
        default=2,
        help="min-of-N repeats of each hotpath timing leg (default 2)",
    )
    parser.add_argument(
        "--hotpath-shard-size",
        type=int,
        default=HOTPATH_SHARD_SIZE,
        help="worker count of the kernel-native sharded leg (0 skips it)",
    )
    parser.add_argument(
        "--skip-peel",
        action="store_true",
        help="skip the shared-scalar-walls record (BENCH_pr10.json)",
    )
    parser.add_argument(
        "--only-peel",
        action="store_true",
        help="run only the shared-scalar-walls record",
    )
    parser.add_argument(
        "--peel-sizes",
        type=int,
        nargs="+",
        default=list(DEFAULT_PEEL_SIZES),
        metavar="N",
        help="worker counts of the overflow-peel GT measurement "
        f"(the gate applies at n >= {PEEL_GATE_SIZE})",
    )
    parser.add_argument(
        "--peel-repeats",
        type=int,
        default=2,
        help="min-of-N repeats of each peel timing leg (default 2)",
    )
    parser.add_argument(
        "--measure-rss",
        nargs=2,
        metavar=("BACKEND", "N"),
        default=None,
        help=argparse.SUPPRESS,  # internal child-process mode
    )
    parser.add_argument(
        "--measure-shard",
        nargs=2,
        metavar=("LEG", "N"),
        default=None,
        help=argparse.SUPPRESS,  # internal child-process mode
    )
    parser.add_argument(
        "--out", type=Path, default=OUTPUT, help="output JSON path"
    )
    parser.add_argument(
        "--scale-out",
        type=Path,
        default=SCALE_OUTPUT,
        help="scale-record JSON path",
    )
    parser.add_argument(
        "--kernel-out",
        type=Path,
        default=KERNEL_OUTPUT,
        help="kernel-record JSON path",
    )
    parser.add_argument(
        "--shard-out",
        type=Path,
        default=SHARD_OUTPUT,
        help="shard-record JSON path",
    )
    parser.add_argument(
        "--chaos-out",
        type=Path,
        default=CHAOS_OUTPUT,
        help="chaos-record JSON path",
    )
    parser.add_argument(
        "--hotpath-out",
        type=Path,
        default=HOTPATH_OUTPUT,
        help="hotpath-record JSON path",
    )
    parser.add_argument(
        "--peel-out",
        type=Path,
        default=PEEL_OUTPUT,
        help="peel-record JSON path",
    )
    args = parser.parse_args(argv)

    if args.measure_rss:
        backend, worker_count = args.measure_rss
        return _measure_rss_child(backend, int(worker_count))
    if args.measure_shard:
        leg, worker_count = args.measure_shard
        return _measure_shard_child(leg, int(worker_count))

    if args.only_shards:
        args.skip_kernel = True
        args.skip_scale = True
        args.skip_chaos = True
        args.skip_hotpath = True
        args.skip_peel = True
    if args.only_chaos:
        args.skip_kernel = True
        args.skip_scale = True
        args.skip_shards = True
        args.skip_hotpath = True
        args.skip_peel = True
    if args.only_hotpath:
        args.skip_kernel = True
        args.skip_scale = True
        args.skip_shards = True
        args.skip_chaos = True
        args.skip_peel = True
    if args.only_peel:
        args.skip_kernel = True
        args.skip_scale = True
        args.skip_shards = True
        args.skip_chaos = True
        args.skip_hotpath = True

    failures: list[str] = []
    guard_record = None
    kernel_record = None
    shard_record = None
    chaos_record = None
    hotpath_record = None
    peel_record = None
    if not args.skip_kernel:
        kernel_record, kernel_failures = run_kernel_benchmark(
            workers=args.workers, tasks=args.tasks, repeats=args.repeats
        )
        failures += kernel_failures
        args.kernel_out.write_text(
            json.dumps({"kernel_guard": kernel_record}, indent=1) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {args.kernel_out}")
    if args.only_kernel:
        args.skip_scale = True
        args.skip_shards = True
        args.skip_chaos = True
        args.skip_hotpath = True
        args.skip_peel = True
    if args.only_scale:
        args.skip_shards = True
        args.skip_chaos = True
        args.skip_hotpath = True
        args.skip_peel = True
    if (
        not args.only_scale
        and not args.only_kernel
        and not args.only_shards
        and not args.only_chaos
        and not args.only_hotpath
        and not args.only_peel
    ):
        guard_record, failures = run_guard(
            workers=args.workers, tasks=args.tasks, repeats=args.repeats
        )
        record: dict = {"solver_guard": guard_record}
        if not args.skip_sweep:
            sweep_record, sweep_failures = run_sweep_benchmark(
                scale=args.sweep_scale, jobs=args.jobs, seed=args.sweep_seed
            )
            record["parallel_sweep"] = sweep_record
            failures += sweep_failures
        args.out.write_text(
            json.dumps(record, indent=1) + "\n", encoding="utf-8"
        )
        print(f"wrote {args.out}")

    if not args.skip_scale:
        parity_record, parity_failures = run_backend_parity(
            workers=args.workers, tasks=args.tasks
        )
        scale_record, scale_failures = run_scale_benchmark(
            sizes=args.scale_sizes
        )
        attach_record, attach_failures = run_attach_benchmark(
            worker_count=args.attach_workers
        )
        failures += parity_failures + scale_failures + attach_failures
        args.scale_out.write_text(
            json.dumps(
                {
                    "backend_parity": parity_record,
                    "memory_scaling": scale_record,
                    "shared_attach": attach_record,
                },
                indent=1,
            )
            + "\n",
            encoding="utf-8",
        )
        print(f"wrote {args.scale_out}")

    if not args.skip_shards:
        shard_record, shard_failures = run_shard_benchmark(
            sizes=args.shard_sizes, mono_cap=args.shard_mono_cap
        )
        failures += shard_failures
        args.shard_out.write_text(
            json.dumps({"shard_scaling": shard_record}, indent=1) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {args.shard_out}")

    if not args.skip_chaos:
        chaos_record, chaos_failures = run_chaos_benchmark(
            jobs=args.jobs, kill_rate=args.chaos_kill_rate
        )
        failures += chaos_failures
        args.chaos_out.write_text(
            json.dumps({"chaos_guard": chaos_record}, indent=1) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {args.chaos_out}")

    if not args.skip_hotpath:
        hotpath_record, hotpath_failures = run_hotpath_benchmark(
            sizes=args.hotpath_sizes,
            repeats=args.hotpath_repeats,
            shard_size=args.hotpath_shard_size,
        )
        failures += hotpath_failures
        args.hotpath_out.write_text(
            json.dumps({"hotpath_guard": hotpath_record}, indent=1) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {args.hotpath_out}")

    if not args.skip_peel:
        peel_record, peel_failures = run_peel_benchmark(
            sizes=args.peel_sizes, repeats=args.peel_repeats
        )
        failures += peel_failures
        args.peel_out.write_text(
            json.dumps({"peel_guard": peel_record}, indent=1) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {args.peel_out}")

    if kernel_record is not None:
        for solver, summary in kernel_record["summary"].items():
            print(
                f"kernel {solver}: python "
                f"{summary['python_mean_seconds'] * 1e3:.1f} ms vs native "
                f"{summary['native_mean_seconds'] * 1e3:.1f} ms "
                f"({summary['speedup']:.2f}x"
                + (
                    ", numpy fallback — numba absent"
                    if not kernel_record["numba_available"]
                    else ""
                )
                + f"), identical: {summary['identical']}"
            )
    if guard_record is not None:
        for solver in ("tpg", "gt", "gtall"):
            summary = guard_record["summary"][solver]
            print(
                f"{solver}: mean {summary['mean_seconds'] * 1e3:.1f} ms/batch "
                f"({summary['speedup_vs_baseline']:.2f}x vs pre-incremental "
                "baseline)"
            )
        if not args.skip_sweep:
            sweep = record["parallel_sweep"]
            print(
                f"fig7 sweep (scale {sweep['scale']:g}, {sweep['cpu_count']} "
                f"core(s)): serial {sweep['serial_seconds']:.1f}s, "
                f"--jobs {sweep['jobs']} {sweep['parallel_seconds']:.1f}s "
                f"({sweep['measured_speedup']:.2f}x measured, "
                f"{sweep['parallel_telemetry']['speedup_vs_serial_estimate']:.2f}x "
                f"vs cell-time estimate), bit-identical: "
                f"{sweep['bit_identical']}"
            )
    if not args.skip_scale:
        print(
            "backend parity (dense/sparse/shared): "
            + ("identical" if parity_record["identical"] else "DIVERGED")
        )
        for size, entry in scale_record["sizes"].items():
            ratio = entry.get("rss_ratio_dense_over_sparse")
            if ratio is None:
                continue
            print(
                f"n={size}: dense {entry['dense']['peak_rss_kb'] / 1024:.0f} MB "
                f"peak RSS vs sparse {entry['sparse']['peak_rss_kb'] / 1024:.0f} "
                f"MB ({ratio:.1f}x), build "
                f"{entry['dense']['build_seconds']:.2f}s vs "
                f"{entry['sparse']['build_seconds']:.2f}s"
            )
        print(
            f"shared attach at n={attach_record['workers']}: "
            f"{attach_record['attach_seconds'] * 1e3:.2f} ms vs rebuild "
            f"{attach_record['rebuild_seconds'] * 1e3:.0f} ms "
            f"({attach_record['attach_speedup_vs_rebuild']:.0f}x)"
        )
    if shard_record is not None:
        for size, entry in shard_record["sizes"].items():
            sharded = entry.get("sharded")
            if sharded is None:
                continue
            line = (
                f"shards n={size}: sharded {sharded['seconds']:.1f}s "
                f"({sharded['shard_count']} shards, "
                f"{sharded['border_workers']} border, critical path "
                f"{entry['critical_path_seconds']:.1f}s), reproducible: "
                f"{entry['bit_reproducible']}"
            )
            if "mono" in entry:
                line += (
                    f"; mono {entry['mono']['seconds']:.1f}s -> "
                    f"{entry['measured_speedup']:.2f}x measured / "
                    f"{entry['concurrency_estimate']:.2f}x critical-path, "
                    f"gap {entry['revenue_gap']:.4%}"
                )
            else:
                line += "; monolithic leg skipped (above mono cap)"
            print(line)
    if chaos_record is not None:
        print(
            f"chaos guard ({chaos_record['cells']} cells, --jobs "
            f"{chaos_record['jobs']}, kill_rate "
            f"{chaos_record['kill_rate']:g}): clean "
            f"{chaos_record['clean_cells_per_second']:.2f} cells/s vs "
            f"chaotic {chaos_record['chaos_cells_per_second']:.2f} cells/s "
            f"({chaos_record['recovery_overhead_ratio']:.2f}x overhead), "
            f"chaos-off identical: {chaos_record['chaos_off_identical']}, "
            f"recovered identical: "
            f"{chaos_record['chaos_recovered_identical']}"
        )
    if hotpath_record is not None:
        fallback_note = (
            "" if hotpath_record["numba_available"] else " [numpy fallback]"
        )
        for size, entry in hotpath_record["sizes"].items():
            validity = entry["validity"]
            gt = entry["gt"]
            print(
                f"hotpath n={size}: validity scan "
                f"{validity['scan_speedup']:.1f}x (end-to-end "
                f"{validity['end_to_end_speedup']:.1f}x, membership "
                f"identical: {validity['membership_identical']}); GT "
                f"python {gt['python']['seconds']:.2f}s vs native "
                f"{gt['native']['seconds']:.2f}s "
                f"({gt['speedup_native_vs_python']:.2f}x{fallback_note}), "
                f"identical: {gt['identical']}"
            )
        sharded = hotpath_record.get("sharded_native")
        if sharded is not None:
            print(
                f"hotpath sharded-native n={sharded['workers']}: "
                f"{sharded['seconds']:.1f}s over {sharded['shard_count']} "
                f"shards"
            )
    if peel_record is not None:
        fallback_note = (
            "" if peel_record["numba_available"] else " [numpy fallback]"
        )
        parity = peel_record["parity"]
        print(
            f"peel parity (backends x kernels, n={parity['workers']}): "
            + ("identical" if parity["identical"] else "DIVERGED")
            + f" over {parity['peel_checks']} peel and "
            f"{parity['gather_checks']} gather checks"
        )
        for size, entry in peel_record["sizes"].items():
            print(
                f"peel n={size}: GT python "
                f"{entry['python']['seconds']:.2f}s vs native "
                f"{entry['native']['seconds']:.2f}s "
                f"({entry['speedup_native_vs_python']:.2f}x"
                f"{fallback_note}), peel dispatches "
                f"{entry['native']['peel_kernel_calls']}, identical: "
                f"{entry['identical']}"
            )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    checks = []
    if kernel_record is not None:
        checks.append("kernel python/native repr-identical")
    if guard_record is not None:
        checks.append("incremental scores match the from-scratch oracle")
        if not args.skip_sweep:
            checks.append("parallel sweep bit-identical")
    if not args.skip_scale:
        checks.append("quality-store backends repr-identical")
    if shard_record is not None:
        checks.append(
            "sharded GT bit-reproducible, gap and speedup within bars"
        )
    if chaos_record is not None:
        checks.append(
            "chaos-off pool repr-identical; chaotic run recovered exactly"
        )
    if hotpath_record is not None:
        checks.append(
            "validity membership identical and scan-stage speedup within "
            "bars; GT kernels repr-identical with end-to-end speedup "
            "within bars"
        )
    if peel_record is not None:
        checks.append(
            "peel and gather repr-identical to the scalar oracle across "
            "backends x kernels; contended GT speedup within bars"
        )
    print("all checks passed: " + "; ".join(checks))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
