"""Performance guard — the repo's perf-trajectory record.

Two sections, both written to ``BENCH_pr2.json`` next to the repo root:

* **solver_guard** — runs the instrumented solvers (TPG, GT, GT+ALL) on
  seeded Table II default-scale batches (m = 1000 workers, n = 500
  tasks), checks that every incremental score matches the from-scratch
  Equation 2/3 oracle bit-for-bit, and records per-seed solve times,
  scores, and the merged :class:`~repro.core.stats.SolverStats`.
* **parallel_sweep** — runs the Figure 7 worker sweep serially and with
  ``--jobs N`` through :class:`~repro.experiments.parallel.
  SweepExecutor`, records both wall-clocks plus the executor telemetry,
  and checks that every parallel score / upper bound / completed-task
  count is **bit-identical** to the serial run. The measured speedup is
  hardware-dependent (it needs free cores — ``cpu_count`` is recorded
  alongside so the number is interpretable); the telemetry's
  ``speedup_vs_serial_estimate`` additionally reports
  sum-of-cell-time / wall, the core-independent view.

Usage::

    PYTHONPATH=src python benchmarks/bench_guard.py              # everything
    PYTHONPATH=src python benchmarks/bench_guard.py --repeats 4
    PYTHONPATH=src python benchmarks/bench_guard.py --jobs 8 --sweep-scale 0.5
    PYTHONPATH=src python benchmarks/bench_guard.py --skip-sweep

Exit status is non-zero when an incremental score deviates from the
oracle or a parallel sweep result deviates from serial — both are
correctness bugs, never tolerance issues, because both paths are
bit-identical by construction.

The ``baseline_reference`` block records the pre-incremental-engine
timings measured on the same machine when this guard was introduced, so
future sessions can read the speed trajectory without digging through
git history.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.game import solve_game_theoretic  # noqa: E402
from repro.core.tpg import solve_tpg_with_stats  # noqa: E402
from repro.core.validity import compute_valid_pairs  # noqa: E402
from repro.datasets.synthetic import generate_instance  # noqa: E402

#: Table II defaults (bold): m = 1000 workers, n = 500 tasks per batch.
DEFAULT_WORKERS = 1000
DEFAULT_TASKS = 500
DEFAULT_SEEDS = (0, 1, 2)
DEFAULT_SWEEP_SCALE = 0.3
DEFAULT_JOBS = 4
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_pr2.json"

#: Mean per-batch wall-clock of the pre-incremental-engine code at the
#: same scale and seeds, measured as min-of-4 repeats on the machine
#: that introduced this guard. The incremental engine's acceptance bar
#: was mean GT time improved >= 2x against these numbers.
BASELINE_REFERENCE = {
    "tpg_mean_seconds": 0.128,
    "gt_mean_seconds": 0.389,
    "gtall_mean_seconds": 0.204,
}


def _check_oracle(label: str, seed: int, assignment) -> list[str]:
    """Compare the incremental total against from-scratch Equation 3.

    The tolerance matches the stateful-test contract: the delta path
    accumulates pair sums one move at a time, so totals can differ from
    the single-pass from-scratch sum by float-accumulation noise (about
    one ulp per move); any cache bug shows up orders of magnitude above
    1e-9.
    """
    incremental = assignment.total_score()
    oracle = assignment.recompute_total()
    if not math.isclose(incremental, oracle, rel_tol=1e-9, abs_tol=1e-9):
        return [
            f"{label} seed={seed}: incremental score {incremental!r} "
            f"deviates from from-scratch oracle {oracle!r}"
        ]
    return []


def run_guard(
    seeds=DEFAULT_SEEDS,
    workers: int = DEFAULT_WORKERS,
    tasks: int = DEFAULT_TASKS,
    repeats: int = 3,
) -> tuple[dict, list[str]]:
    failures: list[str] = []
    record: dict = {
        "scale": {"workers": workers, "tasks": tasks, "seeds": list(seeds)},
        "repeats": repeats,
        "baseline_reference": dict(BASELINE_REFERENCE),
        "batches": {},
    }

    for seed in seeds:
        instance = generate_instance(workers, tasks, seed=seed)
        valid_pairs = compute_valid_pairs(instance)
        entry: dict = {}

        best_tpg = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            tpg = solve_tpg_with_stats(instance, valid_pairs)
            best_tpg = min(best_tpg, time.perf_counter() - started)
        failures += _check_oracle("TPG", seed, tpg.assignment)
        entry["tpg"] = {
            "seconds": best_tpg,
            "score": repr(tpg.assignment.total_score()),
            "seeded_tasks": tpg.seeded_tasks,
            "stats": tpg.stats.to_dict() if tpg.stats else None,
        }

        best_gt = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            gt = solve_game_theoretic(instance, valid_pairs)
            best_gt = min(best_gt, time.perf_counter() - started)
        failures += _check_oracle("GT", seed, gt.assignment)
        entry["gt"] = {
            "seconds": best_gt,
            "score": repr(gt.final_score),
            "rounds": gt.rounds,
            "moves": gt.moves,
            "converged": gt.converged,
            "stats": gt.stats.to_dict() if gt.stats else None,
        }

        best_gtall = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            gtall = solve_game_theoretic(
                instance, valid_pairs, epsilon=0.05, lazy_update=True
            )
            best_gtall = min(best_gtall, time.perf_counter() - started)
        failures += _check_oracle("GT+ALL", seed, gtall.assignment)
        entry["gtall"] = {
            "seconds": best_gtall,
            "score": repr(gtall.final_score),
            "rounds": gtall.rounds,
            "moves": gtall.moves,
            "stats": gtall.stats.to_dict() if gtall.stats else None,
        }

        record["batches"][str(seed)] = entry

    batches = record["batches"].values()
    record["summary"] = {
        solver: {
            "mean_seconds": sum(b[solver]["seconds"] for b in batches)
            / len(record["batches"]),
        }
        for solver in ("tpg", "gt", "gtall")
    }
    for solver in ("tpg", "gt", "gtall"):
        baseline = BASELINE_REFERENCE[f"{solver}_mean_seconds"]
        mean = record["summary"][solver]["mean_seconds"]
        record["summary"][solver]["speedup_vs_baseline"] = baseline / mean
    return record, failures


def _sweep_fingerprint(result) -> dict:
    """Everything a sweep computes that must be bit-identical across
    executors: scores, upper bounds and completed-task counts, keyed by
    parameter value and approach. Uses ``repr`` so comparison is exact
    down to the last float bit."""
    table: dict = {}
    for point in result.points:
        table[str(point.value)] = {
            "upper": repr(point.upper),
            "scores": {
                name: repr(outcome.total_score)
                for name, outcome in point.outcomes.items()
            },
            "completed": {
                name: outcome.completed_tasks
                for name, outcome in point.outcomes.items()
            },
        }
    return table


def run_sweep_benchmark(
    scale: float = DEFAULT_SWEEP_SCALE,
    jobs: int = DEFAULT_JOBS,
    seed: int = 0,
) -> tuple[dict, list[str]]:
    """Serial vs parallel Figure 7 sweep: wall-clocks + parity check."""
    from repro.experiments.figures import fig7_workers

    failures: list[str] = []

    started = time.perf_counter()
    serial = fig7_workers(scale=scale, seed=seed, n_jobs=1)
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    parallel = fig7_workers(scale=scale, seed=seed, n_jobs=jobs)
    parallel_seconds = time.perf_counter() - started

    serial_table = _sweep_fingerprint(serial)
    parallel_table = _sweep_fingerprint(parallel)
    if serial_table != parallel_table:
        failures.append(
            f"fig7 sweep at --jobs {jobs} is not bit-identical to serial"
        )
    for failure in parallel.failures:
        failures.append(
            f"fig7 parallel sweep cell failed: {failure.approach} at "
            f"{failure.parameter}={failure.value}: {failure.error}"
        )

    record = {
        "figure": "fig7_workers",
        "scale": scale,
        "seed": seed,
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "measured_speedup": (
            serial_seconds / parallel_seconds if parallel_seconds else 0.0
        ),
        "bit_identical": serial_table == parallel_table,
        "serial_telemetry": serial.telemetry.to_dict(),
        "parallel_telemetry": parallel.telemetry.to_dict(),
        "scores": serial_table,
    }
    return record, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=DEFAULT_WORKERS)
    parser.add_argument("--tasks", type=int, default=DEFAULT_TASKS)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--sweep-scale",
        type=float,
        default=DEFAULT_SWEEP_SCALE,
        help="workload scale of the serial-vs-parallel fig7 sweep",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=DEFAULT_JOBS,
        help="worker processes for the parallel sweep leg",
    )
    parser.add_argument(
        "--sweep-seed", type=int, default=0, help="seed of the fig7 sweep"
    )
    parser.add_argument(
        "--skip-sweep",
        action="store_true",
        help="only run the solver oracle guard",
    )
    parser.add_argument(
        "--out", type=Path, default=OUTPUT, help="output JSON path"
    )
    args = parser.parse_args(argv)

    guard_record, failures = run_guard(
        workers=args.workers, tasks=args.tasks, repeats=args.repeats
    )
    record: dict = {"solver_guard": guard_record}
    if not args.skip_sweep:
        sweep_record, sweep_failures = run_sweep_benchmark(
            scale=args.sweep_scale, jobs=args.jobs, seed=args.sweep_seed
        )
        record["parallel_sweep"] = sweep_record
        failures += sweep_failures

    args.out.write_text(json.dumps(record, indent=1) + "\n", encoding="utf-8")
    print(f"wrote {args.out}")
    for solver in ("tpg", "gt", "gtall"):
        summary = guard_record["summary"][solver]
        print(
            f"{solver}: mean {summary['mean_seconds'] * 1e3:.1f} ms/batch "
            f"({summary['speedup_vs_baseline']:.2f}x vs pre-incremental baseline)"
        )
    if not args.skip_sweep:
        sweep = record["parallel_sweep"]
        print(
            f"fig7 sweep (scale {sweep['scale']:g}, {sweep['cpu_count']} "
            f"core(s)): serial {sweep['serial_seconds']:.1f}s, "
            f"--jobs {sweep['jobs']} {sweep['parallel_seconds']:.1f}s "
            f"({sweep['measured_speedup']:.2f}x measured, "
            f"{sweep['parallel_telemetry']['speedup_vs_serial_estimate']:.2f}x "
            f"vs cell-time estimate), bit-identical: "
            f"{sweep['bit_identical']}"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("all incremental scores match the from-scratch oracle"
          + ("" if args.skip_sweep else "; parallel sweep bit-identical"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
