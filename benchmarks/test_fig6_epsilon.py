"""Figure 6 — effect of the TSI threshold ``epsilon`` (synthetic data).

Paper shape: scores are flat for epsilon <= 0.05 and dip noticeably at
0.08; running time decreases monotonically as epsilon grows (fewer
best-response rounds).
"""

import pytest

from repro.core.bounds import upper_bound
from repro.core.game import solve_game_theoretic

from benchmarks.conftest import BENCH_SEED, make_batch

EPSILONS = (0.0, 0.01, 0.03, 0.05, 0.08)


@pytest.mark.parametrize("epsilon", EPSILONS, ids=lambda e: f"eps{e}")
def test_fig6_epsilon(benchmark, epsilon):
    instance, valid_pairs = make_batch(dataset="unif")

    def solve():
        return solve_game_theoretic(
            instance, valid_pairs, epsilon=epsilon, seed=BENCH_SEED
        )

    result = benchmark(solve)
    benchmark.extra_info["epsilon"] = epsilon
    benchmark.extra_info["score"] = round(result.final_score, 3)
    benchmark.extra_info["rounds"] = result.rounds
    benchmark.extra_info["upper"] = round(
        upper_bound(instance, valid_pairs).value, 3
    )
