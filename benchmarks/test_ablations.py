"""Ablation benchmarks for the design choices DESIGN.md calls out.

* GT initialization: TPG seeding (Algorithm 3 line 1) vs random start —
  seeding pays for itself in fewer rounds and a better equilibrium.
* LUB on/off at fixed epsilon: the lazy best-response cache trades a tiny
  amount of score for a large cut in per-round work.
* Validity data structure inside the full batch pipeline.
"""

import pytest

from repro.core.bounds import upper_bound
from repro.core.game import solve_game_theoretic
from repro.core.tpg import solve_tpg

from benchmarks.conftest import BENCH_SEED, make_batch


@pytest.mark.parametrize("init", ["tpg", "random"])
def test_gt_initialization(benchmark, init):
    instance, valid_pairs = make_batch(dataset="unif")

    def solve():
        return solve_game_theoretic(
            instance, valid_pairs, init=init, seed=BENCH_SEED
        )

    result = benchmark(solve)
    benchmark.extra_info["init"] = init
    benchmark.extra_info["score"] = round(result.final_score, 3)
    benchmark.extra_info["rounds"] = result.rounds


@pytest.mark.parametrize("lazy", [False, True], ids=["plain", "lub"])
def test_gt_lazy_updating(benchmark, lazy):
    instance, valid_pairs = make_batch(dataset="unif")

    def solve():
        return solve_game_theoretic(instance, valid_pairs, lazy_update=lazy)

    result = benchmark(solve)
    benchmark.extra_info["lazy_update"] = lazy
    benchmark.extra_info["score"] = round(result.final_score, 3)


def test_tpg_alone(benchmark):
    instance, valid_pairs = make_batch(dataset="unif")
    assignment = benchmark(solve_tpg, instance, valid_pairs)
    benchmark.extra_info["score"] = round(assignment.total_score(), 3)
    benchmark.extra_info["upper"] = round(
        upper_bound(instance, valid_pairs).value, 3
    )


def test_online_greedy(benchmark):
    """Batch-vs-online contrast: the online mode is cheaper per batch
    but leaves cooperation quality on the table (see extra_info)."""
    from repro.core.online import solve_online_greedy

    instance, valid_pairs = make_batch(dataset="unif")
    assignment = benchmark(solve_online_greedy, instance, valid_pairs)
    benchmark.extra_info["score"] = round(assignment.total_score(), 3)


@pytest.mark.parametrize("order", ["sequential", "shuffled"])
def test_gt_player_order(benchmark, order):
    """Best-response converges under any player order (potential game);
    this measures whether the order affects speed or equilibrium value."""
    instance, valid_pairs = make_batch(dataset="unif")

    def solve():
        return solve_game_theoretic(
            instance, valid_pairs, player_order=order, seed=BENCH_SEED
        )

    result = benchmark(solve)
    benchmark.extra_info["order"] = order
    benchmark.extra_info["score"] = round(result.final_score, 3)
    benchmark.extra_info["rounds"] = result.rounds


@pytest.mark.parametrize("baseline", ["MFLOW", "WFLOW", "PGREEDY"])
def test_flow_and_greedy_baselines(benchmark, baseline):
    """Extension-baseline ladder: MFLOW (cardinality only) < WFLOW
    (cardinality + per-worker quality proxy) < TPG/GT (true pairwise)."""
    from repro.experiments.config import make_solver

    instance, valid_pairs = make_batch(dataset="unif")
    solver = make_solver(baseline, seed=BENCH_SEED)
    assignment = benchmark(solver, instance, valid_pairs)
    benchmark.extra_info["baseline"] = baseline
    benchmark.extra_info["score"] = round(assignment.total_score(), 3)


def test_local_search_polish(benchmark):
    """Coalitional polish on top of GT: measures how much score 2-swaps
    recover beyond the Nash equilibrium, and at what cost."""
    from repro.core.local_search import solve_local_search

    instance, valid_pairs = make_batch(dataset="unif")

    def solve():
        return solve_local_search(instance, valid_pairs)

    result = benchmark(solve)
    benchmark.extra_info["initial_score"] = round(result.initial_score, 3)
    benchmark.extra_info["score"] = round(result.final_score, 3)
    benchmark.extra_info["swaps"] = result.swaps
