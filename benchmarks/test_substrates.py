"""Micro-benchmarks for the substrates: spatial indexes, validity
strategies, max-flow, and the incremental revenue engine."""

import numpy as np
import pytest

from repro.core.assignment import Assignment
from repro.core.validity import compute_valid_pairs
from repro.flow.bipartite import max_bipartite_assignment
from repro.spatial.geometry import Point
from repro.spatial.grid import GridIndex
from repro.spatial.rtree import RTree

from benchmarks.conftest import make_batch

POINT_COUNT = 2000
QUERY_COUNT = 200


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(0)
    xy = rng.uniform(0, 1, size=(POINT_COUNT, 2))
    return [(i, Point(float(x), float(y))) for i, (x, y) in enumerate(xy)]


@pytest.fixture(scope="module")
def queries():
    rng = np.random.default_rng(1)
    centers = rng.uniform(0, 1, size=(QUERY_COUNT, 2))
    return [Point(float(x), float(y)) for x, y in centers]


def test_rtree_bulk_load(benchmark, points):
    benchmark(RTree.bulk_load, points)


def test_rtree_insert_grown(benchmark, points):
    def grow():
        tree = RTree()
        for item, point in points:
            tree.insert(item, point)
        return tree

    benchmark(grow)


def test_rtree_circle_queries(benchmark, points, queries):
    tree = RTree.bulk_load(points)

    def run():
        return sum(len(tree.query_circle(center, 0.08)) for center in queries)

    benchmark(run)


def test_kdtree_circle_queries(benchmark, points, queries):
    from repro.spatial.kdtree import KDTree

    tree = KDTree.build(points)

    def run():
        return sum(len(tree.query_circle(center, 0.08)) for center in queries)

    benchmark(run)


def test_grid_circle_queries(benchmark, points, queries):
    grid = GridIndex.build(points, cell_size=0.08)

    def run():
        return sum(len(grid.query_circle(center, 0.08)) for center in queries)

    benchmark(run)


@pytest.mark.parametrize("strategy", ["rtree", "grid", "kdtree", "matrix"])
def test_validity_strategies(benchmark, strategy):
    instance, _ = make_batch(dataset="unif")
    benchmark(compute_valid_pairs, instance, strategy)


def test_dinic_bipartite(benchmark):
    rng = np.random.default_rng(2)
    workers, tasks = 1000, 200
    valid = [
        sorted(set(rng.integers(0, tasks, size=8).tolist())) for _ in range(workers)
    ]
    capacities = [4] * tasks
    benchmark(max_bipartite_assignment, workers, tasks, valid, capacities)


def test_incremental_assignment_ops(benchmark):
    instance, valid_pairs = make_batch(dataset="unif")
    rng = np.random.default_rng(3)
    moves = [
        (int(rng.integers(instance.worker_count)), int(rng.integers(instance.task_count)))
        for _ in range(2000)
    ]

    def churn():
        assignment = Assignment(instance, allow_overflow=True)
        for worker, task in moves:
            assignment.move(worker, task)
        return assignment.total_score()

    benchmark(churn)
