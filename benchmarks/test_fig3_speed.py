"""Figure 3 — effect of the worker speed range ``[v-, v+]`` (Meetup).

Paper shape: faster workers reach more tasks, so scores increase across
the whole range; running times rise for all approaches except MFLOW.
"""

import pytest

from benchmarks.conftest import bench_solve, make_batch

SPEED_RANGES = ((0.01, 0.03), (0.01, 0.05), (0.01, 0.08), (0.01, 0.10))


@pytest.mark.parametrize(
    "speed_range", SPEED_RANGES, ids=lambda r: f"v{int(r[0]*100)}-{int(r[1]*100)}"
)
def test_fig3_speed(benchmark, approach, speed_range):
    instance, valid_pairs = make_batch(dataset="meetup", speed_range=speed_range)
    benchmark.extra_info["speed_range"] = list(speed_range)
    bench_solve(benchmark, approach, instance, valid_pairs)
