"""Figure 7 — effect of the number of workers ``m`` (synthetic data).

Paper shape: scores rise with m until the worker pool suffices for all
tasks (the paper saturates at m = 2000 for n = 500; scaled here), and
every approach's running time grows with m.
"""

import pytest

from benchmarks.conftest import bench_solve, make_batch

WORKER_COUNTS = (100, 160, 200, 400, 1000)  # paper's 500..5K scaled by 1/5


@pytest.mark.parametrize("workers", WORKER_COUNTS, ids=lambda m: f"m{m}")
def test_fig7_workers(benchmark, approach, workers):
    instance, valid_pairs = make_batch(dataset="unif", workers=workers)
    benchmark.extra_info["workers"] = workers
    bench_solve(benchmark, approach, instance, valid_pairs)
