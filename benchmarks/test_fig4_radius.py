"""Figure 4 — effect of the working-area range ``[r-, r+]`` (Meetup).

Paper shape: scores rise until [10, 15]% then saturate (speed x deadline
caps the reach); running times grow with the radius for every approach.
"""

import pytest

from benchmarks.conftest import bench_solve, make_batch

RADIUS_RANGES = ((0.01, 0.05), (0.05, 0.10), (0.10, 0.15), (0.15, 0.20))


@pytest.mark.parametrize(
    "radius_range", RADIUS_RANGES, ids=lambda r: f"r{int(r[0]*100)}-{int(r[1]*100)}"
)
def test_fig4_radius(benchmark, approach, radius_range):
    instance, valid_pairs = make_batch(dataset="meetup", radius_range=radius_range)
    benchmark.extra_info["radius_range"] = list(radius_range)
    bench_solve(benchmark, approach, instance, valid_pairs)
