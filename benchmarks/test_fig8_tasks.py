"""Figure 8 — effect of the number of tasks ``n`` (synthetic data).

Paper shape: scores rise with n until the fixed worker pool is fully
employed (saturation at n = 500 for m = 1000 in the paper; scaled here),
and running times grow with n for every approach.
"""

import pytest

from benchmarks.conftest import bench_solve, make_batch

TASK_COUNTS = (20, 60, 100, 160, 200)  # paper's 100..1K scaled by 1/5


@pytest.mark.parametrize("tasks", TASK_COUNTS, ids=lambda n: f"n{n}")
def test_fig8_tasks(benchmark, approach, tasks):
    instance, valid_pairs = make_batch(dataset="unif", tasks=tasks)
    benchmark.extra_info["tasks"] = tasks
    bench_solve(benchmark, approach, instance, valid_pairs)
