"""Exact CA-SC solver for small instances (branch and bound).

CA-SC is NP-hard (Theorem II.1), so this solver exists for two purposes
only: certifying the heuristics on tiny instances in the test suite, and
computing true optima for the ablation study of approximation quality. It
enumerates worker strategies depth-first with a Lemma V.2 pruning bound —
the final score can never exceed the sum of ``q_hat_{i,B}`` over assigned
workers — and refuses instances whose search space is clearly hopeless.
"""

from __future__ import annotations

import numpy as np

from repro.core.assignment import Assignment
from repro.core.bounds import highest_average_quality
from repro.core.model import Instance
from repro.core.validity import ValidPairs, compute_valid_pairs
from repro.utils.errors import InvalidInstanceError

__all__ = ["solve_exact"]

DEFAULT_NODE_LIMIT = 5_000_000


def solve_exact(
    instance: Instance,
    valid_pairs: ValidPairs | None = None,
    node_limit: int = DEFAULT_NODE_LIMIT,
) -> Assignment:
    """Optimal assignment by exhaustive branch and bound.

    Raises
    ------
    InvalidInstanceError
        When the search space exceeds ``node_limit`` nodes even under the
        most optimistic estimate — use the heuristics instead.
    """
    if valid_pairs is None:
        valid_pairs = compute_valid_pairs(instance)

    # Crude search-space estimate: every worker tries its valid tasks + idle.
    space = 1.0
    for worker in range(instance.worker_count):
        space *= len(valid_pairs.tasks_for_worker[worker]) + 1
        if space > node_limit:
            raise InvalidInstanceError(
                f"exact search space exceeds {node_limit} nodes; "
                "the exact solver is only intended for tiny instances"
            )

    q_hat = np.array(
        [
            highest_average_quality(instance.quality, worker, instance.min_group_size)
            for worker in range(instance.worker_count)
        ]
    )
    # Workers with the fewest options first: fail fast, prune early.
    order = sorted(
        range(instance.worker_count),
        key=lambda worker: len(valid_pairs.tasks_for_worker[worker]),
    )
    suffix_bound = np.zeros(instance.worker_count + 1)
    for position in range(instance.worker_count - 1, -1, -1):
        suffix_bound[position] = suffix_bound[position + 1] + q_hat[order[position]]

    working = Assignment(instance, valid_pairs)
    best = working.copy()
    best_score = -np.inf
    assigned_bound = [0.0]  # sum of q_hat over currently assigned workers

    def recurse(position: int) -> None:
        nonlocal best, best_score
        if assigned_bound[0] + suffix_bound[position] <= best_score:
            return
        if position == len(order):
            score = working.total_score()
            if score > best_score:
                best_score = score
                best = working.copy()
            return
        worker = order[position]
        for task in valid_pairs.tasks_for_worker[worker]:
            if working.assigned_count(task) >= instance.tasks[task].capacity:
                continue
            working.assign(worker, task)
            assigned_bound[0] += q_hat[worker]
            recurse(position + 1)
            assigned_bound[0] -= q_hat[worker]
            working.unassign(worker)
        recurse(position + 1)  # the idle strategy

    recurse(0)
    return best
