"""Valid worker-and-task pairs — Definition 3 and Algorithm 1 lines 4-5.

A pair ``<w_i, t_j>`` is valid when the task lies inside the worker's
working area (radius ``r_i``) and the worker can reach the task location
before its deadline at speed ``v_i``. The batch framework computes, for
every worker, the valid task set ``T_i`` by a circular range query over a
spatial index of task locations — exactly the paper's R-tree recipe — and
then applies the deadline filter.

Four interchangeable strategies are provided:

* ``"rtree"`` — STR bulk-loaded R-tree (the paper's choice);
* ``"grid"``  — uniform hash grid, usually fastest here;
* ``"kdtree"`` — balanced median-split k-d tree;
* ``"matrix"`` — fully vectorized numpy distance matrix, best for small
  batches where index construction dominates.

All four produce identical results (asserted by the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import Instance, Task
from repro.spatial.geometry import pairwise_distances
from repro.spatial.grid import GridIndex
from repro.spatial.kdtree import KDTree
from repro.spatial.rtree import RTree

__all__ = [
    "ValidPairs",
    "compute_valid_pairs",
    "IncrementalValidityIndex",
    "STRATEGIES",
]

#: The interchangeable validity strategies (all produce identical
#: results; the audit harness cross-checks them on every instance).
STRATEGIES = ("rtree", "grid", "kdtree", "matrix")
_STRATEGIES = STRATEGIES


@dataclass(frozen=True)
class ValidPairs:
    """The bipartite validity structure of one batch.

    ``tasks_for_worker[i]`` lists task indices worker ``i`` may serve
    (the paper's ``T_i``); ``workers_for_task[j]`` is the transpose view.
    Both sides are sorted ascending for determinism.
    """

    tasks_for_worker: tuple[tuple[int, ...], ...]
    workers_for_task: tuple[tuple[int, ...], ...]

    @property
    def pair_count(self) -> int:
        """Total number of valid worker-task pairs."""
        return sum(len(tasks) for tasks in self.tasks_for_worker)

    def is_valid(self, worker: int, task: int) -> bool:
        """O(1) membership via a lazily-built frozenset side-index.

        Called inside ``Assignment.assign`` and the local-search inner
        loops, where the previous O(k) tuple scan was a measurable cost
        for high-degree workers.
        """
        return task in self._task_sets[worker]

    @property
    def _task_sets(self) -> tuple[frozenset, ...]:
        cached = self.__dict__.get("_task_sets_cache")
        if cached is None:
            cached = tuple(frozenset(tasks) for tasks in self.tasks_for_worker)
            object.__setattr__(self, "_task_sets_cache", cached)
        return cached

    def iter_pairs(self):
        """Yield all valid ``(worker, task)`` pairs."""
        for worker, tasks in enumerate(self.tasks_for_worker):
            for task in tasks:
                yield worker, task

    @classmethod
    def from_worker_lists(
        cls, tasks_for_worker, task_count: int
    ) -> "ValidPairs":
        """Build (and transpose) from per-worker task lists."""
        per_worker = tuple(tuple(sorted(set(tasks))) for tasks in tasks_for_worker)
        per_task: list[list[int]] = [[] for _ in range(task_count)]
        for worker, tasks in enumerate(per_worker):
            for task in tasks:
                if not 0 <= task < task_count:
                    raise ValueError(f"task index {task} out of range")
                per_task[task].append(worker)
        return cls(
            tasks_for_worker=per_worker,
            workers_for_task=tuple(tuple(workers) for workers in per_task),
        )


def compute_valid_pairs(
    instance: Instance, strategy: str = "grid", travel_model=None
) -> ValidPairs:
    """Compute Definition 3's valid pairs for a batch.

    Parameters
    ----------
    instance:
        The batch to analyse.
    strategy:
        ``"rtree"``, ``"grid"``, ``"kdtree"`` or ``"matrix"`` (see module
        docstring).
    travel_model:
        Optional alternative travel metric (e.g.
        :class:`~repro.spatial.roadnet.RoadNetworkTravel`). The working
        area stays Euclidean (it is the worker's stated *preference*
        radius), but the can-the-worker-arrive-in-time check uses the
        model's distances. ``None`` keeps the paper's straight-line
        travel.
    """
    if strategy not in _STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; expected one of {_STRATEGIES}")
    if instance.task_count == 0 or instance.worker_count == 0:
        return ValidPairs.from_worker_lists(
            [[] for _ in range(instance.worker_count)], instance.task_count
        )
    if travel_model is not None:
        return _compute_with_travel_model(instance, travel_model)
    if strategy == "matrix":
        return _compute_matrix(instance)
    return _compute_indexed(instance, strategy)


#: Relative slack on the speed x deadline reach bound. A valid pair
#: satisfies ``distance / v_i <= remaining_j`` under *rounded* float
#: division, which does not strictly imply ``distance <= v_i *
#: remaining_j`` under rounded multiplication; a few ulps of headroom
#: keep the range query a superset of the post-filtered valid set.
_REACH_SLACK = 1.0 + 1e-12


def _max_remaining(instance: Instance) -> float:
    """Longest remaining deadline over the batch's tasks, clamped >= 0."""
    if not instance.tasks:
        return 0.0
    return max(
        0.0, max(task.remaining_time(instance.now) for task in instance.tasks)
    )


def _reach_limit(
    instance: Instance, worker_index: int, max_remaining: float
) -> float:
    """The worker's effective reach: within radius *and* within speed x
    longest remaining deadline is necessary; the per-task deadline check
    happens after the range query.

    ``min(r_i, v_i * max_remaining)`` prunes candidates for slow workers
    with large preference radii (a zero-speed worker only ever reaches
    distance 0). The slack factor keeps the bound a strict superset of
    :func:`_deadline_ok`, so all four strategies stay identical.
    """
    worker = instance.workers[worker_index]
    return min(worker.radius, worker.speed * max_remaining * _REACH_SLACK)


def _compute_indexed(instance: Instance, strategy: str) -> ValidPairs:
    task_items = [
        (index, task.location) for index, task in enumerate(instance.tasks)
    ]
    if strategy == "rtree":
        index = RTree.bulk_load(task_items)
    elif strategy == "kdtree":
        index = KDTree.build(task_items)
    else:
        mean_radius = float(
            np.mean([worker.radius for worker in instance.workers])
        )
        cell = max(mean_radius, 1e-6)
        index = GridIndex.build(task_items, cell_size=cell)

    max_remaining = _max_remaining(instance)
    tasks_for_worker: list[list[int]] = []
    for worker_index, worker in enumerate(instance.workers):
        candidates = index.query_circle(
            worker.location, _reach_limit(instance, worker_index, max_remaining)
        )
        valid = [
            task_index
            for task_index in candidates
            if _deadline_ok(instance, worker_index, task_index)
        ]
        tasks_for_worker.append(valid)
    return ValidPairs.from_worker_lists(tasks_for_worker, instance.task_count)


def _deadline_ok(instance: Instance, worker_index: int, task_index: int) -> bool:
    worker = instance.workers[worker_index]
    task = instance.tasks[task_index]
    remaining = task.remaining_time(instance.now)
    if remaining < 0:
        return False
    distance = worker.location.distance_to(task.location)
    if worker.speed <= 0:
        return distance == 0.0
    return distance / worker.speed <= remaining


class IncrementalValidityIndex:
    """Task-side validity state maintained *across* batch rounds.

    The batch simulator's task pool evolves by small deltas — arrivals,
    served/cancelled departures, deadline expiries — while the historical
    path rebuilt the whole spatial index from scratch every round. This
    class keeps one :class:`~repro.spatial.grid.GridIndex` alive and
    applies the pool's deltas via ``insert``/``delete`` (keyed by the
    stable ``task_id``), so per-round cost is proportional to the churn,
    not the pool size.

    Results are *identical* to ``compute_valid_pairs(strategy="grid")``:
    candidate order cannot matter (``ValidPairs.from_worker_lists``
    sorts), the range query filters by exact distance, and every
    candidate passes the exact per-task ``_deadline_ok`` check — so the
    outcome is invariant to the index's cell size, which here is fixed
    at construction instead of re-derived from each round's mean worker
    radius. The equivalence is asserted round-by-round by the test
    suite.

    Stale-deadline contract: the reach bound's ``max_remaining`` is
    re-derived from the *live* task set on every delta — an expired or
    departed task can never widen a worker's candidate radius. (The
    cached maximum is invalidated whenever the task holding it leaves;
    keeping it would only cost query time, not correctness, but the
    bound-tightness invariant is pinned by a regression test.)
    """

    def __init__(self, cell_size: float) -> None:
        self._index = GridIndex(cell_size=max(float(cell_size), 1e-6))
        self._tasks: dict[int, Task] = {}
        self._max_deadline = -np.inf
        self._max_stale = False

    def __len__(self) -> int:
        return len(self._tasks)

    def sync(self, tasks: "list[Task] | tuple[Task, ...]") -> tuple[int, int]:
        """Apply the pool's deltas: insert arrivals, drop departures.

        ``tasks`` is the current live pool (any order, unique
        ``task_id``s). Returns ``(added, removed)`` for observability.
        """
        current = {task.task_id: task for task in tasks}
        if len(current) != len(tasks):
            raise ValueError("duplicate task_id in the live pool")
        removed = [key for key in self._tasks if key not in current]
        for key in removed:
            task = self._tasks.pop(key)
            self._index.delete(key, task.location)
            if task.deadline == self._max_deadline:
                self._max_stale = True
        added = 0
        for key, task in current.items():
            if key in self._tasks:
                continue
            self._tasks[key] = task
            self._index.insert(key, task.location)
            added += 1
            if task.deadline > self._max_deadline and not self._max_stale:
                self._max_deadline = task.deadline
        return added, len(removed)

    def max_remaining(self, now: float) -> float:
        """Longest remaining deadline over the *live* tasks (>= 0).

        Bit-identical to :func:`_max_remaining` on an instance holding
        the same tasks: the maximizing task is the same either way, and
        ``max(deadline) - now`` is the same subtraction of the same two
        floats as ``max(deadline - now)``.
        """
        if not self._tasks:
            return 0.0
        if self._max_stale:
            self._max_deadline = max(
                task.deadline for task in self._tasks.values()
            )
            self._max_stale = False
        return max(0.0, self._max_deadline - now)

    def compute(self, instance: Instance) -> ValidPairs:
        """This round's :class:`ValidPairs` from the maintained index.

        ``instance.tasks`` must be exactly the pool last passed to
        :meth:`sync` (positions may differ from insertion order; the
        query is mapped back through ``task_id``).
        """
        if instance.task_count == 0 or instance.worker_count == 0:
            return ValidPairs.from_worker_lists(
                [[] for _ in range(instance.worker_count)], instance.task_count
            )
        position_of = {
            task.task_id: position
            for position, task in enumerate(instance.tasks)
        }
        if position_of.keys() != self._tasks.keys():
            raise ValueError(
                "instance task pool is out of sync with the index; "
                "call sync() with the live pool first"
            )
        max_remaining = self.max_remaining(instance.now)
        tasks_for_worker: list[list[int]] = []
        for worker_index, worker in enumerate(instance.workers):
            limit = min(
                worker.radius, worker.speed * max_remaining * _REACH_SLACK
            )
            candidates = self._index.query_circle(worker.location, limit)
            valid = [
                position
                for position in (position_of[key] for key in candidates)
                if _deadline_ok(instance, worker_index, position)
            ]
            tasks_for_worker.append(valid)
        return ValidPairs.from_worker_lists(
            tasks_for_worker, instance.task_count
        )


def _compute_with_travel_model(instance: Instance, travel_model) -> ValidPairs:
    """Validity with a pluggable travel metric (one batched distance
    query per worker over the worker's Euclidean range candidates)."""
    task_items = [(index, task.location) for index, task in enumerate(instance.tasks)]
    mean_radius = float(np.mean([worker.radius for worker in instance.workers]))
    index = GridIndex.build(task_items, cell_size=max(mean_radius, 1e-6))

    tasks_for_worker: list[list[int]] = []
    for worker in instance.workers:
        candidates = index.query_circle(worker.location, worker.radius)
        if not candidates:
            tasks_for_worker.append([])
            continue
        travel = travel_model.distances_from(
            worker.location,
            [instance.tasks[task].location for task in candidates],
        )
        valid: list[int] = []
        for position, task_index in enumerate(candidates):
            remaining = instance.tasks[task_index].remaining_time(instance.now)
            if remaining < 0:
                continue
            distance = float(travel[position])
            if worker.speed <= 0:
                if distance == 0.0:
                    valid.append(task_index)
            elif distance / worker.speed <= remaining:
                valid.append(task_index)
        tasks_for_worker.append(valid)
    return ValidPairs.from_worker_lists(tasks_for_worker, instance.task_count)


def _compute_matrix(instance: Instance) -> ValidPairs:
    """Vectorized validity: one (m, n) distance matrix, two masks."""
    distances = pairwise_distances(
        instance.worker_locations(), instance.task_locations()
    )
    radii = np.array([worker.radius for worker in instance.workers])
    speeds = np.array([worker.speed for worker in instance.workers])
    remaining = np.array(
        [task.remaining_time(instance.now) for task in instance.tasks]
    )

    within_radius = distances <= radii[:, None]
    with np.errstate(divide="ignore", invalid="ignore"):
        travel = np.where(
            speeds[:, None] > 0, distances / np.maximum(speeds[:, None], 1e-300), np.inf
        )
    travel = np.where((speeds[:, None] <= 0) & (distances == 0.0), 0.0, travel)
    in_time = (travel <= remaining[None, :]) & (remaining[None, :] >= 0)

    valid = within_radius & in_time
    tasks_for_worker = [np.flatnonzero(valid[i]).tolist() for i in range(valid.shape[0])]
    return ValidPairs.from_worker_lists(tasks_for_worker, instance.task_count)
