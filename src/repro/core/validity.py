"""Valid worker-and-task pairs — Definition 3 and Algorithm 1 lines 4-5.

A pair ``<w_i, t_j>`` is valid when the task lies inside the worker's
working area (radius ``r_i``) and the worker can reach the task location
before its deadline at speed ``v_i``. The batch framework computes, for
every worker, the valid task set ``T_i`` by a circular range query over a
spatial index of task locations — exactly the paper's R-tree recipe — and
then applies the deadline filter.

Four interchangeable strategies are provided:

* ``"rtree"`` — STR bulk-loaded R-tree (the paper's choice);
* ``"grid"``  — uniform hash grid, usually fastest here;
* ``"kdtree"`` — balanced median-split k-d tree;
* ``"matrix"`` — fully vectorized numpy distance matrix, best for small
  batches where index construction dominates.

All four produce identical results (asserted by the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice

import numpy as np

from repro.core.model import Instance, Task
from repro.spatial.geometry import pairwise_distances
from repro.spatial.grid import GridIndex
from repro.spatial.kdtree import KDTree
from repro.spatial.rtree import RTree

__all__ = [
    "ValidPairs",
    "compute_valid_pairs",
    "compute_valid_pairs_reference",
    "IncrementalValidityIndex",
    "STRATEGIES",
]

#: The interchangeable validity strategies (all produce identical
#: results; the audit harness cross-checks them on every instance).
STRATEGIES = ("rtree", "grid", "kdtree", "matrix")
_STRATEGIES = STRATEGIES


@dataclass(frozen=True)
class ValidPairs:
    """The bipartite validity structure of one batch.

    ``tasks_for_worker[i]`` lists task indices worker ``i`` may serve
    (the paper's ``T_i``); ``workers_for_task[j]`` is the transpose view.
    Both sides are sorted ascending for determinism.
    """

    tasks_for_worker: tuple[tuple[int, ...], ...]
    workers_for_task: tuple[tuple[int, ...], ...]

    @property
    def pair_count(self) -> int:
        """Total number of valid worker-task pairs (cached).

        Read every simulation round by the batch reporter and inside
        stats loops; the tuple-of-tuples re-sum is O(m) per call, so the
        first computation is memoized on the frozen instance the same
        way as the ``is_valid`` side-index.
        """
        cached = self.__dict__.get("_pair_count_cache")
        if cached is None:
            cached = sum(len(tasks) for tasks in self.tasks_for_worker)
            object.__setattr__(self, "_pair_count_cache", cached)
        return cached

    def is_valid(self, worker: int, task: int) -> bool:
        """O(1) membership via a lazily-built frozenset side-index.

        Called inside ``Assignment.assign`` and the local-search inner
        loops, where the previous O(k) tuple scan was a measurable cost
        for high-degree workers.
        """
        return task in self._task_sets[worker]

    @property
    def _task_sets(self) -> tuple[frozenset, ...]:
        cached = self.__dict__.get("_task_sets_cache")
        if cached is None:
            cached = tuple(frozenset(tasks) for tasks in self.tasks_for_worker)
            object.__setattr__(self, "_task_sets_cache", cached)
        return cached

    def iter_pairs(self):
        """Yield all valid ``(worker, task)`` pairs."""
        for worker, tasks in enumerate(self.tasks_for_worker):
            for task in tasks:
                yield worker, task

    @classmethod
    def from_worker_lists(
        cls, tasks_for_worker, task_count: int
    ) -> "ValidPairs":
        """Build (and transpose) from per-worker task lists."""
        per_worker = tuple(tuple(sorted(set(tasks))) for tasks in tasks_for_worker)
        per_task: list[list[int]] = [[] for _ in range(task_count)]
        for worker, tasks in enumerate(per_worker):
            for task in tasks:
                if not 0 <= task < task_count:
                    raise ValueError(f"task index {task} out of range")
                per_task[task].append(worker)
        return cls(
            tasks_for_worker=per_worker,
            workers_for_task=tuple(tuple(workers) for workers in per_task),
        )

    @classmethod
    def from_sorted_rows(cls, rows, task_count: int) -> "ValidPairs":
        """Build from per-worker arrays already sorted and duplicate-free.

        The vectorized grid path emits rows with both properties by
        construction (each task lives in exactly one grid cell, and
        candidates are pre-sorted per rectangle group), so the
        per-element set/sort of :meth:`from_worker_lists` is skipped and
        the transpose comes from one stable argsort over the flattened
        pairs instead of per-pair list appends. Output is structurally
        identical to ``from_worker_lists`` on the same membership.
        """
        worker_count = len(rows)
        counts = np.fromiter(
            (len(row) for row in rows), dtype=np.int64, count=worker_count
        )
        total = int(counts.sum())
        if total == 0:
            return cls(
                tuple(() for _ in range(worker_count)),
                tuple(() for _ in range(task_count)),
            )
        tasks_flat = np.concatenate(
            [np.asarray(row, dtype=np.int64) for row in rows if len(row)]
        )
        if int(tasks_flat.min()) < 0 or int(tasks_flat.max()) >= task_count:
            raise ValueError("task index out of range")
        # One bulk tolist per side, then islice consumption — far
        # cheaper than a small ndarray.tolist per worker/task at scale.
        worker_iter = iter(tasks_flat.tolist())
        per_worker = tuple(
            tuple(islice(worker_iter, width)) for width in counts.tolist()
        )
        workers_flat = np.repeat(
            np.arange(worker_count, dtype=np.int32), counts
        )
        # int32 keys roughly halve the stable (radix) argsort cost and
        # are always wide enough: indices were range-checked above.
        order = np.argsort(tasks_flat.astype(np.int32), kind="stable")
        task_widths = np.bincount(
            tasks_flat, minlength=task_count
        ).tolist()
        task_iter = iter(workers_flat[order].tolist())
        per_task = tuple(
            tuple(islice(task_iter, width)) for width in task_widths
        )
        return cls(per_worker, per_task)


def compute_valid_pairs(
    instance: Instance, strategy: str = "grid", travel_model=None
) -> ValidPairs:
    """Compute Definition 3's valid pairs for a batch.

    Parameters
    ----------
    instance:
        The batch to analyse.
    strategy:
        ``"rtree"``, ``"grid"``, ``"kdtree"`` or ``"matrix"`` (see module
        docstring).
    travel_model:
        Optional alternative travel metric (e.g.
        :class:`~repro.spatial.roadnet.RoadNetworkTravel`). The working
        area stays Euclidean (it is the worker's stated *preference*
        radius), but the can-the-worker-arrive-in-time check uses the
        model's distances. ``None`` keeps the paper's straight-line
        travel.
    """
    if strategy not in _STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; expected one of {_STRATEGIES}")
    if instance.task_count == 0 or instance.worker_count == 0:
        return ValidPairs.from_worker_lists(
            [[] for _ in range(instance.worker_count)], instance.task_count
        )
    if travel_model is not None:
        return _compute_with_travel_model(instance, travel_model)
    if strategy == "matrix":
        return _compute_matrix(instance)
    return _compute_indexed(instance, strategy)


#: Relative slack on the speed x deadline reach bound. A valid pair
#: satisfies ``distance / v_i <= remaining_j`` under *rounded* float
#: division, which does not strictly imply ``distance <= v_i *
#: remaining_j`` under rounded multiplication; a few ulps of headroom
#: keep the range query a superset of the post-filtered valid set.
_REACH_SLACK = 1.0 + 1e-12


def _max_remaining(instance: Instance) -> float:
    """Longest remaining deadline over the batch's tasks, clamped >= 0."""
    if not instance.tasks:
        return 0.0
    return max(
        0.0, max(task.remaining_time(instance.now) for task in instance.tasks)
    )


def _reach_limit(
    instance: Instance, worker_index: int, max_remaining: float
) -> float:
    """The worker's effective reach: within radius *and* within speed x
    longest remaining deadline is necessary; the per-task deadline check
    happens after the range query.

    ``min(r_i, v_i * max_remaining)`` prunes candidates for slow workers
    with large preference radii (a zero-speed worker only ever reaches
    distance 0). The slack factor keeps the bound a strict superset of
    :func:`_deadline_ok`, so all four strategies stay identical.
    """
    worker = instance.workers[worker_index]
    return min(worker.radius, worker.speed * max_remaining * _REACH_SLACK)


def _compute_indexed(
    instance: Instance, strategy: str, vectorized: bool = True
) -> ValidPairs:
    task_items = [
        (index, task.location) for index, task in enumerate(instance.tasks)
    ]
    if strategy == "rtree":
        index = RTree.bulk_load(task_items)
    elif strategy == "kdtree":
        index = KDTree.build(task_items)
    else:
        mean_radius = float(
            np.mean([worker.radius for worker in instance.workers])
        )
        # Membership is invariant to the cell size (the range query and
        # deadline filters are exact), so the two grid paths pick the
        # granularity that suits them: the scalar loop wants small cells
        # (fewer non-candidates scanned per bucket), the batched path
        # wants coarse cells (fewer rectangle groups, so the per-group
        # numpy dispatch overhead amortizes over bigger blocks).
        multiplier = _GRID_VECTOR_CELL_MULTIPLIER if vectorized else 1.0
        cell = max(mean_radius * multiplier, 1e-6)
        index = GridIndex.build(task_items, cell_size=cell)

    max_remaining = _max_remaining(instance)
    if strategy == "grid" and vectorized:
        return ValidPairs.from_sorted_rows(
            _grid_valid_lists(instance, index, max_remaining),
            instance.task_count,
        )
    tasks_for_worker: list[list[int]] = []
    for worker_index, worker in enumerate(instance.workers):
        candidates = index.query_circle(
            worker.location, _reach_limit(instance, worker_index, max_remaining)
        )
        valid = [
            task_index
            for task_index in candidates
            if _deadline_ok(instance, worker_index, task_index)
        ]
        tasks_for_worker.append(valid)
    return ValidPairs.from_worker_lists(tasks_for_worker, instance.task_count)


def compute_valid_pairs_reference(instance: Instance) -> ValidPairs:
    """Scalar per-worker grid construction — the vectorized path's oracle.

    Runs the historical ``query_circle`` + per-candidate ``_deadline_ok``
    loop over the same grid the vectorized path batches over; the audit
    harness and the bench guard compare the two for membership parity.
    """
    if instance.task_count == 0 or instance.worker_count == 0:
        return ValidPairs.from_worker_lists(
            [[] for _ in range(instance.worker_count)], instance.task_count
        )
    return _compute_indexed(instance, "grid", vectorized=False)


#: Cell-size factor of the vectorized grid build relative to the mean
#: worker radius (the scalar path's cell size). Coarser cells trade a
#: wider candidate superset (cheap float32 prefilter cells) for far
#: fewer worker rectangle groups; ~3x is the sweet spot at n = 20k.
_GRID_VECTOR_CELL_MULTIPLIER = 3.0

#: Row-chunk budget for the batched distance matrices: a worker-group's
#: (rows x candidates) block is processed in slices of at most this many
#: float64 cells, bounding peak memory regardless of how many workers
#: share one cell rectangle.
_GRID_BLOCK_CELLS = 2_000_000

#: Reach-margin factor of the squared-distance prefilter. The prefilter
#: runs in float32 (it only has to be a *superset* of the exact test,
#: and halving the bandwidth of the big block matrices is the point);
#: the comparison radius is inflated additively by ``scale * 1e-5``,
#: where ``scale`` bounds the coordinate magnitudes, which dwarfs the
#: worst-case float32 cast/subtract/square error (~4 ulps, i.e. ~2.4e-7
#: relative to ``scale``) while still rejecting essentially everything
#: outside the circle. Exact float64 hypot decides membership for the
#: survivors.
_PREFILTER_MARGIN = 1e-5


def _cell_table(index: GridIndex, position_of=None):
    """Per-cell candidate arrays: ``(cx, cy) -> (positions, xs, ys)``.

    ``position_of`` maps bucket items (stable task ids in the
    incremental index) to task positions; ``None`` means items already
    *are* positions (the fresh-build path).
    """
    table: dict = {}
    for key, bucket in index.cells():
        count = len(bucket)
        if position_of is None:
            positions = np.fromiter(
                (item for item, _ in bucket), dtype=np.int64, count=count
            )
        else:
            positions = np.fromiter(
                (position_of[item] for item, _ in bucket),
                dtype=np.int64,
                count=count,
            )
        xs = np.fromiter(
            (point.x for _, point in bucket), dtype=np.float64, count=count
        )
        ys = np.fromiter(
            (point.y for _, point in bucket), dtype=np.float64, count=count
        )
        table[key] = (positions, xs, ys)
    return table


def _grid_valid_lists(
    instance: Instance,
    index: GridIndex,
    max_remaining: float,
    position_of=None,
) -> "list[np.ndarray]":
    """Batched grid validity: per-worker candidate lists, membership
    identical to the scalar ``query_circle`` + ``_deadline_ok`` loop.

    Workers sharing the same candidate cell rectangle are scored as one
    broadcast block — distances via :func:`np.hypot` (the elementwise
    twin of ``Point.distance_to``'s ``math.hypot``), then the same two
    masks the scalar path applies: within the reach limit, and
    deadline-feasible (``remaining < 0`` rejects; zero-speed workers
    only reach distance 0; otherwise ``distance / speed <= remaining``).
    Each emitted row is sorted ascending and duplicate-free (candidates
    are argsorted once per rectangle group; a task lives in exactly one
    cell), satisfying :meth:`ValidPairs.from_sorted_rows`'s contract.
    """
    workers = instance.workers
    cell_size = index.cell_size
    table = _cell_table(index, position_of)
    remaining = np.fromiter(
        (task.remaining_time(instance.now) for task in instance.tasks),
        dtype=np.float64,
        count=instance.task_count,
    )
    count = len(workers)
    wx = np.fromiter(
        (w.location.x for w in workers), dtype=np.float64, count=count
    )
    wy = np.fromiter(
        (w.location.y for w in workers), dtype=np.float64, count=count
    )
    radii = np.fromiter(
        (w.radius for w in workers), dtype=np.float64, count=count
    )
    speeds = np.fromiter(
        (w.speed for w in workers), dtype=np.float64, count=count
    )
    # Same float expression as _reach_limit, elementwise.
    limits = np.minimum(radii, speeds * max_remaining * _REACH_SLACK)
    # Coordinate/limit magnitude bound for the prefilter's additive
    # reach margin.
    scale = 1.0
    if count:
        scale = max(
            scale,
            float(np.abs(wx).max()),
            float(np.abs(wy).max()),
            float(limits.max()),
        )
    for _, xs, ys in table.values():
        scale = max(
            scale, float(np.abs(xs).max()), float(np.abs(ys).max())
        )
    margin = scale * _PREFILTER_MARGIN

    # query_circle's inclusive cell rectangle, elementwise: identical
    # IEEE subtract/divide then floor, so the scanned cells match the
    # scalar path cell-for-cell.
    min_cx = np.floor((wx - limits) / cell_size).astype(np.int64)
    max_cx = np.floor((wx + limits) / cell_size).astype(np.int64)
    min_cy = np.floor((wy - limits) / cell_size).astype(np.int64)
    max_cy = np.floor((wy + limits) / cell_size).astype(np.int64)

    groups: dict[tuple[int, int, int, int], list[int]] = {}
    for row in range(count):
        key = (
            int(min_cx[row]),
            int(max_cx[row]),
            int(min_cy[row]),
            int(max_cy[row]),
        )
        groups.setdefault(key, []).append(row)

    empty_row = np.empty(0, dtype=np.int64)
    result: list[np.ndarray] = [empty_row] * count
    # Distinct rectangles frequently clip to the same subset of present
    # cells (coarse cells, map edges), so the sorted candidate bundles
    # are memoized by that subset.
    bundles: dict = {}
    for (cx_lo, cx_hi, cy_lo, cy_hi), rows in groups.items():
        keys = tuple(
            (cx, cy)
            for cx in range(cx_lo, cx_hi + 1)
            for cy in range(cy_lo, cy_hi + 1)
            if (cx, cy) in table
        )
        if not keys:
            continue
        bundle = bundles.get(keys)
        if bundle is None:
            parts = [table[key] for key in keys]
            if len(parts) == 1:
                cand_pos, cand_x, cand_y = parts[0]
            else:
                cand_pos = np.concatenate([p[0] for p in parts])
                cand_x = np.concatenate([p[1] for p in parts])
                cand_y = np.concatenate([p[2] for p in parts])
            order = np.argsort(cand_pos)
            cand_pos = cand_pos[order]
            cand_x = cand_x[order]
            cand_y = cand_y[order]
            bundle = (
                cand_pos,
                cand_x,
                cand_y,
                cand_x.astype(np.float32),
                cand_y.astype(np.float32),
                remaining[cand_pos],
            )
            bundles[keys] = bundle
        cand_pos, cand_x, cand_y, cand_x32, cand_y32, cand_remaining = bundle
        rows_array = np.asarray(rows, dtype=np.int64)
        chunk = max(1, _GRID_BLOCK_CELLS // max(1, cand_pos.size))
        for start in range(0, rows_array.size, chunk):
            block = rows_array[start : start + chunk]
            block_wx = wx[block]
            block_wy = wy[block]
            block_limits = limits[block]
            dx32 = cand_x32[None, :] - block_wx.astype(np.float32)[:, None]
            dy32 = cand_y32[None, :] - block_wy.astype(np.float32)[:, None]
            # float32 squared-distance prefilter — a strict superset of
            # hypot(dx, dy) <= limit thanks to the additive margin (see
            # _PREFILTER_MARGIN); exact float64 hypot then runs only on
            # the surviving cells, so membership is decided by the same
            # comparison as the scalar path.
            threshold = (
                ((block_limits + margin) * (block_limits + margin))
                .astype(np.float32)[:, None]
            )
            near = dx32 * dx32 + dy32 * dy32 <= threshold
            row_hits, col_hits = np.nonzero(near)
            dist = np.hypot(
                cand_x[col_hits] - block_wx[row_hits],
                cand_y[col_hits] - block_wy[row_hits],
            )
            speed = speeds[block][row_hits]
            rem = cand_remaining[col_hits]
            with np.errstate(divide="ignore", invalid="ignore"):
                travel = np.where(
                    speed > 0, dist / np.maximum(speed, 1e-300), np.inf
                )
            keep = (
                (dist <= block_limits[row_hits])
                & (rem >= 0)
                & np.where(speed > 0, travel <= rem, dist == 0.0)
            )
            row_hits = row_hits[keep]
            kept_pos = cand_pos[col_hits[keep]]
            # np.nonzero is row-major, so kept_pos is grouped by row
            # with ascending candidate order inside each group; slice
            # views per row keep this allocation-free.
            row_counts = np.bincount(row_hits, minlength=block.size)
            bounds = np.concatenate(([0], np.cumsum(row_counts))).tolist()
            for offset, row in enumerate(block.tolist()):
                result[row] = kept_pos[bounds[offset] : bounds[offset + 1]]
    return result


def _deadline_ok(instance: Instance, worker_index: int, task_index: int) -> bool:
    worker = instance.workers[worker_index]
    task = instance.tasks[task_index]
    remaining = task.remaining_time(instance.now)
    if remaining < 0:
        return False
    distance = worker.location.distance_to(task.location)
    if worker.speed <= 0:
        return distance == 0.0
    return distance / worker.speed <= remaining


class IncrementalValidityIndex:
    """Task-side validity state maintained *across* batch rounds.

    The batch simulator's task pool evolves by small deltas — arrivals,
    served/cancelled departures, deadline expiries — while the historical
    path rebuilt the whole spatial index from scratch every round. This
    class keeps one :class:`~repro.spatial.grid.GridIndex` alive and
    applies the pool's deltas via ``insert``/``delete`` (keyed by the
    stable ``task_id``), so per-round cost is proportional to the churn,
    not the pool size.

    Results are *identical* to ``compute_valid_pairs(strategy="grid")``:
    candidate order cannot matter (``ValidPairs.from_worker_lists``
    sorts), the range query filters by exact distance, and every
    candidate passes the exact per-task ``_deadline_ok`` check — so the
    outcome is invariant to the index's cell size, which here is fixed
    at construction instead of re-derived from each round's mean worker
    radius. The equivalence is asserted round-by-round by the test
    suite.

    Stale-deadline contract: the reach bound's ``max_remaining`` is
    re-derived from the *live* task set on every delta — an expired or
    departed task can never widen a worker's candidate radius. (The
    cached maximum is invalidated whenever the task holding it leaves;
    keeping it would only cost query time, not correctness, but the
    bound-tightness invariant is pinned by a regression test.)
    """

    def __init__(self, cell_size: float) -> None:
        self._index = GridIndex(cell_size=max(float(cell_size), 1e-6))
        self._tasks: dict[int, Task] = {}
        self._max_deadline = -np.inf
        self._max_stale = False

    def __len__(self) -> int:
        return len(self._tasks)

    def sync(self, tasks: "list[Task] | tuple[Task, ...]") -> tuple[int, int]:
        """Apply the pool's deltas: insert arrivals, drop departures.

        ``tasks`` is the current live pool (any order, unique
        ``task_id``s). Returns ``(added, removed)`` for observability.
        """
        current = {task.task_id: task for task in tasks}
        if len(current) != len(tasks):
            raise ValueError("duplicate task_id in the live pool")
        removed = [key for key in self._tasks if key not in current]
        for key in removed:
            task = self._tasks.pop(key)
            self._index.delete(key, task.location)
            if task.deadline == self._max_deadline:
                self._max_stale = True
        added = 0
        for key, task in current.items():
            if key in self._tasks:
                continue
            self._tasks[key] = task
            self._index.insert(key, task.location)
            added += 1
            if task.deadline > self._max_deadline and not self._max_stale:
                self._max_deadline = task.deadline
        return added, len(removed)

    def max_remaining(self, now: float) -> float:
        """Longest remaining deadline over the *live* tasks (>= 0).

        Bit-identical to :func:`_max_remaining` on an instance holding
        the same tasks: the maximizing task is the same either way, and
        ``max(deadline) - now`` is the same subtraction of the same two
        floats as ``max(deadline - now)``.
        """
        if not self._tasks:
            return 0.0
        if self._max_stale:
            self._max_deadline = max(
                task.deadline for task in self._tasks.values()
            )
            self._max_stale = False
        return max(0.0, self._max_deadline - now)

    def compute(self, instance: Instance) -> ValidPairs:
        """This round's :class:`ValidPairs` from the maintained index.

        ``instance.tasks`` must be exactly the pool last passed to
        :meth:`sync` (positions may differ from insertion order; the
        query is mapped back through ``task_id``).
        """
        if instance.task_count == 0 or instance.worker_count == 0:
            return ValidPairs.from_worker_lists(
                [[] for _ in range(instance.worker_count)], instance.task_count
            )
        position_of = {
            task.task_id: position
            for position, task in enumerate(instance.tasks)
        }
        if position_of.keys() != self._tasks.keys():
            raise ValueError(
                "instance task pool is out of sync with the index; "
                "call sync() with the live pool first"
            )
        max_remaining = self.max_remaining(instance.now)
        return ValidPairs.from_sorted_rows(
            _grid_valid_lists(
                instance, self._index, max_remaining, position_of=position_of
            ),
            instance.task_count,
        )


def _compute_with_travel_model(instance: Instance, travel_model) -> ValidPairs:
    """Validity with a pluggable travel metric (one batched distance
    query per worker over the worker's Euclidean range candidates)."""
    task_items = [(index, task.location) for index, task in enumerate(instance.tasks)]
    mean_radius = float(np.mean([worker.radius for worker in instance.workers]))
    index = GridIndex.build(task_items, cell_size=max(mean_radius, 1e-6))

    tasks_for_worker: list[list[int]] = []
    for worker in instance.workers:
        candidates = index.query_circle(worker.location, worker.radius)
        if not candidates:
            tasks_for_worker.append([])
            continue
        travel = travel_model.distances_from(
            worker.location,
            [instance.tasks[task].location for task in candidates],
        )
        valid: list[int] = []
        for position, task_index in enumerate(candidates):
            remaining = instance.tasks[task_index].remaining_time(instance.now)
            if remaining < 0:
                continue
            distance = float(travel[position])
            if worker.speed <= 0:
                if distance == 0.0:
                    valid.append(task_index)
            elif distance / worker.speed <= remaining:
                valid.append(task_index)
        tasks_for_worker.append(valid)
    return ValidPairs.from_worker_lists(tasks_for_worker, instance.task_count)


def _compute_matrix(instance: Instance) -> ValidPairs:
    """Vectorized validity: one (m, n) distance matrix, two masks."""
    distances = pairwise_distances(
        instance.worker_locations(), instance.task_locations()
    )
    radii = np.array([worker.radius for worker in instance.workers])
    speeds = np.array([worker.speed for worker in instance.workers])
    remaining = np.array(
        [task.remaining_time(instance.now) for task in instance.tasks]
    )

    within_radius = distances <= radii[:, None]
    with np.errstate(divide="ignore", invalid="ignore"):
        travel = np.where(
            speeds[:, None] > 0, distances / np.maximum(speeds[:, None], 1e-300), np.inf
        )
    travel = np.where((speeds[:, None] <= 0) & (distances == 0.0), 0.0, travel)
    in_time = (travel <= remaining[None, :]) & (remaining[None, :] >= 0)

    valid = within_radius & in_time
    tasks_for_worker = [np.flatnonzero(valid[i]).tolist() for i in range(valid.shape[0])]
    return ValidPairs.from_worker_lists(tasks_for_worker, instance.task_count)
