"""Game-theoretic CA-SC solver — Algorithm 3 with the LUB and TSI
optimizations of Section V-D.

Each worker is a player whose strategies are their valid tasks plus
"idle"; the utility of playing task ``t_j`` is the worker's marginal
revenue contribution ``U_i = Q(W_j) - Q(W_j - {w_i})`` (Equation 5). The
global score ``Q(T)`` is an exact potential function for this game
(Theorem V.1): a unilateral strategy change moves the potential by exactly
the player's utility change, so best-response dynamics monotonically climb
the total score and terminate at a pure Nash equilibrium.

Crowd-out is modelled by letting tasks temporarily exceed capacity;
Equation 2 then only counts the best ``a_j``-subset, so joining a full
task is worthwhile exactly when the joiner displaces a worse-matched
member — the situation analysed by Theorems V.3 and V.4. The returned
assignment is clamped back to strict capacity feasibility.

Optimizations
-------------
* **TSI** (threshold stop of the iteration): stop as soon as a round's
  score improvement falls below ``epsilon * current_score``. ``epsilon=0``
  runs to exact convergence.
* **LUB** (lazy updating of best responses): cache each worker's
  best-response task and only rescan workers whose cached response may
  have changed, using the pruning rules of Theorems V.3/V.4 — a pure
  addition to a task cannot dislodge that task from the top of its own
  members-to-be; an exchange ``w_x`` in / ``w_y`` out only matters to a
  worker ``w_i`` with ``q_i(w_y) > q_i(w_x)`` (current best) or
  ``q_i(w_y) < q_i(w_x)`` (other tasks).
* **Vectorized scans**: a full best-response scan scores all of a
  worker's within-capacity candidate tasks in one batched numpy pass —
  a single gather of ``q[worker, members]`` (and its transpose) per
  task, summed segment-wise in strict left-to-right order
  (:func:`~repro.core.kernels.segment_sums_ordered`) — instead of one
  ``join_gain`` call per task. The batched arithmetic is bit-identical
  to the scalar path for groups of fewer than
  :data:`_VECTOR_GROUP_LIMIT` members, where ``ndarray.sum()`` itself
  reduces sequentially; at eight or more elements numpy's pairwise
  summation reorders, so those groups fall back to the scalar
  evaluation. (``np.add.reduceat``, which this path historically used,
  reorders segments of as few as *three* elements on current numpy and
  silently broke the contract.) Bit-identity preserves the exact
  potential function and hence the reached equilibria.
* **Batched kernel** (``kernel="native"``): at the start of each round
  the utilities of *every* worker's candidates are evaluated in one
  pass over flat CSR buffers (:mod:`repro.core.kernels` — numba-njit
  when available, vectorized numpy otherwise), and each worker's scan
  replays the precomputed row when its candidate tasks' membership
  versions are unchanged. Same floats as ``kernel="python"``, enforced
  by the parity suite and the differential audit's kernel axis.
* **Mid-round dirty rescan** (``kernel="native"``): an accepted move
  only stales the prepass rows of the moved tasks' watchers. Those
  workers are collected in a dirty set and, the next time a stale row
  is actually needed, *all* of them are re-scored in one batched
  ``score_candidates`` call that patches the prepass in place — so the
  scans that follow replay refreshed rows instead of each paying a
  per-worker kernel dispatch. A row the batch somehow missed still
  falls back to the single-row :meth:`_BestResponseDynamics._kernel_rescan`.

Every solve is instrumented: the returned :class:`GameResult` carries a
:class:`~repro.core.stats.SolverStats` with revenue-evaluation counters,
LUB cache hits/misses/invalidations, and per-round wall-clock timings.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.assignment import UNASSIGNED, Assignment
from repro.core.kernels import (
    CODE_CURRENT,
    CODE_SCALAR,
    DEFAULT_KERNEL,
    resolve_kernel,
    score_candidates,
    segment_sums_ordered,
)
from repro.core.model import Instance
from repro.core.stats import RoundStats, SolverStats
from repro.core.tpg import solve_tpg_with_stats
from repro.core.validity import ValidPairs, compute_valid_pairs
from repro.utils.rng import ensure_rng

__all__ = ["GameResult", "solve_game_theoretic", "verify_nash_equilibrium"]

DEFAULT_TOLERANCE = 1e-9
DEFAULT_MAX_ROUNDS = 500

#: Candidate groups of fewer than this many members are scored by the
#: vectorized batch path, whose strict left-to-right segment sums match
#: the scalar ``cross_sum``'s ``ndarray.sum()`` exactly below this size.
#: From eight summed elements on, ``ndarray.sum()`` switches to pairwise
#: (reordered) summation that the sequential batch reduction cannot
#: reproduce bit-for-bit, so those groups use the scalar ``join_gain``.
_VECTOR_GROUP_LIMIT = 8


@dataclass
class GameResult:
    """Outcome of a best-response run.

    Attributes
    ----------
    assignment:
        The final, capacity-feasible assignment.
    rounds:
        Completed best-response rounds (Algorithm 3's WHILE iterations).
    moves:
        Total strategy changes across all rounds.
    converged:
        ``True`` when a round produced zero moves (pure Nash equilibrium
        up to the numeric tolerance); ``False`` when TSI or the round cap
        stopped the dynamics early.
    initial_score / final_score:
        Potential value before and after the dynamics (monotone
        non-decreasing by Theorem V.1). ``final_score`` is exactly
        ``score_history[-1]`` — both are read from the same incremental
        total, so they cannot drift apart.
    score_history:
        Total score after each round.
    seeded_tasks:
        ``N_init`` of the TPG initialization (0 for random init); feeds
        the Theorem V.2 price-of-anarchy bound.
    stats:
        :class:`~repro.core.stats.SolverStats` instrumentation of the
        run (evaluation counters, LUB cache behavior, per-round timings).
    """

    assignment: Assignment
    rounds: int
    moves: int
    converged: bool
    initial_score: float
    final_score: float
    score_history: list[float] = field(default_factory=list)
    seeded_tasks: int = 0
    equilibrium: Assignment | None = None
    """The raw best-response fixpoint *before* capacity clamping.

    Crowd-out is modelled by letting tasks overflow their capacity
    (Equation 2 then counts only the best ``a_j``-subset), so the Nash
    property holds for this profile. ``assignment`` is the same profile
    clamped to strict feasibility; it has the same total score, but a
    member's hypothetical-removal utility can differ once the crowded-out
    backfill worker is gone — verify equilibria against this field.
    """
    stats: SolverStats | None = None


def solve_game_theoretic(
    instance: Instance,
    valid_pairs: ValidPairs | None = None,
    init: str = "tpg",
    epsilon: float = 0.0,
    lazy_update: bool = False,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    tolerance: float = DEFAULT_TOLERANCE,
    player_order: str = "sequential",
    seed=None,
    kernel: str = DEFAULT_KERNEL,
) -> GameResult:
    """Run best-response dynamics to a (near-)Nash assignment.

    Parameters
    ----------
    init:
        ``"tpg"`` (Algorithm 3 line 1) or ``"random"`` (each worker picks
        a uniformly random valid task; used by the ablation benchmarks).
    epsilon:
        TSI threshold; 0 disables early stopping.
    lazy_update:
        Enable LUB.
    max_rounds:
        Hard safety cap; the potential argument guarantees convergence,
        the cap only guards against pathological tolerance settings.
    tolerance:
        A move requires a utility improvement strictly above this value,
        which also bounds the numeric drift per accepted move.
    player_order:
        ``"sequential"`` plays workers in index order every round (the
        paper's Algorithm 3); ``"shuffled"`` reshuffles the order each
        round — an ablation knob, since potential games converge under
        any order but may reach different equilibria.
    seed:
        Used by ``init="random"`` and ``player_order="shuffled"``.
    kernel:
        ``"python"`` (the historical per-worker scan) or ``"native"``
        (a per-round batched prepass over all workers' candidates, see
        :mod:`repro.core.kernels`). Bit-identical results either way.
    """
    if epsilon < 0:
        raise ValueError(f"epsilon must be non-negative, got {epsilon}")
    kernel = resolve_kernel(kernel)
    if max_rounds < 1:
        raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
    if player_order not in ("sequential", "shuffled"):
        raise ValueError(
            f"unknown player_order {player_order!r}; "
            "expected 'sequential' or 'shuffled'"
        )
    if valid_pairs is None:
        valid_pairs = compute_valid_pairs(instance)

    stats = SolverStats(solver="GT")
    solve_started = time.perf_counter()

    rng = ensure_rng(seed)
    init_started = time.perf_counter()
    assignment, seeded_tasks = _initial_assignment(
        instance, valid_pairs, init, rng, kernel=kernel, stats=stats
    )
    stats.phase_seconds["init"] = time.perf_counter() - init_started
    initial_score = assignment.total_score()

    dynamics = _BestResponseDynamics(
        instance, valid_pairs, assignment, tolerance, lazy_update, stats,
        kernel=kernel,
    )
    if player_order == "shuffled":
        dynamics.order_rng = rng
    score_history: list[float] = []
    rounds = 0
    total_moves = 0
    converged = False

    while rounds < max_rounds:
        round_started = time.perf_counter()
        evaluations_before = stats.gain_evaluations
        moves, round_gain = dynamics.run_round()
        round_seconds = time.perf_counter() - round_started
        rounds += 1
        total_moves += moves
        # One source of truth for the potential: the incrementally
        # maintained total. The TSI threshold, the history and the
        # reported final score all read this value, so they cannot drift
        # apart the way a separately accumulated gain counter did.
        current_score = assignment.total_score()
        score_history.append(current_score)
        stats.rounds.append(
            RoundStats(
                index=rounds - 1,
                seconds=round_seconds,
                moves=moves,
                # builtin float, not np.float64: stats must round-trip
                # repr-exactly through the sweep checkpoint journal
                gain=float(round_gain),
                evaluations=stats.gain_evaluations - evaluations_before,
            )
        )
        if moves == 0:
            converged = True
            break
        if epsilon > 0.0 and round_gain < epsilon * max(current_score, tolerance):
            break

    equilibrium = assignment.copy()
    assignment.clamp_to_capacity()

    cache = assignment.revenue_cache
    stats.revenue_evaluations = cache.full_evaluations
    stats.incremental_updates = cache.incremental_updates
    stats.peel_kernel_calls = cache.peel_kernel_calls
    stats.phase_seconds["rounds"] = sum(r.seconds for r in stats.rounds)
    stats.total_seconds = time.perf_counter() - solve_started

    return GameResult(
        assignment=assignment,
        rounds=rounds,
        moves=total_moves,
        converged=converged,
        initial_score=initial_score,
        final_score=score_history[-1] if score_history else initial_score,
        score_history=score_history,
        seeded_tasks=seeded_tasks,
        equilibrium=equilibrium,
        stats=stats,
    )


def _initial_assignment(
    instance: Instance,
    valid_pairs: ValidPairs,
    init: str,
    seed,
    kernel: str = DEFAULT_KERNEL,
    stats: SolverStats | None = None,
) -> tuple[Assignment, int]:
    assignment = Assignment(instance, valid_pairs, allow_overflow=True)
    if init == "tpg":
        tpg = solve_tpg_with_stats(instance, valid_pairs, kernel=kernel)
        if stats is not None and tpg.stats is not None:
            # Surface the seeding TPG's kernel dispatch counters through
            # the GT run's stats (its other counters stay TPG-scoped).
            stats.kernel_compiled_calls += tpg.stats.kernel_compiled_calls
            stats.kernel_fallback_calls += tpg.stats.kernel_fallback_calls
            stats.kernel_compile_seconds += tpg.stats.kernel_compile_seconds
        for worker, task in tpg.assignment.to_pairs():
            assignment.assign(worker, task)
        return assignment, tpg.seeded_tasks
    if init == "random":
        rng = ensure_rng(seed)
        for worker in range(instance.worker_count):
            tasks = valid_pairs.tasks_for_worker[worker]
            if tasks:
                assignment.assign(worker, tasks[int(rng.integers(len(tasks)))])
        return assignment, 0
    if init == "empty":
        return assignment, 0
    raise ValueError(f"unknown init {init!r}; expected 'tpg', 'random' or 'empty'")


class _BestResponseDynamics:
    """The best-response engine shared by all GT variants."""

    def __init__(
        self,
        instance: Instance,
        valid_pairs: ValidPairs,
        assignment: Assignment,
        tolerance: float,
        lazy_update: bool,
        stats: SolverStats | None = None,
        kernel: str = DEFAULT_KERNEL,
    ) -> None:
        self.instance = instance
        self.valid_pairs = valid_pairs
        self.assignment = assignment
        self.tolerance = tolerance
        self.lazy_update = lazy_update
        self.quality = instance.quality
        self.kernel = resolve_kernel(kernel)
        self.stats = stats if stats is not None else SolverStats(solver="GT")
        self.order_rng = None  # set for player_order="shuffled"
        self.cache = assignment.revenue_cache
        # The cache's own overflow peels ride the selected kernel too
        # (bit-identical; counted in peel_kernel_calls).
        self.cache.kernel = self.kernel
        # Candidate tasks per worker as plain lists (fast iteration) —
        # the vectorized scan indexes cache arrays with them directly.
        self._tasks_lists: list[list[int]] = [
            list(tasks) for tasks in valid_pairs.tasks_for_worker
        ]
        self._capacities: list[int] = [
            task.capacity for task in instance.tasks
        ]
        self._minimum = instance.min_group_size
        # Overflow join gains are pure functions of (worker, task
        # membership); the revenue cache's per-task version stamp makes
        # them memoizable. Once memberships stabilize, repeated scans of
        # full tasks return the exact cached float instead of re-peeling.
        self._overflow_memo: dict[tuple[int, int], tuple[int, float]] = {}
        # Exact whole-scan memo: a worker's best alternative is a pure
        # function of its candidate tasks' memberships (stamped by the
        # sum of their versions — versions only grow, so the sum moves
        # iff some candidate changed), the current task and the current
        # utility. A hit replays the identical result, so later rounds —
        # where most workers' neighbourhoods are stable — skip the scan
        # entirely without changing a single float.
        self._scan_memo: dict[int, tuple[int, int, float, int, float]] = {}
        self._leave_memo: dict[int, tuple[int, int, float]] = {}
        # LUB state: cached best alternative task per worker, and the
        # dirty set of workers whose cache may be stale.
        self._cached_best = np.full(instance.worker_count, UNASSIGNED, dtype=int)
        self._dirty = np.ones(instance.worker_count, dtype=bool)
        self._counted: list[tuple[int, ...]] = [
            assignment.counted_members(task) for task in range(instance.task_count)
        ]
        # kernel="native" state: the validity relation as one flat CSR
        # (slot order == each worker's candidate-list order), the quality
        # store's kernel buffers, and the latest round-start prepass as
        # ``(stamps, values, codes)`` (see _run_prepass). ``_rescan_dirty``
        # holds the workers whose prepass rows an accepted move may have
        # staled; _refresh_prepass_rows re-scores them in one batch.
        self._prepass: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self._rescan_dirty: set[int] = set()
        if self.kernel == "native":
            counts = np.fromiter(
                (len(tasks) for tasks in self._tasks_lists),
                dtype=np.int64,
                count=len(self._tasks_lists),
            )
            self._vp_indptr = np.zeros(counts.size + 1, dtype=np.int64)
            np.cumsum(counts, out=self._vp_indptr[1:])
            self._vp_tasks = np.fromiter(
                (task for tasks in self._tasks_lists for task in tasks),
                dtype=np.int64,
                count=int(self._vp_indptr[-1]),
            )
            self._capacities_array = np.asarray(self._capacities, dtype=np.int64)
            self._kernel_buffers = self.quality.as_kernel_buffers()

    # ------------------------------------------------------------------
    def _run_prepass(self) -> None:
        """Score every (worker, candidate) slot in one batched pass.

        Runs at the start of each round for ``kernel="native"``. The
        result is stamped per worker with the sum of its candidate
        tasks' membership versions — the same integer the scalar stamp
        loop in :meth:`_best_alternative` computes — so a scan later in
        the round replays the precomputed row exactly when none of the
        worker's candidate memberships moved since the prepass.
        """
        cache = self.cache
        mem_indptr, mem_flat = cache.members_csr()
        versions = np.asarray(cache.versions, dtype=np.int64)
        slot_versions = versions[self._vp_tasks]
        stamps = np.zeros(self.instance.worker_count, dtype=np.int64)
        counts = np.diff(self._vp_indptr)
        nonempty = counts > 0
        if slot_versions.size:
            # reduceat over the *nonempty* segments only: dropping an
            # empty segment's start leaves the partition unchanged (its
            # start equals its successor's), while keeping it would hit
            # reduceat's hazardous empty-segment semantics. Integer
            # sums, so reduceat's reordering is harmless here.
            starts = self._vp_indptr[:-1][nonempty]
            stamps[nonempty] = np.add.reduceat(slot_versions, starts)
        current_tasks = np.fromiter(
            (
                self.assignment.task_of(worker)
                for worker in range(self.instance.worker_count)
            ),
            dtype=np.int64,
            count=self.instance.worker_count,
        )
        values, codes = score_candidates(
            self._kernel_buffers,
            self._vp_indptr,
            self._vp_tasks,
            mem_indptr,
            mem_flat,
            cache.pair_sums,
            cache.revenues,
            self._capacities_array,
            self._minimum,
            _VECTOR_GROUP_LIMIT,
            current_tasks,
            stats=self.stats,
        )
        self._prepass = (stamps, values, codes)
        self._rescan_dirty.clear()

    def _refresh_prepass_rows(self) -> None:
        """Re-score every stale prepass row in one batched kernel call.

        An accepted move bumps the membership versions of (at most) two
        tasks, staling exactly the prepass rows of those tasks' watchers
        — the workers accumulated in ``_rescan_dirty``. This builds a
        sub-CSR over those rows (global task ids, so the full cache
        arrays index directly, like the round-start prepass) and patches
        the prepass arrays in place: stamps, utilities and
        classification codes. Rows whose stamp turns out unchanged are
        skipped — their precomputed values are still exact.
        """
        dirty = self._rescan_dirty
        prepass = self._prepass
        if not dirty or prepass is None:
            return
        stamps, values, codes = prepass
        cache = self.cache
        versions = np.asarray(cache.versions, dtype=np.int64)
        workers = np.fromiter(sorted(dirty), dtype=np.int64, count=len(dirty))
        dirty.clear()
        starts = self._vp_indptr[workers]
        counts = self._vp_indptr[workers + 1] - starts
        nonempty = counts > 0
        workers = workers[nonempty]
        starts = starts[nonempty]
        counts = counts[nonempty]
        if not workers.size:
            return
        sub_indptr = np.zeros(workers.size + 1, dtype=np.int64)
        np.cumsum(counts, out=sub_indptr[1:])
        total = int(sub_indptr[-1])
        # Slot positions of each row's slice in the flat CSR: for row i,
        # starts[i] .. starts[i] + counts[i] - 1.
        positions = np.repeat(starts - sub_indptr[:-1], counts) + np.arange(
            total, dtype=np.int64
        )
        slot_versions = versions[self._vp_tasks[positions]]
        # Integer sums — reduceat's segment reordering is harmless, and
        # every segment is nonempty after the filter above.
        new_stamps = np.add.reduceat(slot_versions, sub_indptr[:-1])
        changed = new_stamps != stamps[workers]
        if not changed.any():
            return
        workers = workers[changed]
        starts = starts[changed]
        counts = counts[changed]
        new_stamps = new_stamps[changed]
        sub_indptr = np.zeros(workers.size + 1, dtype=np.int64)
        np.cumsum(counts, out=sub_indptr[1:])
        total = int(sub_indptr[-1])
        positions = np.repeat(starts - sub_indptr[:-1], counts) + np.arange(
            total, dtype=np.int64
        )
        sub_tasks = self._vp_tasks[positions]
        mem_indptr, mem_flat = cache.members_csr()
        current_tasks = np.fromiter(
            (self.assignment.task_of(int(worker)) for worker in workers),
            dtype=np.int64,
            count=workers.size,
        )
        sub_values, sub_codes = score_candidates(
            self._kernel_buffers,
            sub_indptr,
            sub_tasks,
            mem_indptr,
            mem_flat,
            cache.pair_sums,
            cache.revenues,
            self._capacities_array,
            self._minimum,
            _VECTOR_GROUP_LIMIT,
            current_tasks,
            stats=self.stats,
            worker_ids=workers,
        )
        values[positions] = sub_values
        codes[positions] = sub_codes
        stamps[workers] = new_stamps
        self.stats.rescan_batches += 1
        self.stats.rescan_rows += int(workers.size)

    def _kernel_rescan(
        self, worker: int, tasks: list[int], current_task: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Score one worker's candidate row through the batched kernel.

        Builds a single-row CSR over the worker's candidate tasks
        (member lists gathered in cache order, per-task state gathered by
        global task id) and dispatches the same
        :func:`~repro.core.kernels.score_candidates` the round-start
        prepass uses — ``worker_ids`` carries the real worker id for the
        quality lookups. Slot order equals ``tasks`` order, so the
        returned ``(values, codes)`` align with the scan positions.
        """
        cache = self.cache
        member_array = cache.member_array
        count = len(tasks)
        arrays = [member_array(task) for task in tasks]
        lengths = np.fromiter((a.size for a in arrays), dtype=np.int64, count=count)
        mem_indptr = np.zeros(count + 1, dtype=np.int64)
        np.cumsum(lengths, out=mem_indptr[1:])
        mem_flat = np.concatenate(arrays).astype(np.int64, copy=False)
        task_index = np.asarray(tasks, dtype=np.intp)
        try:
            current_position = tasks.index(current_task)
        except ValueError:  # unassigned (or an invalid current task)
            current_position = -1
        return score_candidates(
            self._kernel_buffers,
            np.array([0, count], dtype=np.int64),
            np.arange(count, dtype=np.int64),
            mem_indptr,
            mem_flat,
            cache.pair_sums[task_index],
            cache.revenues[task_index],
            self._capacities_array[task_index],
            self._minimum,
            _VECTOR_GROUP_LIMIT,
            np.array([current_position], dtype=np.int64),
            stats=self.stats,
            worker_ids=np.array([worker], dtype=np.int64),
        )

    def _fill_deferred_slots(
        self,
        worker: int,
        tasks: list[int],
        utilities: np.ndarray,
        codes: np.ndarray,
        current_utility: float,
    ) -> None:
        """Fill the slots a kernel pass deferred to the caller, in place:
        overflow/oversized joins via the (memoized) scalar peel and the
        worker's own task via the already-computed ``leave_delta``."""
        cache = self.cache
        versions = cache.versions
        memo = self._overflow_memo
        for position in np.flatnonzero(codes == CODE_SCALAR):
            position = int(position)
            task = tasks[position]
            key = (worker, task)
            version = versions[task]
            entry = memo.get(key)
            if entry is not None and entry[0] == version:
                utilities[position] = entry[1]
            else:
                gain = cache.join_gain(worker, task)
                memo[key] = (version, gain)
                utilities[position] = gain
        for position in np.flatnonzero(codes == CODE_CURRENT):
            utilities[int(position)] = current_utility

    # ------------------------------------------------------------------
    def run_round(self, players=None) -> tuple[int, float]:
        """One Algorithm 3 round: every worker plays its best response.

        ``players`` restricts the round to the given workers, in the
        given order — the sharded solver's halo-reconcile passes play
        border workers only. ``None`` (the default) plays everyone.
        Returns ``(moves, score_gain)``; the gain equals the potential
        increase of the round (Theorem V.1).
        """
        if self.kernel == "native" and players is None:
            # Restricted rounds skip the all-workers prepass: with few
            # players the per-worker kernel rescan is cheaper than
            # scoring every worker's candidates up front.
            self._run_prepass()
        moves = 0
        gain = 0.0
        if players is not None:
            order = players
        elif self.order_rng is None:
            order = range(self.instance.worker_count)
        else:
            order = self.order_rng.permutation(self.instance.worker_count)
        for worker in order:
            improvement = self._play_best_response(int(worker))
            if improvement > 0.0:
                moves += 1
                gain += improvement
        return moves, gain

    def _play_best_response(self, worker: int) -> float:
        """Move ``worker`` to its best response; returns the utility gain."""
        assignment = self.assignment
        current_task = assignment.task_of(worker)
        if current_task == UNASSIGNED:
            current_utility = 0.0
        else:
            # leave_delta is pure in the current task's membership.
            version = self.cache.versions[current_task]
            entry = self._leave_memo.get(worker)
            if (
                entry is not None
                and entry[0] == current_task
                and entry[1] == version
            ):
                current_utility = entry[2]
            else:
                current_utility = assignment.leave_delta(worker)
                self._leave_memo[worker] = (current_task, version, current_utility)

        best_task, best_utility = self._best_alternative(
            worker, current_task, current_utility
        )

        # The idle strategy has utility 0.
        if best_utility <= self.tolerance:
            best_task, best_utility = UNASSIGNED, 0.0

        if best_utility <= current_utility + self.tolerance:
            return 0.0

        if current_task != UNASSIGNED:
            assignment.unassign(worker)
            self._after_membership_change(current_task)
        if best_task != UNASSIGNED:
            assignment.assign(worker, best_task)
            self._after_membership_change(best_task)
        if self._prepass is not None:
            # The move bumped (at most) these two tasks' membership
            # versions, staling exactly their watchers' prepass rows.
            for task in (current_task, best_task):
                if task != UNASSIGNED:
                    self._rescan_dirty.update(
                        self.valid_pairs.workers_for_task[task]
                    )
        self._cached_best[worker] = best_task
        self._dirty[worker] = False
        return best_utility - current_utility

    def _best_alternative(
        self, worker: int, current_task: int, current_utility: float
    ) -> tuple[int, float]:
        """The worker's best task *other than* staying put.

        With LUB enabled and a clean cache, only the cached candidate is
        re-evaluated; otherwise all valid tasks are scored in one
        vectorized pass. ``current_utility`` is the already-computed
        ``leave_delta`` of the worker's current task.
        """
        assignment = self.assignment
        stats = self.stats
        if self.lazy_update and not self._dirty[worker]:
            stats.cache_hits += 1
            stats.gain_evaluations += 1
            cached = int(self._cached_best[worker])
            if cached == UNASSIGNED:
                return UNASSIGNED, 0.0
            if cached == current_task:
                return cached, current_utility
            return cached, assignment.join_gain(worker, cached)

        tasks = self._tasks_lists[worker]
        if not tasks:
            self._cached_best[worker] = UNASSIGNED
            self._dirty[worker] = False
            return UNASSIGNED, 0.0

        cache = self.cache
        versions = cache.versions
        stamp = 0
        for task in tasks:
            stamp += versions[task]
        memo_entry = self._scan_memo.get(worker)
        if (
            memo_entry is not None
            and memo_entry[0] == stamp
            and memo_entry[1] == current_task
            and memo_entry[2] == current_utility
        ):
            stats.cache_hits += 1
            best_task, best_utility = memo_entry[3], memo_entry[4]
            self._cached_best[worker] = best_task
            self._dirty[worker] = False
            return best_task, best_utility

        stats.cache_misses += 1
        stats.gain_evaluations += len(tasks)

        prepass = self._prepass
        if (
            prepass is not None
            and self._rescan_dirty
            and prepass[0][worker] != stamp
        ):
            # The row is stale and moves have accumulated a dirty set:
            # refresh every stale row in one batched call, then replay
            # this worker's (now exact) row below. Later stale workers
            # in the same round replay without any further kernel work.
            self._refresh_prepass_rows()
        if prepass is not None and prepass[0][worker] == stamp:
            # Round-start prepass replay: the stamp match proves none of
            # the worker's candidate memberships (including its own
            # task's) moved since the batched pass, so the precomputed
            # utilities and classifications are still exact. Only the
            # deferred slots are filled here: overflow/oversized joins
            # via the scalar peel (memoized, like the legacy path) and
            # the worker's own task via the caller's ``leave_delta``.
            start = int(self._vp_indptr[worker])
            end = int(self._vp_indptr[worker + 1])
            utilities = prepass[1][start:end].copy()
            codes = prepass[2][start:end]
            self._fill_deferred_slots(worker, tasks, utilities, codes, current_utility)
            best_position = int(np.argmax(utilities))
            best_task = tasks[best_position]
            best_utility = float(utilities[best_position])
            self._scan_memo[worker] = (
                stamp, current_task, current_utility, best_task, best_utility
            )
            self._cached_best[worker] = best_task
            self._dirty[worker] = False
            return best_task, best_utility

        if self.kernel == "native":
            # Mid-round rescan: the worker's neighbourhood moved since
            # the round-start prepass (or no prepass ran — restricted
            # reconcile rounds). Re-score just this worker's candidate
            # row through the same batched kernel instead of the
            # interpreted python scan below; the kernel reproduces the
            # scalar summation order, so the floats are identical.
            utilities, codes = self._kernel_rescan(worker, tasks, current_task)
            self._fill_deferred_slots(worker, tasks, utilities, codes, current_utility)
            best_position = int(np.argmax(utilities))
            best_task = tasks[best_position]
            best_utility = float(utilities[best_position])
            self._scan_memo[worker] = (
                stamp, current_task, current_utility, best_task, best_utility
            )
            self._cached_best[worker] = best_task
            self._dirty[worker] = False
            return best_task, best_utility

        member_list = cache.member_list
        member_array = cache.member_array
        pair_sums = cache.pair_sums
        revenues = cache.revenues
        capacities = self._capacities
        minimum = self._minimum
        memo = self._overflow_memo
        # Backend-polymorphic row/column gathers (QualityStore protocol):
        # dense stores return zero-cost views, the sparse store serves
        # LRU-cached materialized rows with identical float values.
        q_row = self.quality.q_row(worker)
        q_col = self.quality.q_col(worker)

        utilities = np.empty(len(tasks))
        batch_arrays: list[np.ndarray] = []
        batch_positions: list[int] = []
        batch_tasks: list[int] = []
        batch_lengths: list[int] = []
        offsets: list[int] = []
        offset = 0
        for position, task in enumerate(tasks):
            if task == current_task:
                utilities[position] = current_utility
                continue
            members = len(member_list(task))
            if members + 1 > capacities[task] or members >= _VECTOR_GROUP_LIMIT:
                # Overflow joins need the best-subset peel; oversized
                # groups need the scalar path's exact summation order.
                # Both are pure in the task's membership, so the memo
                # returns the identical float until the version moves.
                key = (worker, task)
                version = versions[task]
                entry = memo.get(key)
                if entry is not None and entry[0] == version:
                    utilities[position] = entry[1]
                else:
                    gain = cache.join_gain(worker, task)
                    memo[key] = (version, gain)
                    utilities[position] = gain
            elif members == 0 or members + 1 < minimum:
                # Empty task (a singleton group has no pairs) or a group
                # that stays below B even with the newcomer: revenue 0.
                utilities[position] = 0.0 - revenues[task]
            else:
                batch_arrays.append(member_array(task))
                batch_positions.append(position)
                batch_tasks.append(task)
                batch_lengths.append(members)
                offsets.append(offset)
                offset += members

        if batch_arrays:
            # One gather of q[worker, members] (and the transpose column)
            # per task, summed segment-wise in strict left-to-right order
            # — ndarray.sum()'s order for these group sizes (< 8), which
            # the scalar join_gain path relies on. np.add.reduceat is NOT
            # usable here: it reorders segments of three or more elements
            # on current numpy and breaks bit-identity with the scalar
            # path (the divergence went unnoticed while no divergent
            # candidate happened to win a worker's argmax).
            concatenated = np.concatenate(batch_arrays)
            starts = np.asarray(offsets, dtype=np.intp)
            lengths = np.asarray(batch_lengths, dtype=np.intp)
            cross = segment_sums_ordered(
                q_row[concatenated], starts, lengths
            ) + segment_sums_ordered(q_col[concatenated], starts, lengths)
            task_index = np.asarray(batch_tasks, dtype=np.intp)
            current_revenues = revenues[task_index]
            # Denominator (new_count - 1) equals the current member count.
            new_revenues = (pair_sums[task_index] + cross) / np.asarray(
                batch_lengths, dtype=np.int64
            )
            utilities[batch_positions] = new_revenues - current_revenues

        best_position = int(np.argmax(utilities))
        best_task = tasks[best_position]
        best_utility = float(utilities[best_position])
        self._scan_memo[worker] = (
            stamp, current_task, current_utility, best_task, best_utility
        )
        self._cached_best[worker] = best_task
        self._dirty[worker] = False
        return best_task, best_utility

    def _best_alternative_reference(
        self, worker: int, current_task: int, current_utility: float
    ) -> tuple[int, float]:
        """Scalar reference scan — the oracle the vectorized path must
        match exactly (kept for the test suite and for debugging)."""
        assignment = self.assignment
        best_task, best_utility = UNASSIGNED, -np.inf
        for task in self._tasks_lists[worker]:
            if task == current_task:
                utility = current_utility
            else:
                utility = assignment.join_gain(worker, task)
            if utility > best_utility:
                best_task, best_utility = task, utility
        if best_task == UNASSIGNED:
            return UNASSIGNED, 0.0
        return best_task, best_utility

    # ------------------------------------------------------------------
    # LUB invalidation (Theorems V.3 / V.4)
    # ------------------------------------------------------------------
    def _counted_subset(self, task: int) -> tuple[int, ...]:
        """The members Equation 2 currently counts for the task (the
        revenue cache's subset — no re-peel)."""
        return self.assignment.counted_members(task)

    def _mark_dirty(self, worker: int) -> None:
        if not self._dirty[worker]:
            self._dirty[worker] = True
            self.stats.lub_invalidations += 1

    def _after_membership_change(self, task: int) -> None:
        if not self.lazy_update:
            return
        before = set(self._counted[task])
        after_tuple = self.assignment.counted_members(task)
        self._counted[task] = after_tuple
        after = set(after_tuple)
        added = after - before
        removed = before - after
        watchers = self.valid_pairs.workers_for_task[task]

        if not removed and len(added) <= 1:
            # Pure growth: Theorem V.3's no-crowd-out case — a worker whose
            # best response already is this task keeps it; everyone else
            # must rescan because joining here just became different.
            for other in watchers:
                if self._cached_best[other] != task:
                    self._mark_dirty(other)
            return
        if len(added) == 1 and len(removed) == 1:
            # Exchange x in / y out: apply the quality comparisons of
            # Theorems V.3 (current best == task) and V.4 (other tasks).
            (entering,) = added
            (leaving,) = removed
            toward_leaving = self.quality.q_col(leaving)
            toward_entering = self.quality.q_col(entering)
            for other in watchers:
                if other in (entering, leaving):
                    self._mark_dirty(other)
                    continue
                if self._cached_best[other] == task:
                    if toward_leaving[other] > toward_entering[other]:
                        self._mark_dirty(other)
                else:
                    if toward_leaving[other] < toward_entering[other]:
                        self._mark_dirty(other)
            return
        # Shrink or multi-element change: no theorem applies — rescan all.
        for other in watchers:
            self._mark_dirty(other)


def verify_nash_equilibrium(
    assignment: Assignment,
    valid_pairs: ValidPairs,
    tolerance: float = 1e-6,
) -> list[tuple[int, int, float]]:
    """All profitable unilateral deviations, as ``(worker, task, gain)``.

    Empty iff the assignment is a pure Nash equilibrium (up to
    ``tolerance``). ``task = UNASSIGNED`` denotes the idle deviation.
    Used by the test suite to certify the solver's stability claim.
    """
    deviations: list[tuple[int, int, float]] = []
    probe = assignment.copy()
    probe.allow_overflow = True
    for worker in range(assignment.instance.worker_count):
        current_utility = probe.leave_delta(worker)
        if current_utility < -tolerance:
            deviations.append((worker, UNASSIGNED, -current_utility))
        current_task = probe.task_of(worker)
        for task in valid_pairs.tasks_for_worker[worker]:
            if task == current_task:
                continue
            gain = probe.join_gain(worker, task)
            if gain > current_utility + tolerance:
                deviations.append((worker, task, gain - current_utility))
    return deviations
