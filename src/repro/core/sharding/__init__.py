"""Geo-sharded solving: partition -> solve-per-shard -> reconcile.

See :mod:`repro.core.sharding.solver` for the entry point and
``docs/PERFORMANCE.md`` ("Geo-sharded solving") for the architecture
and halo-exchange semantics.
"""

from repro.core.sharding.partition import (
    ShardPlan,
    partition_instance,
    resolve_shard_request,
)
from repro.core.sharding.reconcile import (
    merge_shard_pairs,
    reconcile_borders,
    seed_border_groups,
)
from repro.core.sharding.solver import (
    SHARDABLE_APPROACHES,
    ShardedSolveResult,
    solve_sharded,
)
from repro.core.sharding.subinstance import ShardInstance, carve_shard

__all__ = [
    "SHARDABLE_APPROACHES",
    "ShardPlan",
    "ShardInstance",
    "ShardedSolveResult",
    "carve_shard",
    "merge_shard_pairs",
    "partition_instance",
    "reconcile_borders",
    "resolve_shard_request",
    "seed_border_groups",
    "solve_sharded",
]
