"""Geo-sharded solving: partition -> solve-per-shard -> reconcile.

Entry point :func:`solve_sharded` scales the GT/TPG family to batches
far beyond what one monolithic solve handles: the plane is partitioned
into spatial shards (:mod:`.partition`), each shard's carved
sub-instance (:mod:`.subinstance`) is solved independently — inline or
fanned out over a :class:`~repro.utils.procpool.FanoutPool` — and the
per-shard solutions are merged and boundary-reconciled
(:mod:`.reconcile`) with bounded halo best-response passes over the
border workers.

``shards=1`` (or a plan that collapses to one shard) is a pure
passthrough to the monolithic solver — same call, same result object,
repr-identical assignment. Sharded runs are deterministic end to end:
the partition, the shard order, the merge replay and the halo player
order are all derived from sorted structures, so two same-seed
invocations produce bit-identical assignments.

The per-shard payload travels as plain picklable pieces (carved
``Instance``, local ``ValidPairs``, approach name and knobs); the
worker function is module-level for spawn-start pools.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.assignment import Assignment
from repro.core.kernels import DEFAULT_KERNEL, resolve_kernel
from repro.core.model import Instance
from repro.core.sharding.partition import (
    ShardPlan,
    partition_instance,
    resolve_shard_request,
)
from repro.core.sharding.reconcile import merge_shard_pairs, reconcile_borders
from repro.core.sharding.subinstance import ShardInstance, carve_shard
from repro.core.stats import SolverStats
from repro.core.validity import ValidPairs, compute_valid_pairs
from repro.utils.procpool import FanoutPool

__all__ = ["SHARDABLE_APPROACHES", "ShardedSolveResult", "solve_sharded"]

#: Approaches whose shard-local solve composes with halo reconciliation.
#: (Flow/random baselines are global by nature and stay monolithic.)
SHARDABLE_APPROACHES = ("TPG", "GT", "GT+LUB", "GT+TSI", "GT+ALL")


@dataclass
class ShardedSolveResult:
    """Outcome of one sharded (or passthrough) solve.

    ``plan`` is ``None`` for the monolithic passthrough. ``stats``
    merges the per-shard solver counters, adds the halo passes' numbers
    and carries the shard/border/halo counters; ``shard_seconds`` holds
    each non-empty shard's solve wall-clock (child-measured on the pool
    path, so queueing never inflates it).
    """

    assignment: Assignment
    stats: SolverStats
    plan: ShardPlan | None = None
    shard_seconds: list[float] = field(default_factory=list)
    halo_rounds_run: int = 0
    halo_moves: int = 0
    border_seeded: int = 0


def _base_solver(approach: str, epsilon: float, seed, kernel: str):
    # Deferred: repro.experiments.config imports this package for the
    # --shards plumbing; importing it lazily keeps the layering acyclic.
    from repro.experiments.config import make_solver

    return make_solver(approach, epsilon=epsilon, seed=seed, kernel=kernel)


def _failover_shard(
    piece: ShardInstance, payload: dict, shard_timeout: float | None
) -> dict:
    """Re-solve a crashed/hung/quarantined shard inline, in the parent.

    Goes through the anytime :class:`~repro.core.fallback.FallbackSolver`
    ladder with the shard timeout as its budget: the primary approach
    gets one more chance with real wall-clock room, and a shard whose
    primary genuinely cannot finish degrades to a cheaper tier instead
    of sinking the whole solve. With ``shard_timeout=None`` the ladder
    is a bit-identical passthrough — the failover is then simply an
    inline re-run of the primary.
    """
    # Deferred like _base_solver: fallback sits above the experiments
    # layer from this package's point of view.
    from repro.core.fallback import FallbackSolver

    started = time.perf_counter()
    primary = _base_solver(
        payload["approach"], payload["epsilon"], payload["seed"], payload["kernel"]
    )
    solver = FallbackSolver(
        primary,
        budget=shard_timeout,
        label=f"{payload['approach']}/shard{piece.shard}",
        seed=payload["seed"],
    )
    assignment = solver(piece.instance, piece.valid_pairs)
    stats_log = getattr(solver, "stats_log", None)
    stats = stats_log[-1].to_dict() if stats_log else None
    return {
        "pairs": assignment.to_pairs(),
        "stats": stats,
        "seconds": time.perf_counter() - started,
    }


def _solve_shard_payload(payload: dict, submitted_at: float) -> dict:
    """Solve one carved shard; module-level for spawn-pool pickling.

    Returns plain picklable data: the shard-local assignment as sorted
    pairs, the solver's stats as a dict (``None`` for uninstrumented
    approaches) and the child-measured solve seconds.
    """
    started = time.perf_counter()
    solver = _base_solver(
        payload["approach"], payload["epsilon"], payload["seed"], payload["kernel"]
    )
    assignment = solver(payload["instance"], payload["valid_pairs"])
    stats_log = getattr(solver, "stats_log", None)
    stats = stats_log[-1].to_dict() if stats_log else None
    return {
        "pairs": assignment.to_pairs(),
        "stats": stats,
        "seconds": time.perf_counter() - started,
    }


def _passthrough(
    instance: Instance,
    valid_pairs: ValidPairs,
    approach: str,
    epsilon: float,
    seed,
    kernel: str,
    started: float,
) -> ShardedSolveResult:
    """Monolithic solve — ``shards=1`` must be repr-identical to it."""
    solver = _base_solver(approach, epsilon, seed, kernel)
    assignment = solver(instance, valid_pairs)
    stats_log = getattr(solver, "stats_log", None)
    stats = stats_log[-1] if stats_log else SolverStats(solver=approach)
    stats.shard_count = 1
    stats.total_seconds = time.perf_counter() - started
    return ShardedSolveResult(assignment=assignment, stats=stats)


def solve_sharded(
    instance: Instance,
    valid_pairs: ValidPairs | None = None,
    approach: str = "GT",
    epsilon: float = 0.05,
    seed=None,
    kernel: str = DEFAULT_KERNEL,
    shards: "int | str" = "auto",
    halo_rounds: int = 2,
    n_jobs: int = 1,
    target_workers_per_shard: int = 2500,
    shard_timeout: float | None = None,
) -> ShardedSolveResult:
    """Solve a batch by spatial shards with boundary reconciliation.

    Parameters mirror :func:`~repro.experiments.config.make_solver`
    plus the sharding knobs: ``shards`` is ``"auto"`` or an explicit
    count (``1`` = monolithic passthrough), ``halo_rounds`` bounds the
    border best-response passes, ``n_jobs`` fans shard solves out over
    a process pool (``1`` solves them inline, in shard order).

    ``shard_timeout`` bounds each shard solve's wall-clock on the pool
    path; a shard that times out — or whose worker crashes/kills the
    pool — is re-solved inline via :func:`_failover_shard` instead of
    failing the whole batch, counted in ``stats.shard_failures`` /
    ``stats.shard_failovers``.
    """
    if approach not in SHARDABLE_APPROACHES:
        raise ValueError(
            f"approach {approach!r} does not support sharded solving; "
            f"shardable: {SHARDABLE_APPROACHES}"
        )
    kernel = resolve_kernel(kernel)
    if halo_rounds < 0:
        raise ValueError(f"halo_rounds must be >= 0, got {halo_rounds}")
    if shard_timeout is not None and shard_timeout <= 0:
        raise ValueError(
            f"shard_timeout must be positive, got {shard_timeout}"
        )
    started = time.perf_counter()
    if valid_pairs is None:
        valid_pairs = compute_valid_pairs(instance)
    request = resolve_shard_request(shards)
    if request == 1:
        return _passthrough(
            instance, valid_pairs, approach, epsilon, seed, kernel, started
        )
    plan = partition_instance(
        instance,
        shards=request,
        target_workers_per_shard=target_workers_per_shard,
    )
    if plan.shard_count == 1:
        return _passthrough(
            instance, valid_pairs, approach, epsilon, seed, kernel, started
        )
    partition_seconds = time.perf_counter() - started

    pieces: list[ShardInstance] = []
    for shard in range(plan.shard_count):
        if plan.workers_of(shard).size == 0 or plan.tasks_of(shard).size == 0:
            continue
        piece = carve_shard(instance, valid_pairs, plan, shard)
        if piece.valid_pairs.pair_count == 0:
            continue
        pieces.append(piece)
    carve_seconds = time.perf_counter() - started - partition_seconds

    payloads = [
        {
            "approach": approach,
            "epsilon": epsilon,
            "seed": seed,
            "kernel": kernel,
            "instance": piece.instance,
            "valid_pairs": piece.valid_pairs,
        }
        for piece in pieces
    ]
    shard_failures = 0
    shard_failovers = 0
    if n_jobs <= 1 or len(payloads) <= 1:
        outcomes = []
        for piece, payload in zip(pieces, payloads):
            try:
                outcomes.append(_solve_shard_payload(payload, time.time()))
            except Exception:  # noqa: BLE001 — failed over, counted
                shard_failures += 1
                outcomes.append(_failover_shard(piece, payload, shard_timeout))
                shard_failovers += 1
    else:
        pool = FanoutPool(
            n_jobs=min(n_jobs, len(payloads)),
            timeout=shard_timeout,
            retries=0,
            chaos_scope="shard",
        )
        results = pool.run(_solve_shard_payload, payloads)
        outcomes = []
        for piece, payload, result in zip(pieces, payloads, results):
            if result.succeeded:
                outcomes.append(result.payload)
                continue
            # A crashed, hung or quarantined shard never aborts the
            # batch: re-solve it inline via the fallback ladder.
            shard_failures += 1
            outcomes.append(_failover_shard(piece, payload, shard_timeout))
            shard_failovers += 1

    stats = SolverStats.merged(
        SolverStats.from_dict(outcome["stats"])
        for outcome in outcomes
        if outcome["stats"] is not None
    )
    if stats is None:
        stats = SolverStats(solver=approach)
    stats.solver = approach
    stats.runs = 1
    shard_seconds = [float(outcome["seconds"]) for outcome in outcomes]

    merge_started = time.perf_counter()
    assignment = merge_shard_pairs(
        instance,
        valid_pairs,
        (
            piece.to_global_pairs(outcome["pairs"])
            for piece, outcome in zip(pieces, outcomes)
        ),
    )
    halo_rounds_run, halo_moves, border_seeded = reconcile_borders(
        instance,
        valid_pairs,
        assignment,
        plan.border_worker_indices(),
        border_tasks=np.flatnonzero(plan.task_border),
        halo_rounds=halo_rounds,
        kernel=kernel,
        stats=stats,
    )
    assignment.clamp_to_capacity()
    reconcile_seconds = time.perf_counter() - merge_started

    stats.shard_count = plan.shard_count
    stats.border_workers = plan.border_worker_count
    stats.halo_rounds = halo_rounds_run
    stats.halo_moves = halo_moves
    stats.border_seeded = border_seeded
    stats.shard_failures = shard_failures
    stats.shard_failovers = shard_failovers
    stats.phase_seconds["partition"] = partition_seconds
    stats.phase_seconds["carve"] = carve_seconds
    stats.phase_seconds["shard_solve"] = float(np.sum(shard_seconds))
    stats.phase_seconds["reconcile"] = reconcile_seconds
    stats.total_seconds = time.perf_counter() - started
    return ShardedSolveResult(
        assignment=assignment,
        stats=stats,
        plan=plan,
        shard_seconds=shard_seconds,
        halo_rounds_run=halo_rounds_run,
        halo_moves=halo_moves,
        border_seeded=border_seeded,
    )
