"""Boundary reconciliation — merging shard solutions and halo re-solve.

Per-shard solves are independent and tasks belong to exactly one shard,
so the merged assignment is capacity-feasible by construction; what it
can miss are *cross-shard* deviations of border workers (a border
worker may prefer a task in a neighbouring shard it never saw during
its shard-local solve). :func:`reconcile_borders` runs bounded
best-response passes over exactly those workers against the *global*
validity structure — the same :class:`~repro.core.game.
_BestResponseDynamics` engine as the GT solver, so every move is a
potential-increasing step (Theorem V.1) and the merged score is
monotone non-decreasing through reconciliation. Passes stop early when
a full border round makes no move (no cross-shard deviation improves
any border worker's utility) or after ``halo_rounds`` passes.

One class of loss best-response cannot repair on its own: a task whose
*every* viable group mixes workers from different shards sits empty
after the merge, and joining a below-minimum task has zero utility, so
no single halo move starts one. :func:`seed_border_groups` bootstraps
exactly those groups — TPG stage 1 replayed on the frontier of empty
border tasks and still-unassigned border workers — before the halo
passes grow and rebalance them.

Border workers are played in ascending global index order — the same
order the monolithic sequential dynamics would visit them — which keeps
sharded runs bit-reproducible across same-seed invocations.
"""

from __future__ import annotations

import numpy as np

from repro.core.assignment import UNASSIGNED, Assignment
from repro.core.game import DEFAULT_TOLERANCE, _BestResponseDynamics
from repro.core.kernels import DEFAULT_KERNEL
from repro.core.model import Instance
from repro.core.stats import SolverStats
from repro.core.tpg import greedy_best_group
from repro.core.validity import ValidPairs

__all__ = ["merge_shard_pairs", "reconcile_borders", "seed_border_groups"]


def merge_shard_pairs(
    instance: Instance,
    valid_pairs: ValidPairs,
    shard_pairs,
) -> Assignment:
    """Replay per-shard ``(worker, task)`` pairs into one assignment.

    ``shard_pairs`` is an iterable of global-id pair lists, one per
    shard *in shard order* — together with each list being sorted
    (``Assignment.to_pairs`` output), the replay order, and hence the
    incremental revenue state, is deterministic. Overflow is enabled so
    the reconcile dynamics can model crowd-out on the merged state.
    """
    assignment = Assignment(instance, valid_pairs, allow_overflow=True)
    for shard, pairs in enumerate(shard_pairs):
        for worker, task in pairs:
            try:
                assignment.assign(int(worker), int(task))
            except Exception as error:
                # A bad pair here means a shard produced (or a failover
                # re-solve returned) an assignment that does not map back
                # into the global instance — name the shard so the repro
                # is findable instead of surfacing a bare index error.
                raise RuntimeError(
                    f"shard {shard} merge failed replaying pair "
                    f"(worker={worker}, task={task}): {error}"
                ) from error
    return assignment


def seed_border_groups(
    instance: Instance,
    valid_pairs: ValidPairs,
    assignment: Assignment,
    border_workers,
    border_tasks,
    kernel: str = DEFAULT_KERNEL,
    stats: SolverStats | None = None,
) -> int:
    """Bootstrap the cross-shard groups best-response cannot form.

    TPG stage 1 replayed on the boundary frontier: for every *empty*
    border task, the best minimum-size group drawn from the
    still-unassigned border workers; the highest-revenue group commits
    first (lowest task id on exact ties), members leave the pool, and
    stale cached groups recompute — exactly the stage-1 loop, restricted
    to the entities the shard-local solves were blind to. Only strictly
    positive-revenue groups commit, so the merged score is monotone
    non-decreasing; the halo passes afterwards grow and rebalance the
    new groups through ordinary best-response. Deterministic throughout
    (sorted iteration, first-max commits), preserving sharded-run
    bit-reproducibility. Returns the number of workers seeded.
    """
    minimum = instance.min_group_size
    quality = instance.quality
    buffers = quality.as_kernel_buffers() if kernel == "native" else None
    available = np.zeros(instance.worker_count, dtype=bool)
    for worker in border_workers:
        worker = int(worker)
        if assignment.task_of(worker) == UNASSIGNED:
            available[worker] = True
    if not available.any():
        return 0
    open_tasks = {
        int(task)
        for task in border_tasks
        if not assignment.members(int(task))
    }
    seeded = 0
    cache: dict[int, tuple[list[int], float]] = {}
    while open_tasks:
        best_task, best_group, best_score = -1, [], 0.0
        dead_tasks: list[int] = []
        for task in sorted(open_tasks):
            if task not in cache:
                candidates = [
                    worker
                    for worker in valid_pairs.workers_for_task[task]
                    if available[worker]
                ]
                cache[task] = greedy_best_group(
                    quality, candidates, minimum, buffers=buffers, stats=stats
                )
            group, score = cache[task]
            if not group:
                dead_tasks.append(task)
                continue
            if score > best_score:
                best_task, best_group, best_score = task, group, score
        for task in dead_tasks:
            open_tasks.discard(task)
            cache.pop(task, None)
        if best_task < 0:
            break
        for worker in best_group:
            assignment.assign(worker, best_task)
            available[worker] = False
        seeded += len(best_group)
        open_tasks.discard(best_task)
        cache.pop(best_task, None)
        taken = set(best_group)
        stale = [
            task
            for task, (group, _) in cache.items()
            if not taken.isdisjoint(group)
        ]
        for task in stale:
            del cache[task]
    return seeded


def reconcile_borders(
    instance: Instance,
    valid_pairs: ValidPairs,
    assignment: Assignment,
    border_workers,
    border_tasks=(),
    halo_rounds: int = 2,
    tolerance: float = DEFAULT_TOLERANCE,
    kernel: str = DEFAULT_KERNEL,
    stats: SolverStats | None = None,
) -> tuple[int, int, int]:
    """Boundary repair: seed stranded groups, then bounded halo passes.

    Returns ``(rounds_run, total_moves, seeded_workers)``.
    ``assignment`` is mutated in place (it must allow overflow; callers
    clamp to capacity after). ``stats`` — when given — accumulates the
    passes' evaluation counters alongside the shard solves' merged
    numbers.
    """
    order = [int(worker) for worker in border_workers]
    seeded = 0
    if order and len(border_tasks):
        seeded = seed_border_groups(
            instance, valid_pairs, assignment, order, border_tasks,
            kernel=kernel, stats=stats,
        )
    if not order or halo_rounds <= 0:
        return 0, 0, seeded
    dynamics = _BestResponseDynamics(
        instance,
        valid_pairs,
        assignment,
        tolerance,
        lazy_update=False,
        stats=stats,
        kernel=kernel,
    )
    rounds_run = 0
    total_moves = 0
    for _ in range(halo_rounds):
        moves, _gain = dynamics.run_round(players=order)
        rounds_run += 1
        total_moves += moves
        if moves == 0:
            break
    return rounds_run, total_moves, seeded
