"""Spatial shard partitioning — the first leg of geo-sharded solving.

The plane is tiled into square cells whose side is at least the *maximum
effective reach* of any worker in the batch (``min(r_i, v_i *
max_remaining)``, the same bound :mod:`repro.core.validity` uses for its
range queries, inflated by a relative margin so float rounding in the
``floor(x / cell)`` keys can never push a reachable task more than one
cell away). Every valid pair ``<w_i, t_j>`` therefore connects a worker
to a task in the worker's home cell or its 3x3 neighbour ring.

Occupied cells (cells holding at least one worker or task) are sorted
lexicographically and split into contiguous blocks weighted by worker
count — one block per shard. A worker or task is *border* when any cell
of its 3x3 ring is occupied and belongs to a different shard. Because
reach <= cell size, border workers are a strict superset of the workers
with cross-shard valid pairs: interior workers lose nothing when their
shard is solved in isolation, and only border workers need the
halo-reconcile passes of :mod:`repro.core.sharding.reconcile`.

Everything here is deterministic — sorted cells, stable weights, fixed
neighbour order — so a seeded sharded solve is bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import Instance
from repro.core.validity import _max_remaining, _reach_limit

__all__ = ["ShardPlan", "partition_instance", "resolve_shard_request"]

#: Floor on the cell side, mirroring the grid index's guard against
#: zero-radius/zero-speed batches collapsing the tiling.
_MIN_CELL = 1e-6

#: Relative inflation of the cell side over the maximum reach. The reach
#: limit itself is slack-adjusted by a few ulps; this much larger margin
#: guarantees ``floor(x_t / cell) - floor(x_w / cell)`` stays in
#: ``{-1, 0, 1}`` per axis for every valid pair even when the division
#: rounds adversarially at a cell boundary.
_CELL_MARGIN = 1.0 + 1e-9

_NEIGHBOR_OFFSETS = tuple(
    (dx, dy) for dx in (-1, 0, 1) for dy in (-1, 0, 1) if (dx, dy) != (0, 0)
)


def resolve_shard_request(value) -> "int | str":
    """Normalize a ``--shards`` value to ``"auto"`` or a positive int."""
    if isinstance(value, str):
        text = value.strip().lower()
        if text == "auto":
            return "auto"
        try:
            value = int(text)
        except ValueError:
            raise ValueError(
                f"shards must be 'auto' or a positive integer, got {text!r}"
            ) from None
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValueError(
            f"shards must be 'auto' or a positive integer, got {value!r}"
        )
    if value < 1:
        raise ValueError(f"shards must be >= 1, got {value}")
    return int(value)


@dataclass(frozen=True)
class ShardPlan:
    """The partition of one batch into spatial shards.

    ``worker_shard[i]`` / ``task_shard[j]`` give each entity's single
    home shard (every worker and task belongs to exactly one);
    ``worker_border`` / ``task_border`` mark the entities whose 3x3 cell
    ring touches another shard. ``cell_size`` is the tiling side used,
    ``occupied_cells`` the number of non-empty cells it produced.
    """

    shard_count: int
    cell_size: float
    worker_shard: np.ndarray
    task_shard: np.ndarray
    worker_border: np.ndarray
    task_border: np.ndarray
    occupied_cells: int

    def workers_of(self, shard: int) -> np.ndarray:
        """Global worker indices of ``shard``, ascending."""
        return np.flatnonzero(self.worker_shard == shard)

    def tasks_of(self, shard: int) -> np.ndarray:
        """Global task indices of ``shard``, ascending."""
        return np.flatnonzero(self.task_shard == shard)

    def border_worker_indices(self) -> np.ndarray:
        """All border workers, ascending (the halo-reconcile players)."""
        return np.flatnonzero(self.worker_border)

    @property
    def border_worker_count(self) -> int:
        return int(self.worker_border.sum())


def _trivial_plan(instance: Instance, occupied: int) -> ShardPlan:
    return ShardPlan(
        shard_count=1,
        cell_size=_MIN_CELL,
        worker_shard=np.zeros(instance.worker_count, dtype=np.int64),
        task_shard=np.zeros(instance.task_count, dtype=np.int64),
        worker_border=np.zeros(instance.worker_count, dtype=bool),
        task_border=np.zeros(instance.task_count, dtype=bool),
        occupied_cells=occupied,
    )


def partition_instance(
    instance: Instance,
    shards: "int | str" = "auto",
    target_workers_per_shard: int = 2500,
) -> ShardPlan:
    """Tile the batch into shards of spatially contiguous cells.

    ``shards`` is ``"auto"`` (aim for ``target_workers_per_shard``
    workers per shard) or an explicit count; either way the result is
    capped by the number of occupied cells — a batch that fits one cell
    yields a single-shard plan, which the solver treats as monolithic
    passthrough.
    """
    request = resolve_shard_request(shards)
    if target_workers_per_shard < 1:
        raise ValueError(
            f"target_workers_per_shard must be >= 1, got {target_workers_per_shard}"
        )
    worker_count = instance.worker_count
    task_count = instance.task_count
    if worker_count == 0 or task_count == 0:
        return _trivial_plan(instance, occupied=0)

    max_remaining = _max_remaining(instance)
    max_reach = max(
        _reach_limit(instance, index, max_remaining)
        for index in range(worker_count)
    )
    cell_size = max(_MIN_CELL, max_reach * _CELL_MARGIN)

    worker_cells = np.floor(instance.worker_locations() / cell_size).astype(
        np.int64
    )
    task_cells = np.floor(instance.task_locations() / cell_size).astype(np.int64)

    worker_weight: dict[tuple[int, int], int] = {}
    for cx, cy in worker_cells:
        key = (int(cx), int(cy))
        worker_weight[key] = worker_weight.get(key, 0) + 1
    occupied = set(worker_weight)
    occupied.update((int(cx), int(cy)) for cx, cy in task_cells)
    ordered = sorted(occupied)
    occupied_count = len(ordered)

    if request == "auto":
        count = max(1, round(worker_count / target_workers_per_shard))
    else:
        count = request
    count = max(1, min(count, occupied_count))
    if count == 1:
        return _trivial_plan(instance, occupied=occupied_count)

    # Contiguous blocks over the sorted cells, weighted by worker count
    # (+1 per cell so task-only cells still get a home and contribute to
    # balance). Weights are integers and the prefix scan is sequential,
    # so the cell -> shard map is deterministic.
    weights = [worker_weight.get(key, 0) + 1 for key in ordered]
    total = sum(weights)
    shard_of_cell: dict[tuple[int, int], int] = {}
    prefix = 0
    for key, weight in zip(ordered, weights):
        shard_of_cell[key] = min(count - 1, prefix * count // total)
        prefix += weight

    border_cell = {
        key: any(
            shard_of_cell.get((key[0] + dx, key[1] + dy), home) != home
            for dx, dy in _NEIGHBOR_OFFSETS
        )
        for key, home in shard_of_cell.items()
    }

    worker_shard = np.empty(worker_count, dtype=np.int64)
    worker_border = np.zeros(worker_count, dtype=bool)
    for index, (cx, cy) in enumerate(worker_cells):
        key = (int(cx), int(cy))
        worker_shard[index] = shard_of_cell[key]
        worker_border[index] = border_cell[key]
    task_shard = np.empty(task_count, dtype=np.int64)
    task_border = np.zeros(task_count, dtype=bool)
    for index, (cx, cy) in enumerate(task_cells):
        key = (int(cx), int(cy))
        task_shard[index] = shard_of_cell[key]
        task_border[index] = border_cell[key]

    return ShardPlan(
        shard_count=count,
        cell_size=float(cell_size),
        worker_shard=worker_shard,
        task_shard=task_shard,
        worker_border=worker_border,
        task_border=task_border,
        occupied_cells=occupied_count,
    )
