"""Carving shard-local sub-instances with stable global<->local remaps.

A :class:`ShardInstance` is one shard's self-contained slice of the
batch: a fresh :class:`~repro.core.model.Instance` (records copied, the
quality store restricted in O(nnz) via ``QualityStore.restricted_to``)
plus the shard-local :class:`~repro.core.validity.ValidPairs` obtained
by *restricting* the global structure to in-shard pairs — never by
recomputing validity on the carved geometry, so the restriction is an
exact subset of the global relation by construction.

Both id maps are ascending, hence order-preserving: local index order
equals global index order, which keeps every argmax/heap tie-break in
the shard-local solve identical to the decision the monolithic solve
would have made among the same candidates. That property is what makes
the zero-border case bit-identical (asserted by the audit harness).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import Instance
from repro.core.sharding.partition import ShardPlan
from repro.core.validity import ValidPairs

__all__ = ["ShardInstance", "carve_shard"]


@dataclass(frozen=True)
class ShardInstance:
    """One shard's carved sub-problem.

    ``worker_ids[local] -> global`` and ``task_ids[local] -> global``
    are ascending; ``valid_pairs`` is expressed in local indices.
    """

    shard: int
    instance: Instance
    worker_ids: np.ndarray
    task_ids: np.ndarray
    valid_pairs: ValidPairs

    @property
    def worker_count(self) -> int:
        return int(self.worker_ids.size)

    @property
    def task_count(self) -> int:
        return int(self.task_ids.size)

    def to_global_pairs(self, local_pairs) -> list[tuple[int, int]]:
        """Map shard-local ``(worker, task)`` pairs back to global ids."""
        return [
            (int(self.worker_ids[worker]), int(self.task_ids[task]))
            for worker, task in local_pairs
        ]


def carve_shard(
    instance: Instance,
    valid_pairs: ValidPairs,
    plan: ShardPlan,
    shard: int,
) -> ShardInstance:
    """Carve ``shard``'s sub-instance out of the batch.

    The local validity structure keeps exactly the global valid pairs
    whose worker *and* task live in the shard. Border workers may lose
    cross-shard candidates here — deliberately: those deviations are
    re-examined by the halo-reconcile passes on the merged global
    assignment. Interior workers lose nothing (their whole valid set is
    in-shard, by the partition's reach bound).
    """
    worker_ids = plan.workers_of(shard)
    task_ids = plan.tasks_of(shard)
    sub = instance.carve(worker_ids, task_ids)
    task_local = np.full(instance.task_count, -1, dtype=np.intp)
    task_local[task_ids] = np.arange(task_ids.size, dtype=np.intp)
    task_shard = plan.task_shard
    local_lists = [
        [
            int(task_local[task])
            for task in valid_pairs.tasks_for_worker[int(worker)]
            if task_shard[task] == shard
        ]
        for worker in worker_ids
    ]
    local_pairs = ValidPairs.from_worker_lists(
        local_lists, task_count=int(task_ids.size)
    )
    return ShardInstance(
        shard=int(shard),
        instance=sub,
        worker_ids=worker_ids,
        task_ids=task_ids,
        valid_pairs=local_pairs,
    )
