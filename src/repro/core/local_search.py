"""Swap-based local search on top of the game-theoretic solution.

A pure Nash equilibrium only rules out *unilateral* deviations: two
workers exchanging tasks (a coalitional move) can still improve the
total score. This extension polishes any starting assignment with
two kinds of moves until neither helps:

* **relocation** — move one worker to another task (the GT move, applied
  greedily on the total score rather than the worker's own utility);
* **swap** — exchange the tasks of two workers (possible even when both
  target tasks are full, which no unilateral move can achieve).

Because every accepted move strictly increases the total score and the
score is bounded, the search terminates; the result is both a Nash
equilibrium (relocations exhaust unilateral improvements — on the total
score, which by Theorem V.1 equals the mover's utility change) and
2-swap-stable. Quantifies how much of the Nash-vs-optimum gap
coalitional moves recover (see ``benchmarks/test_ablations.py``).

The search reads cooperation quality only through
:class:`~repro.core.assignment.Assignment`'s incremental scoring, so it
is agnostic to the instance's
:class:`~repro.core.quality_store.QualityStore` backend (dense, sparse
or shared memory) and produces identical moves under each.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.assignment import UNASSIGNED, Assignment
from repro.core.game import solve_game_theoretic
from repro.core.model import Instance
from repro.core.validity import ValidPairs, compute_valid_pairs

__all__ = ["LocalSearchResult", "solve_local_search"]

DEFAULT_MAX_PASSES = 50


@dataclass(frozen=True)
class LocalSearchResult:
    """Outcome of the polish phase."""

    assignment: Assignment
    initial_score: float
    final_score: float
    relocations: int
    swaps: int
    passes: int

    @property
    def improvement(self) -> float:
        return self.final_score - self.initial_score


def solve_local_search(
    instance: Instance,
    valid_pairs: ValidPairs | None = None,
    start: Assignment | None = None,
    max_passes: int = DEFAULT_MAX_PASSES,
    tolerance: float = 1e-9,
) -> LocalSearchResult:
    """Polish an assignment with relocations and pairwise swaps.

    Parameters
    ----------
    start:
        Starting assignment; defaults to the GT+ALL solution. The object
        is copied — the caller's assignment is untouched.
    max_passes:
        Each pass scans all relocations then all swaps; the search stops
        early once a full pass accepts nothing.
    """
    if valid_pairs is None:
        valid_pairs = compute_valid_pairs(instance)
    if start is None:
        start = solve_game_theoretic(
            instance, valid_pairs, epsilon=0.0, lazy_update=True
        ).assignment
    working = start.copy()
    working.allow_overflow = False
    initial_score = working.total_score()

    relocations = 0
    swaps = 0
    passes = 0
    for _ in range(max_passes):
        passes += 1
        moved = _relocation_pass(instance, valid_pairs, working, tolerance)
        swapped = _swap_pass(instance, valid_pairs, working, tolerance)
        relocations += moved
        swaps += swapped
        if moved == 0 and swapped == 0:
            break
    return LocalSearchResult(
        assignment=working,
        initial_score=initial_score,
        final_score=working.total_score(),
        relocations=relocations,
        swaps=swaps,
        passes=passes,
    )


def _relocation_pass(
    instance: Instance,
    valid_pairs: ValidPairs,
    assignment: Assignment,
    tolerance: float,
) -> int:
    """Greedy single-worker relocations; returns accepted move count."""
    moves = 0
    for worker in range(instance.worker_count):
        current_task = assignment.task_of(worker)
        current_utility = assignment.leave_delta(worker)
        best_task, best_value = current_task, current_utility
        for task in valid_pairs.tasks_for_worker[worker]:
            if task == current_task:
                continue
            if assignment.assigned_count(task) >= instance.tasks[task].capacity:
                continue
            gain = assignment.join_gain(worker, task)
            if gain > best_value + tolerance:
                best_task, best_value = task, gain
        # Idling is also a legal relocation when staying hurts the total.
        if 0.0 > best_value + tolerance:
            best_task, best_value = UNASSIGNED, 0.0
        if best_task != current_task:
            if current_task != UNASSIGNED:
                assignment.unassign(worker)
            if best_task != UNASSIGNED:
                assignment.assign(worker, best_task)
            moves += 1
    return moves


def _swap_pass(
    instance: Instance,
    valid_pairs: ValidPairs,
    assignment: Assignment,
    tolerance: float,
) -> int:
    """First-improvement pairwise swaps; returns accepted swap count.

    Instead of scanning all O(assigned^2) worker pairs, each worker only
    considers partners on tasks *it* is valid for — the only swaps that
    can be feasible — which cuts the candidate set to
    O(assigned * n_bar * a_bar).
    """
    swaps = 0
    assigned = [
        worker
        for worker in range(instance.worker_count)
        if assignment.task_of(worker) != UNASSIGNED
    ]
    for first in assigned:
        task_a = assignment.task_of(first)
        if task_a == UNASSIGNED:
            continue  # moved by an earlier swap in this pass
        partners = [
            second
            for task_b in valid_pairs.tasks_for_worker[first]
            if task_b != task_a
            for second in assignment.members(task_b)
            if second > first
        ]
        for second in partners:
            task_b = assignment.task_of(second)
            if task_b == UNASSIGNED or task_b == task_a:
                continue
            if not (
                valid_pairs.is_valid(first, task_b)
                and valid_pairs.is_valid(second, task_a)
            ):
                continue
            before = assignment.revenue_of(task_a) + assignment.revenue_of(task_b)
            assignment.unassign(first)
            assignment.unassign(second)
            assignment.assign(first, task_b)
            assignment.assign(second, task_a)
            after = assignment.revenue_of(task_a) + assignment.revenue_of(task_b)
            if after > before + tolerance:
                swaps += 1
                task_a = assignment.task_of(first)  # == task_b now
            else:
                assignment.unassign(first)
                assignment.unassign(second)
                assignment.assign(first, task_a)
                assignment.assign(second, task_b)
    return swaps
