"""Assignments with incremental revenue maintenance.

An :class:`Assignment` is the object every solver builds and returns: a
mapping worker -> task (at most one task per worker — Definition 4's
assignment is a set of disjoint worker groups) layered over a
:class:`~repro.core.revenue.RevenueCache`, which maintains per-task pair
sums and revenues incrementally, so the greedy and game-theoretic solvers
can evaluate millions of marginal gains without recomputing Equation 2
from scratch.

Overflow semantics: a task may temporarily hold more than ``a_j`` workers
when ``allow_overflow=True`` (the game-theoretic solver models crowd-out
this way, per Theorems V.3/V.4); its revenue then counts only the best
``a_j``-subset, exactly as Equation 2 prescribes.
:meth:`Assignment.clamp_to_capacity` restores strict feasibility at the
end by idling the crowded-out workers.
"""

from __future__ import annotations

import numpy as np

from repro.core.model import Instance
from repro.core.revenue import RevenueCache
from repro.core.validity import ValidPairs
from repro.utils.errors import CapacityError, ValidityError

__all__ = ["Assignment", "UNASSIGNED"]

UNASSIGNED = -1


class Assignment:
    """A (partial) solution of one CA-SC batch.

    Parameters
    ----------
    instance:
        The batch being solved.
    valid_pairs:
        When given, :meth:`assign` refuses pairs outside Definition 3.
    allow_overflow:
        When ``True``, tasks may exceed capacity (crowd-out modelling);
        revenue always follows Equation 2's best-subset rule.
    """

    def __init__(
        self,
        instance: Instance,
        valid_pairs: ValidPairs | None = None,
        allow_overflow: bool = False,
    ) -> None:
        self.instance = instance
        self.valid_pairs = valid_pairs
        self.allow_overflow = allow_overflow
        self.revenue_cache = RevenueCache(
            instance.quality,
            [task.capacity for task in instance.tasks],
            instance.min_group_size,
        )
        self._task_of = np.full(instance.worker_count, UNASSIGNED, dtype=int)

    # ------------------------------------------------------------------
    # read access
    # ------------------------------------------------------------------
    def members(self, task: int) -> tuple[int, ...]:
        """Workers currently attached to ``task`` (insertion order)."""
        return self.revenue_cache.members(task)

    def task_of(self, worker: int) -> int:
        """The worker's task index, or :data:`UNASSIGNED`."""
        return int(self._task_of[worker])

    def is_assigned(self, worker: int) -> bool:
        return self._task_of[worker] != UNASSIGNED

    def assigned_count(self, task: int) -> int:
        return int(self.revenue_cache.counts[task])

    def revenue_of(self, task: int) -> float:
        """Cached ``Q(W_j)`` for the task."""
        return self.revenue_cache.revenue(task)

    def total_score(self) -> float:
        """Equation 3: the summed revenue over all tasks."""
        return self.revenue_cache.total()

    def recompute_total(self) -> float:
        """Recompute the score from scratch (drift check / debugging)."""
        return self.revenue_cache.recompute_total()

    def counted_members(self, task: int) -> tuple[int, ...]:
        """The members Equation 2 counts for the task, sorted ascending.

        Over-capacity tasks reuse the cached best-subset from the last
        revenue refresh instead of re-peeling.
        """
        return self.revenue_cache.counted_subset(task)

    def to_pairs(self) -> list[tuple[int, int]]:
        """All assigned ``(worker_index, task_index)`` pairs, sorted."""
        return sorted(
            (worker, int(task))
            for worker, task in enumerate(self._task_of)
            if task != UNASSIGNED
        )

    def assigned_worker_count(self) -> int:
        return int((self._task_of != UNASSIGNED).sum())

    def completed_task_count(self) -> int:
        """Tasks holding at least ``B`` workers (i.e. that will run)."""
        minimum = self.instance.min_group_size
        return int((self.revenue_cache.counts >= minimum).sum())

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def assign(self, worker: int, task: int) -> None:
        """Attach an unassigned worker to a task.

        Raises
        ------
        ValidityError
            If a ``valid_pairs`` structure was provided and rejects the
            pair, or the worker is already assigned.
        CapacityError
            If the task is full and overflow is disabled.
        """
        if self._task_of[worker] != UNASSIGNED:
            raise ValidityError(
                f"worker {worker} already assigned to task {self._task_of[worker]}"
            )
        if self.valid_pairs is not None and not self.valid_pairs.is_valid(worker, task):
            raise ValidityError(f"pair <{worker}, {task}> violates Definition 3")
        if (
            not self.allow_overflow
            and self.assigned_count(task) >= self.instance.tasks[task].capacity
        ):
            raise CapacityError(
                f"task {task} is at capacity {self.instance.tasks[task].capacity}"
            )
        self.revenue_cache.join(worker, task)
        self._task_of[worker] = task

    def unassign(self, worker: int) -> int:
        """Detach a worker; returns the task it was on.

        Raises :class:`ValidityError` when the worker is idle.
        """
        task = int(self._task_of[worker])
        if task == UNASSIGNED:
            raise ValidityError(f"worker {worker} is not assigned")
        self.revenue_cache.leave(worker, task)
        self._task_of[worker] = UNASSIGNED
        return task

    def move(self, worker: int, task: int) -> None:
        """Unassign (if needed) then assign — one best-response step."""
        if self._task_of[worker] != UNASSIGNED:
            self.unassign(worker)
        self.assign(worker, task)

    # ------------------------------------------------------------------
    # marginal evaluations (the solvers' hot path)
    # ------------------------------------------------------------------
    def join_gain(self, worker: int, task: int) -> float:
        """``DeltaQ(w_i, t_j)`` if the (idle) worker joined ``task``.

        Fast path: within capacity the new revenue is
        ``(S + cross) / (k_new - 1)`` with the cached pair sum ``S``; only
        overflow joins fall back to the peeling evaluation.
        """
        return self.revenue_cache.join_gain(worker, task)

    def leave_delta(self, worker: int) -> float:
        """``Q(W_j) - Q(W_j - {w_i})`` at the worker's current task.

        This is the worker's current utility (Equation 5); zero for idle
        workers.
        """
        task = int(self._task_of[worker])
        if task == UNASSIGNED:
            return 0.0
        return self.revenue_cache.leave_delta(worker, task)

    # ------------------------------------------------------------------
    # feasibility
    # ------------------------------------------------------------------
    def check_feasible(self) -> None:
        """Raise if any Definition 4 constraint is violated.

        Checks capacity, validity (when a :class:`ValidPairs` is attached)
        and the worker-disjointness implied by the internal representation.
        """
        for task_index in range(self.instance.task_count):
            members = self.revenue_cache.member_list(task_index)
            capacity = self.instance.tasks[task_index].capacity
            if len(members) > capacity:
                raise CapacityError(
                    f"task {task_index} holds {len(members)} workers, "
                    f"capacity {capacity}"
                )
            if len(members) != len(set(members)):
                raise ValidityError(f"task {task_index} has duplicate members")
            for worker in members:
                if self._task_of[worker] != task_index:
                    raise ValidityError(
                        f"inconsistent state: worker {worker} listed on task "
                        f"{task_index} but mapped to {self._task_of[worker]}"
                    )
                if self.valid_pairs is not None and not self.valid_pairs.is_valid(
                    worker, task_index
                ):
                    raise ValidityError(
                        f"pair <{worker}, {task_index}> violates Definition 3"
                    )

    def clamp_to_capacity(self) -> list[int]:
        """Idle crowded-out workers so every task respects ``a_j``.

        For each over-capacity task the best ``a_j``-subset (the workers
        Equation 2 actually counts, reused from the revenue cache) is
        kept. Returns the dropped workers.
        """
        dropped: list[int] = []
        for task_index in range(self.instance.task_count):
            members = self.revenue_cache.member_list(task_index)
            capacity = self.instance.tasks[task_index].capacity
            if len(members) <= capacity:
                continue
            kept = set(self.revenue_cache.counted_subset(task_index))
            for worker in [m for m in members if m not in kept]:
                self.unassign(worker)
                dropped.append(worker)
        return dropped

    def drop_incomplete_groups(self) -> list[int]:
        """Idle workers on tasks that failed to reach ``B`` members.

        The batch framework calls this before dispatching: a task below
        the minimum group size yields zero revenue and does not start, so
        its workers stay available for the next batch.
        """
        dropped: list[int] = []
        minimum = self.instance.min_group_size
        for task_index in range(self.instance.task_count):
            members = list(self.revenue_cache.member_list(task_index))
            if 0 < len(members) < minimum:
                for worker in members:
                    self.unassign(worker)
                    dropped.append(worker)
        return dropped

    def audit(self, tolerance: float = 1e-9) -> list:
        """Run the invariant auditor on this assignment.

        Convenience hook into :func:`repro.audit.invariants.
        audit_assignment`: re-derives Definition 3/4 feasibility, the
        B-threshold and Equation-2/3 revenue against a from-scratch
        oracle, returning the list of findings (empty = clean). Unlike
        :meth:`check_feasible` this also catches silent
        :class:`~repro.core.revenue.RevenueCache` drift, at oracle
        recomputation cost — use it in tests and triage, not hot paths.
        """
        from repro.audit.invariants import audit_assignment

        return audit_assignment(self, tolerance=tolerance)

    def copy(self) -> "Assignment":
        """Deep copy sharing the (immutable) instance and validity.

        The revenue state is cloned by :meth:`RevenueCache.clone` — the
        cache owns its own layout, so fields added there later are copied
        (or fail loudly) without this method knowing about them.
        """
        clone = Assignment(self.instance, self.valid_pairs, self.allow_overflow)
        clone.revenue_cache = self.revenue_cache.clone()
        clone._task_of = self._task_of.copy()
        return clone

    def __repr__(self) -> str:
        return (
            f"Assignment(workers={self.assigned_worker_count()}/"
            f"{self.instance.worker_count}, "
            f"completed_tasks={self.completed_task_count()}/"
            f"{self.instance.task_count}, score={self.total_score():.4f})"
        )
