"""Assignments with incremental revenue maintenance.

An :class:`Assignment` is the object every solver builds and returns: a
mapping worker -> task (at most one task per worker — Definition 4's
assignment is a set of disjoint worker groups) together with cached
per-task pair sums and revenues, so the greedy and game-theoretic solvers
can evaluate millions of marginal gains without recomputing Equation 2
from scratch.

Overflow semantics: a task may temporarily hold more than ``a_j`` workers
when ``allow_overflow=True`` (the game-theoretic solver models crowd-out
this way, per Theorems V.3/V.4); its revenue then counts only the best
``a_j``-subset, exactly as Equation 2 prescribes.
:meth:`Assignment.clamp_to_capacity` restores strict feasibility at the
end by idling the crowded-out workers.
"""

from __future__ import annotations

import numpy as np

from repro.core.model import Instance
from repro.core.revenue import best_counted_subset, group_revenue
from repro.core.validity import ValidPairs
from repro.utils.errors import CapacityError, ValidityError

__all__ = ["Assignment", "UNASSIGNED"]

UNASSIGNED = -1


class Assignment:
    """A (partial) solution of one CA-SC batch.

    Parameters
    ----------
    instance:
        The batch being solved.
    valid_pairs:
        When given, :meth:`assign` refuses pairs outside Definition 3.
    allow_overflow:
        When ``True``, tasks may exceed capacity (crowd-out modelling);
        revenue always follows Equation 2's best-subset rule.
    """

    def __init__(
        self,
        instance: Instance,
        valid_pairs: ValidPairs | None = None,
        allow_overflow: bool = False,
    ) -> None:
        self.instance = instance
        self.valid_pairs = valid_pairs
        self.allow_overflow = allow_overflow
        self._members: list[list[int]] = [[] for _ in range(instance.task_count)]
        self._task_of = np.full(instance.worker_count, UNASSIGNED, dtype=int)
        self._pair_sums = np.zeros(instance.task_count)
        self._revenues = np.zeros(instance.task_count)

    # ------------------------------------------------------------------
    # read access
    # ------------------------------------------------------------------
    def members(self, task: int) -> tuple[int, ...]:
        """Workers currently attached to ``task`` (insertion order)."""
        return tuple(self._members[task])

    def task_of(self, worker: int) -> int:
        """The worker's task index, or :data:`UNASSIGNED`."""
        return int(self._task_of[worker])

    def is_assigned(self, worker: int) -> bool:
        return self._task_of[worker] != UNASSIGNED

    def assigned_count(self, task: int) -> int:
        return len(self._members[task])

    def revenue_of(self, task: int) -> float:
        """Cached ``Q(W_j)`` for the task."""
        return float(self._revenues[task])

    def total_score(self) -> float:
        """Equation 3: the summed revenue over all tasks."""
        return float(self._revenues.sum())

    def recompute_total(self) -> float:
        """Recompute the score from scratch (drift check / debugging)."""
        quality = self.instance.quality
        return sum(
            group_revenue(
                quality,
                members,
                self.instance.tasks[task].capacity,
                self.instance.min_group_size,
            )
            for task, members in enumerate(self._members)
        )

    def to_pairs(self) -> list[tuple[int, int]]:
        """All assigned ``(worker_index, task_index)`` pairs, sorted."""
        return sorted(
            (worker, int(task))
            for worker, task in enumerate(self._task_of)
            if task != UNASSIGNED
        )

    def assigned_worker_count(self) -> int:
        return int((self._task_of != UNASSIGNED).sum())

    def completed_task_count(self) -> int:
        """Tasks holding at least ``B`` workers (i.e. that will run)."""
        minimum = self.instance.min_group_size
        return sum(1 for members in self._members if len(members) >= minimum)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def assign(self, worker: int, task: int) -> None:
        """Attach an unassigned worker to a task.

        Raises
        ------
        ValidityError
            If a ``valid_pairs`` structure was provided and rejects the
            pair, or the worker is already assigned.
        CapacityError
            If the task is full and overflow is disabled.
        """
        if self._task_of[worker] != UNASSIGNED:
            raise ValidityError(
                f"worker {worker} already assigned to task {self._task_of[worker]}"
            )
        if self.valid_pairs is not None and not self.valid_pairs.is_valid(worker, task):
            raise ValidityError(f"pair <{worker}, {task}> violates Definition 3")
        members = self._members[task]
        if (
            not self.allow_overflow
            and len(members) >= self.instance.tasks[task].capacity
        ):
            raise CapacityError(
                f"task {task} is at capacity {self.instance.tasks[task].capacity}"
            )
        self._pair_sums[task] += self.instance.quality.cross_sum(worker, members)
        members.append(worker)
        self._task_of[worker] = task
        self._refresh_revenue(task)

    def unassign(self, worker: int) -> int:
        """Detach a worker; returns the task it was on.

        Raises :class:`ValidityError` when the worker is idle.
        """
        task = int(self._task_of[worker])
        if task == UNASSIGNED:
            raise ValidityError(f"worker {worker} is not assigned")
        members = self._members[task]
        members.remove(worker)
        self._pair_sums[task] -= self.instance.quality.cross_sum(worker, members)
        self._task_of[worker] = UNASSIGNED
        self._refresh_revenue(task)
        return task

    def move(self, worker: int, task: int) -> None:
        """Unassign (if needed) then assign — one best-response step."""
        if self._task_of[worker] != UNASSIGNED:
            self.unassign(worker)
        self.assign(worker, task)

    def _refresh_revenue(self, task: int) -> None:
        members = self._members[task]
        count = len(members)
        capacity = self.instance.tasks[task].capacity
        if count < self.instance.min_group_size:
            self._revenues[task] = 0.0
        elif count <= capacity:
            self._revenues[task] = self._pair_sums[task] / (count - 1)
        else:
            self._revenues[task] = group_revenue(
                self.instance.quality,
                members,
                capacity,
                self.instance.min_group_size,
            )

    # ------------------------------------------------------------------
    # marginal evaluations (the solvers' hot path)
    # ------------------------------------------------------------------
    def join_gain(self, worker: int, task: int) -> float:
        """``DeltaQ(w_i, t_j)`` if the (idle) worker joined ``task``.

        Fast path: within capacity the new revenue is
        ``(S + cross) / (k_new - 1)`` with the cached pair sum ``S``; only
        overflow joins fall back to the peeling evaluation.
        """
        members = self._members[task]
        new_count = len(members) + 1
        capacity = self.instance.tasks[task].capacity
        if new_count <= capacity:
            if new_count < self.instance.min_group_size:
                return 0.0 - self._revenues[task]
            cross = self.instance.quality.cross_sum(worker, members)
            new_revenue = (self._pair_sums[task] + cross) / (new_count - 1)
        else:
            new_revenue = group_revenue(
                self.instance.quality,
                [*members, worker],
                capacity,
                self.instance.min_group_size,
            )
        return new_revenue - float(self._revenues[task])

    def leave_delta(self, worker: int) -> float:
        """``Q(W_j) - Q(W_j - {w_i})`` at the worker's current task.

        This is the worker's current utility (Equation 5); zero for idle
        workers.
        """
        task = int(self._task_of[worker])
        if task == UNASSIGNED:
            return 0.0
        members = self._members[task]
        count = len(members)
        capacity = self.instance.tasks[task].capacity
        current = float(self._revenues[task])
        if count - 1 < self.instance.min_group_size:
            return current
        if count <= capacity:
            cross = self.instance.quality.cross_sum(
                worker, [m for m in members if m != worker]
            )
            without = (self._pair_sums[task] - cross) / (count - 2)
        else:
            without = group_revenue(
                self.instance.quality,
                [m for m in members if m != worker],
                capacity,
                self.instance.min_group_size,
            )
        return current - without

    # ------------------------------------------------------------------
    # feasibility
    # ------------------------------------------------------------------
    def check_feasible(self) -> None:
        """Raise if any Definition 4 constraint is violated.

        Checks capacity, validity (when a :class:`ValidPairs` is attached)
        and the worker-disjointness implied by the internal representation.
        """
        for task_index, members in enumerate(self._members):
            capacity = self.instance.tasks[task_index].capacity
            if len(members) > capacity:
                raise CapacityError(
                    f"task {task_index} holds {len(members)} workers, "
                    f"capacity {capacity}"
                )
            if len(members) != len(set(members)):
                raise ValidityError(f"task {task_index} has duplicate members")
            for worker in members:
                if self._task_of[worker] != task_index:
                    raise ValidityError(
                        f"inconsistent state: worker {worker} listed on task "
                        f"{task_index} but mapped to {self._task_of[worker]}"
                    )
                if self.valid_pairs is not None and not self.valid_pairs.is_valid(
                    worker, task_index
                ):
                    raise ValidityError(
                        f"pair <{worker}, {task_index}> violates Definition 3"
                    )

    def clamp_to_capacity(self) -> list[int]:
        """Idle crowded-out workers so every task respects ``a_j``.

        For each over-capacity task the best ``a_j``-subset (the workers
        Equation 2 actually counts) is kept. Returns the dropped workers.
        """
        dropped: list[int] = []
        for task_index, members in enumerate(self._members):
            capacity = self.instance.tasks[task_index].capacity
            if len(members) <= capacity:
                continue
            kept = set(
                best_counted_subset(self.instance.quality, members, capacity)
            )
            for worker in [m for m in members if m not in kept]:
                self.unassign(worker)
                dropped.append(worker)
        return dropped

    def drop_incomplete_groups(self) -> list[int]:
        """Idle workers on tasks that failed to reach ``B`` members.

        The batch framework calls this before dispatching: a task below
        the minimum group size yields zero revenue and does not start, so
        its workers stay available for the next batch.
        """
        dropped: list[int] = []
        minimum = self.instance.min_group_size
        for members in [list(m) for m in self._members]:
            if 0 < len(members) < minimum:
                for worker in members:
                    self.unassign(worker)
                    dropped.append(worker)
        return dropped

    def copy(self) -> "Assignment":
        """Deep copy sharing the (immutable) instance and validity."""
        clone = Assignment(self.instance, self.valid_pairs, self.allow_overflow)
        clone._members = [list(members) for members in self._members]
        clone._task_of = self._task_of.copy()
        clone._pair_sums = self._pair_sums.copy()
        clone._revenues = self._revenues.copy()
        return clone

    def __repr__(self) -> str:
        return (
            f"Assignment(workers={self.assigned_worker_count()}/"
            f"{self.instance.worker_count}, "
            f"completed_tasks={self.completed_task_count()}/"
            f"{self.instance.task_count}, score={self.total_score():.4f})"
        )
