"""Problem model: workers, tasks and CA-SC instances.

Mirrors Definitions 1-4 of the paper. Workers and tasks are immutable
records; an :class:`Instance` bundles one batch's workers, tasks,
cooperation matrix, the minimum group size ``B`` and the batch timestamp
``phi``, and validates the structural requirements once at construction.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.quality_store import QualityStore
from repro.spatial.geometry import Point
from repro.utils.errors import InvalidInstanceError

__all__ = ["Worker", "Task", "Instance"]


def _validate_carved_copies(workers, originals_w, tasks, originals_t) -> None:
    """Reject carves whose records alias the parent's objects.

    A carved shard must own its ``Worker``/``Task`` records outright:
    although the dataclasses are frozen, downstream code holds them in
    mutable containers and compares them by identity in places, and a
    future field (or an ``object.__setattr__`` escape hatch) mutating a
    shared record would silently corrupt *sibling* shards. The check is
    O(m + n) identity comparisons plus field-equality spot checks on the
    solver-critical ``deadline``/``capacity`` fields.
    """
    for carved, original in zip(workers, originals_w):
        if carved is original or carved.location is original.location:
            raise InvalidInstanceError(
                f"carved worker {original.worker_id} aliases the parent "
                "instance's record; carve must copy"
            )
    for carved, original in zip(tasks, originals_t):
        if carved is original or carved.location is original.location:
            raise InvalidInstanceError(
                f"carved task {original.task_id} aliases the parent "
                "instance's record; carve must copy"
            )
        if carved.deadline != original.deadline or carved.capacity != original.capacity:
            raise InvalidInstanceError(
                f"carved task {original.task_id} drifted from the parent "
                f"(deadline {carved.deadline} vs {original.deadline}, "
                f"capacity {carved.capacity} vs {original.capacity})"
            )


@dataclass(frozen=True, slots=True)
class Worker:
    """A cooperation-aware moving worker (Definition 1).

    Attributes
    ----------
    worker_id:
        Stable external identifier (survives across batches; the batch
        framework re-indexes workers positionally inside each
        :class:`Instance`).
    location:
        Current position ``l_i``.
    speed:
        Moving speed ``v_i`` in space units per time unit.
    radius:
        Working-area radius ``r_i``; the worker only accepts tasks within
        this distance.
    arrival_time:
        Timestamp ``phi_i`` at which the worker joined the system.
    """

    worker_id: int
    location: Point
    speed: float
    radius: float
    arrival_time: float = 0.0

    def __post_init__(self) -> None:
        if self.speed < 0:
            raise InvalidInstanceError(
                f"worker {self.worker_id}: negative speed {self.speed}"
            )
        if self.radius < 0:
            raise InvalidInstanceError(
                f"worker {self.worker_id}: negative radius {self.radius}"
            )

    def moved_to(self, location: Point) -> "Worker":
        """A copy of this worker relocated to ``location``."""
        return replace(self, location=location)


@dataclass(frozen=True, slots=True)
class Task:
    """A spatial task (Definition 2).

    Attributes
    ----------
    task_id:
        Stable external identifier.
    location:
        Required position ``l_j``.
    capacity:
        Maximum number of paid workers ``a_j``.
    deadline:
        Absolute deadline ``tau_j``; workers must arrive before it.
    created_time:
        Timestamp ``phi_j`` when the requester posted the task.
    """

    task_id: int
    location: Point
    capacity: int
    deadline: float
    created_time: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise InvalidInstanceError(
                f"task {self.task_id}: capacity must be >= 1, got {self.capacity}"
            )
        if self.deadline < self.created_time:
            raise InvalidInstanceError(
                f"task {self.task_id}: deadline {self.deadline} precedes "
                f"creation time {self.created_time}"
            )

    def remaining_time(self, now: float) -> float:
        """Time left until the deadline at timestamp ``now``."""
        return self.deadline - now


@dataclass(frozen=True)
class Instance:
    """One batch of the CA-SC problem (Definition 4).

    Workers and tasks are addressed *positionally* throughout the solver
    layer — worker ``i`` is ``instance.workers[i]`` and row ``i`` of the
    cooperation matrix. The stable ``worker_id``/``task_id`` fields exist
    for the multi-batch simulation, which reuses worker objects across
    batches.

    Attributes
    ----------
    workers, tasks:
        The batch's available workers ``W(phi)`` and tasks ``T(phi)``.
    quality:
        Pairwise cooperation quality, shape ``(m, m)``.
    min_group_size:
        ``B`` — tasks assigned fewer than ``B`` workers yield zero revenue.
    now:
        The batch timestamp ``phi`` used for deadline checks.
    """

    workers: tuple[Worker, ...]
    tasks: tuple[Task, ...]
    quality: QualityStore
    min_group_size: int = 3
    now: float = 0.0

    def __init__(
        self,
        workers,
        tasks,
        quality: QualityStore,
        min_group_size: int = 3,
        now: float = 0.0,
    ) -> None:
        object.__setattr__(self, "workers", tuple(workers))
        object.__setattr__(self, "tasks", tuple(tasks))
        object.__setattr__(self, "quality", quality)
        object.__setattr__(self, "min_group_size", min_group_size)
        object.__setattr__(self, "now", now)
        self._validate()

    def _validate(self) -> None:
        if self.min_group_size < 2:
            raise InvalidInstanceError(
                "min_group_size (B) must be >= 2 so Equation 2's denominator "
                f"min(|W_j|, a_j) - 1 stays positive; got {self.min_group_size}"
            )
        if self.quality.size != len(self.workers):
            raise InvalidInstanceError(
                f"cooperation matrix is {self.quality.size}x{self.quality.size} "
                f"but the instance has {len(self.workers)} workers"
            )
        for task in self.tasks:
            if task.capacity < self.min_group_size:
                raise InvalidInstanceError(
                    f"task {task.task_id}: capacity {task.capacity} below the "
                    f"minimum group size B={self.min_group_size}"
                )

    @property
    def worker_count(self) -> int:
        return len(self.workers)

    @property
    def task_count(self) -> int:
        return len(self.tasks)

    def worker_locations(self) -> np.ndarray:
        """Worker coordinates as an ``(m, 2)`` array."""
        return np.array([(w.location.x, w.location.y) for w in self.workers])

    def task_locations(self) -> np.ndarray:
        """Task coordinates as an ``(n, 2)`` array."""
        return np.array([(t.location.x, t.location.y) for t in self.tasks])

    def capacities(self) -> np.ndarray:
        return np.array([task.capacity for task in self.tasks], dtype=int)

    def carve(self, worker_indices, task_indices) -> "Instance":
        """A shard-local sub-instance over the given *global* indices.

        ``worker_indices``/``task_indices`` are positional indices into
        this instance, sorted ascending (order-preserving remaps keep
        argmax tie-breaks identical between the carved and the global
        solve). Every carved :class:`Worker`/:class:`Task` is a *fresh
        copy* — no carved object (or its location) aliases an original,
        so shard-local mutation of one sub-instance can never leak into
        a sibling shard or back into the parent. The quality store is
        carved through :meth:`QualityStore.restricted_to` (O(nnz) for
        the sparse backend).

        Capacities are *not* re-validated against ``min_group_size``
        beyond the parent's own invariant — they are copied verbatim, so
        the carved instance satisfies the same ``capacity >= B`` rule.
        """
        worker_index = np.asarray(worker_indices, dtype=np.intp)
        task_index = np.asarray(task_indices, dtype=np.intp)
        if worker_index.size and np.any(np.diff(worker_index) <= 0):
            raise InvalidInstanceError(
                "carve requires strictly ascending worker indices"
            )
        if task_index.size and np.any(np.diff(task_index) <= 0):
            raise InvalidInstanceError(
                "carve requires strictly ascending task indices"
            )
        originals_w = [self.workers[int(i)] for i in worker_index]
        originals_t = [self.tasks[int(i)] for i in task_index]
        workers = tuple(
            Worker(
                worker_id=w.worker_id,
                location=Point(float(w.location.x), float(w.location.y)),
                speed=float(w.speed),
                radius=float(w.radius),
                arrival_time=float(w.arrival_time),
            )
            for w in originals_w
        )
        tasks = tuple(
            Task(
                task_id=t.task_id,
                location=Point(float(t.location.x), float(t.location.y)),
                capacity=int(t.capacity),
                deadline=float(t.deadline),
                created_time=float(t.created_time),
            )
            for t in originals_t
        )
        _validate_carved_copies(workers, originals_w, tasks, originals_t)
        quality = self.quality.restricted_to(worker_index)
        return Instance(
            workers=workers,
            tasks=tasks,
            quality=quality,
            min_group_size=self.min_group_size,
            now=self.now,
        )

    def is_pair_valid(self, worker_index: int, task_index: int) -> bool:
        """Definition 3 check for a single worker-task pair.

        The pair is valid when the task lies inside the worker's working
        area and the worker can reach it before the deadline. (Condition 1
        of Definition 3 — worker arrived after the task was created — is
        enforced by the batch framework, which only places currently
        available workers and open tasks into an instance.)
        """
        worker = self.workers[worker_index]
        task = self.tasks[task_index]
        distance = worker.location.distance_to(task.location)
        if distance > worker.radius:
            return False
        remaining = task.remaining_time(self.now)
        if remaining < 0:
            return False
        if worker.speed <= 0:
            return distance == 0.0
        return distance / worker.speed <= remaining
