"""Quality bounds — Lemmas V.2/V.3, Equations 8-9, and Theorem V.2.

The paper cannot compute optima at real scale (CA-SC is NP-hard), so its
evaluation reports the analytic upper bound ``UPPER`` of Equation 9 and
its quality analysis bounds the price of anarchy by
``PoA >= N_init * B * q_check / UPPER``. This module computes all of
those quantities.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import Instance
from repro.core.quality_store import QualityStore
from repro.core.validity import ValidPairs, compute_valid_pairs

__all__ = [
    "BoundReport",
    "highest_average_quality",
    "lowest_average_quality",
    "task_upper_bound",
    "upper_bound",
    "price_of_anarchy_lower_bound",
]


def highest_average_quality(
    quality: QualityStore, worker: int, min_group_size: int
) -> float:
    """``q_hat_{i,B}`` of Lemma V.2.

    The mean of the worker's ``B - 1`` highest cooperation qualities — an
    upper bound on the worker's average quality inside *any* group of at
    least ``B`` workers.
    """
    top = quality.top_qualities(worker, min_group_size - 1)
    if top.size == 0:
        return 0.0
    return float(top.sum() / (min_group_size - 1))


def lowest_average_quality(
    quality: QualityStore, worker: int, min_group_size: int
) -> float:
    """``q_check_{i,B}`` of Lemma V.3 — the matching lower bound."""
    bottom = quality.bottom_qualities(worker, min_group_size - 1)
    if bottom.size == 0:
        return 0.0
    return float(bottom.sum() / (min_group_size - 1))


def task_upper_bound(
    instance: Instance,
    task: int,
    valid_pairs: ValidPairs,
    q_hat: np.ndarray,
) -> float:
    """``Q_hat_{t_j}`` of Equation 8, restricted to the task's valid
    workers.

    Sum of the top-``a_j`` values of ``q_hat`` among workers that can
    actually serve the task; zero when fewer than ``B`` workers are valid
    (the task cannot be completed at all).
    """
    workers = np.asarray(valid_pairs.workers_for_task[task], dtype=int)
    if workers.size < instance.min_group_size:
        return 0.0
    capacity = instance.tasks[task].capacity
    values = q_hat[workers]
    if values.size > capacity:
        values = np.partition(values, values.size - capacity)[values.size - capacity :]
    return float(values.sum())


@dataclass(frozen=True)
class BoundReport:
    """The Equation 9 bound and its two ingredients.

    ``value = min(task_side, worker_side)``; the report keeps both sides
    so experiments can show which one binds.
    """

    value: float
    task_side: float
    worker_side: float
    q_hat: np.ndarray
    q_check: np.ndarray


def upper_bound(
    instance: Instance, valid_pairs: ValidPairs | None = None
) -> BoundReport:
    """``UPPER`` (Equation 9) for one batch.

    ``min`` of the summed per-task bounds (Equation 8) and the summed
    per-worker highest average qualities. Every feasible assignment's
    total score is below this value; the experiments report how close the
    solvers get (50-97% in the paper).
    """
    if valid_pairs is None:
        valid_pairs = compute_valid_pairs(instance)
    minimum = instance.min_group_size
    q_hat = np.array(
        [
            highest_average_quality(instance.quality, worker, minimum)
            for worker in range(instance.worker_count)
        ]
    )
    q_check = np.array(
        [
            lowest_average_quality(instance.quality, worker, minimum)
            for worker in range(instance.worker_count)
        ]
    )
    task_side = sum(
        task_upper_bound(instance, task, valid_pairs, q_hat)
        for task in range(instance.task_count)
    )
    # Workers with no valid task cannot contribute revenue at all.
    employable = [
        worker
        for worker in range(instance.worker_count)
        if valid_pairs.tasks_for_worker[worker]
    ]
    worker_side = float(q_hat[employable].sum()) if employable else 0.0
    return BoundReport(
        value=min(task_side, worker_side),
        task_side=task_side,
        worker_side=worker_side,
        q_hat=q_hat,
        q_check=q_check,
    )


def price_of_anarchy_lower_bound(
    instance: Instance,
    seeded_tasks: int,
    bound: BoundReport,
) -> float:
    """Theorem V.2's lower bound on the price of anarchy:
    ``N_init * B * q_check / UPPER``.

    ``seeded_tasks`` is ``N_init`` — the number of tasks the TPG
    initialization completed. Returns 0 when the upper bound is 0 (an
    empty batch has nothing to lose).
    """
    if bound.value <= 0.0:
        return 0.0
    q_check_min = float(bound.q_check.min()) if bound.q_check.size else 0.0
    return seeded_tasks * instance.min_group_size * q_check_min / bound.value
