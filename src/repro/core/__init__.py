"""Core CA-SC machinery: problem model, quality revenue, and solvers.

Public surface (re-exported at package top level):

* :class:`~repro.core.model.Worker`, :class:`~repro.core.model.Task`,
  :class:`~repro.core.model.Instance` — the problem model (Definitions 1-4).
* :class:`~repro.core.quality.CooperationMatrix` — pairwise cooperation
  quality ``q_i(w_k)`` with the Equation-1 estimator.
* :mod:`~repro.core.quality_store` — the :class:`QualityStore` protocol
  with dense / sparse / shared-memory backends.
* :mod:`~repro.core.revenue` — cooperation quality revenue ``Q(W_j)``
  (Equation 2) and marginal gains (Equation 4).
* :class:`~repro.core.assignment.Assignment` — a feasible solution with
  incremental score maintenance.
* Solvers: :func:`~repro.core.tpg.solve_tpg`,
  :func:`~repro.core.game.solve_game_theoretic`,
  :func:`~repro.core.baselines.random_assign.solve_random`,
  :func:`~repro.core.baselines.mflow.solve_mflow`,
  :func:`~repro.core.exact.solve_exact`.
* :func:`~repro.core.bounds.upper_bound` — Equation 9's UPPER reference.
* :class:`~repro.core.fallback.FallbackSolver` — anytime wall-clock
  budget with the GT -> TPG -> pair-greedy -> random degradation ladder
  (see docs/ROBUSTNESS.md).
"""

from repro.core.assignment import Assignment
from repro.core.bounds import BoundReport, upper_bound
from repro.core.exact import solve_exact
from repro.core.fallback import DegradationRecord, FallbackSolver
from repro.core.game import GameResult, solve_game_theoretic
from repro.core.local_search import LocalSearchResult, solve_local_search
from repro.core.model import Instance, Task, Worker
from repro.core.online import solve_online_greedy
from repro.core.quality import CooperationMatrix
from repro.core.quality_store import (
    DenseQualityStore,
    QualityStore,
    SharedDenseQualityStore,
    SparseQualityStore,
)
from repro.core.tpg import solve_tpg
from repro.core.validity import ValidPairs, compute_valid_pairs
from repro.core.baselines.mflow import solve_mflow
from repro.core.baselines.random_assign import solve_random

__all__ = [
    "Assignment",
    "BoundReport",
    "upper_bound",
    "solve_exact",
    "DegradationRecord",
    "FallbackSolver",
    "GameResult",
    "solve_game_theoretic",
    "Instance",
    "Task",
    "Worker",
    "CooperationMatrix",
    "QualityStore",
    "DenseQualityStore",
    "SparseQualityStore",
    "SharedDenseQualityStore",
    "solve_tpg",
    "ValidPairs",
    "compute_valid_pairs",
    "solve_mflow",
    "solve_online_greedy",
    "solve_random",
    "LocalSearchResult",
    "solve_local_search",
]
