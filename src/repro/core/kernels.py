"""Batched best-response kernels for the Equation-5 utility scan.

The game solver's hot loop scores every candidate task of every worker
once per round. ``kernel="python"`` keeps the historical per-worker
numpy scan in :mod:`repro.core.game`; ``kernel="native"`` evaluates the
utilities of *all* workers' candidates in one pass over flat CSR-style
arrays — compiled with numba when it is importable, otherwise through a
vectorized numpy fallback that produces bit-identical floats. Both
kernels reproduce the scalar ``join_gain`` summation order exactly, so
the choice of kernel never changes an assignment (enforced by the
differential audit's kernel axis and the parity test suite).

Summation-order contract
------------------------
The scalar path (``RevenueCache.join_gain`` via ``cross_sum``) sums the
row gather and the column gather separately with ``ndarray.sum()``,
which numpy evaluates strictly left-to-right for fewer than eight
elements and with pairwise (reordered) partial sums from eight elements
on. ``np.add.reduceat`` — the historical batch reduction — does *not*
share that contract: on current numpy its SIMD partial sums reorder
segments of as few as three elements, which silently broke the batch
path's bit-identity with the scalar path. Every reduction in this
module therefore accumulates strictly left-to-right
(:func:`segment_sums_ordered`, or a plain loop in the compiled kernel),
and groups of :data:`~repro.core.game._VECTOR_GROUP_LIMIT` or more
members — where the scalar path itself reorders — are deferred to the
scalar evaluation via :data:`CODE_SCALAR`.

numba is an *optional* dependency: when it is absent the ``"native"``
kernel silently degrades to the numpy fallback (counted separately in
:class:`~repro.core.stats.SolverStats.kernel_fallback_calls`), so the
flag is safe to enable everywhere. Compiled kernels are cached on disk
(``cache=True``; numba writes next to this module's ``__pycache__`` or
to ``NUMBA_CACHE_DIR``), so the one-off compile cost is paid once per
environment, not once per process.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

__all__ = [
    "NUMBA_AVAILABLE",
    "KERNELS",
    "DEFAULT_KERNEL",
    "CODE_VALUE",
    "CODE_SCALAR",
    "CODE_CURRENT",
    "KernelBuffers",
    "resolve_kernel",
    "segment_sums_ordered",
    "score_candidates",
]

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit as _njit

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - the common case in this repo's CI
    _njit = None
    NUMBA_AVAILABLE = False

#: The selectable kernels; ``"python"`` is the historical per-worker
#: scan, ``"native"`` the batched all-workers pass (numba when present).
KERNELS = ("python", "native")
DEFAULT_KERNEL = "python"

#: Per-slot classification emitted by :func:`score_candidates`.
CODE_VALUE = 0  #: utility fully evaluated by the kernel
CODE_SCALAR = 1  #: overflow/oversized join — needs the scalar peel path
CODE_CURRENT = 2  #: the worker's own task — caller fills ``leave_delta``


def resolve_kernel(name: str) -> str:
    """Validate a kernel name (raises ``ValueError`` on an unknown one)."""
    if name not in KERNELS:
        raise ValueError(f"unknown kernel {name!r}; expected one of {KERNELS}")
    return name


@dataclass(frozen=True)
class KernelBuffers:
    """Flat, read-only quality buffers exported by a ``QualityStore``.

    Dense backends expose their matrix directly (``dense``); the sparse
    backend exposes both orientations as globally-sorted key arrays
    (``row * size + col`` for the CSR side, ``col * size + row`` for the
    CSC side) so a single binary search answers any ordered-pair lookup,
    with absent entries defaulting to ``prior`` and the diagonal to 0.
    """

    size: int
    dense: np.ndarray | None = None
    row_keys: np.ndarray | None = None
    row_values: np.ndarray | None = None
    col_keys: np.ndarray | None = None
    col_values: np.ndarray | None = None
    prior: float = 0.0

    @classmethod
    def from_dense(cls, matrix: np.ndarray) -> "KernelBuffers":
        return cls(size=int(matrix.shape[0]), dense=matrix)

    @classmethod
    def from_csr(
        cls,
        size: int,
        row_keys: np.ndarray,
        row_values: np.ndarray,
        col_keys: np.ndarray,
        col_values: np.ndarray,
        prior: float,
    ) -> "KernelBuffers":
        return cls(
            size=size,
            row_keys=np.ascontiguousarray(row_keys, dtype=np.int64),
            row_values=np.ascontiguousarray(row_values, dtype=np.float64),
            col_keys=np.ascontiguousarray(col_keys, dtype=np.int64),
            col_values=np.ascontiguousarray(col_values, dtype=np.float64),
            prior=float(prior),
        )

    @property
    def is_dense(self) -> bool:
        return self.dense is not None


def segment_sums_ordered(
    values: np.ndarray, starts: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """Per-segment sums in strict left-to-right order.

    Bit-identical to summing each segment with a sequential loop — and
    therefore to ``ndarray.sum()`` for segments of fewer than eight
    elements, which is exactly the regime the batch scan handles (larger
    groups go through the scalar path). ``np.add.reduceat`` cannot be
    used here: its SIMD partial sums reorder segments of three or more
    elements on current numpy.

    The implementation pads every segment to the maximum length with
    zeros (exact: ``x + 0.0 == x`` for the non-negative partial sums
    that occur here) and accumulates column by column, which keeps each
    row's additions in segment order while staying fully vectorized.
    """
    starts = np.asarray(starts, dtype=np.intp)
    lengths = np.asarray(lengths, dtype=np.intp)
    if starts.size == 0:
        return np.zeros(0, dtype=np.float64)
    width = int(lengths.max()) if lengths.size else 0
    if width == 0:
        return np.zeros(starts.size, dtype=np.float64)
    offsets = np.arange(width, dtype=np.intp)
    index = starts[:, None] + offsets[None, :]
    lane = offsets[None, :] < lengths[:, None]
    np.minimum(index, max(values.size - 1, 0), out=index)
    padded = np.where(lane, values[index], 0.0)
    total = padded[:, 0].copy()
    for column in range(1, width):
        total += padded[:, column]
    return total


def _lookup_sorted(
    keys: np.ndarray, values: np.ndarray, targets: np.ndarray, prior: float
) -> np.ndarray:
    """Vectorized sparse lookup: ``values`` where ``targets`` appear in
    the sorted ``keys``, ``prior`` elsewhere."""
    if keys.size == 0:
        return np.full(targets.shape, prior, dtype=np.float64)
    position = np.searchsorted(keys, targets)
    clamped = np.minimum(position, keys.size - 1)
    found = keys[clamped] == targets
    return np.where(found, values[clamped], prior)


def _score_candidates_numpy(
    buffers: KernelBuffers,
    vp_indptr: np.ndarray,
    vp_tasks: np.ndarray,
    mem_indptr: np.ndarray,
    mem_flat: np.ndarray,
    pair_sums: np.ndarray,
    revenues: np.ndarray,
    capacities: np.ndarray,
    minimum: int,
    limit: int,
    current_tasks: np.ndarray,
    worker_ids: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    slots = vp_tasks.size
    values = np.zeros(slots, dtype=np.float64)
    codes = np.zeros(slots, dtype=np.uint8)
    if slots == 0:
        return values, codes

    counts = mem_indptr[1:] - mem_indptr[:-1]
    slot_counts = counts[vp_tasks]
    rows = np.repeat(
        np.arange(vp_indptr.size - 1, dtype=np.int64), np.diff(vp_indptr)
    )
    # ``rows`` indexes the CSR rows of this call; ``workers`` are the
    # matching quality-store ids (identical unless the caller scores a
    # row subset, e.g. the per-worker mid-round rescan).
    workers = rows if worker_ids is None else worker_ids[rows]
    is_current = current_tasks[rows] == vp_tasks
    needs_scalar = (slot_counts + 1 > capacities[vp_tasks]) | (slot_counts >= limit)
    is_zero = ~needs_scalar & ((slot_counts == 0) | (slot_counts + 1 < minimum))
    batchable = ~(needs_scalar | is_zero) & ~is_current

    codes[needs_scalar] = CODE_SCALAR
    codes[is_current] = CODE_CURRENT
    zero_only = is_zero & ~is_current
    values[zero_only] = 0.0 - revenues[vp_tasks[zero_only]]

    if batchable.any():
        b_tasks = vp_tasks[batchable]
        b_workers = workers[batchable]
        b_lengths = slot_counts[batchable]
        b_starts = mem_indptr[b_tasks]
        width = int(b_lengths.max())
        offsets = np.arange(width, dtype=np.intp)
        index = b_starts[:, None] + offsets[None, :]
        lane = offsets[None, :] < b_lengths[:, None]
        np.minimum(index, max(mem_flat.size - 1, 0), out=index)
        member = mem_flat[index]
        if buffers.is_dense:
            dense = buffers.dense
            row_vals = dense[b_workers[:, None], member]
            col_vals = dense[member, b_workers[:, None]]
        else:
            size = np.int64(buffers.size)
            row_targets = b_workers[:, None] * size + member
            col_targets = b_workers[:, None] * size + member
            row_vals = _lookup_sorted(
                buffers.row_keys, buffers.row_values, row_targets, buffers.prior
            )
            col_vals = _lookup_sorted(
                buffers.col_keys, buffers.col_values, col_targets, buffers.prior
            )
            diagonal = member == b_workers[:, None]
            row_vals = np.where(diagonal, 0.0, row_vals)
            col_vals = np.where(diagonal, 0.0, col_vals)
        row_vals = np.where(lane, row_vals, 0.0)
        col_vals = np.where(lane, col_vals, 0.0)
        row_total = row_vals[:, 0].copy()
        col_total = col_vals[:, 0].copy()
        for column in range(1, width):
            row_total += row_vals[:, column]
            col_total += col_vals[:, column]
        cross = row_total + col_total
        new_revenue = (pair_sums[b_tasks] + cross) / b_lengths
        values[batchable] = new_revenue - revenues[b_tasks]
    return values, codes


if NUMBA_AVAILABLE:  # pragma: no cover - requires numba in the environment

    @_njit(cache=True)
    def _score_dense_njit(
        dense,
        vp_indptr,
        vp_tasks,
        mem_indptr,
        mem_flat,
        pair_sums,
        revenues,
        capacities,
        minimum,
        limit,
        current_tasks,
        worker_ids,
        values,
        codes,
    ):
        worker_count = vp_indptr.size - 1
        for row in range(worker_count):
            worker = worker_ids[row]
            current = current_tasks[row]
            for slot in range(vp_indptr[row], vp_indptr[row + 1]):
                task = vp_tasks[slot]
                count = mem_indptr[task + 1] - mem_indptr[task]
                if task == current:
                    codes[slot] = 2
                    values[slot] = 0.0
                elif count + 1 > capacities[task] or count >= limit:
                    codes[slot] = 1
                    values[slot] = 0.0
                elif count == 0 or count + 1 < minimum:
                    codes[slot] = 0
                    values[slot] = 0.0 - revenues[task]
                else:
                    row_total = 0.0
                    col_total = 0.0
                    for position in range(mem_indptr[task], mem_indptr[task + 1]):
                        member = mem_flat[position]
                        row_total += dense[worker, member]
                        col_total += dense[member, worker]
                    codes[slot] = 0
                    values[slot] = (
                        pair_sums[task] + (row_total + col_total)
                    ) / count - revenues[task]

    @_njit(cache=True)
    def _sparse_pair_njit(keys, vals, target, prior):
        low = 0
        high = keys.size
        while low < high:
            mid = (low + high) // 2
            if keys[mid] < target:
                low = mid + 1
            else:
                high = mid
        if low < keys.size and keys[low] == target:
            return vals[low]
        return prior

    @_njit(cache=True)
    def _score_csr_njit(
        size,
        row_keys,
        row_values,
        col_keys,
        col_values,
        prior,
        vp_indptr,
        vp_tasks,
        mem_indptr,
        mem_flat,
        pair_sums,
        revenues,
        capacities,
        minimum,
        limit,
        current_tasks,
        worker_ids,
        values,
        codes,
    ):
        worker_count = vp_indptr.size - 1
        for row in range(worker_count):
            worker = worker_ids[row]
            current = current_tasks[row]
            for slot in range(vp_indptr[row], vp_indptr[row + 1]):
                task = vp_tasks[slot]
                count = mem_indptr[task + 1] - mem_indptr[task]
                if task == current:
                    codes[slot] = 2
                    values[slot] = 0.0
                elif count + 1 > capacities[task] or count >= limit:
                    codes[slot] = 1
                    values[slot] = 0.0
                elif count == 0 or count + 1 < minimum:
                    codes[slot] = 0
                    values[slot] = 0.0 - revenues[task]
                else:
                    row_total = 0.0
                    col_total = 0.0
                    for position in range(mem_indptr[task], mem_indptr[task + 1]):
                        member = mem_flat[position]
                        if member == worker:
                            continue
                        target = worker * size + member
                        row_total += _sparse_pair_njit(
                            row_keys, row_values, target, prior
                        )
                        col_total += _sparse_pair_njit(
                            col_keys, col_values, target, prior
                        )
                    codes[slot] = 0
                    values[slot] = (
                        pair_sums[task] + (row_total + col_total)
                    ) / count - revenues[task]


#: One-off compile bookkeeping: numba compiles lazily on first call, so
#: the first invocation's wall time includes compilation (or a disk
#: cache load). Recorded once per process and surfaced through
#: ``SolverStats.kernel_compile_seconds``.
_compile_seconds_pending: dict[str, bool] = {"dense": True, "csr": True}


def score_candidates(
    buffers: KernelBuffers,
    vp_indptr: np.ndarray,
    vp_tasks: np.ndarray,
    mem_indptr: np.ndarray,
    mem_flat: np.ndarray,
    pair_sums: np.ndarray,
    revenues: np.ndarray,
    capacities: np.ndarray,
    minimum: int,
    limit: int,
    current_tasks: np.ndarray,
    stats=None,
    worker_ids: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Score every (worker, candidate-task) slot of the validity CSR.

    Returns ``(values, codes)`` — one float and one classification code
    (:data:`CODE_VALUE` / :data:`CODE_SCALAR` / :data:`CODE_CURRENT`)
    per slot of ``vp_tasks``. Values for non-``CODE_VALUE`` slots are
    placeholders the caller must fill (scalar peel / ``leave_delta``).

    ``worker_ids`` maps CSR rows to quality-store worker ids when the
    call covers a subset of workers (one row per rescanned worker, as in
    the mid-round rescan path); by default row ``i`` *is* worker ``i``.
    ``current_tasks`` is always indexed by row.

    Dispatches to the compiled numba kernel when available, else to the
    vectorized numpy fallback; both produce bit-identical floats. The
    optional ``stats`` (a :class:`~repro.core.stats.SolverStats`) counts
    dispatches and the one-off compile time.
    """
    if NUMBA_AVAILABLE:
        slots = vp_tasks.size
        values = np.zeros(slots, dtype=np.float64)
        codes = np.zeros(slots, dtype=np.uint8)
        variant = "dense" if buffers.is_dense else "csr"
        row_workers = (
            np.arange(vp_indptr.size - 1, dtype=np.int64)
            if worker_ids is None
            else np.ascontiguousarray(worker_ids, dtype=np.int64)
        )
        started = time.perf_counter()
        if buffers.is_dense:
            _score_dense_njit(
                np.ascontiguousarray(buffers.dense, dtype=np.float64),
                vp_indptr,
                vp_tasks,
                mem_indptr,
                mem_flat,
                pair_sums,
                revenues,
                capacities,
                np.int64(minimum),
                np.int64(limit),
                current_tasks,
                row_workers,
                values,
                codes,
            )
        else:
            _score_csr_njit(
                np.int64(buffers.size),
                buffers.row_keys,
                buffers.row_values,
                buffers.col_keys,
                buffers.col_values,
                np.float64(buffers.prior),
                vp_indptr,
                vp_tasks,
                mem_indptr,
                mem_flat,
                pair_sums,
                revenues,
                capacities,
                np.int64(minimum),
                np.int64(limit),
                current_tasks,
                row_workers,
                values,
                codes,
            )
        if stats is not None:
            stats.kernel_compiled_calls += 1
            if _compile_seconds_pending[variant]:
                stats.kernel_compile_seconds += time.perf_counter() - started
        _compile_seconds_pending[variant] = False
        return values, codes

    values, codes = _score_candidates_numpy(
        buffers,
        vp_indptr,
        vp_tasks,
        mem_indptr,
        mem_flat,
        pair_sums,
        revenues,
        capacities,
        minimum,
        limit,
        current_tasks,
        worker_ids=worker_ids,
    )
    if stats is not None:
        stats.kernel_fallback_calls += 1
    return values, codes
