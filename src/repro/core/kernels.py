"""Batched best-response kernels for the Equation-5 utility scan.

The game solver's hot loop scores every candidate task of every worker
once per round. ``kernel="python"`` keeps the historical per-worker
numpy scan in :mod:`repro.core.game`; ``kernel="native"`` evaluates the
utilities of *all* workers' candidates in one pass over flat CSR-style
arrays — compiled with numba when it is importable, otherwise through a
vectorized numpy fallback that produces bit-identical floats. Both
kernels reproduce the scalar ``join_gain`` summation order exactly, so
the choice of kernel never changes an assignment (enforced by the
differential audit's kernel axis and the parity test suite).

Summation-order contract
------------------------
The scalar path (``RevenueCache.join_gain`` via ``cross_sum``) sums the
row gather and the column gather separately with ``ndarray.sum()``,
which numpy evaluates strictly left-to-right for fewer than eight
elements and with pairwise (reordered) partial sums from eight elements
on. ``np.add.reduceat`` — the historical batch reduction — does *not*
share that contract: on current numpy its SIMD partial sums reorder
segments of as few as three elements, which silently broke the batch
path's bit-identity with the scalar path. Every reduction in this
module therefore accumulates strictly left-to-right
(:func:`segment_sums_ordered`, or a plain loop in the compiled kernel),
and groups of :data:`~repro.core.game._VECTOR_GROUP_LIMIT` or more
members — where the scalar path itself reorders — are deferred to the
scalar evaluation via :data:`CODE_SCALAR`.

numba is an *optional* dependency: when it is absent the ``"native"``
kernel silently degrades to the numpy fallback (counted separately in
:class:`~repro.core.stats.SolverStats.kernel_fallback_calls`), so the
flag is safe to enable everywhere. Compiled kernels are cached on disk
(``cache=True``; numba writes next to this module's ``__pycache__`` or
to ``NUMBA_CACHE_DIR``), so the one-off compile cost is paid once per
environment, not once per process.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

__all__ = [
    "NUMBA_AVAILABLE",
    "KERNELS",
    "DEFAULT_KERNEL",
    "PAIRWISE_CLIFF",
    "CODE_VALUE",
    "CODE_SCALAR",
    "CODE_CURRENT",
    "KernelBuffers",
    "resolve_kernel",
    "segment_sums_ordered",
    "ordered_row_sums",
    "verify_pairwise_cliff",
    "ensure_pairwise_cliff",
    "score_candidates",
    "gather_symmetric",
    "gather_block",
    "counted_subset_select",
    "greedy_group_select",
    "exact_group_select",
    "best_group",
]

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit as _njit

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - the common case in this repo's CI
    _njit = None
    NUMBA_AVAILABLE = False

#: The selectable kernels; ``"python"`` is the historical per-worker
#: scan, ``"native"`` the batched all-workers pass (numba when present).
KERNELS = ("python", "native")
DEFAULT_KERNEL = "python"

#: Per-slot classification emitted by :func:`score_candidates`.
CODE_VALUE = 0  #: utility fully evaluated by the kernel
CODE_SCALAR = 1  #: overflow/oversized join — needs the scalar peel path
CODE_CURRENT = 2  #: the worker's own task — caller fills ``leave_delta``


def resolve_kernel(name: str) -> str:
    """Validate a kernel name (raises ``ValueError`` on an unknown one)."""
    if name not in KERNELS:
        raise ValueError(f"unknown kernel {name!r}; expected one of {KERNELS}")
    return name


@dataclass(frozen=True)
class KernelBuffers:
    """Flat, read-only quality buffers exported by a ``QualityStore``.

    Dense backends expose their matrix directly (``dense``); the sparse
    backend exposes both orientations as globally-sorted key arrays
    (``row * size + col`` for the CSR side, ``col * size + row`` for the
    CSC side) so a single binary search answers any ordered-pair lookup,
    with absent entries defaulting to ``prior`` and the diagonal to 0.
    """

    size: int
    dense: np.ndarray | None = None
    row_keys: np.ndarray | None = None
    row_values: np.ndarray | None = None
    col_keys: np.ndarray | None = None
    col_values: np.ndarray | None = None
    prior: float = 0.0

    @classmethod
    def from_dense(cls, matrix: np.ndarray) -> "KernelBuffers":
        return cls(size=int(matrix.shape[0]), dense=matrix)

    @classmethod
    def from_csr(
        cls,
        size: int,
        row_keys: np.ndarray,
        row_values: np.ndarray,
        col_keys: np.ndarray,
        col_values: np.ndarray,
        prior: float,
    ) -> "KernelBuffers":
        return cls(
            size=size,
            row_keys=np.ascontiguousarray(row_keys, dtype=np.int64),
            row_values=np.ascontiguousarray(row_values, dtype=np.float64),
            col_keys=np.ascontiguousarray(col_keys, dtype=np.int64),
            col_values=np.ascontiguousarray(col_values, dtype=np.float64),
            prior=float(prior),
        )

    @property
    def is_dense(self) -> bool:
        return self.dense is not None


def segment_sums_ordered(
    values: np.ndarray, starts: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """Per-segment sums in strict left-to-right order.

    Bit-identical to summing each segment with a sequential loop — and
    therefore to ``ndarray.sum()`` for segments of fewer than eight
    elements, which is exactly the regime the batch scan handles (larger
    groups go through the scalar path). ``np.add.reduceat`` cannot be
    used here: its SIMD partial sums reorder segments of three or more
    elements on current numpy.

    The implementation pads every segment to the maximum length with
    zeros (exact: ``x + 0.0 == x`` for the non-negative partial sums
    that occur here) and accumulates column by column, which keeps each
    row's additions in segment order while staying fully vectorized.
    """
    starts = np.asarray(starts, dtype=np.intp)
    lengths = np.asarray(lengths, dtype=np.intp)
    if starts.size == 0:
        return np.zeros(0, dtype=np.float64)
    width = int(lengths.max()) if lengths.size else 0
    if width == 0:
        return np.zeros(starts.size, dtype=np.float64)
    offsets = np.arange(width, dtype=np.intp)
    index = starts[:, None] + offsets[None, :]
    lane = offsets[None, :] < lengths[:, None]
    np.minimum(index, max(values.size - 1, 0), out=index)
    padded = np.where(lane, values[index], 0.0)
    total = padded[:, 0].copy()
    for column in range(1, width):
        total += padded[:, column]
    return total


#: numpy's pairwise-summation threshold: ``ndarray.sum()`` accumulates
#: strictly left-to-right below this many elements and with reordered
#: (block-pairwise) partial sums from it on. The counted-subset peel and
#: ``repro.core.revenue._VECTOR_PEEL_LIMIT`` both assume this value;
#: :func:`verify_pairwise_cliff` fails loudly if a numpy upgrade moves it.
PAIRWISE_CLIFF = 8

_cliff_state = {"verified": False}


def ordered_row_sums(matrix: np.ndarray) -> np.ndarray:
    """Per-row sums in strict left-to-right order.

    Bit-identical to ``matrix.sum(axis=1)`` for widths below
    :data:`PAIRWISE_CLIFF` (where numpy itself reduces sequentially), and
    the single source of truth for the counted-subset peel's ordered
    accumulation: both the vector branch of
    ``repro.core.revenue.best_counted_subset`` and the numpy fallback of
    :func:`counted_subset_select` route through it, so the summation
    order that defines the peel (hence the potential function) lives in
    exactly one place.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    rows, width = matrix.shape
    if width == 0:
        return np.zeros(rows, dtype=np.float64)
    total = matrix[:, 0].astype(np.float64, copy=True)
    for column in range(1, width):
        total += matrix[:, column]
    return total


def verify_pairwise_cliff(sum_func=None) -> None:
    """Assert numpy's pairwise-summation cliff still sits at 8 elements.

    The peel paths depend on two numpy facts: ``ndarray.sum()`` reduces
    strictly left-to-right below :data:`PAIRWISE_CLIFF` elements, and at
    exactly eight uses the block-pairwise order
    ``((a0+a1)+(a2+a3)) + ((a4+a5)+(a6+a7))``. Both are probed with a
    discriminating array (``1e16`` followed by ones: sequential addition
    absorbs every ``1.0`` into the big value's rounding, any reordering
    does not), and a deviation raises ``RuntimeError`` — a loud failure
    at the first peel instead of assignments silently diverging between
    code paths after a numpy upgrade.

    ``sum_func`` overrides the reduction under test (the regression test
    injects impostors); the default is genuine ``ndarray.sum``.
    """
    if sum_func is None:
        def sum_func(array):
            return array.sum()

    probe = np.empty(PAIRWISE_CLIFF, dtype=np.float64)
    probe[0] = 1e16
    probe[1:] = 1.0
    for length in range(1, PAIRWISE_CLIFF):
        sequential = probe[0]
        for value in probe[1:length]:
            sequential = sequential + value
        observed = float(sum_func(probe[:length]))
        if observed != float(sequential):
            raise RuntimeError(
                f"numpy no longer sums {length}-element arrays strictly "
                f"left-to-right (got {observed!r}, sequential gives "
                f"{float(sequential)!r}): the pairwise-summation cliff "
                f"moved below {PAIRWISE_CLIFF}. The counted-subset peel's "
                "summation-order contract "
                "(repro.core.revenue._VECTOR_PEEL_LIMIT) is broken — pin "
                "numpy, or update PAIRWISE_CLIFF and the peel kernels "
                "together."
            )
    sequential = probe[0]
    for value in probe[1:]:
        sequential = sequential + value
    pairwise = ((probe[0] + probe[1]) + (probe[2] + probe[3])) + (
        (probe[4] + probe[5]) + (probe[6] + probe[7])
    )
    observed = float(sum_func(probe))
    if observed == float(sequential) or observed != float(pairwise):
        raise RuntimeError(
            f"numpy's {PAIRWISE_CLIFF}-element reduction is no longer the "
            f"expected block-pairwise order (got {observed!r}, expected "
            f"{float(pairwise)!r}, sequential gives {float(sequential)!r}): "
            "the pairwise-summation cliff moved. The counted-subset peel's "
            "summation-order contract "
            "(repro.core.revenue._VECTOR_PEEL_LIMIT) is broken — pin "
            "numpy, or update PAIRWISE_CLIFF and the peel kernels together."
        )


def ensure_pairwise_cliff() -> None:
    """Run :func:`verify_pairwise_cliff` once per process (cached)."""
    if not _cliff_state["verified"]:
        verify_pairwise_cliff()
        _cliff_state["verified"] = True


def _lookup_sorted(
    keys: np.ndarray, values: np.ndarray, targets: np.ndarray, prior: float
) -> np.ndarray:
    """Vectorized sparse lookup: ``values`` where ``targets`` appear in
    the sorted ``keys``, ``prior`` elsewhere."""
    if keys.size == 0:
        return np.full(targets.shape, prior, dtype=np.float64)
    position = np.searchsorted(keys, targets)
    clamped = np.minimum(position, keys.size - 1)
    found = keys[clamped] == targets
    return np.where(found, values[clamped], prior)


def gather_symmetric(buffers: KernelBuffers, index: np.ndarray) -> np.ndarray:
    """``sub + sub.T`` over the candidate submatrix, from flat buffers.

    Produces exactly the floats of ``quality.gather(index)`` plus its
    transpose — the dense branch is the same fancy-indexing expression,
    the sparse branch the same searchsorted lookup with prior default
    and zero diagonal — so group selections over the result are
    bit-identical to the store-backed TPG path.
    """
    index = np.asarray(index, dtype=np.int64)
    if buffers.is_dense:
        sub = buffers.dense[index[:, None], index]
    else:
        targets = index[:, None] * np.int64(buffers.size) + index[None, :]
        sub = _lookup_sorted(
            buffers.row_keys, buffers.row_values, targets, buffers.prior
        )
        np.fill_diagonal(sub, 0.0)
    return sub + sub.T


def gather_block(
    buffers: KernelBuffers, rows: np.ndarray, cols: np.ndarray
) -> np.ndarray:
    """Rectangular quality gather ``q[rows[:, None], cols]`` from flat buffers.

    The dense branch is the stores' own fancy-indexing expression; the
    sparse branch answers the whole ``(len(rows), len(cols))`` block with
    one batched ``searchsorted`` over the globally sorted CSR keys —
    absent pairs default to the prior, positions where ``rows[i] ==
    cols[j]`` to 0. The floats are exactly those of per-row
    ``q_row``/``gather`` round-trips, so reductions over the result stay
    bit-identical to the interpreted path. Returns a fresh writable array.
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    if buffers.is_dense:
        return np.array(
            buffers.dense[rows[:, None], cols], dtype=np.float64, copy=True
        )
    targets = rows[:, None] * np.int64(buffers.size) + cols[None, :]
    block = _lookup_sorted(
        buffers.row_keys, buffers.row_values, targets, buffers.prior
    )
    block[rows[:, None] == cols[None, :]] = 0.0
    return block


def _peel_small_numpy(sub: np.ndarray, size: int, keep: np.ndarray) -> None:
    """Sub-cliff peel endgame over a gathered submatrix (numpy fallback).

    ``sub`` holds at most :data:`PAIRWISE_CLIFF` survivors (zero
    diagonal); every iteration re-sums each survivor's row and column
    strictly left-to-right over the surviving positions — the regime
    where the scalar oracle's own reductions are sequential — and peels
    the *last* surviving position attaining the minimum (the
    highest-index tie-break). Mutates ``keep`` (1 = alive) in place.
    """
    positions = np.flatnonzero(keep)
    work = sub
    while positions.size > size:
        contributions = ordered_row_sums(work) + ordered_row_sums(work.T)
        minimum = contributions.min()
        weakest = int(np.flatnonzero(contributions == minimum)[-1])
        keep[positions[weakest]] = 0
        positions = np.delete(positions, weakest)
        if positions.size > size:
            work = np.delete(
                np.delete(work, weakest, axis=0), weakest, axis=1
            )


def counted_subset_select(
    buffers: KernelBuffers, members, size: int, stats=None
) -> list[int]:
    """Greedy counted-subset peel over flat quality buffers.

    Bit-identical to ``repro.core.revenue.best_counted_subset`` (the
    scalar oracle) in floats *and* tie-breaks, while paying ONE bulk
    gather (:func:`gather_block`) for the whole peel instead of a store
    round-trip per iteration:

    * while more than :data:`PAIRWISE_CLIFF` members survive, the
      oracle's per-member others-arrays hold at least eight elements and
      numpy reduces them pairwise — reproduced by genuine
      ``ndarray.sum()`` calls on identical fresh contiguous arrays, so
      the bits match by construction rather than by emulating numpy's
      blocked accumulation;
    * at or below the cliff every oracle reduction is strictly
      sequential, so the endgame runs as one compiled loop
      (:func:`_peel_small_njit` under numba, :func:`_peel_small_numpy`
      otherwise) with the same left-to-right order;
    * ties peel the highest surviving worker index in both regimes.

    ``members`` must be duplicate-free. Returns the kept members sorted
    ascending, exactly like the oracle. ``stats`` counts the endgame
    dispatch like every other kernel entry point.
    """
    ensure_pairwise_cliff()
    kept = sorted(int(member) for member in members)
    if size >= len(kept):
        return kept
    order = np.asarray(kept, dtype=np.int64)
    master = gather_block(buffers, order, order)
    alive = list(range(order.size))
    cur = len(alive)

    while cur > size and cur > PAIRWISE_CLIFF:
        index = np.asarray(alive, dtype=np.intp)
        sub = master[np.ix_(index, index)]
        # Each survivor's others-row/column as one contiguous (cur,
        # cur - 1) copy: row p of the boolean-masked reshape is exactly
        # np.delete(sub[p], p), and the axis-1 reduction applies numpy's
        # pairwise blocking per row — the same bits as the oracle's 1-D
        # ``ndarray.sum()`` over each fresh others-array.
        off_diagonal = ~np.eye(cur, dtype=bool)
        scores = (
            sub[off_diagonal].reshape(cur, cur - 1).sum(axis=1)
            + sub.T[off_diagonal].reshape(cur, cur - 1).sum(axis=1)
        )
        minimum = scores.min()
        # Ties peel the last (= highest-index) surviving position.
        weakest = int(np.flatnonzero(scores == minimum)[-1])
        del alive[weakest]
        cur -= 1

    if cur > size:
        if cur == order.size:
            sub = master  # big-peel loop never ran: already contiguous
        else:
            index = np.asarray(alive, dtype=np.intp)
            sub = np.ascontiguousarray(master[np.ix_(index, index)])
        keep = np.ones(cur, dtype=np.int64)
        if NUMBA_AVAILABLE:  # pragma: no cover - requires numba
            started = time.perf_counter()
            _peel_small_njit(sub, np.int64(size), keep)
            if stats is not None:
                stats.kernel_compiled_calls += 1
                if _compile_seconds_pending["peel"]:
                    stats.kernel_compile_seconds += (
                        time.perf_counter() - started
                    )
            _compile_seconds_pending["peel"] = False
        else:
            _peel_small_numpy(sub, size, keep)
            if stats is not None:
                stats.kernel_fallback_calls += 1
        alive = [alive[position] for position in range(cur) if keep[position]]
    return [int(order[position]) for position in alive]


def greedy_group_select(
    symmetric: np.ndarray, size: int
) -> tuple[list[int], float] | None:
    """Greedy ``size``-group selection over a symmetric pair matrix.

    Seeds with the (row-major first-max) best ordered pair and grows by
    argmax cross-sum additions — the float operations of TPG's
    historical stage-1 greedy, verbatim. Returns ``(positions,
    pair_sum)`` in selection order, or ``None`` when the matrix cannot
    yield a connected ``size``-group. Mutates ``symmetric``'s diagonal.
    """
    count = symmetric.shape[0]
    np.fill_diagonal(symmetric, -np.inf)
    flat_best = int(np.argmax(symmetric))
    first, second = divmod(flat_best, count)

    chosen = [first, second]
    # cross[c] = ordered-pair contribution of candidate c to the chosen set.
    cross = symmetric[first].copy()
    cross[first] = -np.inf
    cross += np.where(np.isfinite(symmetric[second]), symmetric[second], 0.0)
    cross[second] = -np.inf
    pair_sum = float(symmetric[first, second])

    while len(chosen) < size:
        next_local = int(np.argmax(cross))
        if not np.isfinite(cross[next_local]):
            return None
        pair_sum += float(cross[next_local])
        chosen.append(next_local)
        addition = np.where(
            np.isfinite(symmetric[next_local]), symmetric[next_local], 0.0
        )
        cross += addition
        cross[next_local] = -np.inf
    return chosen, pair_sum


def exact_group_select(
    symmetric: np.ndarray,
    pair_columns: list[tuple[np.ndarray, np.ndarray]],
) -> tuple[int, float]:
    """Exhaustive group selection over precomputed combination columns.

    Each combination's pair sum is the sequential left-to-right
    accumulation over its position pairs in lexicographic order (the
    scalar loop's float additions, in the same order), and ``argmax``
    keeps the first maximum like a strict ``>`` scan. Returns
    ``(combination_row, pair_sum)``.
    """
    rows, cols = pair_columns[0]
    pair_sums = symmetric[rows, cols]
    for rows, cols in pair_columns[1:]:
        pair_sums = pair_sums + symmetric[rows, cols]
    best = int(np.argmax(pair_sums))
    return best, float(pair_sums[best])


def _score_candidates_numpy(
    buffers: KernelBuffers,
    vp_indptr: np.ndarray,
    vp_tasks: np.ndarray,
    mem_indptr: np.ndarray,
    mem_flat: np.ndarray,
    pair_sums: np.ndarray,
    revenues: np.ndarray,
    capacities: np.ndarray,
    minimum: int,
    limit: int,
    current_tasks: np.ndarray,
    worker_ids: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    slots = vp_tasks.size
    values = np.zeros(slots, dtype=np.float64)
    codes = np.zeros(slots, dtype=np.uint8)
    if slots == 0:
        return values, codes

    counts = mem_indptr[1:] - mem_indptr[:-1]
    slot_counts = counts[vp_tasks]
    rows = np.repeat(
        np.arange(vp_indptr.size - 1, dtype=np.int64), np.diff(vp_indptr)
    )
    # ``rows`` indexes the CSR rows of this call; ``workers`` are the
    # matching quality-store ids (identical unless the caller scores a
    # row subset, e.g. the per-worker mid-round rescan).
    workers = rows if worker_ids is None else worker_ids[rows]
    is_current = current_tasks[rows] == vp_tasks
    needs_scalar = (slot_counts + 1 > capacities[vp_tasks]) | (slot_counts >= limit)
    is_zero = ~needs_scalar & ((slot_counts == 0) | (slot_counts + 1 < minimum))
    batchable = ~(needs_scalar | is_zero) & ~is_current

    codes[needs_scalar] = CODE_SCALAR
    codes[is_current] = CODE_CURRENT
    zero_only = is_zero & ~is_current
    values[zero_only] = 0.0 - revenues[vp_tasks[zero_only]]

    if batchable.any():
        b_tasks = vp_tasks[batchable]
        b_workers = workers[batchable]
        b_lengths = slot_counts[batchable]
        b_starts = mem_indptr[b_tasks]
        width = int(b_lengths.max())
        offsets = np.arange(width, dtype=np.intp)
        index = b_starts[:, None] + offsets[None, :]
        lane = offsets[None, :] < b_lengths[:, None]
        np.minimum(index, max(mem_flat.size - 1, 0), out=index)
        member = mem_flat[index]
        if buffers.is_dense:
            dense = buffers.dense
            row_vals = dense[b_workers[:, None], member]
            col_vals = dense[member, b_workers[:, None]]
        else:
            size = np.int64(buffers.size)
            row_targets = b_workers[:, None] * size + member
            col_targets = b_workers[:, None] * size + member
            row_vals = _lookup_sorted(
                buffers.row_keys, buffers.row_values, row_targets, buffers.prior
            )
            col_vals = _lookup_sorted(
                buffers.col_keys, buffers.col_values, col_targets, buffers.prior
            )
            diagonal = member == b_workers[:, None]
            row_vals = np.where(diagonal, 0.0, row_vals)
            col_vals = np.where(diagonal, 0.0, col_vals)
        row_vals = np.where(lane, row_vals, 0.0)
        col_vals = np.where(lane, col_vals, 0.0)
        row_total = row_vals[:, 0].copy()
        col_total = col_vals[:, 0].copy()
        for column in range(1, width):
            row_total += row_vals[:, column]
            col_total += col_vals[:, column]
        cross = row_total + col_total
        new_revenue = (pair_sums[b_tasks] + cross) / b_lengths
        values[batchable] = new_revenue - revenues[b_tasks]
    return values, codes


if NUMBA_AVAILABLE:  # pragma: no cover - requires numba in the environment

    @_njit(cache=True)
    def _score_dense_njit(
        dense,
        vp_indptr,
        vp_tasks,
        mem_indptr,
        mem_flat,
        pair_sums,
        revenues,
        capacities,
        minimum,
        limit,
        current_tasks,
        worker_ids,
        values,
        codes,
    ):
        worker_count = vp_indptr.size - 1
        for row in range(worker_count):
            worker = worker_ids[row]
            current = current_tasks[row]
            for slot in range(vp_indptr[row], vp_indptr[row + 1]):
                task = vp_tasks[slot]
                count = mem_indptr[task + 1] - mem_indptr[task]
                if task == current:
                    codes[slot] = 2
                    values[slot] = 0.0
                elif count + 1 > capacities[task] or count >= limit:
                    codes[slot] = 1
                    values[slot] = 0.0
                elif count == 0 or count + 1 < minimum:
                    codes[slot] = 0
                    values[slot] = 0.0 - revenues[task]
                else:
                    row_total = 0.0
                    col_total = 0.0
                    for position in range(mem_indptr[task], mem_indptr[task + 1]):
                        member = mem_flat[position]
                        row_total += dense[worker, member]
                        col_total += dense[member, worker]
                    codes[slot] = 0
                    values[slot] = (
                        pair_sums[task] + (row_total + col_total)
                    ) / count - revenues[task]

    @_njit(cache=True)
    def _sparse_pair_njit(keys, vals, target, prior):
        low = 0
        high = keys.size
        while low < high:
            mid = (low + high) // 2
            if keys[mid] < target:
                low = mid + 1
            else:
                high = mid
        if low < keys.size and keys[low] == target:
            return vals[low]
        return prior

    @_njit(cache=True)
    def _score_csr_njit(
        size,
        row_keys,
        row_values,
        col_keys,
        col_values,
        prior,
        vp_indptr,
        vp_tasks,
        mem_indptr,
        mem_flat,
        pair_sums,
        revenues,
        capacities,
        minimum,
        limit,
        current_tasks,
        worker_ids,
        values,
        codes,
    ):
        worker_count = vp_indptr.size - 1
        for row in range(worker_count):
            worker = worker_ids[row]
            current = current_tasks[row]
            for slot in range(vp_indptr[row], vp_indptr[row + 1]):
                task = vp_tasks[slot]
                count = mem_indptr[task + 1] - mem_indptr[task]
                if task == current:
                    codes[slot] = 2
                    values[slot] = 0.0
                elif count + 1 > capacities[task] or count >= limit:
                    codes[slot] = 1
                    values[slot] = 0.0
                elif count == 0 or count + 1 < minimum:
                    codes[slot] = 0
                    values[slot] = 0.0 - revenues[task]
                else:
                    row_total = 0.0
                    col_total = 0.0
                    for position in range(mem_indptr[task], mem_indptr[task + 1]):
                        member = mem_flat[position]
                        if member == worker:
                            continue
                        target = worker * size + member
                        row_total += _sparse_pair_njit(
                            row_keys, row_values, target, prior
                        )
                        col_total += _sparse_pair_njit(
                            col_keys, col_values, target, prior
                        )
                    codes[slot] = 0
                    values[slot] = (
                        pair_sums[task] + (row_total + col_total)
                    ) / count - revenues[task]


    @_njit(cache=True)
    def _group_symmetric_dense_njit(dense, index, out):
        n = index.size
        for i in range(n):
            a = index[i]
            for j in range(n):
                b = index[j]
                out[i, j] = dense[a, b] + dense[b, a]

    @_njit(cache=True)
    def _group_symmetric_csr_njit(size, row_keys, row_values, prior, index, out):
        n = index.size
        for i in range(n):
            a = index[i]
            for j in range(n):
                if i == j:
                    out[i, j] = 0.0
                    continue
                b = index[j]
                forward = _sparse_pair_njit(
                    row_keys, row_values, a * size + b, prior
                )
                backward = _sparse_pair_njit(
                    row_keys, row_values, b * size + a, prior
                )
                out[i, j] = forward + backward

    @_njit(cache=True)
    def _greedy_group_njit(symmetric, size, chosen):
        # Scalar transliteration of greedy_group_select: row-major
        # first-max seed pair, then argmax cross-sum growth. Identical
        # float additions in identical order.
        count = symmetric.shape[0]
        for i in range(count):
            symmetric[i, i] = -np.inf
        best = -np.inf
        flat = 0
        for i in range(count):
            for j in range(count):
                if symmetric[i, j] > best:
                    best = symmetric[i, j]
                    flat = i * count + j
        first = flat // count
        second = flat - first * count
        chosen[0] = first
        chosen[1] = second
        cross = np.empty(count, dtype=np.float64)
        for c in range(count):
            add = symmetric[second, c]
            if not np.isfinite(add):
                add = 0.0
            cross[c] = symmetric[first, c] + add
        cross[first] = -np.inf
        cross[second] = -np.inf
        pair_sum = symmetric[first, second]
        n_chosen = 2
        while n_chosen < size:
            nxt = 0
            best = -np.inf
            for c in range(count):
                if cross[c] > best:
                    best = cross[c]
                    nxt = c
            if not np.isfinite(cross[nxt]):
                chosen[0] = -1
                return 0.0
            pair_sum += cross[nxt]
            chosen[n_chosen] = nxt
            n_chosen += 1
            for c in range(count):
                add = symmetric[nxt, c]
                if not np.isfinite(add):
                    add = 0.0
                cross[c] += add
            cross[nxt] = -np.inf
        return pair_sum

    @_njit(cache=True)
    def _peel_small_njit(sub, size, keep):
        # Scalar transliteration of _peel_small_numpy: strictly
        # sequential per-survivor row/column sums (the sub-cliff regime,
        # where a leading/interleaved +0.0 never changes a partial sum of
        # non-negative qualities), ties peel the last surviving position.
        n = sub.shape[0]
        remaining = 0
        for i in range(n):
            if keep[i] != 0:
                remaining += 1
        while remaining > size:
            weakest = -1
            weakest_score = np.inf
            for i in range(n):
                if keep[i] == 0:
                    continue
                row_total = 0.0
                col_total = 0.0
                for j in range(n):
                    if keep[j] == 0:
                        continue
                    row_total += sub[i, j]
                    col_total += sub[j, i]
                score = row_total + col_total
                if score <= weakest_score:
                    weakest = i
                    weakest_score = score
            keep[weakest] = 0
            remaining -= 1

    @_njit(cache=True)
    def _exact_group_njit(symmetric, combos, chosen):
        # Scalar transliteration of exact_group_select: per combination,
        # accumulate the position pairs in lexicographic order starting
        # from the first pair's value; first-max wins.
        n = combos.shape[0]
        size = combos.shape[1]
        best_val = -np.inf
        best_row = 0
        for r in range(n):
            total = symmetric[combos[r, 0], combos[r, 1]]
            for i in range(size):
                for j in range(i + 1, size):
                    if i == 0 and j == 1:
                        continue
                    total = total + symmetric[combos[r, i], combos[r, j]]
            if total > best_val:
                best_val = total
                best_row = r
        for k in range(size):
            chosen[k] = combos[best_row, k]
        return best_val


#: One-off compile bookkeeping: numba compiles lazily on first call, so
#: the first invocation's wall time includes compilation (or a disk
#: cache load). Recorded once per process and surfaced through
#: ``SolverStats.kernel_compile_seconds``.
_compile_seconds_pending: dict[str, bool] = {
    "dense": True,
    "csr": True,
    "group_dense": True,
    "group_csr": True,
    "peel": True,
}


def score_candidates(
    buffers: KernelBuffers,
    vp_indptr: np.ndarray,
    vp_tasks: np.ndarray,
    mem_indptr: np.ndarray,
    mem_flat: np.ndarray,
    pair_sums: np.ndarray,
    revenues: np.ndarray,
    capacities: np.ndarray,
    minimum: int,
    limit: int,
    current_tasks: np.ndarray,
    stats=None,
    worker_ids: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Score every (worker, candidate-task) slot of the validity CSR.

    Returns ``(values, codes)`` — one float and one classification code
    (:data:`CODE_VALUE` / :data:`CODE_SCALAR` / :data:`CODE_CURRENT`)
    per slot of ``vp_tasks``. Values for non-``CODE_VALUE`` slots are
    placeholders the caller must fill (scalar peel / ``leave_delta``).

    ``worker_ids`` maps CSR rows to quality-store worker ids when the
    call covers a subset of workers (one row per rescanned worker, as in
    the mid-round rescan path); by default row ``i`` *is* worker ``i``.
    ``current_tasks`` is always indexed by row.

    Dispatches to the compiled numba kernel when available, else to the
    vectorized numpy fallback; both produce bit-identical floats. The
    optional ``stats`` (a :class:`~repro.core.stats.SolverStats`) counts
    dispatches and the one-off compile time.
    """
    if NUMBA_AVAILABLE:
        slots = vp_tasks.size
        values = np.zeros(slots, dtype=np.float64)
        codes = np.zeros(slots, dtype=np.uint8)
        variant = "dense" if buffers.is_dense else "csr"
        row_workers = (
            np.arange(vp_indptr.size - 1, dtype=np.int64)
            if worker_ids is None
            else np.ascontiguousarray(worker_ids, dtype=np.int64)
        )
        started = time.perf_counter()
        if buffers.is_dense:
            _score_dense_njit(
                np.ascontiguousarray(buffers.dense, dtype=np.float64),
                vp_indptr,
                vp_tasks,
                mem_indptr,
                mem_flat,
                pair_sums,
                revenues,
                capacities,
                np.int64(minimum),
                np.int64(limit),
                current_tasks,
                row_workers,
                values,
                codes,
            )
        else:
            _score_csr_njit(
                np.int64(buffers.size),
                buffers.row_keys,
                buffers.row_values,
                buffers.col_keys,
                buffers.col_values,
                np.float64(buffers.prior),
                vp_indptr,
                vp_tasks,
                mem_indptr,
                mem_flat,
                pair_sums,
                revenues,
                capacities,
                np.int64(minimum),
                np.int64(limit),
                current_tasks,
                row_workers,
                values,
                codes,
            )
        if stats is not None:
            stats.kernel_compiled_calls += 1
            if _compile_seconds_pending[variant]:
                stats.kernel_compile_seconds += time.perf_counter() - started
        _compile_seconds_pending[variant] = False
        return values, codes

    values, codes = _score_candidates_numpy(
        buffers,
        vp_indptr,
        vp_tasks,
        mem_indptr,
        mem_flat,
        pair_sums,
        revenues,
        capacities,
        minimum,
        limit,
        current_tasks,
        worker_ids=worker_ids,
    )
    if stats is not None:
        stats.kernel_fallback_calls += 1
    return values, codes


def best_group(
    buffers: KernelBuffers,
    candidates,
    size: int,
    table=None,
    stats=None,
) -> tuple[list[int], float]:
    """The TPG stage-1 kernel: best ``size``-group among ``candidates``.

    Gathers the candidate pair submatrix from the flat quality buffers
    and runs the group selection — greedy by default, exhaustive when
    ``table`` (a :func:`repro.core.tpg._combo_table` entry for the tiny
    candidate counts) is given. Returns ``(group, Q)`` with global
    worker ids in selection order and the Equation 2 revenue, exactly
    like ``tpg.greedy_best_group`` — the floats are bit-identical to the
    store-backed path (same gathered values, same operation order),
    compiled with numba when available, shared numpy code otherwise.

    The caller is responsible for the ``len(candidates) >= size >= 2``
    precondition and for choosing greedy vs. exact; this function only
    evaluates. ``stats`` counts dispatches like :func:`score_candidates`.
    """
    index = np.asarray(candidates, dtype=np.int64)
    count = index.size
    divisor = size - 1
    if NUMBA_AVAILABLE:  # pragma: no cover - requires numba
        variant = "group_dense" if buffers.is_dense else "group_csr"
        started = time.perf_counter()
        symmetric = np.empty((count, count), dtype=np.float64)
        if buffers.is_dense:
            _group_symmetric_dense_njit(
                np.ascontiguousarray(buffers.dense, dtype=np.float64),
                index,
                symmetric,
            )
        else:
            _group_symmetric_csr_njit(
                np.int64(buffers.size),
                buffers.row_keys,
                buffers.row_values,
                np.float64(buffers.prior),
                index,
                symmetric,
            )
        chosen = np.empty(size, dtype=np.int64)
        if table is not None:
            combos = table[0]
            pair_sum = _exact_group_njit(
                symmetric, np.ascontiguousarray(combos, dtype=np.int64), chosen
            )
            result = (
                [int(index[local]) for local in chosen],
                float(pair_sum) / divisor,
            )
        else:
            pair_sum = _greedy_group_njit(symmetric, np.int64(size), chosen)
            if chosen[0] < 0:
                result = ([], 0.0)
            else:
                result = (
                    [int(index[local]) for local in chosen],
                    float(pair_sum) / divisor,
                )
        if stats is not None:
            stats.kernel_compiled_calls += 1
            if _compile_seconds_pending[variant]:
                stats.kernel_compile_seconds += time.perf_counter() - started
        _compile_seconds_pending[variant] = False
        return result

    symmetric = gather_symmetric(buffers, index)
    if stats is not None:
        stats.kernel_fallback_calls += 1
    if table is not None:
        combos, pair_columns = table
        best, pair_sum = exact_group_select(symmetric, pair_columns)
        return [int(index[local]) for local in combos[best]], pair_sum / divisor
    selection = greedy_group_select(symmetric, size)
    if selection is None:
        return [], 0.0
    chosen, pair_sum = selection
    return [int(index[local]) for local in chosen], pair_sum / divisor
