"""Cooperation quality revenue — Equations 2 and 4.

``Q(W_j)`` is zero below the minimum group size ``B``, and otherwise the
ordered pair-quality sum divided by ``min(|W_j|, a_j) - 1``. When more
than ``a_j`` workers are attached to a task, only the best ``a_j``-subset
counts (the requester pays at most ``a_j`` workers). Finding that subset
is the NP-hard maximum-weight k-induced-subgraph problem, so
:func:`best_counted_subset` uses deterministic greedy peeling — groups are
tiny (``a_j <= 6`` in all experiments), and determinism is what keeps the
CA-SC game an *exact* potential game (see ``repro.core.game``).

:class:`RevenueCache` is the incremental engine behind every solver hot
path: it maintains per-task pair sums, revenues and (for overflowing
tasks) the counted best-``a_j``-subset across join/leave/exchange moves,
so Equation 4's delta form replaces from-scratch Equation 2 re-sums. It
also counts how often each path runs, feeding
:class:`~repro.core.stats.SolverStats`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.kernels import (
    DEFAULT_KERNEL,
    counted_subset_select,
    ensure_pairwise_cliff,
    ordered_row_sums,
    resolve_kernel,
)
from repro.core.quality import CooperationMatrix
from repro.core.quality_store import QualityStore

__all__ = [
    "RevenueCache",
    "group_revenue",
    "best_counted_subset",
    "marginal_gain",
    "removal_delta",
    "worker_average_quality",
]

#: Group sizes up to this bound use the vectorized peeling kernel. Above
#: it the scalar reference loop runs instead: numpy sums arrays of eight
#: or more elements (``kernels.PAIRWISE_CLIFF``) with pairwise
#: (block-unrolled) accumulation, so the submatrix row sums would stop
#: being bit-identical to the per-member ``cross_sum`` calls — and
#: bit-identical contributions are what keeps the peel order (hence the
#: potential function) unchanged. ``kernels.ensure_pairwise_cliff``
#: verifies at first use that numpy still honors this boundary.
_VECTOR_PEEL_LIMIT = 7


def best_counted_subset(
    quality: QualityStore,
    members: Sequence[int],
    size: int,
    kernel: str = DEFAULT_KERNEL,
) -> list[int]:
    """The (approximately) best ``size``-subset of ``members``.

    Greedy peeling: repeatedly remove the member with the smallest
    ordered-pair contribution to the rest. Ties are broken by peeling the
    *highest* worker index, so the lower-indexed worker survives — the
    result, and therefore the revenue function, is deterministic. (This
    tie-break is part of the potential function's definition; changing it
    would change which equilibria the game reaches.)

    ``kernel="native"`` evaluates the whole peel through
    :func:`~repro.core.kernels.counted_subset_select` — one bulk gather
    of the master submatrix plus a compiled (numba when available)
    endgame — with bit-identical floats and tie-breaks; ``"python"``
    keeps this scalar oracle.

    Returns the members themselves when ``size >= len(members)``.
    """
    if size < 0:
        raise ValueError(f"size must be non-negative, got {size}")
    kept = sorted(members)
    if len(kept) != len(set(kept)):
        raise ValueError(f"duplicate members: {sorted(members)}")
    if resolve_kernel(kernel) == "native":
        return counted_subset_select(quality.as_kernel_buffers(), kept, size)
    ensure_pairwise_cliff()
    while len(kept) > size:
        if len(kept) <= _VECTOR_PEEL_LIMIT:
            index = np.asarray(kept, dtype=np.intp)
            sub = quality.gather(index)
            # The diagonal is exactly 0.0, so including it keeps every
            # partial sum bit-identical to cross_sum over the others.
            # ordered_row_sums is the shared ordered-accumulation helper
            # (bit-identical to sub.sum(axis=1)/sum(axis=0) below the
            # pairwise cliff — the only regime this branch handles).
            contributions = ordered_row_sums(sub) + ordered_row_sums(sub.T)
            minimum = contributions.min()
            # Ties peel the highest index; kept is sorted ascending, so
            # that is the last position attaining the minimum.
            weakest = int(np.flatnonzero(contributions == minimum)[-1])
        else:
            scored = [
                (quality.cross_sum(worker, [k for k in kept if k != worker]), -worker)
                for worker in kept
            ]
            weakest = min(range(len(kept)), key=lambda idx: scored[idx])
        kept.pop(weakest)
    return kept


def group_revenue(
    quality: QualityStore,
    members: Sequence[int],
    capacity: int,
    min_group_size: int,
    kernel: str = DEFAULT_KERNEL,
) -> float:
    """``Q(W_j)`` of Equation 2.

    * ``0`` when fewer than ``min_group_size`` (``B``) members;
    * ``0`` for a singleton group (one member has no cooperation pairs,
      so Equation 2's numerator is empty — reachable when ``B <= 1``);
    * ordered pair sum divided by ``|W_j| - 1`` when within capacity;
    * revenue of the best ``capacity``-subset when over capacity.

    >>> q = CooperationMatrix([[0, 1, 1], [1, 0, 1], [1, 1, 0]])
    >>> group_revenue(q, [0, 1, 2], capacity=3, min_group_size=2)
    3.0
    """
    count = len(members)
    if count < min_group_size:
        return 0.0
    if count > capacity:
        members = best_counted_subset(quality, members, capacity, kernel=kernel)
        count = capacity
    if count < 2:
        return 0.0
    return quality.ordered_pair_sum(members) / (count - 1)


def marginal_gain(
    quality: QualityStore,
    members: Sequence[int],
    worker: int,
    capacity: int,
    min_group_size: int,
) -> float:
    """``DeltaQ(w_i, t_j) = Q(W_j + {w_i}) - Q(W_j)`` (Equation 4 applied
    to a prospective join).

    ``members`` must not already contain ``worker``. The gain can be
    negative — a poorly-matched worker dilutes the per-member average —
    and is zero when even with the newcomer the group stays below ``B``.
    """
    if worker in members:
        raise ValueError(f"worker {worker} already in the group")
    before = group_revenue(quality, members, capacity, min_group_size)
    after = group_revenue(quality, [*members, worker], capacity, min_group_size)
    return after - before


def removal_delta(
    quality: QualityStore,
    members: Sequence[int],
    worker: int,
    capacity: int,
    min_group_size: int,
) -> float:
    """``Q(W_j) - Q(W_j - {w_i})`` — the utility a member currently
    derives from staying (Equation 5 evaluated at the current strategy)."""
    if worker not in members:
        raise ValueError(f"worker {worker} not in the group")
    with_worker = group_revenue(quality, members, capacity, min_group_size)
    rest = [m for m in members if m != worker]
    without_worker = group_revenue(quality, rest, capacity, min_group_size)
    return with_worker - without_worker


def worker_average_quality(
    quality: QualityStore, worker: int, members: Sequence[int], capacity: int
) -> float:
    """``q_i(W_j)`` — a member's average quality within the group.

    Defined in Section II as the member's quality sum over the other
    members divided by ``min(|W_j|, a_j) - 1``; the paper interprets it as
    the expected revenue from hiring that worker.
    """
    others = [m for m in members if m != worker]
    if not others:
        return 0.0
    denominator = min(len(members), capacity) - 1
    if denominator <= 0:
        return 0.0
    total = sum(quality.pair(worker, other) for other in others)
    return total / denominator


class RevenueCache:
    """Incremental Equation-2 state for every task group of one batch.

    The cache owns, per task: the member list, the ordered pair sum
    (Equation 2's numerator), the resulting revenue, and — for tasks over
    capacity — the counted best-``a_j``-subset. A join or leave updates
    the pair sum with one ``cross_sum`` (Equation 4's delta form) instead
    of re-summing the group; only overflowing tasks fall back to the
    peeling evaluation, and their counted subset is cached for reuse by
    the LUB invalidation rules and the final capacity clamp.

    Determinism contract: every arithmetic step matches the from-scratch
    evaluation bit-for-bit for the group sizes the experiments use
    (``a_j <= 6``), because identical floats are what keep best-response
    dynamics an exact potential game (Theorem V.1). The hypothesis state
    machine in ``tests/test_stateful.py`` drives random join/leave/
    exchange sequences — including overflow states — asserting the cache
    never drifts from :func:`group_revenue`.

    Observability: ``full_evaluations`` counts from-scratch Equation 2
    evaluations (the expensive path), ``incremental_updates`` the O(k)
    delta updates; :class:`~repro.core.stats.SolverStats` snapshots both.
    """

    __slots__ = (
        "quality",
        "min_group_size",
        "capacities",
        "pair_sums",
        "revenues",
        "counts",
        "versions",
        "_members",
        "_member_arrays",
        "_counted",
        "kernel",
        "full_evaluations",
        "incremental_updates",
        "peel_kernel_calls",
    )

    def __init__(
        self,
        quality: QualityStore,
        capacities: Sequence[int],
        min_group_size: int,
    ) -> None:
        task_count = len(capacities)
        self.quality = quality
        self.min_group_size = min_group_size
        self.capacities = np.asarray(capacities, dtype=np.int64)
        self.pair_sums = np.zeros(task_count)
        self.revenues = np.zeros(task_count)
        self.counts = np.zeros(task_count, dtype=np.int64)
        #: Per-task membership version, bumped on every join/leave/clear.
        #: Lets callers memoize pure functions of a task's membership
        #: (e.g. overflow join gains) and invalidate by integer compare.
        self.versions: list[int] = [0] * task_count
        self._members: list[list[int]] = [[] for _ in range(task_count)]
        self._member_arrays: list[np.ndarray | None] = [None] * task_count
        self._counted: list[tuple[int, ...] | None] = [None] * task_count
        #: Peel dispatch path for the overflow evaluations: ``"python"``
        #: (the scalar oracle, default) or ``"native"`` (the bulk-gather
        #: kernel). Solvers running with ``kernel="native"`` set this so
        #: the RevenueCache's own overflow paths ride the same kernel;
        #: results are bit-identical either way.
        self.kernel = DEFAULT_KERNEL
        self.full_evaluations = 0
        self.incremental_updates = 0
        #: Overflow peels dispatched through the native kernel (0 for
        #: ``kernel="python"``); surfaced via SolverStats.
        self.peel_kernel_calls = 0

    # ------------------------------------------------------------------
    # read access
    # ------------------------------------------------------------------
    @property
    def task_count(self) -> int:
        return len(self._members)

    def members(self, task: int) -> tuple[int, ...]:
        """Workers currently in the task's group (insertion order)."""
        return tuple(self._members[task])

    def member_list(self, task: int) -> list[int]:
        """Borrowed view of the member list — callers must not mutate."""
        return self._members[task]

    def member_array(self, task: int) -> np.ndarray:
        """The members as a cached numpy index array (insertion order).

        This is the gather index the vectorized best-response scorer
        uses; it is rebuilt lazily after membership changes.
        """
        array = self._member_arrays[task]
        if array is None:
            array = np.asarray(self._members[task], dtype=np.intp)
            self._member_arrays[task] = array
        return array

    def members_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """All memberships as one flat CSR pair ``(indptr, members)``.

        Segment ``indptr[j]:indptr[j+1]`` lists task ``j``'s members in
        insertion order — the exact gather order the scalar ``cross_sum``
        sums in, which the batched kernels must reproduce bit-for-bit.
        Rebuilt on demand (the kernel prepass snapshots it once per
        round, stamped by :attr:`versions`).
        """
        task_count = len(self._members)
        counts = np.fromiter(
            (len(members) for members in self._members),
            dtype=np.int64,
            count=task_count,
        )
        indptr = np.zeros(task_count + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        flat = np.empty(int(indptr[-1]), dtype=np.int64)
        for task, members in enumerate(self._members):
            flat[indptr[task] : indptr[task + 1]] = members
        return indptr, flat

    def revenue(self, task: int) -> float:
        """Cached ``Q(W_j)``."""
        return float(self.revenues[task])

    def pair_sum(self, task: int) -> float:
        """Cached Equation-2 numerator for the full member set."""
        return float(self.pair_sums[task])

    def total(self) -> float:
        """Equation 3: the summed revenue over all tasks."""
        return float(self.revenues.sum())

    def counted_subset(self, task: int) -> tuple[int, ...]:
        """The members Equation 2 counts, sorted ascending.

        Within capacity that is every member; over capacity it is the
        cached best-``a_j``-subset from the last refresh (no re-peel).
        """
        cached = self._counted[task]
        if cached is not None:
            return cached
        return tuple(sorted(self._members[task]))

    def revenue_from_scratch(self, task: int) -> float:
        """Uncached Equation 2 — the oracle the cache is tested against."""
        return group_revenue(
            self.quality,
            self._members[task],
            int(self.capacities[task]),
            self.min_group_size,
        )

    def recompute_total(self) -> float:
        """From-scratch Equation 3 (drift check / debugging).

        Every per-task revenue is recomputed by the uncached
        :func:`group_revenue`, then reduced with the same numpy pairwise
        summation :meth:`total` uses — so the result is bit-identical to
        the incremental total exactly when no per-task value drifted
        (a Python ``sum`` here would reorder the reduction and differ by
        ~1e-12 on hundreds of tasks even with perfect per-task values).
        """
        values = np.array(
            [self.revenue_from_scratch(task) for task in range(self.task_count)]
        )
        return float(values.sum())

    # ------------------------------------------------------------------
    # copying
    # ------------------------------------------------------------------
    def clone(self) -> "RevenueCache":
        """An independent deep copy of the cache's mutable state.

        The quality store is shared (it is immutable by contract); every
        per-task structure is copied so mutations on the clone never leak
        back. This method — not callers hand-copying private fields — is
        the single place that knows the cache's layout: the trailing
        ``__slots__`` sweep makes a clone that misses a newly added field
        fail loudly instead of silently dropping it.
        """
        clone = RevenueCache.__new__(RevenueCache)
        clone.quality = self.quality
        clone.min_group_size = self.min_group_size
        clone.capacities = self.capacities.copy()
        clone.pair_sums = self.pair_sums.copy()
        clone.revenues = self.revenues.copy()
        clone.counts = self.counts.copy()
        clone.versions = list(self.versions)
        clone._members = [list(members) for members in self._members]
        # Cached member arrays are rebuilt (never mutated in place), so
        # sharing the array objects themselves is safe.
        clone._member_arrays = list(self._member_arrays)
        clone._counted = list(self._counted)
        clone.kernel = self.kernel
        clone.full_evaluations = self.full_evaluations
        clone.incremental_updates = self.incremental_updates
        clone.peel_kernel_calls = self.peel_kernel_calls
        missing = [
            name for name in RevenueCache.__slots__ if not hasattr(clone, name)
        ]
        if missing:
            raise AttributeError(
                f"RevenueCache.clone() does not copy {missing}; update it "
                "alongside the new field(s)"
            )
        return clone

    def state_dict(self) -> dict:
        """Every field of the cache, keyed by slot name.

        Comparison-friendly snapshot for the audit harness and the clone
        round-trip test: covers ``__slots__`` exhaustively, so a field
        added by a future PR shows up here (and in the clone test)
        automatically.
        """
        return {name: getattr(self, name) for name in RevenueCache.__slots__}

    # ------------------------------------------------------------------
    # mutation — Equation 4's delta form
    # ------------------------------------------------------------------
    def join(self, worker: int, task: int) -> None:
        """Add ``worker`` to the task, updating the pair sum by one
        ``cross_sum`` instead of re-summing the group."""
        members = self._members[task]
        self.pair_sums[task] += self.quality.cross_sum(worker, members)
        members.append(worker)
        self.counts[task] += 1
        self.versions[task] += 1
        self._member_arrays[task] = None
        self.incremental_updates += 1
        self._refresh(task)

    def leave(self, worker: int, task: int) -> None:
        """Remove ``worker`` from the task (incremental pair-sum delta)."""
        members = self._members[task]
        members.remove(worker)
        self.pair_sums[task] -= self.quality.cross_sum(worker, members)
        self.counts[task] -= 1
        self.versions[task] += 1
        self._member_arrays[task] = None
        self.incremental_updates += 1
        self._refresh(task)

    def exchange(self, task: int, leaving: int, entering: int) -> None:
        """Swap one member for another — a leave and a join in one move
        (the crowd-out exchange of Theorems V.3/V.4)."""
        self.leave(leaving, task)
        self.join(entering, task)

    def clear(self, task: int) -> None:
        """Empty a task's group and reset its cached state."""
        self._members[task] = []
        self.pair_sums[task] = 0.0
        self.revenues[task] = 0.0
        self.counts[task] = 0
        self.versions[task] += 1
        self._member_arrays[task] = None
        self._counted[task] = None

    def _peel(self, members: Sequence[int], capacity: int) -> list[int]:
        """Overflow peel through the cache's configured :attr:`kernel`."""
        if self.kernel == "native":
            self.peel_kernel_calls += 1
        return best_counted_subset(
            self.quality, members, capacity, kernel=self.kernel
        )

    def _refresh(self, task: int) -> None:
        """Recompute the task's revenue from the cached pair sum.

        Only the over-capacity branch evaluates Equation 2 from scratch
        (best-subset peel); its counted subset is cached for reuse.
        """
        members = self._members[task]
        count = len(members)
        capacity = int(self.capacities[task])
        self._counted[task] = None
        if count < self.min_group_size or count < 2:
            # Below B — or a singleton group, which has no pairs and
            # would otherwise divide by ``count - 1 == 0`` when B <= 1.
            self.revenues[task] = 0.0
        elif count <= capacity:
            self.revenues[task] = self.pair_sums[task] / (count - 1)
        else:
            kept = self._peel(members, capacity)
            self._counted[task] = tuple(kept)
            self.full_evaluations += 1
            if capacity < 2:
                self.revenues[task] = 0.0
            else:
                # ``kept`` is validated by the peel, so the unchecked
                # submatrix sum (bit-identical gather) suffices.
                self.revenues[task] = self.quality.submatrix_sum(
                    np.asarray(kept, dtype=np.intp)
                ) / (capacity - 1)

    # ------------------------------------------------------------------
    # marginal evaluations (the solvers' hot path)
    # ------------------------------------------------------------------
    def join_gain(self, worker: int, task: int) -> float:
        """``DeltaQ(w_i, t_j)`` if the (idle) worker joined ``task``.

        Fast path: within capacity the new revenue is
        ``(S + cross) / (k_new - 1)`` with the cached pair sum ``S``; only
        overflow joins fall back to the peeling evaluation.
        """
        members = self._members[task]
        new_count = len(members) + 1
        capacity = int(self.capacities[task])
        if new_count <= capacity:
            if new_count < self.min_group_size or new_count < 2:
                return 0.0 - self.revenues[task]
            cross = self.quality.cross_sum(worker, members)
            new_revenue = (self.pair_sums[task] + cross) / (new_count - 1)
        else:
            # Inlined ``group_revenue`` for the over-capacity join: peel
            # the hypothetical group, then take the unchecked submatrix
            # sum (``kept`` is validated by the peel). Arithmetic matches
            # the public function bit-for-bit; only the per-call overhead
            # (list re-validation, duplicate check) is skipped.
            if new_count < self.min_group_size or capacity < 2:
                new_revenue = 0.0
            else:
                kept = self._peel([*members, worker], capacity)
                new_revenue = self.quality.submatrix_sum(
                    np.asarray(kept, dtype=np.intp)
                ) / (capacity - 1)
            self.full_evaluations += 1
        return new_revenue - float(self.revenues[task])

    def leave_delta(self, worker: int, task: int) -> float:
        """``Q(W_j) - Q(W_j - {w_i})`` for a current member of ``task``."""
        members = self._members[task]
        count = len(members)
        capacity = int(self.capacities[task])
        current = float(self.revenues[task])
        if count - 1 < self.min_group_size or count - 1 < 2:
            # The survivors fall below B — or a lone survivor remains,
            # whose pairless group scores 0 (the B = 1 edge case).
            return current
        if count <= capacity:
            cross = self.quality.cross_sum(
                worker, [m for m in members if m != worker]
            )
            without = (self.pair_sums[task] - cross) / (count - 2)
        else:
            rest = [m for m in members if m != worker]
            if self.kernel == "native" and len(rest) > capacity:
                self.peel_kernel_calls += 1
            without = group_revenue(
                self.quality,
                rest,
                capacity,
                self.min_group_size,
                kernel=self.kernel,
            )
            self.full_evaluations += 1
        return current - without
