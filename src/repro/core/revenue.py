"""Cooperation quality revenue — Equations 2 and 4.

``Q(W_j)`` is zero below the minimum group size ``B``, and otherwise the
ordered pair-quality sum divided by ``min(|W_j|, a_j) - 1``. When more
than ``a_j`` workers are attached to a task, only the best ``a_j``-subset
counts (the requester pays at most ``a_j`` workers). Finding that subset
is the NP-hard maximum-weight k-induced-subgraph problem, so
:func:`best_counted_subset` uses deterministic greedy peeling — groups are
tiny (``a_j <= 6`` in all experiments), and determinism is what keeps the
CA-SC game an *exact* potential game (see ``repro.core.game``).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.quality import CooperationMatrix

__all__ = [
    "group_revenue",
    "best_counted_subset",
    "marginal_gain",
    "removal_delta",
    "worker_average_quality",
]


def best_counted_subset(
    quality: CooperationMatrix, members: Sequence[int], size: int
) -> list[int]:
    """The (approximately) best ``size``-subset of ``members``.

    Greedy peeling: repeatedly remove the member with the smallest
    ordered-pair contribution to the rest, until ``size`` remain. Ties are
    broken by the lower worker index so the result — and therefore the
    revenue function — is deterministic.

    Returns the members themselves when ``size >= len(members)``.
    """
    if size < 0:
        raise ValueError(f"size must be non-negative, got {size}")
    kept = sorted(members)
    if len(kept) != len(set(kept)):
        raise ValueError(f"duplicate members: {sorted(members)}")
    while len(kept) > size:
        contributions = [
            (quality.cross_sum(worker, [k for k in kept if k != worker]), -worker)
            for worker in kept
        ]
        weakest = min(range(len(kept)), key=lambda idx: contributions[idx])
        kept.pop(weakest)
    return kept


def group_revenue(
    quality: CooperationMatrix,
    members: Sequence[int],
    capacity: int,
    min_group_size: int,
) -> float:
    """``Q(W_j)`` of Equation 2.

    * ``0`` when fewer than ``min_group_size`` (``B``) members;
    * ordered pair sum divided by ``|W_j| - 1`` when within capacity;
    * revenue of the best ``capacity``-subset when over capacity.

    >>> q = CooperationMatrix([[0, 1, 1], [1, 0, 1], [1, 1, 0]])
    >>> group_revenue(q, [0, 1, 2], capacity=3, min_group_size=2)
    3.0
    """
    count = len(members)
    if count < min_group_size:
        return 0.0
    if count > capacity:
        members = best_counted_subset(quality, members, capacity)
        count = capacity
    return quality.ordered_pair_sum(members) / (count - 1)


def marginal_gain(
    quality: CooperationMatrix,
    members: Sequence[int],
    worker: int,
    capacity: int,
    min_group_size: int,
) -> float:
    """``DeltaQ(w_i, t_j) = Q(W_j + {w_i}) - Q(W_j)`` (Equation 4 applied
    to a prospective join).

    ``members`` must not already contain ``worker``. The gain can be
    negative — a poorly-matched worker dilutes the per-member average —
    and is zero when even with the newcomer the group stays below ``B``.
    """
    if worker in members:
        raise ValueError(f"worker {worker} already in the group")
    before = group_revenue(quality, members, capacity, min_group_size)
    after = group_revenue(quality, [*members, worker], capacity, min_group_size)
    return after - before


def removal_delta(
    quality: CooperationMatrix,
    members: Sequence[int],
    worker: int,
    capacity: int,
    min_group_size: int,
) -> float:
    """``Q(W_j) - Q(W_j - {w_i})`` — the utility a member currently
    derives from staying (Equation 5 evaluated at the current strategy)."""
    if worker not in members:
        raise ValueError(f"worker {worker} not in the group")
    with_worker = group_revenue(quality, members, capacity, min_group_size)
    rest = [m for m in members if m != worker]
    without_worker = group_revenue(quality, rest, capacity, min_group_size)
    return with_worker - without_worker


def worker_average_quality(
    quality: CooperationMatrix, worker: int, members: Sequence[int], capacity: int
) -> float:
    """``q_i(W_j)`` — a member's average quality within the group.

    Defined in Section II as the member's quality sum over the other
    members divided by ``min(|W_j|, a_j) - 1``; the paper interprets it as
    the expected revenue from hiring that worker.
    """
    others = [m for m in members if m != worker]
    if not others:
        return 0.0
    denominator = min(len(members), capacity) - 1
    if denominator <= 0:
        return 0.0
    total = sum(quality.pair(worker, other) for other in others)
    return total / denominator
