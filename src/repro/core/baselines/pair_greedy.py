"""PGREEDY — pure pair-greedy assignment (TPG stage-2 ablation).

Runs TPG's second stage from an empty assignment: repeatedly commit the
single valid worker-task pair with the highest marginal gain
``DeltaQ(w_i, t_j)``, with no task-priority seeding stage. Because every
group starts below the minimum size ``B`` (where marginal gains are 0
until the B-th member arrives), the plain greedy needs a look-ahead to
get off the ground: a pair's priority falls back to the worker's mean
quality toward the task's current members when the gain is zero.

This baseline isolates the contribution of TPG's stage 1: on
community-structured instances it trails TPG because it strands partial
groups, exactly the failure mode the task-priority stage prevents.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.assignment import Assignment
from repro.core.model import Instance
from repro.core.validity import ValidPairs, compute_valid_pairs

__all__ = ["solve_pair_greedy"]


def _priority(assignment: Assignment, worker: int, task: int) -> float:
    """Marginal gain, with a sub-B look-ahead tiebreaker.

    Below ``B`` the true gain is 0 for all joins; prioritizing by the
    worker's cross-quality to the present members steers partial groups
    toward coherent teams.
    """
    gain = assignment.join_gain(worker, task)
    if gain > 0.0:
        return gain
    members = assignment.members(task)
    if not members:
        return 0.0
    cross = assignment.instance.quality.cross_sum(worker, list(members))
    return cross / (2.0 * len(members)) * 1e-6


def solve_pair_greedy(
    instance: Instance,
    valid_pairs: ValidPairs | None = None,
) -> Assignment:
    """Greedy max-gain pair selection without task-priority seeding."""
    if valid_pairs is None:
        valid_pairs = compute_valid_pairs(instance)
    assignment = Assignment(instance, valid_pairs)
    available = np.ones(instance.worker_count, dtype=bool)
    open_tasks = set(range(instance.task_count))

    versions = [0] * instance.task_count
    heap: list[tuple[float, int, int, int]] = []

    def push_task(task: int) -> None:
        for worker in valid_pairs.workers_for_task[task]:
            if available[worker]:
                heapq.heappush(
                    heap,
                    (-_priority(assignment, worker, task), versions[task], worker, task),
                )

    for task in open_tasks:
        push_task(task)

    while heap and open_tasks:
        negative_priority, version, worker, task = heapq.heappop(heap)
        if task not in open_tasks or not available[worker]:
            continue
        if version != versions[task]:
            continue
        assignment.assign(worker, task)
        available[worker] = False
        versions[task] += 1
        if assignment.assigned_count(task) >= instance.tasks[task].capacity:
            open_tasks.discard(task)
        else:
            push_task(task)

    assignment.drop_incomplete_groups()
    return assignment
