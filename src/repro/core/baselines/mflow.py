"""MFLOW baseline — the GeoCrowd [11] maximum-flow assignment.

Each batch becomes a flow network ``source -> worker (cap 1) -> valid
task (cap a_j) -> sink``; the integral maximum flow yields the assignment
with the largest number of valid worker-task pairs. Cooperation scores
play no role — which is exactly why the paper uses it as the
cooperation-oblivious reference point.

After the flow solve, groups that received fewer than ``B`` workers are
dissolved (their revenue would be zero and GeoCrowd has no notion of a
minimum group size); the freed workers are greedily re-offered to
still-open tasks to keep the baseline from wasting capacity, mirroring
how [11] iterates until no augmenting structure remains.
"""

from __future__ import annotations

from repro.core.assignment import Assignment
from repro.core.model import Instance
from repro.core.validity import ValidPairs, compute_valid_pairs
from repro.flow.bipartite import max_bipartite_assignment

__all__ = ["solve_mflow"]

_MAX_REFILL_PASSES = 4


def solve_mflow(
    instance: Instance,
    valid_pairs: ValidPairs | None = None,
) -> Assignment:
    """Maximize the number of assigned pairs via max-flow."""
    if valid_pairs is None:
        valid_pairs = compute_valid_pairs(instance)
    assignment = Assignment(instance, valid_pairs)

    flow_assignment, _ = max_bipartite_assignment(
        instance.worker_count,
        instance.task_count,
        valid_pairs.tasks_for_worker,
        instance.capacities(),
    )
    for worker, task in flow_assignment.items():
        assignment.assign(worker, task)

    _dissolve_and_refill(instance, valid_pairs, assignment)
    return assignment


def _dissolve_and_refill(
    instance: Instance, valid_pairs: ValidPairs, assignment: Assignment
) -> None:
    """Dissolve sub-``B`` groups and re-run the flow over the remainder."""
    for _ in range(_MAX_REFILL_PASSES):
        freed = assignment.drop_incomplete_groups()
        if not freed:
            return
        # Tasks that already run keep their capacity slack open; tasks that
        # were dissolved need at least B of the freed/idle workers.
        idle = [
            worker
            for worker in range(instance.worker_count)
            if not assignment.is_assigned(worker)
        ]
        open_capacity = []
        open_tasks = []
        for task in range(instance.task_count):
            count = assignment.assigned_count(task)
            capacity = instance.tasks[task].capacity
            if count >= instance.min_group_size and count < capacity:
                open_tasks.append(task)
                open_capacity.append(capacity - count)
            elif count == 0:
                open_tasks.append(task)
                open_capacity.append(capacity)
        if not open_tasks or not idle:
            return
        task_position = {task: position for position, task in enumerate(open_tasks)}
        idle_valid = [
            [
                task_position[task]
                for task in valid_pairs.tasks_for_worker[worker]
                if task in task_position
            ]
            for worker in idle
        ]
        refill, value = max_bipartite_assignment(
            len(idle), len(open_tasks), idle_valid, open_capacity
        )
        if value == 0:
            return
        for local_worker, local_task in refill.items():
            assignment.assign(idle[local_worker], open_tasks[local_task])
