"""Baseline assignment strategies the paper compares against.

* :func:`~repro.core.baselines.random_assign.solve_random` — RAND: random
  task order, random valid workers.
* :func:`~repro.core.baselines.mflow.solve_mflow` — MFLOW: the GeoCrowd
  max-flow assignment maximizing the number of worker-task pairs.
"""

from repro.core.baselines.mflow import solve_mflow
from repro.core.baselines.random_assign import solve_random

__all__ = ["solve_mflow", "solve_random"]
