"""WFLOW — a quality-proxy weighted-flow baseline (extension).

MFLOW maximizes the *number* of assigned pairs and ignores cooperation
entirely. A natural stronger-but-still-flow-shaped baseline weights each
worker by a quality proxy — the Lemma V.2 score ``q_hat_{i,B}`` (the
worker's best possible average quality in any group) — and computes,
among maximum-cardinality assignments, one maximizing the summed proxy.

This is the strongest baseline expressible with edge-separable weights:
pairwise cooperation *within* a group cannot be captured that way (it is
exactly the NP-hard part), so WFLOW bounds what flow-shaped methods can
do and isolates how much of TPG/GT's advantage comes from true pairwise
reasoning rather than from merely preferring good workers.

Because the weights sit on *workers only*, the feasible worker sets form
a transversal matroid and the optimum is found greedily: process workers
in descending proxy weight, adding each via a Kuhn-style augmenting path
when one exists. This is exactly equivalent to the min-cost max-flow
formulation (asserted by tests against :mod:`repro.flow.mincost`) but
runs orders of magnitude faster at the paper's scales.
"""

from __future__ import annotations

from repro.core.assignment import Assignment
from repro.core.bounds import highest_average_quality
from repro.core.model import Instance
from repro.core.validity import ValidPairs, compute_valid_pairs

__all__ = ["solve_wflow"]


def solve_wflow(
    instance: Instance,
    valid_pairs: ValidPairs | None = None,
) -> Assignment:
    """Maximize assigned pairs, then summed per-worker quality proxies."""
    if valid_pairs is None:
        valid_pairs = compute_valid_pairs(instance)
    assignment = Assignment(instance, valid_pairs)
    if instance.worker_count == 0 or instance.task_count == 0:
        return assignment

    q_hat = [
        highest_average_quality(instance.quality, worker, instance.min_group_size)
        for worker in range(instance.worker_count)
    ]
    # Greedy over a transversal matroid: heavier workers first; each is
    # kept iff an augmenting path still exists. Ties break toward lower
    # worker index for determinism.
    order = sorted(
        range(instance.worker_count), key=lambda worker: (-q_hat[worker], worker)
    )

    slack = [task.capacity for task in instance.tasks]  # residual task room
    assigned_task = [-1] * instance.worker_count
    occupants: list[set[int]] = [set() for _ in range(instance.task_count)]

    def attach(worker: int, task: int) -> None:
        previous = assigned_task[worker]
        if previous >= 0:
            occupants[previous].discard(worker)
            slack[previous] += 1
        assigned_task[worker] = task
        occupants[task].add(worker)
        slack[task] -= 1

    def try_augment(worker: int, visited_tasks: set[int]) -> bool:
        """Kuhn augmentation with task capacities (live state)."""
        for task in valid_pairs.tasks_for_worker[worker]:
            if task in visited_tasks:
                continue
            visited_tasks.add(task)
            if slack[task] > 0:
                attach(worker, task)
                return True
            # Try to relocate any current occupant elsewhere.
            for other in list(occupants[task]):
                if try_augment(other, visited_tasks):
                    # ``other`` moved and freed one slot on ``task``.
                    attach(worker, task)
                    return True
        return False

    for worker in order:
        if valid_pairs.tasks_for_worker[worker]:
            try_augment(worker, set())

    for worker, task in enumerate(assigned_task):
        if task >= 0:
            assignment.assign(worker, task)
    # Like MFLOW, dissolve groups that missed the minimum size; WFLOW has
    # no notion of B either.
    assignment.drop_incomplete_groups()
    return assignment
