"""RAND baseline — Section VI-A.

"It randomly chooses a task, and then randomly assigns a set of valid
workers to it." Tasks are visited in random order; each receives up to
``a_j`` uniformly chosen available valid workers. Groups that end below
the minimum size ``B`` release their workers back to the pool so they
remain usable by later tasks — without this, RAND strands workers on
hopeless tasks and scores even worse than the paper reports.
"""

from __future__ import annotations

import numpy as np

from repro.core.assignment import Assignment
from repro.core.model import Instance
from repro.core.validity import ValidPairs, compute_valid_pairs
from repro.utils.rng import ensure_rng

__all__ = ["solve_random"]


def solve_random(
    instance: Instance,
    valid_pairs: ValidPairs | None = None,
    seed=None,
) -> Assignment:
    """Random valid assignment (the paper's RAND baseline)."""
    if valid_pairs is None:
        valid_pairs = compute_valid_pairs(instance)
    rng = ensure_rng(seed)
    assignment = Assignment(instance, valid_pairs)
    available = np.ones(instance.worker_count, dtype=bool)

    task_order = rng.permutation(instance.task_count)
    for task in task_order:
        candidates = [
            worker
            for worker in valid_pairs.workers_for_task[task]
            if available[worker]
        ]
        if len(candidates) < instance.min_group_size:
            continue
        capacity = instance.tasks[task].capacity
        take = min(capacity, len(candidates))
        chosen = rng.choice(len(candidates), size=take, replace=False)
        for local in chosen:
            worker = candidates[int(local)]
            assignment.assign(worker, int(task))
            available[worker] = False
    return assignment
