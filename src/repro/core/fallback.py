"""Anytime solver fallback chain — bounded-time assignment, always.

A production dispatcher cannot wait arbitrarily long for a batch
assignment: the batch interval is a hard deadline. :class:`FallbackSolver`
wraps any solver with a wall-clock budget and a degradation ladder

    primary (e.g. GT)  ->  TPG  ->  pair-greedy  ->  random

Each tier runs in a watchdog thread and is abandoned (daemon thread keeps
running, its result discarded) when the *remaining* budget expires or it
raises a :class:`~repro.utils.errors.ReproError`; the next tier gets
whatever budget is left. The final tier always runs inline with no
enforcement, so the chain returns a valid assignment no matter how small
the budget — the anytime guarantee. Every call appends a structured
:class:`DegradationRecord` (which tier answered, why the earlier tiers
did not, per-tier elapsed) to ``degradation_log``, and a
:class:`~repro.core.stats.SolverStats` entry to ``stats_log`` so the
experiment runner and CLI surface degradations exactly like any other
solver instrumentation.

With ``budget=None`` the wrapper adds no thread, no timing check and no
behavioral change: the primary runs inline and its assignment is
bit-identical to an unwrapped call.

The chain never touches the cooperation store directly — every tier goes
through the instance's :class:`~repro.core.quality_store.QualityStore`
interface — so degradation behaves identically under the dense, sparse
and shared-memory backends.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.core.assignment import Assignment
from repro.core.baselines.pair_greedy import solve_pair_greedy
from repro.core.baselines.random_assign import solve_random
from repro.core.kernels import DEFAULT_KERNEL
from repro.core.model import Instance
from repro.core.stats import SolverStats
from repro.core.tpg import solve_tpg
from repro.core.validity import ValidPairs
from repro.utils.errors import DegradedResultError, ReproError, SolverTimeoutError
from repro.utils.rng import ensure_rng

__all__ = [
    "TierAttempt",
    "DegradationRecord",
    "FallbackSolver",
    "default_tiers",
]

SolverFn = Callable[[Instance, ValidPairs], Assignment]


@dataclass(frozen=True)
class TierAttempt:
    """What one tier of the chain did for one call.

    ``outcome`` is ``"answered"`` (its assignment was returned),
    ``"timeout"`` (abandoned at the budget), ``"error"`` (raised a
    :class:`~repro.utils.errors.ReproError`), or ``"skipped"`` (the
    budget was already exhausted when its turn came).
    """

    tier: str
    outcome: str
    seconds: float = 0.0
    error: str = ""


@dataclass(frozen=True)
class DegradationRecord:
    """Structured account of one fallback-chain call."""

    budget_seconds: float | None
    answered_by: str
    degraded: bool
    attempts: tuple[TierAttempt, ...] = ()

    @property
    def reason(self) -> str:
        """Why the primary did not answer (empty when it did)."""
        if not self.degraded:
            return ""
        first = self.attempts[0]
        return first.error if first.error else first.outcome

    def summary(self) -> str:
        """One human-readable line for CLI output."""
        if not self.degraded:
            return f"answered by {self.answered_by} within budget"
        trail = " -> ".join(
            f"{a.tier}:{a.outcome}({a.seconds * 1e3:.0f}ms)"
            for a in self.attempts
        )
        return f"DEGRADED to {self.answered_by}: {trail}"


def default_tiers(
    seed=None, kernel: str = DEFAULT_KERNEL
) -> tuple[tuple[str, SolverFn], ...]:
    """The standard degradation ladder below the primary.

    TPG keeps most of the cooperation score at a fraction of GT's cost;
    pair-greedy drops the task-priority seeding; seeded random is the
    O(m) floor that cannot fail or meaningfully overrun. ``kernel``
    selects the TPG tier's evaluation path — the stage-1 group kernel
    and the revenue cache's overflow counted-subset peel (bit-identical
    either way) — so a ``kernel="native"`` primary degrades to an
    equally accelerated TPG.
    """
    rng = ensure_rng(seed)

    def tpg_tier(instance: Instance, valid_pairs: ValidPairs) -> Assignment:
        return solve_tpg(instance, valid_pairs, kernel=kernel)

    def rand_tier(instance: Instance, valid_pairs: ValidPairs) -> Assignment:
        return solve_random(instance, valid_pairs, seed=rng)

    return (
        ("TPG", tpg_tier),
        ("PGREEDY", solve_pair_greedy),
        ("RAND", rand_tier),
    )


class _TierThread:
    """Runs one tier in a daemon thread so it can be abandoned."""

    def __init__(self, fn: SolverFn, instance: Instance, valid_pairs: ValidPairs):
        self.result: Assignment | None = None
        self.error: BaseException | None = None

        def target() -> None:
            try:
                self.result = fn(instance, valid_pairs)
            except BaseException as error:  # noqa: BLE001 — re-raised by caller
                self.error = error

        self.thread = threading.Thread(target=target, daemon=True)

    def run(self, budget: float | None) -> Assignment:
        """Execute with a wall-clock cap; raise on timeout or tier error."""
        self.thread.start()
        self.thread.join(budget)
        if self.thread.is_alive():
            raise SolverTimeoutError(
                f"tier exceeded its remaining budget of {budget:g}s"
            )
        if self.error is not None:
            raise self.error
        assert self.result is not None
        return self.result


class FallbackSolver:
    """Wrap a solver with a budget and the degradation ladder.

    Parameters
    ----------
    primary:
        The preferred solver (any ``(instance, valid_pairs) ->
        Assignment`` callable, e.g. from
        :func:`~repro.experiments.config.make_solver`).
    budget:
        Wall-clock budget in seconds for the *whole chain* (the final
        tier runs regardless, so a response is always produced).
        ``None`` disables enforcement entirely — the primary runs inline
        and unwatched, bit-identical to an unwrapped call.
    label:
        Display name of the primary tier (defaults to ``"primary"``).
    tiers:
        Override the ladder below the primary; defaults to
        :func:`default_tiers`.
    seed:
        Seeds the default ladder's random tier.
    on_degrade:
        ``"record"`` (default) returns the lower tier's assignment and
        records the degradation; ``"raise"`` raises
        :class:`~repro.utils.errors.DegradedResultError` after recording
        it, for callers that must not serve degraded answers.
    """

    def __init__(
        self,
        primary: SolverFn,
        budget: float | None = None,
        label: str = "primary",
        tiers: tuple[tuple[str, SolverFn], ...] | None = None,
        seed=None,
        on_degrade: str = "record",
    ) -> None:
        if budget is not None and budget <= 0:
            raise ValueError(f"budget must be positive, got {budget}")
        if on_degrade not in ("record", "raise"):
            raise ValueError(
                f"on_degrade must be 'record' or 'raise', got {on_degrade!r}"
            )
        self.primary = primary
        self.budget = budget
        self.label = label
        self.tiers = default_tiers(seed=seed) if tiers is None else tuple(tiers)
        self.on_degrade = on_degrade
        self.degradation_log: list[DegradationRecord] = []
        self.stats_log: list[SolverStats] = []

    def __call__(
        self, instance: Instance, valid_pairs: ValidPairs
    ) -> Assignment:
        started = time.perf_counter()
        if self.budget is None:
            # No budget -> no watchdog thread, no degradation: the
            # wrapped call is bit-identical to the unwrapped one.
            assignment = self.primary(instance, valid_pairs)
            self._record(
                started,
                answered_by=self.label,
                attempts=[
                    TierAttempt(
                        tier=self.label,
                        outcome="answered",
                        seconds=time.perf_counter() - started,
                    )
                ],
            )
            return assignment

        deadline = started + self.budget
        attempts: list[TierAttempt] = []
        ladder = ((self.label, self.primary), *self.tiers)
        for position, (name, fn) in enumerate(ladder):
            is_last = position == len(ladder) - 1
            remaining = deadline - time.perf_counter()
            if not is_last and remaining <= 0:
                attempts.append(TierAttempt(tier=name, outcome="skipped"))
                continue
            tier_started = time.perf_counter()
            try:
                if is_last:
                    # The floor tier runs inline and unwatched: the
                    # anytime guarantee is that *something* valid returns.
                    assignment = fn(instance, valid_pairs)
                else:
                    assignment = _TierThread(fn, instance, valid_pairs).run(
                        remaining
                    )
            except SolverTimeoutError as error:
                attempts.append(
                    TierAttempt(
                        tier=name,
                        outcome="timeout",
                        seconds=time.perf_counter() - tier_started,
                        error=str(error),
                    )
                )
                continue
            except ReproError as error:
                attempts.append(
                    TierAttempt(
                        tier=name,
                        outcome="error",
                        seconds=time.perf_counter() - tier_started,
                        error=f"{type(error).__name__}: {error}",
                    )
                )
                continue
            attempts.append(
                TierAttempt(
                    tier=name,
                    outcome="answered",
                    seconds=time.perf_counter() - tier_started,
                )
            )
            record = self._record(started, answered_by=name, attempts=attempts)
            if record.degraded and self.on_degrade == "raise":
                raise DegradedResultError(
                    f"budget {self.budget:g}s forced degradation to {name} "
                    f"({record.reason})"
                )
            return assignment
        raise AssertionError("unreachable: the floor tier always answers")

    # ------------------------------------------------------------------
    def _record(
        self,
        started: float,
        answered_by: str,
        attempts: list[TierAttempt],
    ) -> DegradationRecord:
        record = DegradationRecord(
            budget_seconds=self.budget,
            answered_by=answered_by,
            degraded=answered_by != self.label,
            attempts=tuple(attempts),
        )
        self.degradation_log.append(record)

        stats = SolverStats(
            degraded_solves=1 if record.degraded else 0,
            fallback_answers={answered_by: 1},
        )
        # Fold the primary's own instrumentation (when it answered and
        # exposes a stats_log) into the chain's entry, so counters like
        # revenue evaluations stay visible through the wrapper.
        primary_log = getattr(self.primary, "stats_log", None)
        if not record.degraded and primary_log:
            stats.merge(primary_log[-1])
        # The chain's wall-clock supersedes the folded tier timing, and
        # per-tier elapsed is reported as extra phases.
        stats.solver = f"{self.label}~anytime"
        stats.runs = 1
        stats.total_seconds = time.perf_counter() - started
        for attempt in attempts:
            if attempt.seconds > 0:
                stats.phase_seconds[f"tier:{attempt.tier}"] = attempt.seconds
        self.stats_log.append(stats)
        return record
