"""Pluggable cooperation-quality backends (the ``QualityStore`` protocol).

Every consumer of pairwise qualities — Equation 2 revenue, the GT
best-response scan, TPG stage one, the batch framework — reads through a
small access protocol instead of touching a dense array directly. Three
interchangeable backends implement it:

* :class:`DenseQualityStore` (an alias of
  :class:`~repro.core.quality.CooperationMatrix`) — the historical dense
  ``(n, n)`` float64 matrix. Default backend, unchanged semantics.
* :class:`SparseQualityStore` — Equation 1 makes the matrix "prior +
  sparse deviations" by construction: most worker pairs share no history
  and sit exactly at the prior. This backend stores only the deviating
  entries in a hand-rolled CSR/CSC pair (scipy is deliberately not a
  dependency) for O(nnz) memory, serves the best-response ``reduceat``
  pass from per-worker materialized rows behind a small LRU, and answers
  point/sum queries with ``np.searchsorted`` gathers.
* :class:`SharedDenseQualityStore` — the dense buffer placed in
  :mod:`multiprocessing.shared_memory` so sweep-pool workers attach
  zero-copy instead of rebuilding ``n^2`` floats per process. Lifecycle
  (create/close/unlink) is owned by whoever created the segment — the
  :class:`~repro.experiments.parallel.SweepExecutor` unlinks on shutdown
  and on KeyboardInterrupt.

Bit-identity contract
---------------------
All three backends return *value-identical* arrays from ``q_row`` /
``q_col`` / ``gather``, and compute pair sums with the same numpy
reduction over the same float values — so solvers produce repr-identical
assignments regardless of backend (enforced by ``tests/test_quality_store.py``
and ``benchmarks/bench_guard.py``). The closed form
``prior * |M| * (|M| - 1) + D[M, M].sum()`` is exact mathematics but a
*different float reduction order*, so the sparse backend deliberately
serves sums from gathered submatrices instead (see
:meth:`SparseQualityStore.structural_pair_sum` for the closed form).
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import OrderedDict
from collections.abc import Sequence
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path
from typing import Protocol, runtime_checkable

import numpy as np

from repro.core.quality import (
    DEFAULT_ALPHA,
    DEFAULT_BASE_QUALITY,
    CooperationMatrix,
    history_pair_values,
)
from repro.utils.errors import InvalidInstanceError

__all__ = [
    "QualityStore",
    "DenseQualityStore",
    "SparseQualityStore",
    "SharedDenseQualityStore",
    "RowCacheInfo",
    "QUALITY_BACKENDS",
    "REGISTRY_ENV_VAR",
    "ReapReport",
    "reap_orphans",
    "registered_segments",
    "shm_registry_dir",
]

#: CLI / settings names of the available backends.
QUALITY_BACKENDS = ("dense", "sparse", "shared")


@runtime_checkable
class QualityStore(Protocol):
    """Access protocol shared by all quality backends.

    Mirrors the read API of :class:`~repro.core.quality.CooperationMatrix`
    (which satisfies it structurally); see that class for the semantics of
    each method.
    """

    @property
    def size(self) -> int: ...

    @property
    def values(self) -> np.ndarray: ...

    @property
    def nbytes(self) -> int: ...

    def pair(self, i: int, k: int) -> float: ...

    def is_symmetric(self, tolerance: float = 1e-12) -> bool: ...

    def ordered_pair_sum(self, members: Sequence[int]) -> float: ...

    def submatrix_sum(self, index: np.ndarray) -> float: ...

    def cross_sum(self, worker: int, members: Sequence[int]) -> float: ...

    def q_row(self, worker: int) -> np.ndarray: ...

    def q_col(self, worker: int) -> np.ndarray: ...

    def gather(self, index: np.ndarray) -> np.ndarray: ...

    def gather_rows(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray: ...

    def top_qualities(self, worker: int, count: int) -> np.ndarray: ...

    def bottom_qualities(self, worker: int, count: int) -> np.ndarray: ...

    def restricted_to(self, workers: Sequence[int]) -> "QualityStore": ...

    def to_dense(self) -> CooperationMatrix: ...

    def as_kernel_buffers(self): ...


#: The dense backend is the existing matrix, verbatim.
DenseQualityStore = CooperationMatrix


@dataclass(frozen=True)
class RowCacheInfo:
    """Counters of one materialized-row LRU (mirrors ``functools.lru_cache``)."""

    hits: int
    misses: int
    evictions: int
    currsize: int
    maxsize: int


class _CacheLedger:
    """Per-orientation hit/miss/eviction counters over a shared LRU.

    A symmetric store serves column reads from the row cache (one
    physical cache, half the materialization work). Counting those reads
    on the row cache's own counters double-counted them: both
    ``row_cache_info()`` and ``col_cache_info()`` reported the same
    totals, so summing the two infos — the natural aggregation — counted
    every lookup twice, and row info silently included column traffic.
    Each orientation now books its lookups on its own ledger while the
    storage stays shared.
    """

    __slots__ = ("hits", "misses", "evictions")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class _RowLRU:
    """A tiny ordered-dict LRU holding materialized quality rows."""

    __slots__ = ("maxsize", "hits", "misses", "evictions", "_rows")

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError(f"row_cache_size must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._rows: OrderedDict[int, np.ndarray] = OrderedDict()

    def get(self, key: int, build, ledger=None) -> np.ndarray:
        """One lookup; counters land on ``ledger`` (default: the cache
        itself), so aliased callers can attribute traffic separately."""
        target = self if ledger is None else ledger
        row = self._rows.get(key)
        if row is not None:
            self._rows.move_to_end(key)
            target.hits += 1
            return row
        target.misses += 1
        row = build()
        self._rows[key] = row
        while len(self._rows) > self.maxsize:
            self._rows.popitem(last=False)
            target.evictions += 1
        return row

    def info(self) -> RowCacheInfo:
        return RowCacheInfo(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            currsize=len(self._rows),
            maxsize=self.maxsize,
        )


def _sorted_lookup(
    sorted_keys: np.ndarray,
    values: np.ndarray,
    queries: np.ndarray,
    default: float,
) -> np.ndarray:
    """Gather ``values`` at ``queries`` from a sorted sparse axis.

    ``sorted_keys`` are the stored (strictly increasing) positions of one
    CSR/CSC slice; queries not present get ``default``.
    """
    out = np.full(queries.shape, default, dtype=float)
    if sorted_keys.size:
        pos = np.searchsorted(sorted_keys, queries)
        clipped = np.minimum(pos, sorted_keys.size - 1)
        hit = sorted_keys[clipped] == queries
        out[hit] = values[clipped[hit]]
    return out


class SparseQualityStore:
    """``q[i, k] = prior`` except at explicitly stored deviating pairs.

    The store keeps the *absolute* quality value at each deviating entry
    (not the delta), both in CSR order (row gathers) and CSC order
    (column gathers), so every read materializes exactly the floats the
    dense matrix holds — the key to backend bit-identity. Memory is
    O(nnz) plus a bounded LRU of materialized rows (``row_cache_size``
    rows of ``n`` floats) serving the GT best-response ``reduceat`` scan.

    Diagonal entries are implicitly zero, exactly like
    :class:`~repro.core.quality.CooperationMatrix`.
    """

    __slots__ = (
        "_size",
        "_prior",
        "_indptr",
        "_indices",
        "_data",
        "_col_indptr",
        "_col_indices",
        "_col_data",
        "_symmetric",
        "_row_cache",
        "_col_cache",
        "_col_ledger",
        "_kernel_buffers",
    )

    def __init__(
        self,
        size: int,
        prior: float,
        rows: Sequence[int],
        cols: Sequence[int],
        values: Sequence[float],
        row_cache_size: int = 128,
    ) -> None:
        size = int(size)
        if size < 0:
            raise InvalidInstanceError(f"size must be >= 0, got {size}")
        prior = float(prior)
        if not 0.0 <= prior <= 1.0:
            raise InvalidInstanceError(f"prior must be in [0, 1], got {prior}")
        rows = np.asarray(rows, dtype=np.intp).reshape(-1)
        cols = np.asarray(cols, dtype=np.intp).reshape(-1)
        data = np.asarray(values, dtype=float).reshape(-1)
        if not (rows.size == cols.size == data.size):
            raise InvalidInstanceError(
                "rows, cols and values must have equal length, got "
                f"{rows.size}/{cols.size}/{data.size}"
            )
        if rows.size:
            if rows.min() < 0 or rows.max() >= size:
                raise InvalidInstanceError("deviation row index out of range")
            if cols.min() < 0 or cols.max() >= size:
                raise InvalidInstanceError("deviation column index out of range")
            if (rows == cols).any():
                raise InvalidInstanceError(
                    "diagonal deviations are not allowed (self-quality is 0)"
                )
            if np.isnan(data).any():
                raise InvalidInstanceError("cooperation matrix contains NaN")
            if data.min() < 0.0 or data.max() > 1.0:
                raise InvalidInstanceError("cooperation scores must lie in [0, 1]")
            keys = rows * size + cols
            if np.unique(keys).size != keys.size:
                raise InvalidInstanceError("duplicate deviation entries")

        order = np.lexsort((cols, rows))
        rows, cols, data = rows[order], cols[order], data[order]
        self._size = size
        self._prior = prior
        counts = np.bincount(rows, minlength=size) if size else np.zeros(0, dtype=np.intp)
        self._indptr = np.concatenate(([0], counts)).cumsum().astype(np.intp)
        self._indices = cols
        self._data = data

        col_order = np.lexsort((rows, cols))
        col_counts = (
            np.bincount(cols, minlength=size) if size else np.zeros(0, dtype=np.intp)
        )
        self._col_indptr = np.concatenate(([0], col_counts)).cumsum().astype(np.intp)
        self._col_indices = rows[col_order]
        self._col_data = data[col_order]

        # Exact (not tolerance-based) symmetry lets the column cache alias
        # the row cache and halves materialization work.
        self._symmetric = bool(
            np.array_equal(cols[col_order], rows)
            and np.array_equal(rows[col_order], cols)
            and np.array_equal(data[col_order], data)
        )
        self._row_cache = _RowLRU(row_cache_size)
        if self._symmetric:
            # One physical cache serves both orientations; the ledger
            # keeps the column traffic's counters separate so the two
            # info views never double-count a lookup.
            self._col_cache = self._row_cache
            self._col_ledger = _CacheLedger()
        else:
            self._col_cache = _RowLRU(row_cache_size)
            self._col_ledger = None
        self._kernel_buffers = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(
        cls,
        matrix: "CooperationMatrix | np.ndarray",
        prior: float,
        row_cache_size: int = 128,
    ) -> "SparseQualityStore":
        """Extract the deviations of a dense matrix around ``prior``.

        Round-trips exactly: ``store.to_dense() == matrix`` (off-diagonal
        entries equal to ``prior`` become implicit, all others explicit).
        """
        if isinstance(matrix, CooperationMatrix):
            q = matrix.values
        else:
            q = CooperationMatrix(matrix).values
        mask = q != prior
        np.fill_diagonal(mask, False)
        rows, cols = np.nonzero(mask)
        return cls(q.shape[0], prior, rows, cols, q[rows, cols], row_cache_size)

    @classmethod
    def from_history(
        cls,
        worker_count: int,
        shared_task_ratings: dict[tuple[int, int], Sequence[float]],
        base_quality: float = DEFAULT_BASE_QUALITY,
        alpha: float = DEFAULT_ALPHA,
        row_cache_size: int = 128,
    ) -> "SparseQualityStore":
        """Equation 1 without ever allocating the dense matrix.

        Pairs with history become explicit entries; everyone else sits at
        the prior ``base_quality`` implicitly. Produces a store whose
        ``to_dense()`` equals
        :meth:`CooperationMatrix.from_history` bit-for-bit.
        """
        rows, cols, values = history_pair_values(
            worker_count, shared_task_ratings, base_quality, alpha
        )
        if rows.size:
            # Keep the last write per (row, col), matching dense fancy
            # assignment when a dict lists both (i, k) and (k, i).
            keys = rows * worker_count + cols
            _, first_in_reversed = np.unique(keys[::-1], return_index=True)
            keep = keys.size - 1 - first_in_reversed
            rows, cols, values = rows[keep], cols[keep], values[keep]
        return cls(worker_count, base_quality, rows, cols, values, row_cache_size)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _row_slice(self, worker: int) -> tuple[np.ndarray, np.ndarray]:
        start, end = self._indptr[worker], self._indptr[worker + 1]
        return self._indices[start:end], self._data[start:end]

    def _col_slice(self, worker: int) -> tuple[np.ndarray, np.ndarray]:
        start, end = self._col_indptr[worker], self._col_indptr[worker + 1]
        return self._col_indices[start:end], self._col_data[start:end]

    def _coo(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        rows = np.repeat(
            np.arange(self._size, dtype=np.intp), np.diff(self._indptr)
        )
        return rows, self._indices, self._data

    def _materialize_row(self, worker: int) -> np.ndarray:
        row = np.full(self._size, self._prior, dtype=float)
        idx, vals = self._row_slice(worker)
        row[idx] = vals
        row[worker] = 0.0
        row.setflags(write=False)
        return row

    def _materialize_col(self, worker: int) -> np.ndarray:
        col = np.full(self._size, self._prior, dtype=float)
        idx, vals = self._col_slice(worker)
        col[idx] = vals
        col[worker] = 0.0
        col.setflags(write=False)
        return col

    # ------------------------------------------------------------------
    # QualityStore API
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return self._size

    @property
    def nnz(self) -> int:
        """Number of explicitly stored (deviating) entries."""
        return int(self._data.size)

    @property
    def prior(self) -> float:
        return self._prior

    @property
    def density(self) -> float:
        """Fraction of off-diagonal entries stored explicitly."""
        possible = self._size * (self._size - 1)
        return self.nnz / possible if possible else 0.0

    @property
    def nbytes(self) -> int:
        """Bytes held by the CSR+CSC arrays (LRU rows not included)."""
        return int(
            self._indptr.nbytes
            + self._indices.nbytes
            + self._data.nbytes
            + self._col_indptr.nbytes
            + self._col_indices.nbytes
            + self._col_data.nbytes
        )

    @property
    def values(self) -> np.ndarray:
        """Materialized dense array — O(n²) escape hatch.

        Exists for dataset serialization (``datasets/io.py``) and tests;
        hot paths must use ``q_row``/``q_col``/``gather`` instead.
        """
        return self.to_dense().values

    def to_dense(self) -> CooperationMatrix:
        """The equivalent dense matrix (the backend-parity bridge)."""
        q = np.full((self._size, self._size), self._prior, dtype=float)
        rows, cols, vals = self._coo()
        q[rows, cols] = vals
        return CooperationMatrix(q, copy=False)

    def pair(self, i: int, k: int) -> float:
        if i == k:
            raise ValueError("cooperation quality is undefined for a self-pair")
        idx, vals = self._row_slice(i)
        pos = int(np.searchsorted(idx, k))
        if pos < idx.size and idx[pos] == k:
            return float(vals[pos])
        return self._prior

    def is_symmetric(self, tolerance: float = 1e-12) -> bool:
        if self._symmetric:
            return True
        rows, cols, vals = self._coo()
        forward = rows * self._size + cols
        reverse = cols * self._size + rows
        order = np.argsort(reverse)
        transposed_keys = reverse[order]
        transposed_vals = vals[order]
        at_forward = _sorted_lookup(transposed_keys, transposed_vals, forward, self._prior)
        at_reverse = _sorted_lookup(forward, vals, transposed_keys, self._prior)
        return bool(
            np.allclose(vals, at_forward, atol=tolerance)
            and np.allclose(transposed_vals, at_reverse, atol=tolerance)
        )

    def q_row(self, worker: int) -> np.ndarray:
        """Full row ``worker``, materialized once and LRU-cached (read-only)."""
        worker = int(worker)
        return self._row_cache.get(worker, lambda: self._materialize_row(worker))

    def q_col(self, worker: int) -> np.ndarray:
        """Full column ``worker``; served from the row cache when symmetric
        (shared storage, column-ledger accounting)."""
        worker = int(worker)
        if self._symmetric:
            return self._row_cache.get(
                worker,
                lambda: self._materialize_row(worker),
                ledger=self._col_ledger,
            )
        return self._col_cache.get(worker, lambda: self._materialize_col(worker))

    def gather(self, index: np.ndarray) -> np.ndarray:
        """The ``(k, k)`` submatrix over ``index`` as a fresh writable array.

        Delegates to :meth:`gather_rows` — one batched ``searchsorted``
        over the globally sorted CSR keys instead of the historical
        per-row lookup loop. The retrieved floats are exactly those of
        the dense submatrix (pure lookups, no reductions), so sums over
        the result are bit-identical to the dense backend and to the
        per-row path this replaced.
        """
        index = np.asarray(index, dtype=np.intp)
        return self.gather_rows(index, index)

    def gather_rows(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Rectangular gather ``q[rows[:, None], cols]`` in one batch.

        The bulk multi-row protocol method: a single
        :func:`~repro.core.kernels.gather_block` lookup over the store's
        flat kernel buffers answers the whole block, replacing one
        ``_sorted_lookup`` round-trip per row. Positions where
        ``rows[i] == cols[j]`` are 0 (the implicit diagonal), absent
        pairs default to the prior — value-identical to materialized
        ``q_row`` reads.
        """
        from repro.core.kernels import gather_block

        return gather_block(self.as_kernel_buffers(), rows, cols)

    def ordered_pair_sum(self, members: Sequence[int]) -> float:
        index = np.asarray(members, dtype=np.intp)
        if np.unique(index).size != index.size:
            raise ValueError(f"duplicate members: {sorted(members)}")
        return float(self.gather(index).sum())

    def submatrix_sum(self, index: np.ndarray) -> float:
        return float(self.gather(index).sum())

    def structural_pair_sum(self, members: Sequence[int]) -> float:
        """Closed-form ordered pair sum: ``prior·|M|·(|M|−1) + Δ(M)``.

        Exact mathematics in O(|M| log nnz) without materializing the
        submatrix, where ``Δ(M)`` sums the stored deviations *relative to
        the prior* inside ``M``. Not used on solver paths because its
        float reduction order differs from the dense backend (breaking
        repr-parity); exposed for analysis and cross-checks.
        """
        index = np.asarray(members, dtype=np.intp)
        if np.unique(index).size != index.size:
            raise ValueError(f"duplicate members: {sorted(members)}")
        count = index.size
        delta = 0.0
        for worker in index:
            idx, vals = self._row_slice(worker)
            present = _sorted_lookup(idx, vals, index, self._prior)
            mask = index != worker
            delta += float((present[mask] - self._prior).sum())
        return self._prior * count * (count - 1) + delta

    def cross_sum(self, worker: int, members: Sequence[int]) -> float:
        index = np.asarray(members, dtype=np.intp)
        ridx, rvals = self._row_slice(worker)
        row_part = _sorted_lookup(ridx, rvals, index, self._prior)
        row_part[index == worker] = 0.0
        cidx, cvals = self._col_slice(worker)
        col_part = _sorted_lookup(cidx, cvals, index, self._prior)
        col_part[index == worker] = 0.0
        return float(row_part.sum() + col_part.sum())

    def as_kernel_buffers(self):
        """Flat CSR/CSC key-array export for the batched kernels.

        Keys are globally sorted ordered-pair codes (``row * size + col``
        for the row orientation, ``col * size + row`` for the column
        orientation) so one binary search answers any lookup; absent
        pairs default to the prior and the diagonal to 0 — exactly the
        floats :meth:`q_row`/:meth:`q_col` materialize. Built lazily and
        cached (the deviation arrays are immutable).
        """
        from repro.core.kernels import KernelBuffers

        if self._kernel_buffers is None:
            size = self._size
            row_owner = np.repeat(
                np.arange(size, dtype=np.int64), np.diff(self._indptr)
            )
            col_owner = np.repeat(
                np.arange(size, dtype=np.int64), np.diff(self._col_indptr)
            )
            self._kernel_buffers = KernelBuffers.from_csr(
                size=size,
                row_keys=row_owner * size + self._indices,
                row_values=self._data,
                col_keys=col_owner * size + self._col_indices,
                col_values=self._col_data,
                prior=self._prior,
            )
        return self._kernel_buffers

    def top_qualities(self, worker: int, count: int) -> np.ndarray:
        row = np.delete(self.q_row(worker), worker)
        if count >= row.size:
            return np.sort(row)[::-1]
        top = np.partition(row, row.size - count)[row.size - count :]
        return np.sort(top)[::-1]

    def bottom_qualities(self, worker: int, count: int) -> np.ndarray:
        row = np.delete(self.q_row(worker), worker)
        if count >= row.size:
            return np.sort(row)
        bottom = np.partition(row, count - 1)[:count]
        return np.sort(bottom)

    def restricted_to(self, workers: Sequence[int]) -> "SparseQualityStore":
        """Positionally re-indexed sub-store (``workers`` must be unique)."""
        index = np.asarray(workers, dtype=np.intp)
        if np.unique(index).size != index.size:
            raise ValueError(f"duplicate workers: {sorted(workers)}")
        position = np.full(self._size, -1, dtype=np.intp)
        position[index] = np.arange(index.size, dtype=np.intp)
        rows, cols, vals = self._coo()
        keep = (position[rows] >= 0) & (position[cols] >= 0)
        return SparseQualityStore(
            index.size,
            self._prior,
            position[rows[keep]],
            position[cols[keep]],
            vals[keep],
            row_cache_size=self._row_cache.maxsize,
        )

    def row_cache_info(self) -> RowCacheInfo:
        """Counters of row-orientation (``q_row``) lookups only.

        On a symmetric store the column orientation shares this cache's
        *storage* but books its traffic on its own ledger, so
        ``row_cache_info() + col_cache_info()`` sums to exactly the
        physical lookup/eviction totals — no double counting.
        """
        return self._row_cache.info()

    def col_cache_info(self) -> RowCacheInfo:
        """Counters of column-orientation (``q_col``) lookups only.

        Symmetric stores report the column ledger over the shared row
        cache (``currsize``/``maxsize`` describe that shared storage);
        asymmetric stores report their dedicated column cache.
        """
        if self._col_ledger is not None:
            return RowCacheInfo(
                hits=self._col_ledger.hits,
                misses=self._col_ledger.misses,
                evictions=self._col_ledger.evictions,
                currsize=self._row_cache.info().currsize,
                maxsize=self._row_cache.maxsize,
            )
        return self._col_cache.info()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseQualityStore):
            return NotImplemented
        if self._size != other._size or self._prior != other._prior:
            return False
        return (
            np.array_equal(self._indptr, other._indptr)
            and np.array_equal(self._indices, other._indices)
            and np.array_equal(self._data, other._data)
        )

    def __repr__(self) -> str:
        return (
            f"SparseQualityStore(size={self._size}, nnz={self.nnz}, "
            f"prior={self._prior!r})"
        )


#: Segment names created (and still owned) by *this* process. An attach
#: within the creating process must not unregister the name — the
#: tracker keeps one entry per name, so doing so would strip the
#: creator's crash-cleanup registration and make the eventual unlink()
#: complain about an unknown name.
_OWNED_SEGMENT_NAMES: set[str] = set()


# --------------------------------------------------------------------------
# Segment name registry + orphan reaping.
#
# Python's resource tracker cleans up a crashed creator's segments only on
# a best-effort basis — SIGKILL the creator *and* its tracker (or kill the
# creator before the tracker registered the name) and the segment outlives
# everything, invisibly eating /dev/shm until reboot. The registry is the
# belt-and-braces answer: every create() drops one small JSON sidecar file
# (name, owner pid, size) into a well-known directory, every unlink()
# removes it, and reap_orphans() scans the directory on the next run,
# unlinking any segment whose owner pid is dead.

#: Environment variable overriding the registry directory (tests point it
#: at a tmp dir; deployments may point it at a persistent spool).
REGISTRY_ENV_VAR = "REPRO_SHM_REGISTRY"


def shm_registry_dir() -> Path:
    """The directory holding one JSON sidecar per live segment."""
    override = os.environ.get(REGISTRY_ENV_VAR)
    if override:
        return Path(override)
    return Path(tempfile.gettempdir()) / "repro-shm-registry"


def _registry_entry(name: str) -> Path:
    return shm_registry_dir() / f"{name}.json"


def register_segment(name: str, size: int) -> None:
    """Record a created segment in the on-disk registry (best effort)."""
    try:
        directory = shm_registry_dir()
        directory.mkdir(parents=True, exist_ok=True)
        _registry_entry(name).write_text(
            json.dumps({"name": name, "pid": os.getpid(), "size": int(size)}),
            encoding="utf-8",
        )
    except OSError:  # pragma: no cover - registry is advisory, never fatal
        pass


def unregister_segment(name: str) -> None:
    """Drop a segment's registry sidecar (no-op if absent)."""
    try:
        _registry_entry(name).unlink(missing_ok=True)
    except OSError:  # pragma: no cover - registry is advisory, never fatal
        pass


def registered_segments() -> list[dict]:
    """All registry entries, sorted by segment name."""
    directory = shm_registry_dir()
    if not directory.is_dir():
        return []
    entries = []
    for path in sorted(directory.glob("*.json")):
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            continue
        if isinstance(entry, dict) and "name" in entry:
            entries.append(entry)
    return entries


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - pid exists, other user
        return True
    except (OverflowError, ValueError):  # pragma: no cover - garbage pid
        return False
    return True


@dataclass
class ReapReport:
    """Outcome of one :func:`reap_orphans` scan.

    ``scanned`` registry entries were examined; ``live`` belong to
    still-running owners (left alone unless ``force``), ``reaped`` were
    orphaned segments actually unlinked, ``stale`` were registry entries
    whose segment no longer exists (sidecar removed, nothing to unlink).
    """

    scanned: int = 0
    reaped: list[str] = field(default_factory=list)
    live: list[str] = field(default_factory=list)
    stale: list[str] = field(default_factory=list)

    def summary(self) -> str:
        return (
            f"scanned {self.scanned} registered segment(s): "
            f"reaped {len(self.reaped)}, stale {len(self.stale)}, "
            f"live {len(self.live)}"
        )


def reap_orphans(force: bool = False) -> ReapReport:
    """Unlink shared-memory segments whose owning process died.

    Scans the registry; for every entry whose owner pid no longer exists
    (or unconditionally with ``force=True``) the segment is attached and
    unlinked, and the sidecar removed. Entries whose segment is already
    gone are treated as stale bookkeeping and also removed. Safe to run
    concurrently with healthy sweeps: live owners' segments are not
    touched unless forced.
    """
    report = ReapReport()
    for entry in registered_segments():
        report.scanned += 1
        name = str(entry["name"])
        pid = int(entry.get("pid", -1))
        if not force and _pid_alive(pid):
            report.live.append(name)
            continue
        try:
            shm = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            # Tracker (or a previous reap) already removed the segment;
            # only the sidecar is left.
            unregister_segment(name)
            report.stale.append(name)
            continue
        _unregister_attached_segment(shm)
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - lost a race
            pass
        unregister_segment(name)
        report.reaped.append(name)
    return report


def _unregister_attached_segment(shm: shared_memory.SharedMemory) -> None:
    """Detach a segment from this process's resource tracker.

    Python 3.11 has no ``SharedMemory(track=False)``; without this, every
    *attaching* process registers the segment and the tracker both warns
    about and destroys it at interpreter exit — yanking it out from under
    the creating process. The creator stays registered so a crashed run
    is still cleaned up by its tracker.
    """
    if shm.name in _OWNED_SEGMENT_NAMES:
        return
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary by version
        pass


class SharedDenseQualityStore(CooperationMatrix):
    """Dense backend whose buffer lives in POSIX shared memory.

    Semantics are exactly :class:`~repro.core.quality.CooperationMatrix`
    (every method inherited, same floats, same reductions — bit-identical
    results); only the allocation differs, so any number of sweep-pool
    workers can :meth:`attach` to one copy of the ``n^2`` floats
    zero-copy. The *creator* owns the segment: call :meth:`close` +
    :meth:`unlink` when done (the executor does this in a ``finally``).
    """

    __slots__ = ("_shm", "_owner")

    def __init__(
        self, shm: shared_memory.SharedMemory, size: int, owner: bool
    ) -> None:
        view = np.ndarray((size, size), dtype=np.float64, buffer=shm.buf)
        view.setflags(write=False)
        self._q = view
        self._shm = shm
        self._owner = owner

    @classmethod
    def create(
        cls, source: "CooperationMatrix | np.ndarray"
    ) -> "SharedDenseQualityStore":
        """Allocate a segment and copy ``source`` into it (validating it)."""
        if isinstance(source, CooperationMatrix):
            validated = source.values
        else:
            validated = CooperationMatrix(source).values
        size = validated.shape[0]
        shm = shared_memory.SharedMemory(create=True, size=max(validated.nbytes, 1))
        view = np.ndarray((size, size), dtype=np.float64, buffer=shm.buf)
        view[:] = validated
        _OWNED_SEGMENT_NAMES.add(shm.name)
        register_segment(shm.name, size)
        return cls(shm, size, owner=True)

    @classmethod
    def attach(cls, name: str, size: int) -> "SharedDenseQualityStore":
        """Attach read-only to an existing segment (zero-copy)."""
        shm = shared_memory.SharedMemory(name=name)
        _unregister_attached_segment(shm)
        if os.environ.get("REPRO_CHAOS_SPEC"):
            # Chaos hook: an armed attach_exit injection hard-exits here,
            # between opening the segment and building the store — the
            # crash window the orphan registry exists for.
            from repro.chaos.policy import attach_checkpoint

            attach_checkpoint()
        return cls(shm, size, owner=False)

    @property
    def name(self) -> str:
        """Segment name — pass with :attr:`size` to :meth:`attach`."""
        return self._shm.name

    @property
    def owner(self) -> bool:
        return self._owner

    def close(self) -> None:
        """Drop this process's mapping (safe to call twice)."""
        if self._shm is None:
            return
        # The numpy view exports the mmap's buffer; release it first or
        # SharedMemory.close() raises BufferError.
        self._q = np.zeros((0, 0), dtype=float)
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - a caller kept a row view
            pass

    def unlink(self) -> None:
        """Destroy the segment (creator only; no-op for attachers)."""
        if self._owner and self._shm is not None:
            self._shm.unlink()
            _OWNED_SEGMENT_NAMES.discard(self._shm.name)
            unregister_segment(self._shm.name)
            self._owner = False

    def __repr__(self) -> str:
        return f"SharedDenseQualityStore(size={self.size}, name={self._shm.name!r})"
