"""The k-set-packing reduction behind Theorem II.1, made executable.

The NP-hardness proof maps a k-SP instance (universe ``U``, weighted
subsets ``C``, size bound ``k``) to CA-SC: one worker per element, one
task per subset, reachability configured so every subset's workers can
serve its task, and group revenue arranged so a task served by its full
subset earns the subset's weight.

The paper's proof treats ``Q(W_j)`` as a free set function; this library
implements Equation 2's *pairwise* revenue, which can encode per-subset
weights exactly when

* no two subsets share a pair of elements (a shared pair would need two
  different quality values), and
* all subsets have the same size ``s`` (with ``B = a_j = s`` every
  counted group must be exactly one subset, so partial groups earn
  nothing and the CA-SC optimum equals the packing optimum).

These restrictions retain NP-hardness — exact-size pair-disjoint k-SP
contains 3-dimensional matching. Validity is emitted as an explicit
:class:`~repro.core.validity.ValidPairs` (the proof itself configures
reachability arbitrarily, so geometric realizability is irrelevant to the
reduction's content).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.core.model import Instance, Task, Worker
from repro.core.quality import CooperationMatrix
from repro.core.validity import ValidPairs
from repro.spatial.geometry import Point
from repro.utils.errors import InvalidInstanceError

__all__ = ["KSetPackingInstance", "reduce_k_set_packing", "solve_k_set_packing"]


@dataclass(frozen=True)
class KSetPackingInstance:
    """A weighted k-set-packing instance.

    ``subsets[j]`` is a frozenset of element ids in ``range(universe)``;
    ``weights[j]`` its weight. A feasible packing picks pairwise-disjoint
    subsets of size at most ``k`` maximizing total weight.
    """

    universe: int
    subsets: tuple[frozenset[int], ...]
    weights: tuple[float, ...]
    k: int

    def __post_init__(self) -> None:
        if len(self.subsets) != len(self.weights):
            raise ValueError("subsets and weights must align")
        for j, subset in enumerate(self.subsets):
            if not subset:
                raise ValueError(f"subset {j} is empty")
            if len(subset) > self.k:
                raise ValueError(f"subset {j} exceeds size bound k={self.k}")
            if any(not 0 <= e < self.universe for e in subset):
                raise ValueError(f"subset {j} has out-of-universe elements")
        for j, weight in enumerate(self.weights):
            if weight < 0:
                raise ValueError(f"negative weight on subset {j}")

    def is_pair_disjoint(self) -> bool:
        """True when no two subsets share two or more elements."""
        seen: set[tuple[int, int]] = set()
        for subset in self.subsets:
            for pair in itertools.combinations(sorted(subset), 2):
                if pair in seen:
                    return False
                seen.add(pair)
        return True


def reduce_k_set_packing(
    ksp: KSetPackingInstance,
) -> tuple[Instance, ValidPairs, float]:
    """Map an exact-size, pair-disjoint k-SP instance to CA-SC.

    Returns ``(instance, valid_pairs, scale)``. Weights are scaled by
    ``scale`` so the largest per-pair quality is 1.0; the CA-SC optimum
    then equals ``scale *`` the k-SP optimum, and an optimal assignment's
    completed tasks are exactly an optimal packing.

    Raises
    ------
    InvalidInstanceError
        When the instance violates the pair-disjointness or uniform-size
        requirements documented in the module docstring.
    """
    if not ksp.is_pair_disjoint():
        raise InvalidInstanceError(
            "pairwise qualities cannot encode subsets sharing an element pair"
        )
    sizes = {len(subset) for subset in ksp.subsets}
    if len(sizes) != 1:
        raise InvalidInstanceError(
            f"exact objective equivalence needs uniform subset sizes, got {sorted(sizes)}"
        )
    size = sizes.pop()
    if size < 2:
        raise InvalidInstanceError(
            "Equation 2 needs groups of >= 2 workers; singleton subsets "
            "cannot carry weight through pair qualities"
        )

    # Per-direction pair quality p = w(C_j) / s: Equation 2 sums the
    # s * (s - 1) ordered pairs and divides by (s - 1), so the full
    # subset's revenue is s * p = w(C_j) (after global scaling into the
    # [0, 1] quality budget).
    raw_max = max((weight / size for weight in ksp.weights), default=0.0)
    scale = 1.0 / raw_max if raw_max > 0 else 1.0

    q = np.zeros((ksp.universe, ksp.universe))
    for subset, weight in zip(ksp.subsets, ksp.weights):
        per_pair = scale * weight / size
        for i, j in itertools.combinations(sorted(subset), 2):
            q[i, j] = q[j, i] = per_pair
    # The largest pair value is exactly 1 up to float rounding; clip the
    # few-ULP overshoot so the quality validation accepts it.
    np.clip(q, 0.0, 1.0, out=q)
    quality = CooperationMatrix(q, copy=False)

    origin = Point(0.0, 0.0)
    workers = [
        Worker(worker_id=e, location=origin, speed=1.0, radius=1.0)
        for e in range(ksp.universe)
    ]
    tasks = [
        Task(task_id=j, location=origin, capacity=size, deadline=1.0)
        for j in range(len(ksp.subsets))
    ]
    instance = Instance(
        workers=workers,
        tasks=tasks,
        quality=quality,
        min_group_size=size,
        now=0.0,
    )

    element_tasks: list[list[int]] = [[] for _ in range(ksp.universe)]
    for j, subset in enumerate(ksp.subsets):
        for element in subset:
            element_tasks[element].append(j)
    valid_pairs = ValidPairs.from_worker_lists(element_tasks, len(ksp.subsets))
    return instance, valid_pairs, scale


def solve_k_set_packing(ksp: KSetPackingInstance) -> tuple[list[int], float]:
    """Exact DFS solver for k-SP (test oracle for the reduction).

    Returns ``(chosen subset indices, total weight)``.
    """
    order = sorted(
        range(len(ksp.subsets)), key=lambda j: ksp.weights[j], reverse=True
    )
    suffix = [0.0] * (len(order) + 1)
    for position in range(len(order) - 1, -1, -1):
        suffix[position] = suffix[position + 1] + ksp.weights[order[position]]

    best: tuple[float, list[int]] = (0.0, [])
    used: set[int] = set()
    chosen: list[int] = []

    def recurse(position: int, value: float) -> None:
        nonlocal best
        if value > best[0]:
            best = (value, list(chosen))
        if position == len(order) or value + suffix[position] <= best[0]:
            return
        subset_index = order[position]
        subset = ksp.subsets[subset_index]
        if not (subset & used):
            used.update(subset)
            chosen.append(subset_index)
            recurse(position + 1, value + ksp.weights[subset_index])
            chosen.pop()
            used.difference_update(subset)
        recurse(position + 1, value)

    recurse(0, 0.0)
    return sorted(best[1]), best[0]
