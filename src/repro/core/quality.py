"""Pairwise cooperation quality — Definition 1 and Equation 1.

The platform maintains a score ``q_i(w_k) in [0, 1]`` for every ordered
worker pair. :class:`CooperationMatrix` wraps a dense numpy matrix with
constructors for every way the paper obtains these scores:

* :meth:`CooperationMatrix.from_history` — the Equation 1 estimator that
  blends a platform-configured base quality with the mean rating of tasks
  the two workers completed together.
* :meth:`CooperationMatrix.from_group_memberships` — the Meetup
  configuration of Section VI-A: ``q_i(w_k) = alpha * omega +
  (1 - alpha) * |common groups| / |union groups|`` with
  ``alpha = omega = 0.5``.
* :meth:`CooperationMatrix.random_uniform` /
  :meth:`CooperationMatrix.random_community` — synthetic matrices for the
  UNIF/SKEW experiments and for tests.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.utils.errors import InvalidInstanceError
from repro.utils.rng import ensure_rng

__all__ = ["CooperationMatrix", "estimate_pair_quality", "history_pair_values"]

DEFAULT_BASE_QUALITY = 0.5
DEFAULT_ALPHA = 0.5


def estimate_pair_quality(
    ratings: Sequence[float],
    base_quality: float = DEFAULT_BASE_QUALITY,
    alpha: float = DEFAULT_ALPHA,
) -> float:
    """Equation 1 for a single pair.

    ``ratings`` are the requester scores ``s_j in [0, 1]`` of the tasks the
    two workers completed together (``T_ik``). With no shared history the
    estimate falls back to the prior ``base_quality`` alone — the paper's
    "priori assumption" term — because the historical mean is undefined.

    >>> estimate_pair_quality([1.0, 0.5])
    0.625
    >>> estimate_pair_quality([])
    0.5
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
    if not 0.0 <= base_quality <= 1.0:
        raise ValueError(f"base_quality must be in [0, 1], got {base_quality}")
    scores = _validated_ratings(ratings)
    if not scores.size:
        return base_quality
    # cumsum reduces strictly left-to-right, exactly like the Python-level
    # ``sum`` this replaced, so results are bit-identical to the old loop
    # (np.sum would reorder via pairwise summation for >= 8 ratings).
    historical = float(scores.cumsum()[-1]) / scores.size
    return alpha * base_quality + (1.0 - alpha) * historical


def _validated_ratings(ratings: Sequence[float]) -> np.ndarray:
    """Range-check ratings in one vectorized pass and return them as floats."""
    scores = np.asarray(ratings, dtype=float)
    if scores.ndim != 1:
        scores = scores.reshape(-1)
    if scores.size:
        invalid = ~((scores >= 0.0) & (scores <= 1.0))  # catches NaN too
        if invalid.any():
            bad = scores[invalid][0]
            raise ValueError(f"rating {bad} outside [0, 1]")
    return scores


def history_pair_values(
    worker_count: int,
    shared_task_ratings: dict[tuple[int, int], Sequence[float]],
    base_quality: float = DEFAULT_BASE_QUALITY,
    alpha: float = DEFAULT_ALPHA,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized Equation 1 over a history dict.

    Returns ``(rows, cols, values)`` with both orientations of every pair
    interleaved in dict order — assigning ``q[rows, cols] = values`` then
    reproduces the historical per-pair loop's last-write-wins behaviour
    when a dict lists both ``(i, k)`` and ``(k, i)``. Validation
    (alpha/base ranges, self-pairs, out-of-range indices, rating range)
    happens in bulk numpy passes; rating means use ``np.add.reduceat``
    over one concatenated array instead of a Python loop per rating.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
    if not 0.0 <= base_quality <= 1.0:
        raise ValueError(f"base_quality must be in [0, 1], got {base_quality}")
    pair_count = len(shared_task_ratings)
    if not pair_count:
        empty = np.empty(0, dtype=np.intp)
        return empty, empty, np.empty(0, dtype=float)

    first = np.fromiter(
        (i for i, _ in shared_task_ratings), dtype=np.intp, count=pair_count
    )
    second = np.fromiter(
        (k for _, k in shared_task_ratings), dtype=np.intp, count=pair_count
    )
    self_pairs = first == second
    if self_pairs.any():
        where = int(np.flatnonzero(self_pairs)[0])
        raise InvalidInstanceError(
            f"self-pair ({first[where]}, {second[where]}) in history"
        )
    out_of_range = (
        (first < 0) | (first >= worker_count) | (second < 0) | (second >= worker_count)
    )
    if out_of_range.any():
        where = int(np.flatnonzero(out_of_range)[0])
        raise InvalidInstanceError(
            f"pair ({first[where]}, {second[where]}) out of range"
        )

    rating_arrays = [
        np.asarray(ratings, dtype=float).reshape(-1)
        for ratings in shared_task_ratings.values()
    ]
    lengths = np.fromiter(
        (arr.size for arr in rating_arrays), dtype=np.intp, count=pair_count
    )
    values = np.full(pair_count, base_quality, dtype=float)
    rated = lengths > 0
    if rated.any():
        flat = np.concatenate([arr for arr in rating_arrays if arr.size])
        _validated_ratings(flat)
        starts = np.concatenate(([0], lengths[rated].cumsum()[:-1]))
        means = np.add.reduceat(flat, starts) / lengths[rated]
        values[rated] = alpha * base_quality + (1.0 - alpha) * means

    rows = np.empty(2 * pair_count, dtype=np.intp)
    cols = np.empty(2 * pair_count, dtype=np.intp)
    rows[0::2] = first
    rows[1::2] = second
    cols[0::2] = second
    cols[1::2] = first
    return rows, cols, np.repeat(values, 2)


class CooperationMatrix:
    """Dense ``(m, m)`` matrix of cooperation qualities.

    The diagonal is forced to zero (a worker has no cooperation score with
    themselves — Equation 2 sums over ``k != i`` only). Entries may be
    asymmetric in general; every constructor that derives scores from
    shared history produces a symmetric matrix, matching the paper's
    experimental setup.
    """

    __slots__ = ("_q",)

    def __init__(self, values: np.ndarray, copy: bool = True) -> None:
        q = np.array(values, dtype=float, copy=copy)
        if q.ndim != 2 or q.shape[0] != q.shape[1]:
            raise InvalidInstanceError(
                f"cooperation matrix must be square, got shape {q.shape}"
            )
        if q.size and (np.nanmin(q) < 0.0 or np.nanmax(q) > 1.0):
            raise InvalidInstanceError("cooperation scores must lie in [0, 1]")
        if np.isnan(q).any():
            raise InvalidInstanceError("cooperation matrix contains NaN")
        np.fill_diagonal(q, 0.0)
        q.setflags(write=False)
        self._q = q

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_history(
        cls,
        worker_count: int,
        shared_task_ratings: dict[tuple[int, int], Sequence[float]],
        base_quality: float = DEFAULT_BASE_QUALITY,
        alpha: float = DEFAULT_ALPHA,
    ) -> "CooperationMatrix":
        """Build the matrix from co-completed task ratings (Equation 1).

        ``shared_task_ratings[(i, k)]`` lists the ratings of tasks workers
        ``i`` and ``k`` completed together. Pairs are treated as unordered:
        an entry for ``(i, k)`` also fills ``(k, i)``. Pairs with no entry
        get the prior ``base_quality``.
        """
        prior = estimate_pair_quality([], base_quality, alpha)
        q = np.full((worker_count, worker_count), prior, dtype=float)
        rows, cols, values = history_pair_values(
            worker_count, shared_task_ratings, base_quality, alpha
        )
        q[rows, cols] = values
        return cls(q, copy=False)

    @classmethod
    def from_group_memberships(
        cls,
        memberships: Sequence[Iterable[int]],
        base_quality: float = DEFAULT_BASE_QUALITY,
        alpha: float = DEFAULT_ALPHA,
    ) -> "CooperationMatrix":
        """The paper's Meetup configuration of Equation 1.

        ``memberships[i]`` is the set of group ids worker ``i`` belongs to.
        The historical term is the Jaccard similarity of the two workers'
        group sets: ``c_ik / C_ik`` with ``c_ik = |common|`` and
        ``C_ik = |union|``. Two workers with no groups at all share no
        evidence, so their score is the prior ``alpha * base_quality``
        contribution only (the paper's formula with ``c_ik / C_ik = 0``).
        """
        group_sets = [frozenset(groups) for groups in memberships]
        count = len(group_sets)
        prior = alpha * base_quality
        if count == 0:
            return cls(np.zeros((0, 0)), copy=False)

        all_groups = sorted({g for groups in group_sets for g in groups})
        group_index = {group: index for index, group in enumerate(all_groups)}
        incidence = np.zeros((count, max(len(all_groups), 1)), dtype=np.float64)
        for worker, groups in enumerate(group_sets):
            for group in groups:
                incidence[worker, group_index[group]] = 1.0

        # |common| via one matmul; |union| = deg_i + deg_k - |common|.
        common = incidence @ incidence.T
        degrees = incidence.sum(axis=1)
        union = degrees[:, None] + degrees[None, :] - common
        with np.errstate(divide="ignore", invalid="ignore"):
            jaccard = np.where(union > 0, common / np.maximum(union, 1e-300), 0.0)
        q = prior + (1.0 - alpha) * jaccard
        return cls(q, copy=False)

    @classmethod
    def random_uniform(
        cls, worker_count: int, seed=None, low: float = 0.0, high: float = 1.0
    ) -> "CooperationMatrix":
        """A symmetric matrix with i.i.d. uniform off-diagonal scores."""
        if not 0.0 <= low <= high <= 1.0:
            raise ValueError(f"need 0 <= low <= high <= 1, got [{low}, {high}]")
        rng = ensure_rng(seed)
        q = rng.uniform(low, high, size=(worker_count, worker_count))
        q = (q + q.T) / 2.0
        return cls(q, copy=False)

    @classmethod
    def random_community(
        cls,
        worker_count: int,
        community_count: int = 8,
        within: float = 0.8,
        across: float = 0.3,
        noise: float = 0.1,
        seed=None,
    ) -> "CooperationMatrix":
        """A block-structured matrix mimicking social communities.

        Workers are split uniformly into ``community_count`` communities;
        pairs inside a community centre on ``within``, pairs across
        communities on ``across``, with truncated Gaussian noise. This is
        the synthetic stand-in for the Meetup group structure and gives
        cooperation-aware solvers real signal to exploit.
        """
        if community_count < 1:
            raise ValueError("community_count must be >= 1")
        rng = ensure_rng(seed)
        labels = rng.integers(0, community_count, size=worker_count)
        same = labels[:, None] == labels[None, :]
        base = np.where(same, within, across)
        jitter = rng.normal(0.0, noise, size=(worker_count, worker_count))
        q = np.clip(base + (jitter + jitter.T) / 2.0, 0.0, 1.0)
        return cls(q, copy=False)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return self._q.shape[0]

    @property
    def values(self) -> np.ndarray:
        """The underlying read-only ``(m, m)`` array."""
        return self._q

    @property
    def nbytes(self) -> int:
        """Bytes held by the backing store (the dense array here)."""
        return int(self._q.nbytes)

    def q_row(self, worker: int) -> np.ndarray:
        """Read-only view of row ``worker``: ``q_worker(w_k)`` for all k.

        Part of the :class:`~repro.core.quality_store.QualityStore`
        protocol — the GT best-response scan gathers from this row with
        ``np.add.reduceat`` (see ``game.py``).
        """
        return self._q[worker]

    def q_col(self, worker: int) -> np.ndarray:
        """Read-only view of column ``worker``: ``q_i(w_worker)`` for all i."""
        return self._q[:, worker]

    def gather(self, index: np.ndarray) -> np.ndarray:
        """The ``(k, k)`` submatrix ``q[index[:, None], index]`` as a copy.

        Callers (the Equation 2 capacity peel, TPG group builders) may
        add/transpose the result; the returned array is freshly allocated
        and safe to mutate.
        """
        return self._q[index[:, None], index]

    def gather_rows(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Rectangular gather ``q[rows[:, None], cols]`` as a fresh copy.

        The bulk multi-row form of :meth:`gather` on the
        :class:`~repro.core.quality_store.QualityStore` protocol — one
        call answers a whole block of rows instead of per-row
        round-trips. Dense backends (including the shared-memory
        subclass) serve it with the same fancy-indexing expression
        :meth:`gather` uses, so the floats are identical.
        """
        rows = np.asarray(rows, dtype=np.intp)
        cols = np.asarray(cols, dtype=np.intp)
        return self._q[rows[:, None], cols]

    def to_dense(self) -> "CooperationMatrix":
        """This store is already dense."""
        return self

    def pair(self, i: int, k: int) -> float:
        """``q_i(w_k)`` — quality of worker ``i`` toward worker ``k``."""
        if i == k:
            raise ValueError("cooperation quality is undefined for a self-pair")
        return float(self._q[i, k])

    def is_symmetric(self, tolerance: float = 1e-12) -> bool:
        return bool(np.allclose(self._q, self._q.T, atol=tolerance))

    def ordered_pair_sum(self, members: Sequence[int]) -> float:
        """``sum_{i in M} sum_{k in M, k != i} q_i(w_k)``.

        This is the numerator of Equation 2 for the member set ``M``
        (diagonal is zero so the full submatrix sum equals the ordered
        off-diagonal sum).
        """
        index = np.asarray(members, dtype=np.intp)
        if np.unique(index).size != index.size:
            raise ValueError(f"duplicate members: {sorted(members)}")
        return float(self._q[index[:, None], index].sum())

    def submatrix_sum(self, index: np.ndarray) -> float:
        """:meth:`ordered_pair_sum` without the duplicate check.

        The revenue hot paths call this with index arrays already known
        to be duplicate-free (validated by ``best_counted_subset``); the
        gathered submatrix and its sum are identical to
        :meth:`ordered_pair_sum`, only the per-call overhead differs.
        """
        return float(self._q[index[:, None], index].sum())

    def cross_sum(self, worker: int, members: Sequence[int]) -> float:
        """Ordered-pair contribution of adding ``worker`` to ``members``.

        Equals ``sum_k (q_worker(k) + q_k(worker))`` over ``k in members``,
        i.e. exactly the increase of :meth:`ordered_pair_sum` when
        ``worker`` joins.
        """
        index = np.asarray(members, dtype=np.intp)
        return float(self._q[worker, index].sum() + self._q[index, worker].sum())

    def as_kernel_buffers(self):
        """Zero-copy dense export for the batched best-response kernels
        (:mod:`repro.core.kernels`); shared-memory subclasses inherit
        this verbatim, so their exported buffer aliases the segment."""
        from repro.core.kernels import KernelBuffers

        return KernelBuffers.from_dense(self._q)

    def top_qualities(self, worker: int, count: int) -> np.ndarray:
        """The worker's ``count`` largest qualities toward others, sorted
        descending. Used by the UPPER bound (Lemma V.2)."""
        row = np.delete(self._q[worker], worker)
        if count >= row.size:
            return np.sort(row)[::-1]
        top = np.partition(row, row.size - count)[row.size - count :]
        return np.sort(top)[::-1]

    def bottom_qualities(self, worker: int, count: int) -> np.ndarray:
        """The worker's ``count`` smallest qualities, sorted ascending
        (Lemma V.3's lower bound)."""
        row = np.delete(self._q[worker], worker)
        if count >= row.size:
            return np.sort(row)
        bottom = np.partition(row, count - 1)[:count]
        return np.sort(bottom)

    def restricted_to(self, workers: Sequence[int]) -> "CooperationMatrix":
        """The submatrix over ``workers``, re-indexed positionally.

        The batch framework uses this to carve each batch's matrix out of
        the population-level matrix.
        """
        index = np.asarray(workers, dtype=np.intp)
        return CooperationMatrix(self._q[np.ix_(index, index)], copy=True)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CooperationMatrix):
            return NotImplemented
        return np.array_equal(self._q, other._q)

    def __repr__(self) -> str:
        return f"CooperationMatrix(size={self.size})"
