"""Solver observability — counters and timings for the hot paths.

The ROADMAP's north star demands hot paths run "as fast as the hardware
allows" *with observability to prove it*. :class:`SolverStats` is the
instrument: every revenue evaluation, incremental cache update, LUB
cache hit/miss and invalidation is counted, and each best-response round
(or TPG stage) is timed with ``perf_counter``. The GT and TPG solvers
attach one to their result objects; the experiment runner and the CLI
aggregate and print them, and ``benchmarks/bench_guard.py`` persists
them as the repo's perf-trajectory record.

Counting is cheap (integer adds on the :class:`~repro.core.revenue.
RevenueCache` and the dynamics object); there is deliberately no off
switch, so the numbers are always available after a solve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

__all__ = ["RoundStats", "SolverStats"]


@dataclass(frozen=True)
class RoundStats:
    """One best-response round (or one named solver phase).

    ``gain`` is the potential increase of the round; ``evaluations`` the
    number of candidate ``(worker, task)`` utilities scored in it.
    """

    index: int
    seconds: float
    moves: int = 0
    gain: float = 0.0
    evaluations: int = 0


@dataclass
class SolverStats:
    """Aggregated instrumentation of one (or several merged) solver runs.

    Attributes
    ----------
    solver:
        Approach label (``"GT"``, ``"TPG"``, ...).
    revenue_evaluations:
        Full Equation-2 evaluations — the expensive from-scratch path
        (overflow peeling via ``best_counted_subset`` plus the final
        subset pair sum). The incremental engine exists to keep this low.
    incremental_updates:
        O(k) per-task pair-sum delta updates (joins/leaves) served by the
        :class:`~repro.core.revenue.RevenueCache` instead of a re-sum.
    gain_evaluations:
        Candidate ``(worker, task)`` utilities scored by the solvers'
        marginal-gain machinery.
    cache_hits / cache_misses:
        LUB best-response cache: a *hit* re-evaluates only the cached
        candidate task, a *miss* rescans the worker's whole valid set.
        Without LUB every scan counts as a miss, so the hit ratio is the
        direct measure of what LUB saves.
    lub_invalidations:
        Workers marked dirty by the Theorem V.3/V.4 invalidation rules.
    total_seconds:
        Wall-clock of the instrumented section(s).
    phase_seconds:
        Named sub-phase timings (e.g. TPG ``stage1``/``stage2``, GT
        ``init``/``rounds``).
    rounds:
        Per-round timings of the best-response dynamics.
    runs:
        Number of solver invocations merged into this object.
    degraded_solves:
        Calls an anytime :class:`~repro.core.fallback.FallbackSolver`
        had to answer with a lower tier (0 for unwrapped solvers).
    fallback_answers:
        Per-tier answer counts of a fallback chain (empty for unwrapped
        solvers); sums to ``runs`` when every call went through a chain.
    kernel_compiled_calls / kernel_fallback_calls:
        Batched best-response kernel dispatches (``kernel="native"``):
        compiled numba invocations vs. pure-numpy fallback passes (numba
        absent). Both zero for ``kernel="python"`` solves.
    kernel_compile_seconds:
        Wall-clock of the first compiled invocation per kernel variant —
        numba's lazy JIT compile (or on-disk cache load) cost, recorded
        once per process rather than spread over later calls.
    peel_kernel_calls:
        Overflow counted-subset peels dispatched through the bulk-gather
        peel kernel (``kernels.counted_subset_select``) by the
        :class:`~repro.core.revenue.RevenueCache`. Zero for
        ``kernel="python"`` solves, which run the scalar oracle peel.
    rescan_batches / rescan_rows:
        Mid-round dirty-rescan kernel (``kernel="native"``): batched
        refresh calls issued after accepted moves, and how many stale
        prepass rows they re-scored in total. Both zero for
        ``kernel="python"`` solves (those rescan workers one at a time
        in the interpreted path).
    shard_count / border_workers / halo_rounds / halo_moves:
        Geo-sharded solving (:mod:`repro.core.sharding`): number of
        spatial shards the instance was split into (1 = monolithic or
        ``--shards 1`` passthrough), workers classified as border (their
        reach touches a differently-sharded cell), halo-reconcile
        best-response rounds actually run, and strategy changes those
        rounds made. All zero for unsharded solves.
    border_seeded:
        Workers placed by the boundary group-seeding pass (cross-shard
        groups best-response alone cannot bootstrap; see
        :func:`repro.core.sharding.reconcile.seed_border_groups`).
    shard_failures / shard_failovers:
        Shard solves that crashed, hung past ``shard_timeout`` or were
        quarantined (failures), and how many of those were recovered by
        the inline fallback-ladder re-solve (failovers). Both zero on a
        healthy run.
    """

    solver: str = ""
    revenue_evaluations: int = 0
    incremental_updates: int = 0
    gain_evaluations: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    lub_invalidations: int = 0
    total_seconds: float = 0.0
    phase_seconds: dict[str, float] = field(default_factory=dict)
    rounds: list[RoundStats] = field(default_factory=list)
    runs: int = 1
    degraded_solves: int = 0
    fallback_answers: dict[str, int] = field(default_factory=dict)
    kernel_compiled_calls: int = 0
    kernel_fallback_calls: int = 0
    kernel_compile_seconds: float = 0.0
    peel_kernel_calls: int = 0
    rescan_batches: int = 0
    rescan_rows: int = 0
    shard_count: int = 0
    border_workers: int = 0
    halo_rounds: int = 0
    halo_moves: int = 0
    border_seeded: int = 0
    shard_failures: int = 0
    shard_failovers: int = 0

    def merge(self, other: "SolverStats") -> "SolverStats":
        """Accumulate another run's counters into this object (in place).

        Per-round details are concatenated; phase timings are summed by
        name. Returns ``self`` for chaining.
        """
        if not self.solver:
            self.solver = other.solver
        self.revenue_evaluations += other.revenue_evaluations
        self.incremental_updates += other.incremental_updates
        self.gain_evaluations += other.gain_evaluations
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.lub_invalidations += other.lub_invalidations
        self.total_seconds += other.total_seconds
        for name, seconds in other.phase_seconds.items():
            self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + seconds
        self.degraded_solves += other.degraded_solves
        for tier, count in other.fallback_answers.items():
            self.fallback_answers[tier] = (
                self.fallback_answers.get(tier, 0) + count
            )
        self.kernel_compiled_calls += other.kernel_compiled_calls
        self.kernel_fallback_calls += other.kernel_fallback_calls
        self.kernel_compile_seconds += other.kernel_compile_seconds
        self.peel_kernel_calls += other.peel_kernel_calls
        self.rescan_batches += other.rescan_batches
        self.rescan_rows += other.rescan_rows
        self.shard_count += other.shard_count
        self.border_workers += other.border_workers
        self.halo_rounds += other.halo_rounds
        self.halo_moves += other.halo_moves
        self.border_seeded += other.border_seeded
        self.shard_failures += other.shard_failures
        self.shard_failovers += other.shard_failovers
        self.rounds.extend(other.rounds)
        # ``runs`` adds like every other counter: an incoming object that
        # itself aggregates k runs contributes exactly k. (A previous
        # version added ``other.runs - 1`` and then skipped the final +1
        # for multi-run inputs, so merging {runs: 3} into {runs: 1}
        # yielded 3 instead of 4.)
        self.runs += other.runs
        return self

    @classmethod
    def merged(cls, runs: Iterable["SolverStats"]) -> "SolverStats | None":
        """Sum a sequence of per-run stats; ``None`` for an empty one."""
        total: SolverStats | None = None
        for stats in runs:
            if total is None:
                total = SolverStats(solver=stats.solver, runs=0)
            total.merge(stats)
        if total is not None and total.runs == 0:
            total.runs = 1
        return total

    @property
    def cache_hit_ratio(self) -> float:
        """LUB hits over all best-response scans (0 when none ran)."""
        scans = self.cache_hits + self.cache_misses
        return self.cache_hits / scans if scans else 0.0

    def to_dict(self) -> dict:
        """JSON-ready representation (used by ``bench_guard``)."""
        return {
            "solver": self.solver,
            "revenue_evaluations": self.revenue_evaluations,
            "incremental_updates": self.incremental_updates,
            "gain_evaluations": self.gain_evaluations,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "lub_invalidations": self.lub_invalidations,
            "total_seconds": self.total_seconds,
            "phase_seconds": dict(self.phase_seconds),
            "rounds": [
                {
                    "index": r.index,
                    "seconds": r.seconds,
                    "moves": r.moves,
                    "gain": r.gain,
                    "evaluations": r.evaluations,
                }
                for r in self.rounds
            ],
            "runs": self.runs,
            "degraded_solves": self.degraded_solves,
            "fallback_answers": dict(self.fallback_answers),
            "kernel_compiled_calls": self.kernel_compiled_calls,
            "kernel_fallback_calls": self.kernel_fallback_calls,
            "kernel_compile_seconds": self.kernel_compile_seconds,
            "peel_kernel_calls": self.peel_kernel_calls,
            "rescan_batches": self.rescan_batches,
            "rescan_rows": self.rescan_rows,
            "shard_count": self.shard_count,
            "border_workers": self.border_workers,
            "halo_rounds": self.halo_rounds,
            "halo_moves": self.halo_moves,
            "border_seeded": self.border_seeded,
            "shard_failures": self.shard_failures,
            "shard_failovers": self.shard_failovers,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SolverStats":
        """Inverse of :meth:`to_dict` (used by the sweep checkpoint
        journal); tolerates records written before newer fields existed."""
        payload = dict(payload)
        rounds = [RoundStats(**entry) for entry in payload.pop("rounds", [])]
        return cls(rounds=rounds, **payload)

    def summary(self) -> str:
        """One human-readable line for CLI/benchmark output."""
        parts = [
            f"evals={self.gain_evaluations}",
            f"full_Q={self.revenue_evaluations}",
            f"incr={self.incremental_updates}",
        ]
        if self.cache_hits or self.cache_misses:
            parts.append(
                f"lub_hit={self.cache_hit_ratio:.0%}"
                f" inval={self.lub_invalidations}"
            )
        if self.rounds:
            parts.append(f"rounds={len(self.rounds)}")
        if self.fallback_answers:
            answers = ",".join(
                f"{tier}:{count}"
                for tier, count in sorted(self.fallback_answers.items())
            )
            parts.append(f"degraded={self.degraded_solves} via={answers}")
        if self.kernel_compiled_calls or self.kernel_fallback_calls:
            parts.append(
                f"kernel={self.kernel_compiled_calls}c"
                f"/{self.kernel_fallback_calls}f"
            )
            if self.kernel_compile_seconds:
                parts.append(
                    f"compile={self.kernel_compile_seconds * 1e3:.1f}ms"
                )
        if self.peel_kernel_calls:
            parts.append(f"peel={self.peel_kernel_calls}k")
        if self.rescan_batches:
            parts.append(
                f"rescan={self.rescan_batches}b/{self.rescan_rows}r"
            )
        if self.shard_count > 1:
            parts.append(
                f"shards={self.shard_count} border={self.border_workers}"
                f" halo={self.halo_rounds}r/{self.halo_moves}m"
                f" seeded={self.border_seeded}"
            )
        if self.shard_failures or self.shard_failovers:
            parts.append(
                f"shard_failures={self.shard_failures}"
                f" failovers={self.shard_failovers}"
            )
        for name, seconds in self.phase_seconds.items():
            parts.append(f"{name}={seconds * 1e3:.1f}ms")
        parts.append(f"total={self.total_seconds * 1e3:.1f}ms")
        return " ".join(parts)
