"""Task-Priority Greedy (TPG) — Algorithm 2 of the paper.

Two stages:

1. **Seeding.** Iteratively give each still-empty task its best
   ``B``-worker set (greedy build: best available pair, then argmax
   marginal additions), pick the task whose set scores highest overall,
   and commit it. Ties between tasks competing for the same set go to the
   task with the most remaining candidate workers, so the loser keeps a
   wider choice later (paper lines 6-9).
2. **Filling.** Repeatedly commit the single valid worker-task pair with
   the highest marginal revenue gain ``DeltaQ`` (Equation 4) until tasks
   are full or workers run out.

The implementation keeps the asymptotics of the paper's analysis
(``max(O(m n n_bar), O(m_bar n^2))``) but adds two standard engineering
touches: stage 1 caches each task's best set and only recomputes sets that
lost a member to an assignment, and stage 2 uses a version-stamped heap so
each commit re-scores only the pairs of the task whose membership changed.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass

import numpy as np

from repro.core.assignment import Assignment
from repro.core.kernels import (
    DEFAULT_KERNEL,
    best_group as _kernel_best_group,
    exact_group_select,
    greedy_group_select,
    resolve_kernel,
)
from repro.core.model import Instance
from repro.core.stats import SolverStats
from repro.core.validity import ValidPairs, compute_valid_pairs

__all__ = ["solve_tpg", "greedy_best_group", "TPGResult"]


@dataclass(frozen=True)
class TPGResult:
    """Outcome of a TPG run.

    ``seeded_tasks`` is the number of tasks that received a full
    ``B``-worker set in stage 1 (the paper's ``N_init``, used by the
    price-of-anarchy bound of Theorem V.2). ``stats`` carries the
    :class:`~repro.core.stats.SolverStats` instrumentation: stage-1/
    stage-2 wall-clock, marginal-gain evaluation counts and the revenue
    cache's incremental-vs-full evaluation split.
    """

    assignment: Assignment
    seeded_tasks: int
    stats: SolverStats | None = None


#: Memoized combination tables for :func:`exact_best_group`, keyed by
#: ``(candidate_count, size)``: the combination matrix plus one pair of
#: column index arrays per unordered position pair. Stage 1 calls the
#: exact seeder hundreds of times per batch with the same tiny shapes,
#: so the itertools enumeration is paid once per shape.
_COMBO_TABLES: dict[
    tuple[int, int], tuple[np.ndarray, list[tuple[np.ndarray, np.ndarray]]]
] = {}


def _combo_table(
    count: int, size: int
) -> tuple[np.ndarray, list[tuple[np.ndarray, np.ndarray]]]:
    import itertools

    key = (count, size)
    table = _COMBO_TABLES.get(key)
    if table is None:
        combos = np.asarray(
            list(itertools.combinations(range(count), size)), dtype=np.intp
        )
        pair_columns = [
            (combos[:, i], combos[:, j])
            for i in range(size)
            for j in range(i + 1, size)
        ]
        table = (combos, pair_columns)
        _COMBO_TABLES[key] = table
    return table


def exact_best_group(
    quality, candidates: list[int], size: int, buffers=None, stats=None
) -> tuple[list[int], float]:
    """Exhaustive max-quality ``size``-group (tiny candidate sets only).

    Used by :func:`greedy_best_group` below a candidate-count threshold,
    and by tests as the oracle for the greedy's approximation quality.

    The enumeration is vectorized
    (:func:`~repro.core.kernels.exact_group_select`): each combination's
    pair sum is the sequential left-to-right accumulation over its
    position pairs in lexicographic order — the same float additions, in
    the same order, as the scalar loop it replaced — and ``argmax`` keeps
    the first maximum exactly like a strict ``>`` scan. With ``buffers``
    (the quality store's kernel export) the whole evaluation runs in
    :func:`~repro.core.kernels.best_group` instead — bit-identical.
    """
    count = len(candidates)
    if count < size or size < 2:
        return [], 0.0
    ordered = sorted(candidates)
    table = _combo_table(count, size)
    if buffers is not None:
        return _kernel_best_group(buffers, ordered, size, table=table, stats=stats)
    index = np.asarray(ordered, dtype=np.intp)
    sub = quality.gather(index)
    symmetric = sub + sub.T

    combos, _ = table
    best, pair_sum = exact_group_select(symmetric, table[1])
    best_group = [ordered[i] for i in combos[best]]
    return best_group, pair_sum / (size - 1)


#: Candidate-count threshold below which stage 1 solves the B-group
#: subproblem exactly instead of greedily. C(12, 3) = 220 evaluations —
#: cheaper than the vectorized greedy's setup at that size.
EXACT_SEED_THRESHOLD = 12


def greedy_best_group(
    quality, candidates: list[int], size: int, buffers=None, stats=None
) -> tuple[list[int], float]:
    """Greedy max-quality ``size``-group from ``candidates``.

    Seeds with the candidate pair maximizing ``q_i(w_k) + q_k(w_i)`` and
    grows by argmax cross-sum additions
    (:func:`~repro.core.kernels.greedy_group_select`). Returns
    ``(group, Q)`` where ``Q`` is the Equation 2 revenue of the group
    (denominator ``size - 1``); returns ``([], 0.0)`` when there are not
    enough candidates. Falls back to the exact enumeration when the
    candidate set is tiny (:data:`EXACT_SEED_THRESHOLD`). Pass
    ``buffers`` (the store's ``as_kernel_buffers()`` export) to evaluate
    through the compiled stage-1 kernel — bit-identical floats either
    way, enforced by the parity suite.
    """
    count = len(candidates)
    if count < size or size < 2:
        return [], 0.0
    if count <= EXACT_SEED_THRESHOLD:
        return exact_best_group(quality, candidates, size, buffers=buffers, stats=stats)
    if buffers is not None:
        return _kernel_best_group(buffers, candidates, size, stats=stats)
    index = np.asarray(candidates, dtype=np.intp)
    sub = quality.gather(index)
    symmetric = sub + sub.T
    selection = greedy_group_select(symmetric, size)
    if selection is None:
        return [], 0.0
    chosen, pair_sum = selection
    group = [int(index[local]) for local in chosen]
    return group, pair_sum / (size - 1)


def solve_tpg(
    instance: Instance,
    valid_pairs: ValidPairs | None = None,
    allow_negative_gain: bool = False,
    kernel: str = DEFAULT_KERNEL,
) -> Assignment:
    """Run TPG and return a feasible assignment.

    Parameters
    ----------
    instance:
        The batch to solve.
    valid_pairs:
        Precomputed Definition 3 structure; computed here when omitted.
    allow_negative_gain:
        Stage 2 normally stops committing a pair whose marginal gain is
        not positive (an extra worker can dilute a group's average).
        Enable to reproduce the paper's literal "assign every worker to
        his/her most suitable task" reading.
    kernel:
        ``"python"`` evaluates stage-1 groups through the quality store;
        ``"native"`` through the batched kernel buffers
        (:func:`~repro.core.kernels.best_group` — numba when available).
        Bit-identical assignments either way.
    """
    return _solve_tpg_full(
        instance, valid_pairs, allow_negative_gain, kernel=kernel
    ).assignment


def solve_tpg_with_stats(
    instance: Instance,
    valid_pairs: ValidPairs | None = None,
    allow_negative_gain: bool = False,
    kernel: str = DEFAULT_KERNEL,
) -> TPGResult:
    """Like :func:`solve_tpg` but also reports stage-1 statistics."""
    return _solve_tpg_full(instance, valid_pairs, allow_negative_gain, kernel=kernel)


def _solve_tpg_full(
    instance: Instance,
    valid_pairs: ValidPairs | None,
    allow_negative_gain: bool,
    kernel: str = DEFAULT_KERNEL,
) -> TPGResult:
    kernel = resolve_kernel(kernel)
    if valid_pairs is None:
        valid_pairs = compute_valid_pairs(instance)
    assignment = Assignment(instance, valid_pairs)
    # Stage 2's join-gain probes can hit overflow peels; route them (and
    # any later cache refresh) through the selected kernel.
    assignment.revenue_cache.kernel = kernel
    available = np.ones(instance.worker_count, dtype=bool)
    stats = SolverStats(solver="TPG")

    started = time.perf_counter()
    seeded = _stage_one(
        instance, valid_pairs, assignment, available, kernel=kernel, stats=stats
    )
    stage_one_done = time.perf_counter()
    _stage_two(
        instance, valid_pairs, assignment, available, seeded,
        allow_negative_gain, stats,
    )
    finished = time.perf_counter()

    cache = assignment.revenue_cache
    stats.revenue_evaluations = cache.full_evaluations
    stats.incremental_updates = cache.incremental_updates
    stats.peel_kernel_calls = cache.peel_kernel_calls
    stats.phase_seconds["stage1"] = stage_one_done - started
    stats.phase_seconds["stage2"] = finished - stage_one_done
    stats.total_seconds = finished - started
    return TPGResult(assignment=assignment, seeded_tasks=len(seeded), stats=stats)


def _stage_one(
    instance: Instance,
    valid_pairs: ValidPairs,
    assignment: Assignment,
    available: np.ndarray,
    kernel: str = DEFAULT_KERNEL,
    stats: SolverStats | None = None,
) -> set[int]:
    """Seed tasks with B-worker groups; returns the seeded task set."""
    minimum = instance.min_group_size
    quality = instance.quality
    buffers = quality.as_kernel_buffers() if kernel == "native" else None
    open_tasks = set(range(instance.task_count))
    seeded: set[int] = set()
    # Cached best group per task; invalidated when a member gets taken.
    cache: dict[int, tuple[list[int], float]] = {}

    while open_tasks:
        best_task, best_group, best_score = -1, [], -np.inf
        dead_tasks: list[int] = []
        for task in open_tasks:
            if task not in cache:
                candidates = [
                    worker
                    for worker in valid_pairs.workers_for_task[task]
                    if available[worker]
                ]
                cache[task] = greedy_best_group(
                    quality, candidates, minimum, buffers=buffers, stats=stats
                )
            group, score = cache[task]
            if not group:
                dead_tasks.append(task)
                continue
            if score > best_score:
                best_task, best_group, best_score = task, group, score
            elif score == best_score and best_group == group:
                # Competition for the same set: prefer the task with the
                # most remaining candidates (paper lines 6-9).
                if _candidate_count(valid_pairs, available, task) > _candidate_count(
                    valid_pairs, available, best_task
                ):
                    best_task = task
        for task in dead_tasks:
            open_tasks.discard(task)
            cache.pop(task, None)
        if best_task < 0:
            break

        for worker in best_group:
            assignment.assign(worker, best_task)
            available[worker] = False
        open_tasks.discard(best_task)
        cache.pop(best_task, None)
        seeded.add(best_task)
        taken = set(best_group)
        stale = [
            t for t, (group, _) in cache.items() if not taken.isdisjoint(group)
        ]
        for task in stale:
            del cache[task]
    return seeded


def _candidate_count(
    valid_pairs: ValidPairs, available: np.ndarray, task: int
) -> int:
    return sum(1 for worker in valid_pairs.workers_for_task[task] if available[worker])


def _stage_two(
    instance: Instance,
    valid_pairs: ValidPairs,
    assignment: Assignment,
    available: np.ndarray,
    seeded: set[int],
    allow_negative_gain: bool,
    stats: SolverStats | None = None,
) -> None:
    """Fill seeded tasks up to capacity by max marginal gain."""
    open_tasks = {
        task
        for task in seeded
        if assignment.assigned_count(task) < instance.tasks[task].capacity
    }
    if not open_tasks or not available.any():
        return

    versions = [0] * instance.task_count
    heap: list[tuple[float, int, int, int]] = []  # (-gain, version, worker, task)

    def push_pairs_for_task(task: int) -> None:
        pushed = 0
        for worker in valid_pairs.workers_for_task[task]:
            if available[worker]:
                gain = assignment.join_gain(worker, task)
                heapq.heappush(heap, (-gain, versions[task], worker, task))
                pushed += 1
        if stats is not None:
            stats.gain_evaluations += pushed

    for task in open_tasks:
        push_pairs_for_task(task)

    while heap and open_tasks and available.any():
        negative_gain, version, worker, task = heapq.heappop(heap)
        if task not in open_tasks or not available[worker]:
            continue
        if version != versions[task]:
            continue  # stale entry; a fresh one was pushed on the update
        gain = -negative_gain
        if not allow_negative_gain and gain <= 0.0:
            break  # heap max is non-positive: no pair improves the score
        assignment.assign(worker, task)
        available[worker] = False
        versions[task] += 1
        if assignment.assigned_count(task) >= instance.tasks[task].capacity:
            open_tasks.discard(task)
        else:
            push_pairs_for_task(task)
