"""Online greedy assignment — the contrast mode of Section VII.

The paper's related work distinguishes *batch-based* server assignment
(what CA-SC uses) from *online* assignment, where the platform commits a
worker to a task the moment the worker appears and never revisits the
decision. This module implements that mode for the CA-SC objective so
the repository can quantify the value of batching:

each worker, in arrival order, joins the valid task with the highest
marginal cooperation gain given only the *already-committed* workers —
i.e. a single pass of best-response with no adjustment rounds.

This is exactly the first round of Algorithm 3 from an empty profile, so
``solve_online_greedy`` is both a meaningful baseline and a lower bound
on the GT result from ``init="empty"``.
"""

from __future__ import annotations

from repro.core.assignment import Assignment
from repro.core.model import Instance
from repro.core.validity import ValidPairs, compute_valid_pairs

__all__ = ["solve_online_greedy"]


def solve_online_greedy(
    instance: Instance,
    valid_pairs: ValidPairs | None = None,
    arrival_order: list[int] | None = None,
) -> Assignment:
    """Assign each worker on arrival to its best task, irrevocably.

    Parameters
    ----------
    arrival_order:
        Worker indices in the order they appear; defaults to the
        instance's ``arrival_time`` order (ties broken by index). Workers
        with no positive-gain valid task stay idle.

    Notes
    -----
    Because early workers commit before teammates exist, groups below the
    minimum size ``B`` can strand workers — the price of the online mode
    the paper's batch framework avoids. Stranded (sub-``B``) groups are
    kept in the returned assignment (their revenue is zero) so callers
    can measure that stranding directly.
    """
    if valid_pairs is None:
        valid_pairs = compute_valid_pairs(instance)
    if arrival_order is None:
        arrival_order = sorted(
            range(instance.worker_count),
            key=lambda w: (instance.workers[w].arrival_time, w),
        )
    elif sorted(arrival_order) != list(range(instance.worker_count)):
        raise ValueError("arrival_order must be a permutation of all workers")

    assignment = Assignment(instance, valid_pairs)
    for worker in arrival_order:
        best_task, best_gain = -1, 0.0
        for task in valid_pairs.tasks_for_worker[worker]:
            if assignment.assigned_count(task) >= instance.tasks[task].capacity:
                continue
            gain = assignment.join_gain(worker, task)
            # An online platform must also value progress toward B:
            # joining a sub-B group has zero immediate gain, so break
            # ties toward the group closest to completion.
            if gain > best_gain or (
                gain == best_gain
                and best_task >= 0
                and assignment.assigned_count(task)
                > assignment.assigned_count(best_task)
            ):
                best_task, best_gain = task, gain
        if best_task < 0:
            # No positive-gain task: join the fullest non-full valid task
            # to build toward B (otherwise nothing ever reaches B).
            candidates = [
                task
                for task in valid_pairs.tasks_for_worker[worker]
                if assignment.assigned_count(task) < instance.tasks[task].capacity
            ]
            if not candidates:
                continue
            best_task = max(
                candidates, key=lambda task: assignment.assigned_count(task)
            )
        assignment.assign(worker, best_task)
    return assignment
