"""repro — Cooperation-Aware Task Assignment in Spatial Crowdsourcing.

A full reproduction of the CA-SC system of Cheng, Chen and Ye (ICDE 2019):
the problem model (Definitions 1-4), the Task-Priority Greedy solver
(Algorithm 2), the game-theoretic solver with the LUB and TSI
optimizations (Algorithm 3, Section V-D), the RAND and MFLOW baselines,
the Equation 9 upper bound, the batch-based framework (Algorithm 1), and
the data generators and experiment harness behind every figure in the
paper's evaluation.

Quickstart
----------
>>> from repro import datasets, solve_tpg, solve_game_theoretic
>>> instance = datasets.generate_instance(40, 6, seed=7)
>>> greedy = solve_tpg(instance)
>>> nash = solve_game_theoretic(instance).assignment
>>> nash.total_score() >= greedy.total_score() - 1e-9
True
"""

from repro import datasets, experiments, simulation
from repro.core import (
    Assignment,
    LocalSearchResult,
    BoundReport,
    CooperationMatrix,
    GameResult,
    Instance,
    Task,
    ValidPairs,
    Worker,
    compute_valid_pairs,
    solve_exact,
    solve_game_theoretic,
    solve_local_search,
    solve_mflow,
    solve_online_greedy,
    solve_random,
    solve_tpg,
    upper_bound,
)

__version__ = "1.0.0"

__all__ = [
    "Assignment",
    "BoundReport",
    "CooperationMatrix",
    "GameResult",
    "Instance",
    "Task",
    "ValidPairs",
    "Worker",
    "compute_valid_pairs",
    "datasets",
    "experiments",
    "simulation",
    "solve_exact",
    "solve_game_theoretic",
    "solve_local_search",
    "LocalSearchResult",
    "solve_mflow",
    "solve_online_greedy",
    "solve_random",
    "solve_tpg",
    "upper_bound",
    "__version__",
]
