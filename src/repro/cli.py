"""Command-line interface for the CA-SC toolkit.

Eight subcommands cover the generate -> solve -> evaluate loop a
downstream user needs without writing Python, plus a multi-round
simulation driver, a figure-sweep runner, a correctness auditor, a
process-chaos campaign driver and a hot-path profiler::

    python -m repro.cli generate --workers 200 --tasks 40 --out batch.json
    python -m repro.cli solve batch.json --approach GT+ALL --out assignment.json
    python -m repro.cli evaluate batch.json assignment.json
    python -m repro.cli simulate --approach GT+ALL --rounds 10 --csv rounds.csv
    python -m repro.cli sweep --figure fig7 --scale 0.2 --jobs 4
    python -m repro.cli audit --budget 60 --seed 0
    python -m repro.cli chaos --sweeps 2 --kill-rate 0.1 --seed 0
    python -m repro.cli profile --workers 2000 --tasks 500 --out hotspots.json

``generate`` writes an instance as JSON (see ``repro.datasets.io``);
``solve`` runs any registered approach and prints score, upper bound and
timing; ``evaluate`` re-checks a saved assignment's feasibility and score
(e.g. one produced by an external solver); ``simulate`` runs Algorithm
1's batch framework over a synthetic or Meetup-like population and can
export per-round metrics as CSV/JSONL; ``sweep`` regenerates one paper
figure, optionally fanned out over ``--jobs`` worker processes with
bit-identical results (see docs/PERFORMANCE.md, "Parallel execution");
``audit`` replays the committed repro corpus and then fuzzes fresh
boundary-biased instances through the differential harness, shrinking
any failure to a minimal repro (see docs/AUDIT.md); ``chaos`` runs a
seeded process-chaos campaign — pool children killed, hung, or crashed
mid-attach — asserting results stay repr-identical to a clean run and
no shared-memory segment leaks (see docs/ROBUSTNESS.md), and its
``--reap`` flag scans the shared-memory registry for orphaned segments;
``profile`` runs validity construction and one solve under
:mod:`cProfile` and reports the top functions per phase alongside the
solver's own phase timings (see docs/PERFORMANCE.md, "Profiling").
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.core.assignment import Assignment
from repro.core.bounds import upper_bound
from repro.core.kernels import DEFAULT_KERNEL, KERNELS
from repro.core.validity import compute_valid_pairs
from repro.datasets.io import load_instance, save_instance
from repro.datasets.synthetic import generate_instance
from repro.experiments.config import (
    APPROACHES,
    DEFAULT_APPROACH_ORDER,
    make_solver,
)
from repro.utils.errors import ReproError

__all__ = ["main"]


def _cmd_generate(args: argparse.Namespace) -> int:
    instance = generate_instance(
        worker_count=args.workers,
        task_count=args.tasks,
        capacity=args.capacity,
        remaining_time=args.remaining_time,
        speed_range=(args.speed_min, args.speed_max),
        radius_range=(args.radius_min, args.radius_max),
        min_group_size=args.min_group_size,
        distribution=args.distribution,
        quality_kind=args.quality,
        seed=args.seed,
    )
    save_instance(instance, args.out)
    pairs = compute_valid_pairs(instance)
    print(
        f"wrote {args.out}: {instance.worker_count} workers, "
        f"{instance.task_count} tasks, {pairs.pair_count} valid pairs"
    )
    return 0


def _wrap_budget(solver, args: argparse.Namespace):
    """Wrap a solver in the anytime fallback chain when a budget is set.

    Without ``--solver-budget`` the raw solver is returned unchanged, so
    assignments stay bit-identical to earlier releases.
    """
    budget = getattr(args, "solver_budget", None)
    if budget is None:
        return solver
    from repro.core.fallback import FallbackSolver

    return FallbackSolver(
        solver, budget=budget, label=args.approach, seed=args.seed
    )


def _print_degradations(solver) -> None:
    """Print one line per degraded call of a FallbackSolver (if any)."""
    log = getattr(solver, "degradation_log", None)
    if not log:
        return
    degraded = [record for record in log if record.degraded]
    for record in degraded:
        print(f"degradation: {record.summary()}")
    if degraded:
        print(
            f"degraded {len(degraded)}/{len(log)} solve(s) under the "
            f"{log[0].budget_seconds:g}s budget"
        )


def _parse_faults(spec: str):
    """``--faults`` spec -> :class:`~repro.simulation.faults.FaultModel`.

    Comma-separated ``key=value`` pairs: ``no_show``, ``dropout``,
    ``cancel`` (rates in [0, 1]), ``noise`` (location sigma), ``release``
    (dropout busy fraction), ``retries`` (max per task), ``repair``
    (0/1). Example: ``no_show=0.1,dropout=0.05,repair=1``.
    """
    from repro.simulation.faults import FaultModel

    keys = {
        "no_show": ("no_show_rate", float),
        "dropout": ("dropout_rate", float),
        "cancel": ("cancellation_rate", float),
        "noise": ("location_noise_sigma", float),
        "release": ("dropout_release", float),
        "retries": ("max_task_retries", int),
        "repair": ("repair", lambda raw: bool(int(raw))),
    }
    kwargs = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, raw = part.partition("=")
        if name not in keys:
            raise ValueError(
                f"unknown fault key {name!r}; expected one of "
                f"{', '.join(sorted(keys))}"
            )
        field, convert = keys[name]
        kwargs[field] = convert(raw)
    return FaultModel(**kwargs)


def _cmd_solve(args: argparse.Namespace) -> int:
    instance = load_instance(args.instance)
    pairs = compute_valid_pairs(instance)
    solver = make_solver(
        args.approach,
        epsilon=args.epsilon,
        seed=args.seed,
        kernel=args.kernel,
        shards=args.shards,
        halo_rounds=args.halo_rounds,
        shard_timeout=args.shard_timeout,
    )
    solver = _wrap_budget(solver, args)

    started = time.perf_counter()
    assignment = solver(instance, pairs)
    elapsed = time.perf_counter() - started

    assignment.check_feasible()
    bound = upper_bound(instance, pairs).value
    score = assignment.total_score()
    ratio = score / bound if bound else 0.0
    print(
        f"{args.approach}: score={score:.4f} ({ratio:.1%} of UPPER={bound:.4f}), "
        f"completed {assignment.completed_task_count()} tasks, "
        f"assigned {assignment.assigned_worker_count()} workers, "
        f"{elapsed:.3f}s"
    )
    _print_stats(solver)
    _print_degradations(solver)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump({"pairs": assignment.to_pairs()}, handle)
        print(f"wrote assignment to {args.out}")
    return 0


def _print_stats(solver) -> None:
    """Print the merged SolverStats line of an instrumented solver.

    TPG and the GT variants expose ``stats_log`` (one entry per solve);
    baselines do not, and print nothing extra.
    """
    from repro.core.stats import SolverStats

    log = getattr(solver, "stats_log", None)
    if not log:
        return
    merged = SolverStats.merged(log)
    prefix = f"stats[{merged.solver}]"
    if merged.runs > 1:
        prefix += f" over {merged.runs} solves"
    print(f"{prefix}: {merged.summary()}")


def _cmd_evaluate(args: argparse.Namespace) -> int:
    instance = load_instance(args.instance)
    with open(args.assignment, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    pairs = compute_valid_pairs(instance)
    assignment = Assignment(instance, pairs)
    try:
        for worker, task in payload["pairs"]:
            assignment.assign(int(worker), int(task))
        assignment.check_feasible()
    except Exception as error:  # surfaced as a clean CLI failure
        print(f"INFEASIBLE: {error}", file=sys.stderr)
        return 1
    print(
        f"feasible: score={assignment.total_score():.4f}, "
        f"completed {assignment.completed_task_count()} tasks"
    )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.experiments.config import ExperimentSettings
    from repro.experiments.reporting import format_fault_summary
    from repro.experiments.runner import build_population
    from repro.simulation.batch import BatchConfig, BatchSimulator
    from repro.simulation.metrics import aggregate, write_csv, write_jsonl

    settings = ExperimentSettings(
        rounds=args.rounds,
        workers_per_round=args.workers,
        tasks_per_round=args.tasks,
        capacity=args.capacity,
        dataset=args.dataset,
        quality_backend=args.quality_backend,
        kernel=args.kernel,
        shards=args.shards,
        halo_rounds=args.halo_rounds,
        shard_timeout=args.shard_timeout,
    )
    population = build_population(settings, seed=args.seed)
    config: BatchConfig = settings.to_batch_config()
    if args.faults:
        config = replace(config, faults=_parse_faults(args.faults))
    solver = make_solver(
        args.approach,
        epsilon=args.epsilon,
        seed=args.seed,
        kernel=settings.kernel,
        shards=settings.shards,
        halo_rounds=settings.halo_rounds,
        shard_timeout=settings.shard_timeout,
    )
    solver = _wrap_budget(solver, args)
    report = BatchSimulator(population, config, solver, seed=args.seed).run()

    stats = aggregate(report)
    print(
        f"{args.approach} over {stats.rounds} rounds: "
        f"total score {stats.total_score:.2f}, "
        f"{stats.total_completed_tasks} tasks completed "
        f"({stats.completion_rate:.1%} of offered), "
        f"assignment rate {stats.assignment_rate:.1%}, "
        f"mean batch {stats.mean_batch_seconds * 1e3:.1f} ms"
    )
    _print_stats(solver)
    _print_degradations(solver)
    fault_line = format_fault_summary(report)
    if fault_line:
        print(fault_line)
    if args.csv:
        write_csv(report, args.csv)
        print(f"wrote per-round metrics to {args.csv}")
    if args.jsonl:
        write_jsonl(report, args.jsonl)
        print(f"wrote per-round metrics to {args.jsonl}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.figures import ALL_FIGURES
    from repro.experiments.reporting import (
        figure_to_markdown,
        format_failures,
        format_figure,
        format_telemetry,
    )

    started = time.perf_counter()
    result = ALL_FIGURES[args.figure](
        scale=args.scale,
        seed=args.seed,
        n_jobs=args.jobs,
        checkpoint=args.resume,
        quality_backend=args.quality_backend,
        shards=args.shards,
        halo_rounds=args.halo_rounds,
        shard_timeout=args.shard_timeout,
    )
    elapsed = time.perf_counter() - started
    print(format_figure(result))
    if args.jobs > 1 or args.resume:
        print(format_telemetry(result.telemetry))
    print(f"[{args.figure} regenerated in {elapsed:.1f}s]")
    if args.out:
        with open(args.out, "a", encoding="utf-8") as handle:
            handle.write(
                f"### {result.figure}\n\n" + figure_to_markdown(result) + "\n"
            )
        print(f"wrote markdown tables to {args.out}")
    if result.failures:
        print(format_failures(result.failures), file=sys.stderr)
        return 1
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.audit.runner import run_audit, run_self_test
    from repro.experiments.reporting import format_audit_outcome

    if args.self_test:
        result = run_self_test(seed=args.seed)
        print(result.summary())
        if not result.detected:
            return 1
        if result.shrunk_workers > 6 or result.shrunk_tasks > 3:
            print(
                "self-test FAILED: shrunk repro larger than the "
                f"6-worker/3-task contract ({result.shrunk_workers}w/"
                f"{result.shrunk_tasks}t)",
                file=sys.stderr,
            )
            return 1
        return 0

    approaches = args.approaches.split(",") if args.approaches else None
    outcome = run_audit(
        budget=args.budget,
        seed=args.seed,
        corpus_dir=args.corpus,
        out_dir=args.out_dir,
        approaches=approaches,
        log=print if args.verbose else None,
    )
    print(format_audit_outcome(outcome))
    return 0 if outcome.ok else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.core.quality_store import reap_orphans
    from repro.experiments.reporting import format_chaos_report

    if args.reap:
        report = reap_orphans(force=args.force)
        print(report.summary())
        return 0

    from repro.chaos import run_campaign

    campaign = run_campaign(
        seed=args.seed,
        sweeps=args.sweeps,
        n_jobs=args.jobs,
        kill_rate=args.kill_rate,
        hang_rate=args.hang_rate,
        raise_rate=args.raise_rate,
        attach_exit_rate=args.attach_exit_rate,
        timeout=args.timeout,
        workdir=args.workdir,
    )
    print(format_chaos_report(campaign))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(campaign.to_dict(), handle, indent=2)
        print(f"wrote campaign report to {args.out}")
    return 0 if campaign.ok else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.experiments.profiling import profile_solve

    if args.instance:
        instance = load_instance(args.instance)
    else:
        instance = generate_instance(
            worker_count=args.workers,
            task_count=args.tasks,
            seed=args.seed,
        )
    report = profile_solve(
        instance,
        approach=args.approach,
        kernel=args.kernel,
        epsilon=args.epsilon,
        seed=args.seed,
        top=args.top,
    )
    for line in report.summary_lines(top=args.top):
        print(line)
    if args.out:
        report.write_json(args.out)
        print(f"wrote hotspot report to {args.out}")
    return 0


def _add_shard_arguments(parser: argparse.ArgumentParser) -> None:
    """The geo-sharding knobs, shared by solve/simulate/sweep."""
    parser.add_argument(
        "--shards",
        default="1",
        metavar="{auto,N}",
        help="geo-sharded solving for the GT/TPG family: 'auto' targets "
        "~2500 workers per spatial shard, N pins the shard count, 1 "
        "(default) keeps the monolithic solver with repr-identical "
        "results (see docs/PERFORMANCE.md, 'Geo-sharded solving')",
    )
    parser.add_argument(
        "--halo-rounds",
        type=int,
        default=2,
        help="bound on the boundary-reconcile best-response passes over "
        "border workers after the per-shard solves (default 2)",
    )
    parser.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per shard solve: a shard that exceeds it "
        "(or whose worker process crashes) is failed over to an inline "
        "fallback-ladder re-solve instead of aborting the batch, counted "
        "in the stats line as shard_failures/failovers (default: "
        "unbounded; see docs/ROBUSTNESS.md)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro.cli", description=__doc__)
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="generate a synthetic instance as JSON"
    )
    generate.add_argument("--workers", type=int, default=200)
    generate.add_argument("--tasks", type=int, default=40)
    generate.add_argument("--capacity", type=int, default=4)
    generate.add_argument("--min-group-size", type=int, default=3)
    generate.add_argument("--remaining-time", type=float, default=3.0)
    generate.add_argument("--speed-min", type=float, default=0.01)
    generate.add_argument("--speed-max", type=float, default=0.05)
    generate.add_argument("--radius-min", type=float, default=0.05)
    generate.add_argument("--radius-max", type=float, default=0.10)
    generate.add_argument(
        "--distribution", choices=("uniform", "skewed"), default="uniform"
    )
    generate.add_argument(
        "--quality", choices=("community", "uniform"), default="community"
    )
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", required=True)
    generate.set_defaults(handler=_cmd_generate)

    solve = commands.add_parser("solve", help="solve a JSON instance")
    solve.add_argument("instance")
    solve.add_argument(
        "--approach", choices=DEFAULT_APPROACH_ORDER, default="GT+ALL"
    )
    solve.add_argument("--epsilon", type=float, default=0.05)
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument(
        "--kernel",
        choices=KERNELS,
        default=DEFAULT_KERNEL,
        help="evaluation kernel for the GT/TPG variants: 'native' batches "
        "Equation 5 scans per round and routes overflow counted-subset "
        "peels through the bulk-gather peel kernel (numba-compiled when "
        "available, bit-identical numpy fallback otherwise); results "
        "match 'python' exactly (see docs/PERFORMANCE.md)",
    )
    solve.add_argument(
        "--solver-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="anytime wall-clock budget: on overrun the solver degrades "
        "GT -> TPG -> pair-greedy -> random but always answers "
        "(see docs/ROBUSTNESS.md)",
    )
    solve.add_argument("--out", default=None, help="write assignment JSON here")
    _add_shard_arguments(solve)
    solve.set_defaults(handler=_cmd_solve)

    evaluate = commands.add_parser(
        "evaluate", help="check a saved assignment against an instance"
    )
    evaluate.add_argument("instance")
    evaluate.add_argument("assignment")
    evaluate.set_defaults(handler=_cmd_evaluate)

    simulate = commands.add_parser(
        "simulate", help="run the multi-round batch framework"
    )
    simulate.add_argument(
        "--approach", choices=sorted(APPROACHES), default="GT+ALL"
    )
    simulate.add_argument("--rounds", type=int, default=10)
    simulate.add_argument("--workers", type=int, default=300)
    simulate.add_argument("--tasks", type=int, default=80)
    simulate.add_argument("--capacity", type=int, default=4)
    simulate.add_argument(
        "--dataset", choices=("unif", "skew", "meetup"), default="unif"
    )
    simulate.add_argument("--epsilon", type=float, default=0.05)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument(
        "--solver-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="anytime per-batch budget with solver degradation "
        "(see docs/ROBUSTNESS.md)",
    )
    simulate.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="inject worker/task faults, e.g. "
        "'no_show=0.1,dropout=0.05,cancel=0.02,noise=0.01' "
        "(see docs/ROBUSTNESS.md for all keys)",
    )
    simulate.add_argument(
        "--quality-backend",
        choices=("dense", "sparse"),
        default="dense",
        help="cooperation-store backend: 'sparse' keeps the synthetic "
        "community matrix as prior + CSR deviations in O(nnz) memory "
        "('unif'/'skew' datasets only; see docs/PERFORMANCE.md)",
    )
    simulate.add_argument(
        "--kernel",
        choices=KERNELS,
        default=DEFAULT_KERNEL,
        help="evaluation kernel for the GT variants, covering the batched "
        "Equation 5 scan and the overflow peel (same results either "
        "way; see docs/PERFORMANCE.md)",
    )
    simulate.add_argument("--csv", default=None, help="per-round CSV output")
    simulate.add_argument("--jsonl", default=None, help="per-round JSONL output")
    _add_shard_arguments(simulate)
    simulate.set_defaults(handler=_cmd_simulate)

    sweep = commands.add_parser(
        "sweep", help="regenerate one paper-figure sweep, optionally parallel"
    )
    from repro.experiments.figures import ALL_FIGURES

    sweep.add_argument(
        "--figure", choices=sorted(ALL_FIGURES), default="fig7"
    )
    sweep.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload scale in (0, 1]; 1.0 reproduces Table II sizes",
    )
    sweep.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (1 = serial; results are bit-identical "
        "either way)",
    )
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument(
        "--resume",
        default=None,
        metavar="JOURNAL",
        help="checkpoint JSONL path: finished cells are journaled there "
        "and a re-run with the same path skips them (safe to pass on "
        "the first run too)",
    )
    sweep.add_argument(
        "--quality-backend",
        choices=("dense", "sparse", "shared"),
        default="dense",
        help="cooperation-store backend: 'sparse' builds the synthetic "
        "population as prior + CSR deviations in O(nnz) memory "
        "(synthetic figures only); 'shared' keeps a dense matrix but "
        "serves it to --jobs workers from one shared-memory segment "
        "instead of per-process copies (see docs/PERFORMANCE.md)",
    )
    sweep.add_argument(
        "--out", default=None, help="markdown output file (appended)"
    )
    _add_shard_arguments(sweep)
    sweep.set_defaults(handler=_cmd_sweep)

    audit = commands.add_parser(
        "audit",
        help="differential correctness audit: corpus replay + seeded fuzz",
    )
    audit.add_argument(
        "--budget",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="wall-clock budget for the fuzzing phase (0 = corpus replay "
        "only; default 30)",
    )
    audit.add_argument("--seed", type=int, default=0)
    audit.add_argument(
        "--corpus",
        default="tests/data/audit_corpus",
        help="directory of committed repros to replay first "
        "(missing directory = nothing to replay)",
    )
    audit.add_argument(
        "--out-dir",
        default="audit_failures",
        help="where shrunk repros of new failures are written "
        "(CI uploads this directory as an artifact)",
    )
    audit.add_argument(
        "--approaches",
        default=None,
        metavar="A,B,...",
        help="comma-separated approaches to cross-check (default: the "
        "DIFFERENTIAL_APPROACH_ORDER representatives)",
    )
    audit.add_argument(
        "--self-test",
        action="store_true",
        help="inject a deliberate pair-sum off-by-one and verify the "
        "harness detects and shrinks it (mutation self-test)",
    )
    audit.add_argument(
        "--verbose", action="store_true", help="per-entry progress lines"
    )
    audit.set_defaults(handler=_cmd_audit)

    chaos = commands.add_parser(
        "chaos",
        help="seeded process-chaos campaign: crash children, prove "
        "recovery is exact; or --reap orphaned shared memory",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--sweeps",
        type=int,
        default=2,
        help="chaotic sweeps to run against the clean oracle (default 2)",
    )
    chaos.add_argument(
        "--jobs",
        type=int,
        default=2,
        help="worker processes per chaotic sweep (default 2)",
    )
    chaos.add_argument(
        "--kill-rate",
        type=float,
        default=0.1,
        help="per-attempt probability a pool child SIGKILLs itself "
        "mid-cell (default 0.1)",
    )
    chaos.add_argument(
        "--hang-rate",
        type=float,
        default=0.05,
        help="per-attempt probability a child sleeps past the cell "
        "timeout (default 0.05)",
    )
    chaos.add_argument(
        "--raise-rate",
        type=float,
        default=0.1,
        help="per-attempt probability a child raises a poison-pill "
        "unpickle error (default 0.1)",
    )
    chaos.add_argument(
        "--attach-exit-rate",
        type=float,
        default=0.05,
        help="per-attempt probability a child exits hard inside the "
        "shared-memory attach (default 0.05)",
    )
    chaos.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="per-cell timeout the hang injection must exceed (default 30)",
    )
    chaos.add_argument(
        "--workdir",
        default=None,
        help="directory for the per-sweep checkpoint journals "
        "(default: a fresh temp directory)",
    )
    chaos.add_argument(
        "--out", default=None, help="write the campaign report JSON here"
    )
    chaos.add_argument(
        "--reap",
        action="store_true",
        help="skip the campaign: scan the shared-memory registry and "
        "unlink segments whose owner process is dead",
    )
    chaos.add_argument(
        "--force",
        action="store_true",
        help="with --reap: unlink registered segments even when their "
        "owner is still alive",
    )
    chaos.set_defaults(handler=_cmd_chaos)

    profile = commands.add_parser(
        "profile",
        help="cProfile the validity + solve hot path, report top functions "
        "per phase (see docs/PERFORMANCE.md, 'Profiling')",
    )
    profile.add_argument(
        "--instance",
        default=None,
        help="JSON instance to profile (default: generate one from "
        "--workers/--tasks/--seed)",
    )
    profile.add_argument("--workers", type=int, default=2000)
    profile.add_argument("--tasks", type=int, default=500)
    profile.add_argument(
        "--approach", choices=sorted(APPROACHES), default="GT+ALL"
    )
    profile.add_argument("--epsilon", type=float, default=0.05)
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument(
        "--kernel",
        choices=KERNELS,
        default=DEFAULT_KERNEL,
        help="evaluation kernel to profile; compare 'python' vs 'native' "
        "runs to see which interpreted loops the kernels displaced",
    )
    profile.add_argument(
        "--top",
        type=int,
        default=15,
        help="functions to keep per phase, sorted by self time (default 15)",
    )
    profile.add_argument(
        "--out", default=None, help="write the hotspot report JSON here"
    )
    profile.set_defaults(handler=_cmd_profile)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except (json.JSONDecodeError, ValueError, ReproError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
