"""The Equation 1 learning loop: estimating qualities from ratings.

The paper's cooperation score ``q_i(w_k)`` is *estimated* from requester
ratings of co-completed tasks (Equation 1). In the evaluation the
estimates are given up front, but a live platform has to learn them:
assignments are made with the current estimates, requesters rate the
outcomes, and the estimates improve. This module closes that loop:

* :class:`RatingModel` — generates a requester rating for a completed
  group from the *true* (latent) cooperation matrix: the group's
  normalized mean pair quality plus truncated noise.
* :class:`QualityEstimator` — maintains per-pair rating histories and
  materializes the Equation 1 estimate matrix on demand.
* :func:`run_learning_simulation` — a batch simulation where the solver
  sees only the estimates, while realized revenue is scored with the
  truth; reports the estimate error and realized score per round.

The headline property (asserted by the tests): as histories accumulate,
the estimate matrix converges toward ``alpha * omega + (1 - alpha) *
(true group signal)`` and realized scores improve over the cold-start
prior.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.core.quality import (
    DEFAULT_ALPHA,
    DEFAULT_BASE_QUALITY,
    CooperationMatrix,
    estimate_pair_quality,
)
from repro.core.validity import compute_valid_pairs
from repro.utils.rng import ensure_rng

__all__ = ["RatingModel", "QualityEstimator", "LearningRound", "run_learning_simulation"]


@dataclass
class RatingModel:
    """Generates requester ratings from latent cooperation quality.

    A completed group's rating is the mean *pairwise* quality of its
    members (already in ``[0, 1]``) plus Gaussian noise, clipped to the
    unit interval. ``noise = 0`` makes ratings a deterministic function
    of the latent matrix, which the estimator tests use.
    """

    true_quality: CooperationMatrix
    noise: float = 0.05

    def rate(self, members: list[int], rng) -> float:
        if len(members) < 2:
            raise ValueError("a rated group needs at least two members")
        index = np.asarray(members, dtype=int)
        count = len(members)
        mean_pair = self.true_quality.ordered_pair_sum(index) / (
            count * (count - 1)
        )
        if self.noise > 0:
            mean_pair += float(ensure_rng(rng).normal(0.0, self.noise))
        return float(np.clip(mean_pair, 0.0, 1.0))


@dataclass
class QualityEstimator:
    """Per-pair rating histories with Equation 1 materialization.

    Pairs are unordered (a rating applies to both directions, as in the
    paper's symmetric experimental setup).
    """

    worker_count: int
    base_quality: float = DEFAULT_BASE_QUALITY
    alpha: float = DEFAULT_ALPHA
    histories: dict[tuple[int, int], list[float]] = field(
        default_factory=lambda: defaultdict(list)
    )

    def record_group(self, members: list[int], rating: float) -> None:
        """Credit a completed group's rating to every member pair."""
        if not 0.0 <= rating <= 1.0:
            raise ValueError(f"rating {rating} outside [0, 1]")
        ordered = sorted(set(members))
        if len(ordered) != len(members):
            raise ValueError("duplicate members in rated group")
        for position, i in enumerate(ordered):
            for k in ordered[position + 1 :]:
                self.histories[(i, k)].append(rating)

    def pair_estimate(self, i: int, k: int) -> float:
        """The Equation 1 estimate for one pair."""
        if i == k:
            raise ValueError("no estimate for a self-pair")
        key = (min(i, k), max(i, k))
        return estimate_pair_quality(
            self.histories.get(key, []), self.base_quality, self.alpha
        )

    def observed_pair_count(self) -> int:
        return len(self.histories)

    def to_matrix(self) -> CooperationMatrix:
        """Materialize the full estimate matrix.

        Unobserved pairs sit at the prior (Equation 1 with no history
        falls back to the platform's base quality).
        """
        prior = estimate_pair_quality([], self.base_quality, self.alpha)
        q = np.full((self.worker_count, self.worker_count), prior)
        for (i, k), ratings in self.histories.items():
            value = estimate_pair_quality(ratings, self.base_quality, self.alpha)
            q[i, k] = q[k, i] = value
        return CooperationMatrix(q, copy=False)

    def estimation_error(self, true_quality: CooperationMatrix) -> float:
        """Mean absolute error over *observed* pairs (NaN-free: returns
        0.0 when nothing has been observed yet)."""
        if not self.histories:
            return 0.0
        errors = [
            abs(self.pair_estimate(i, k) - true_quality.pair(i, k))
            for (i, k) in self.histories
        ]
        return float(np.mean(errors))


@dataclass(frozen=True)
class LearningRound:
    """Per-round outcome of the learning simulation."""

    round_index: int
    realized_score: float
    completed_tasks: int
    observed_pairs: int
    estimation_error: float


def run_learning_simulation(
    true_quality: CooperationMatrix,
    make_instance,
    solver,
    rounds: int = 10,
    rating_noise: float = 0.05,
    seed=None,
) -> list[LearningRound]:
    """Run the assign -> rate -> re-estimate loop.

    Parameters
    ----------
    true_quality:
        The latent cooperation matrix generating outcomes.
    make_instance:
        Callable ``(round_index, quality_matrix, rng) -> Instance`` that
        builds each round's batch *using the estimate matrix* (so the
        solver never sees the truth).
    solver:
        ``(instance, valid_pairs) -> Assignment``.
    rounds / rating_noise / seed:
        Loop length, requester-rating noise, reproducibility.

    Returns the per-round trajectory; realized scores are computed by
    re-scoring the chosen groups under ``true_quality``.
    """
    rng = ensure_rng(seed)
    estimator = QualityEstimator(worker_count=true_quality.size)
    rating_model = RatingModel(true_quality=true_quality, noise=rating_noise)
    trajectory: list[LearningRound] = []

    for round_index in range(rounds):
        estimates = estimator.to_matrix()
        instance = make_instance(round_index, estimates, rng)
        valid_pairs = compute_valid_pairs(instance)
        assignment = solver(instance, valid_pairs)
        assignment.drop_incomplete_groups()

        realized = 0.0
        completed = 0
        for task in range(instance.task_count):
            members = list(assignment.members(task))
            if len(members) < instance.min_group_size:
                continue
            completed += 1
            from repro.core.revenue import group_revenue

            realized += group_revenue(
                true_quality,
                members,
                instance.tasks[task].capacity,
                instance.min_group_size,
            )
            rating = rating_model.rate(members, rng)
            estimator.record_group(members, rating)

        trajectory.append(
            LearningRound(
                round_index=round_index,
                realized_score=realized,
                completed_tasks=completed,
                observed_pairs=estimator.observed_pair_count(),
                estimation_error=estimator.estimation_error(true_quality),
            )
        )
    return trajectory
