"""The batch-based framework of Algorithm 1.

A :class:`~repro.simulation.batch.BatchSimulator` runs ``R`` assignment
rounds over a :class:`~repro.simulation.population.Population`: each round
samples available workers and tasks, builds an :class:`~repro.core.Instance`,
invokes a solver, dispatches complete groups, and carries unserved tasks
and freed workers into the next round.
"""

from repro.simulation.arrivals import DiurnalArrivals, PoissonArrivals, TopUpArrivals
from repro.simulation.batch import BatchConfig, BatchSimulator, RoundMetrics, SimulationReport
from repro.simulation.faults import FaultEvent, FaultInjector, FaultModel
from repro.simulation.metrics import AggregateMetrics, aggregate, write_csv, write_jsonl
from repro.simulation.feedback import (
    LearningRound,
    QualityEstimator,
    RatingModel,
    run_learning_simulation,
)
from repro.simulation.population import Population

__all__ = [
    "DiurnalArrivals",
    "PoissonArrivals",
    "TopUpArrivals",
    "AggregateMetrics",
    "aggregate",
    "write_csv",
    "write_jsonl",
    "BatchConfig",
    "BatchSimulator",
    "RoundMetrics",
    "SimulationReport",
    "FaultEvent",
    "FaultInjector",
    "FaultModel",
    "LearningRound",
    "QualityEstimator",
    "RatingModel",
    "run_learning_simulation",
    "Population",
]
