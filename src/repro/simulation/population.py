"""Worker/task populations the batch framework samples from.

The paper's experiments draw each round's workers and tasks uniformly
from a fixed population (the Meetup crawl, or a synthetic point cloud)
whose cooperation matrix is known up front. :class:`Population` bundles
those three ingredients and provides the per-round sampling plus the
quality-submatrix extraction the framework needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.quality import CooperationMatrix
from repro.core.quality_store import QualityStore
from repro.datasets.meetup import MeetupDataset
from repro.datasets.synthetic import generate_locations, sparse_community_quality
from repro.utils.rng import ensure_rng

__all__ = ["Population"]


@dataclass(frozen=True)
class Population:
    """A pool of potential workers and task sites with pairwise quality.

    Attributes
    ----------
    worker_locations:
        ``(M, 2)`` home locations of every potential worker.
    task_locations:
        ``(N, 2)`` locations where tasks may appear.
    quality:
        The ``(M, M)`` population-level cooperation matrix; per-batch
        matrices are carved out with
        :meth:`~repro.core.quality.CooperationMatrix.restricted_to`.
    """

    worker_locations: np.ndarray
    task_locations: np.ndarray
    quality: QualityStore

    def __post_init__(self) -> None:
        if self.worker_locations.ndim != 2 or self.worker_locations.shape[1] != 2:
            raise ValueError("worker_locations must have shape (M, 2)")
        if self.task_locations.ndim != 2 or self.task_locations.shape[1] != 2:
            raise ValueError("task_locations must have shape (N, 2)")
        if self.quality.size != self.worker_locations.shape[0]:
            raise ValueError(
                f"quality matrix is {self.quality.size}x{self.quality.size} but "
                f"there are {self.worker_locations.shape[0]} workers"
            )

    @property
    def worker_pool_size(self) -> int:
        return self.worker_locations.shape[0]

    @property
    def task_pool_size(self) -> int:
        return self.task_locations.shape[0]

    @classmethod
    def from_meetup(cls, dataset: MeetupDataset) -> "Population":
        """Wrap a (generated) Meetup dataset as a population."""
        return cls(
            worker_locations=dataset.user_locations,
            task_locations=dataset.event_locations,
            quality=dataset.quality,
        )

    @classmethod
    def synthetic(
        cls,
        worker_pool_size: int,
        task_pool_size: int,
        distribution: str = "uniform",
        quality_kind: str = "community",
        seed=None,
        quality_backend: str = "dense",
        quality: QualityStore | None = None,
    ) -> "Population":
        """A synthetic population (UNIF or SKEW locations).

        ``quality_kind`` selects the cooperation structure — see
        :class:`~repro.core.quality.CooperationMatrix`.
        ``quality_backend="sparse"`` builds an O(nnz)
        :class:`~repro.core.quality_store.SparseQualityStore` (community
        structure only — a uniform matrix has no sparsity to exploit)
        without ever materializing the dense matrix. Passing an explicit
        ``quality`` store skips quality generation entirely — the sweep
        pool uses this to wrap a shared-memory segment. Locations are
        drawn *before* quality from the same rng stream, so they are
        identical across backends for a given seed.
        """
        rng = ensure_rng(seed)
        worker_locations = generate_locations(rng, worker_pool_size, distribution)
        task_locations = generate_locations(rng, task_pool_size, distribution)
        if quality is None:
            if quality_backend == "sparse":
                if quality_kind != "community":
                    raise ValueError(
                        "the sparse quality backend requires "
                        f"quality_kind='community', got {quality_kind!r}"
                    )
                quality = sparse_community_quality(worker_pool_size, seed=rng)
            elif quality_backend == "dense":
                if quality_kind == "community":
                    quality = CooperationMatrix.random_community(
                        worker_pool_size, seed=rng
                    )
                elif quality_kind == "uniform":
                    quality = CooperationMatrix.random_uniform(
                        worker_pool_size, seed=rng
                    )
                else:
                    raise ValueError(
                        f"unknown quality_kind {quality_kind!r}; "
                        "expected 'community' or 'uniform'"
                    )
            else:
                raise ValueError(
                    f"unknown quality_backend {quality_backend!r}; "
                    "expected 'dense' or 'sparse'"
                )
        return cls(
            worker_locations=worker_locations,
            task_locations=task_locations,
            quality=quality,
        )

    def sample_workers(
        self, count: int, rng, exclude: set[int] | None = None
    ) -> np.ndarray:
        """Uniformly sample ``count`` distinct worker indices.

        ``exclude`` removes busy workers from the pool; when fewer than
        ``count`` candidates remain, all of them are returned.
        """
        rng = ensure_rng(rng)
        if exclude:
            candidates = np.array(
                [w for w in range(self.worker_pool_size) if w not in exclude]
            )
        else:
            candidates = np.arange(self.worker_pool_size)
        take = min(count, candidates.size)
        if take == 0:
            return np.array([], dtype=int)
        return np.sort(rng.choice(candidates, size=take, replace=False))

    def sample_task_sites(self, count: int, rng) -> np.ndarray:
        """Sample ``count`` task-site indices (with replacement — several
        tasks may appear at a popular venue)."""
        rng = ensure_rng(rng)
        if self.task_pool_size == 0 or count == 0:
            return np.array([], dtype=int)
        return rng.integers(0, self.task_pool_size, size=count)
