"""The batch-based framework — Algorithm 1 of the paper.

Each round (batch) at timestamp ``phi``:

1. retrieve the available tasks ``T(phi)`` — tasks still open from the
   previous batch plus newly created ones — and the available workers
   ``W(phi)`` — idle population members plus workers who finished their
   previous assignment;
2. compute every worker's valid task set (Definition 3);
3. run the configured solver to obtain an assignment;
4. dispatch: groups that reached the minimum size ``B`` start working
   (their workers become busy for ``task_duration``), under-filled groups
   dissolve, unserved tasks carry over until their deadlines expire.

The simulator reports per-round and total cooperation scores plus solver
wall-clock time — the two measurements behind every figure in the paper.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Protocol

import numpy as np

from repro.core.assignment import Assignment
from repro.core.model import Instance, Task, Worker
from repro.core.validity import ValidPairs, compute_valid_pairs
from repro.datasets.synthetic import gaussian_in_range
from repro.simulation.population import Population
from repro.spatial.geometry import Point
from repro.utils.rng import ensure_rng, spawn_rngs

__all__ = ["BatchConfig", "BatchSimulator", "RoundMetrics", "SimulationReport"]


class Solver(Protocol):
    """Anything that turns a batch instance into an assignment."""

    def __call__(
        self, instance: Instance, valid_pairs: ValidPairs
    ) -> Assignment: ...


@dataclass(frozen=True)
class BatchConfig:
    """Table II's experimental knobs.

    Defaults are the paper's bold defaults: ``a_j = 4``, speeds in
    ``[1%, 5%]`` of the space per time unit, radii in ``[5%, 10%]``,
    remaining time 3, ``m = 1000`` workers and ``n = 500`` tasks per
    round, ``R = 10`` rounds, ``B = 3``.
    """

    rounds: int = 10
    workers_per_round: int = 1000
    tasks_per_round: int = 500
    capacity: int = 4
    min_group_size: int = 3
    remaining_time: float = 3.0
    speed_range: tuple[float, float] = (0.01, 0.05)
    radius_range: tuple[float, float] = (0.05, 0.10)
    task_duration: float = 1.0
    batch_interval: float = 1.0
    carryover: bool = True
    validity_strategy: str = "grid"
    task_arrivals: object | None = None
    """Optional arrival process (see :mod:`repro.simulation.arrivals`).

    ``None`` uses the paper's protocol: top the open pool up to
    ``tasks_per_round`` every batch.
    """
    worker_participation: float = 1.0
    """Probability that a sampled worker actually shows up this batch.

    Models churn: a platform invites ``workers_per_round`` idle members
    but only a fraction respond. 1.0 (default) reproduces the paper's
    deterministic supply.
    """

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        if self.capacity < self.min_group_size:
            raise ValueError(
                f"capacity {self.capacity} below min_group_size {self.min_group_size}"
            )
        if self.remaining_time <= 0:
            raise ValueError("remaining_time must be positive")
        if not 0.0 < self.worker_participation <= 1.0:
            raise ValueError(
                f"worker_participation must be in (0, 1], got "
                f"{self.worker_participation}"
            )


@dataclass(frozen=True)
class RoundMetrics:
    """Measurements of one batch."""

    round_index: int
    timestamp: float
    worker_count: int
    task_count: int
    valid_pair_count: int
    score: float
    assigned_workers: int
    completed_tasks: int
    solver_seconds: float


@dataclass
class SimulationReport:
    """Aggregated outcome of a simulation run."""

    rounds: list[RoundMetrics] = field(default_factory=list)

    @property
    def total_score(self) -> float:
        """The figures' "Total Cooperation Score" over all rounds."""
        return sum(r.score for r in self.rounds)

    @property
    def total_completed_tasks(self) -> int:
        return sum(r.completed_tasks for r in self.rounds)

    @property
    def total_assigned_workers(self) -> int:
        return sum(r.assigned_workers for r in self.rounds)

    @property
    def mean_batch_seconds(self) -> float:
        """The figures' "Batch Running Time"."""
        if not self.rounds:
            return 0.0
        return sum(r.solver_seconds for r in self.rounds) / len(self.rounds)


@dataclass
class _OpenTask:
    """A task carried across batches until served or expired."""

    task: Task


class BatchSimulator:
    """Runs Algorithm 1 over a population with a pluggable solver.

    Parameters
    ----------
    population:
        The worker/task pool (Meetup surrogate or synthetic).
    config:
        Experimental settings.
    solver:
        Callable ``(instance, valid_pairs) -> Assignment``; the
        experiment harness wraps each approach this way.
    seed:
        Drives all sampling; two simulators with the same seed present
        identical batches to their solvers, which is how the harness
        compares approaches fairly.
    instance_hook:
        Optional callable invoked with each round's instance and valid
        pairs (used by the harness to compute UPPER on the same batches).
    """

    def __init__(
        self,
        population: Population,
        config: BatchConfig,
        solver: Solver,
        seed=None,
        instance_hook: Callable[[Instance, ValidPairs], None] | None = None,
    ) -> None:
        self.population = population
        self.config = config
        self.solver = solver
        self.instance_hook = instance_hook
        self._round_rngs = spawn_rngs(ensure_rng(seed), config.rounds)

    def run(self) -> SimulationReport:
        """Execute all configured rounds and return the report."""
        config = self.config
        report = SimulationReport()
        busy_until: dict[int, float] = {}
        open_tasks: list[_OpenTask] = []
        next_task_id = 0

        for round_index in range(config.rounds):
            now = round_index * config.batch_interval
            rng = self._round_rngs[round_index]

            # Workers who finished their previous groups become available.
            busy_until = {
                worker: release
                for worker, release in busy_until.items()
                if release > now
            }
            worker_indices = self.population.sample_workers(
                config.workers_per_round, rng, exclude=set(busy_until)
            )
            if config.worker_participation < 1.0 and worker_indices.size:
                showed_up = (
                    rng.random(worker_indices.size) < config.worker_participation
                )
                worker_indices = worker_indices[showed_up]
            workers = self._materialize_workers(worker_indices, now, rng)

            # Expired carryover tasks disappear; fresh tasks arrive.
            open_tasks = [
                entry for entry in open_tasks if entry.task.deadline >= now
            ]
            if config.task_arrivals is None:
                new_task_count = max(0, config.tasks_per_round - len(open_tasks))
            else:
                new_task_count = int(
                    config.task_arrivals.count(round_index, len(open_tasks), rng)
                )
            sites = self.population.sample_task_sites(new_task_count, rng)
            for site in sites:
                location = self.population.task_locations[int(site)]
                open_tasks.append(
                    _OpenTask(
                        Task(
                            task_id=next_task_id,
                            location=Point(float(location[0]), float(location[1])),
                            capacity=config.capacity,
                            deadline=now + config.remaining_time,
                            created_time=now,
                        )
                    )
                )
                next_task_id += 1

            instance = Instance(
                workers=workers,
                tasks=[entry.task for entry in open_tasks],
                quality=self.population.quality.restricted_to(worker_indices),
                min_group_size=config.min_group_size,
                now=now,
            )
            valid_pairs = compute_valid_pairs(
                instance, strategy=config.validity_strategy
            )
            if self.instance_hook is not None:
                self.instance_hook(instance, valid_pairs)

            started = time.perf_counter()
            assignment = self.solver(instance, valid_pairs)
            solver_seconds = time.perf_counter() - started

            assignment.check_feasible()
            assignment.drop_incomplete_groups()
            score = assignment.total_score()

            served_tasks: set[int] = set()
            for task_index in range(instance.task_count):
                if (
                    assignment.assigned_count(task_index)
                    >= config.min_group_size
                ):
                    served_tasks.add(task_index)
                    for worker in assignment.members(task_index):
                        population_index = int(worker_indices[worker])
                        busy_until[population_index] = now + config.task_duration

            report.rounds.append(
                RoundMetrics(
                    round_index=round_index,
                    timestamp=now,
                    worker_count=instance.worker_count,
                    task_count=instance.task_count,
                    valid_pair_count=valid_pairs.pair_count,
                    score=score,
                    assigned_workers=assignment.assigned_worker_count(),
                    completed_tasks=len(served_tasks),
                    solver_seconds=solver_seconds,
                )
            )

            if config.carryover:
                open_tasks = [
                    entry
                    for task_index, entry in enumerate(open_tasks)
                    if task_index not in served_tasks
                ]
            else:
                open_tasks = []
        return report

    def _materialize_workers(
        self, worker_indices: np.ndarray, now: float, rng
    ) -> list[Worker]:
        """Turn population indices into per-batch Worker records.

        Speeds and radii are re-drawn each batch with the paper's
        truncated-Gaussian range mapping; locations come from the
        population.
        """
        config = self.config
        count = worker_indices.size
        speeds = gaussian_in_range(rng, count, *config.speed_range)
        radii = gaussian_in_range(rng, count, *config.radius_range)
        workers = []
        for position, population_index in enumerate(worker_indices):
            location = self.population.worker_locations[int(population_index)]
            workers.append(
                Worker(
                    worker_id=int(population_index),
                    location=Point(float(location[0]), float(location[1])),
                    speed=float(speeds[position]),
                    radius=float(radii[position]),
                    arrival_time=now,
                )
            )
        return workers
