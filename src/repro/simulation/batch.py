"""The batch-based framework — Algorithm 1 of the paper.

Each round (batch) at timestamp ``phi``:

1. retrieve the available tasks ``T(phi)`` — tasks still open from the
   previous batch plus newly created ones — and the available workers
   ``W(phi)`` — idle population members plus workers who finished their
   previous assignment;
2. compute every worker's valid task set (Definition 3);
3. run the configured solver to obtain an assignment;
4. dispatch: groups that reached the minimum size ``B`` start working
   (their workers become busy for ``task_duration``), under-filled groups
   dissolve, unserved tasks carry over until their deadlines expire.

The simulator reports per-round and total cooperation scores plus solver
wall-clock time — the two measurements behind every figure in the paper.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Protocol

import numpy as np

from repro.core.assignment import Assignment
from repro.core.model import Instance, Task, Worker
from repro.core.validity import (
    IncrementalValidityIndex,
    ValidPairs,
    compute_valid_pairs,
)
from repro.datasets.synthetic import gaussian_in_range
from repro.simulation.faults import FaultEvent, FaultInjector, FaultModel
from repro.simulation.population import Population
from repro.spatial.geometry import Point
from repro.utils.rng import ensure_rng, spawn_rngs

__all__ = ["BatchConfig", "BatchSimulator", "RoundMetrics", "SimulationReport"]


class Solver(Protocol):
    """Anything that turns a batch instance into an assignment."""

    def __call__(
        self, instance: Instance, valid_pairs: ValidPairs
    ) -> Assignment: ...


@dataclass(frozen=True)
class BatchConfig:
    """Table II's experimental knobs.

    Defaults are the paper's bold defaults: ``a_j = 4``, speeds in
    ``[1%, 5%]`` of the space per time unit, radii in ``[5%, 10%]``,
    remaining time 3, ``m = 1000`` workers and ``n = 500`` tasks per
    round, ``R = 10`` rounds, ``B = 3``.
    """

    rounds: int = 10
    workers_per_round: int = 1000
    tasks_per_round: int = 500
    capacity: int = 4
    min_group_size: int = 3
    remaining_time: float = 3.0
    speed_range: tuple[float, float] = (0.01, 0.05)
    radius_range: tuple[float, float] = (0.05, 0.10)
    task_duration: float = 1.0
    batch_interval: float = 1.0
    carryover: bool = True
    validity_strategy: str = "grid"
    incremental_validity: bool = True
    """Maintain the validity task index incrementally across rounds.

    Applies the open-task pool's arrivals/departures/expiries to one
    long-lived :class:`~repro.core.validity.IncrementalValidityIndex`
    instead of rebuilding the spatial index every round. Only effective
    with ``validity_strategy="grid"`` (other strategies keep the full
    rebuild). Results are identical either way — the flag exists for
    differential testing, not because behavior differs.
    """
    task_arrivals: object | None = None
    """Optional arrival process (see :mod:`repro.simulation.arrivals`).

    ``None`` uses the paper's protocol: top the open pool up to
    ``tasks_per_round`` every batch.
    """
    worker_participation: float = 1.0
    """Probability that a sampled worker actually shows up this batch.

    Models churn: a platform invites ``workers_per_round`` idle members
    but only a fraction respond. 1.0 (default) reproduces the paper's
    deterministic supply.
    """
    faults: FaultModel | None = None
    """Optional in-dispatch fault injection (see
    :mod:`repro.simulation.faults`).

    Unlike ``worker_participation`` — which thins the invited pool
    *before* the solver runs — the fault model breaks assignments
    *after* they are made: dispatch no-shows, mid-task dropouts, task
    cancellations and location noise, plus the group-repair response.
    ``None`` (default) reproduces the paper's fault-free platform
    bit-identically.
    """

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        if self.capacity < self.min_group_size:
            raise ValueError(
                f"capacity {self.capacity} below min_group_size {self.min_group_size}"
            )
        if self.remaining_time <= 0:
            raise ValueError("remaining_time must be positive")
        if self.task_duration <= 0:
            raise ValueError(
                f"task_duration must be positive, got {self.task_duration}"
            )
        if self.batch_interval <= 0:
            raise ValueError(
                f"batch_interval must be positive, got {self.batch_interval}"
            )
        for name in ("speed_range", "radius_range"):
            lo, hi = getattr(self, name)
            if lo <= 0 or hi <= 0:
                raise ValueError(
                    f"{name} bounds must be positive, got ({lo}, {hi})"
                )
            if lo > hi:
                raise ValueError(
                    f"{name} lower bound {lo} exceeds upper bound {hi}"
                )
        if not 0.0 < self.worker_participation <= 1.0:
            raise ValueError(
                f"worker_participation must be in (0, 1], got "
                f"{self.worker_participation}"
            )


@dataclass(frozen=True)
class RoundMetrics:
    """Measurements of one batch.

    The fault fields are all zero/empty on fault-free runs:
    ``fault_events`` records every injected fault (and the repair
    machinery's reactions) in occurrence order; the counters summarize
    the dispatch-repair pass.
    """

    round_index: int
    timestamp: float
    worker_count: int
    task_count: int
    valid_pair_count: int
    score: float
    assigned_workers: int
    completed_tasks: int
    solver_seconds: float
    fault_events: tuple[FaultEvent, ...] = ()
    repaired_groups: int = 0
    dissolved_groups: int = 0
    backfilled_workers: int = 0


@dataclass
class SimulationReport:
    """Aggregated outcome of a simulation run."""

    rounds: list[RoundMetrics] = field(default_factory=list)

    @property
    def total_score(self) -> float:
        """The figures' "Total Cooperation Score" over all rounds."""
        return sum(r.score for r in self.rounds)

    @property
    def total_completed_tasks(self) -> int:
        return sum(r.completed_tasks for r in self.rounds)

    @property
    def total_assigned_workers(self) -> int:
        return sum(r.assigned_workers for r in self.rounds)

    @property
    def mean_batch_seconds(self) -> float:
        """The figures' "Batch Running Time"."""
        if not self.rounds:
            return 0.0
        return sum(r.solver_seconds for r in self.rounds) / len(self.rounds)

    @property
    def fault_events(self) -> list[FaultEvent]:
        """Every fault event of the run, in occurrence order."""
        return [event for r in self.rounds for event in r.fault_events]

    @property
    def fault_counts(self) -> dict[str, int]:
        """Event counts by kind (only kinds that occurred appear)."""
        counts: dict[str, int] = {}
        for event in self.fault_events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    @property
    def total_repaired_groups(self) -> int:
        return sum(r.repaired_groups for r in self.rounds)

    @property
    def total_dissolved_groups(self) -> int:
        return sum(r.dissolved_groups for r in self.rounds)


@dataclass
class _OpenTask:
    """A task carried across batches until served or expired.

    ``fault_retries`` counts fault-caused group dissolutions the task
    has survived; past ``FaultModel.max_task_retries`` the platform
    abandons it instead of retrying forever.
    """

    task: Task
    fault_retries: int = 0


class BatchSimulator:
    """Runs Algorithm 1 over a population with a pluggable solver.

    Parameters
    ----------
    population:
        The worker/task pool (Meetup surrogate or synthetic).
    config:
        Experimental settings.
    solver:
        Callable ``(instance, valid_pairs) -> Assignment``; the
        experiment harness wraps each approach this way.
    seed:
        Drives all sampling; two simulators with the same seed present
        identical batches to their solvers, which is how the harness
        compares approaches fairly.
    instance_hook:
        Optional callable invoked with each round's instance and valid
        pairs (used by the harness to compute UPPER on the same batches).
    """

    def __init__(
        self,
        population: Population,
        config: BatchConfig,
        solver: Solver,
        seed=None,
        instance_hook: Callable[[Instance, ValidPairs], None] | None = None,
    ) -> None:
        self.population = population
        self.config = config
        self.solver = solver
        self.instance_hook = instance_hook
        # The fault streams are spawned from the same root *after* the
        # round streams, so enabling faults never perturbs the sampling
        # draws, and a disabled/absent fault model spawns nothing —
        # keeping fault-free runs bit-identical to the historical path.
        root = ensure_rng(seed)
        self._round_rngs = spawn_rngs(root, config.rounds)
        self._injector: FaultInjector | None = None
        if config.faults is not None and config.faults.enabled:
            self._injector = FaultInjector(
                config.faults, config.rounds, seed=root
            )

    def run(self) -> SimulationReport:
        """Execute all configured rounds and return the report."""
        config = self.config
        injector = self._injector
        report = SimulationReport()
        busy_until: dict[int, float] = {}
        open_tasks: list[_OpenTask] = []
        next_task_id = 0
        validity_index: IncrementalValidityIndex | None = None
        if config.incremental_validity and config.validity_strategy == "grid":
            # Fixed cell size (the mean configured radius) instead of the
            # per-round mean of materialized radii: the incremental index
            # outlives any single round, and ValidPairs results are
            # invariant to the cell size (exact distance + deadline
            # filters, sorted candidate lists).
            validity_index = IncrementalValidityIndex(
                cell_size=sum(config.radius_range) / 2.0
            )

        for round_index in range(config.rounds):
            now = round_index * config.batch_interval
            rng = self._round_rngs[round_index]
            events: list[FaultEvent] = []

            # Workers who finished their previous groups become available.
            busy_until = {
                worker: release
                for worker, release in busy_until.items()
                if release > now
            }
            worker_indices = self.population.sample_workers(
                config.workers_per_round, rng, exclude=set(busy_until)
            )
            if config.worker_participation < 1.0 and worker_indices.size:
                showed_up = (
                    rng.random(worker_indices.size) < config.worker_participation
                )
                worker_indices = worker_indices[showed_up]
            workers = self._materialize_workers(worker_indices, now, rng)
            if injector is not None:
                workers = self._apply_location_noise(
                    injector, round_index, workers, events
                )

            # Expired carryover tasks disappear; fresh tasks arrive.
            open_tasks = [
                entry for entry in open_tasks if entry.task.deadline >= now
            ]
            if config.task_arrivals is None:
                new_task_count = max(0, config.tasks_per_round - len(open_tasks))
            else:
                new_task_count = int(
                    config.task_arrivals.count(round_index, len(open_tasks), rng)
                )
            sites = self.population.sample_task_sites(new_task_count, rng)
            for site in sites:
                location = self.population.task_locations[int(site)]
                open_tasks.append(
                    _OpenTask(
                        Task(
                            task_id=next_task_id,
                            location=Point(float(location[0]), float(location[1])),
                            capacity=config.capacity,
                            deadline=now + config.remaining_time,
                            created_time=now,
                        )
                    )
                )
                next_task_id += 1
            if injector is not None and open_tasks:
                cancelled, cancel_events = injector.cancellations(
                    round_index, [entry.task.task_id for entry in open_tasks]
                )
                if cancelled:
                    open_tasks = [
                        entry
                        for entry in open_tasks
                        if entry.task.task_id not in cancelled
                    ]
                events.extend(cancel_events)

            instance = Instance(
                workers=workers,
                tasks=[entry.task for entry in open_tasks],
                # restricted_to is part of the QualityStore protocol, so a
                # sparse population restricts per batch in O(nnz of the
                # draw) without ever materializing its full dense matrix.
                quality=self.population.quality.restricted_to(worker_indices),
                min_group_size=config.min_group_size,
                now=now,
            )
            if validity_index is not None:
                # Delta maintenance: expiries/cancellations/served tasks
                # leave the index, arrivals join it; the reach bound's
                # max_remaining is re-derived from the live pool so an
                # expired task can never widen a worker's candidate
                # radius.
                validity_index.sync(instance.tasks)
                valid_pairs = validity_index.compute(instance)
            else:
                valid_pairs = compute_valid_pairs(
                    instance, strategy=config.validity_strategy
                )
            if self.instance_hook is not None:
                self.instance_hook(instance, valid_pairs)

            started = time.perf_counter()
            assignment = self.solver(instance, valid_pairs)
            solver_seconds = time.perf_counter() - started

            assignment.check_feasible()
            assignment.drop_incomplete_groups()

            repaired = dissolved = backfilled = 0
            abandoned: set[int] = set()
            if injector is not None:
                repaired, dissolved, backfilled = self._dispatch_faults(
                    injector,
                    round_index,
                    assignment,
                    instance,
                    valid_pairs,
                    worker_indices,
                    open_tasks,
                    abandoned,
                    events,
                )
            score = assignment.total_score()

            served_tasks: set[int] = set()
            for task_index in range(instance.task_count):
                if (
                    assignment.assigned_count(task_index)
                    >= config.min_group_size
                ):
                    served_tasks.add(task_index)
                    for worker in assignment.members(task_index):
                        population_index = int(worker_indices[worker])
                        busy_until[population_index] = now + config.task_duration
            if injector is not None and served_tasks:
                self._mid_task_dropouts(
                    injector,
                    round_index,
                    assignment,
                    instance,
                    worker_indices,
                    served_tasks,
                    busy_until,
                    now,
                    events,
                )

            report.rounds.append(
                RoundMetrics(
                    round_index=round_index,
                    timestamp=now,
                    worker_count=instance.worker_count,
                    task_count=instance.task_count,
                    valid_pair_count=valid_pairs.pair_count,
                    score=score,
                    assigned_workers=assignment.assigned_worker_count(),
                    completed_tasks=len(served_tasks),
                    solver_seconds=solver_seconds,
                    fault_events=tuple(events),
                    repaired_groups=repaired,
                    dissolved_groups=dissolved,
                    backfilled_workers=backfilled,
                )
            )

            if config.carryover:
                open_tasks = [
                    entry
                    for task_index, entry in enumerate(open_tasks)
                    if task_index not in served_tasks
                    and task_index not in abandoned
                ]
            else:
                open_tasks = []
        return report

    # ------------------------------------------------------------------
    # fault handling (only reached when a fault model is enabled)
    # ------------------------------------------------------------------
    def _apply_location_noise(
        self,
        injector: FaultInjector,
        round_index: int,
        workers: list[Worker],
        events: list[FaultEvent],
    ) -> list[Worker]:
        """Perturb reported worker positions (GPS error) before validity."""
        if not workers:
            return workers
        locations = np.array(
            [(w.location.x, w.location.y) for w in workers]
        )
        noisy, noise_events = injector.location_noise(round_index, locations)
        if not noise_events:
            return workers
        events.extend(noise_events)
        return [
            worker.moved_to(Point(float(noisy[i, 0]), float(noisy[i, 1])))
            for i, worker in enumerate(workers)
        ]

    def _dispatch_faults(
        self,
        injector: FaultInjector,
        round_index: int,
        assignment: Assignment,
        instance: Instance,
        valid_pairs: ValidPairs,
        worker_indices: np.ndarray,
        open_tasks: list[_OpenTask],
        abandoned: set[int],
        events: list[FaultEvent],
    ) -> tuple[int, int, int]:
        """No-shows at dispatch, then the group-repair pass.

        Every group is >= ``B`` strong when this runs (incomplete groups
        were already dropped). Workers who no-show are unassigned; each
        broken group is backfilled from idle valid workers when repair
        is on and enough candidates exist, otherwise dissolved. A task
        whose group dissolved increments its fault-retry counter and is
        abandoned (removed from the open pool) once the counter exceeds
        ``FaultModel.max_task_retries``.

        Returns ``(repaired_groups, dissolved_groups, backfilled_workers)``.
        """
        model = injector.model
        minimum = instance.min_group_size
        assigned = [
            worker
            for worker in range(instance.worker_count)
            if assignment.is_assigned(worker)
        ]
        mask = injector.no_shows(round_index, len(assigned))
        no_show_set: set[int] = set()
        broken: set[int] = set()
        for worker, missing in zip(assigned, mask):
            if not missing:
                continue
            task = assignment.unassign(worker)
            no_show_set.add(worker)
            broken.add(task)
            events.append(
                FaultEvent(
                    round_index=round_index,
                    kind="no_show",
                    worker_id=int(worker_indices[worker]),
                    task_id=instance.tasks[task].task_id,
                    detail="worker never arrived at dispatch",
                )
            )

        repaired = dissolved = backfilled = 0
        for task in sorted(broken):
            count = assignment.assigned_count(task)
            if count >= minimum:
                continue  # group absorbed the loss
            needed = minimum - count
            candidates: list[int] = []
            if model.repair:
                candidates = sorted(
                    (
                        worker
                        for worker in valid_pairs.workers_for_task[task]
                        if not assignment.is_assigned(worker)
                        and worker not in no_show_set
                    ),
                    key=lambda worker: (-assignment.join_gain(worker, task), worker),
                )
            if model.repair and len(candidates) >= needed and count > 0:
                for worker in candidates[:needed]:
                    assignment.assign(worker, task)
                    backfilled += 1
                    events.append(
                        FaultEvent(
                            round_index=round_index,
                            kind="backfill",
                            worker_id=int(worker_indices[worker]),
                            task_id=instance.tasks[task].task_id,
                            detail="idle valid worker backfilled a broken group",
                        )
                    )
                repaired += 1
                continue
            # Dissolve: idle the survivors, schedule a bounded retry.
            for worker in list(assignment.members(task)):
                assignment.unassign(worker)
            dissolved += 1
            events.append(
                FaultEvent(
                    round_index=round_index,
                    kind="dissolve",
                    task_id=instance.tasks[task].task_id,
                    detail=f"group fell below B={minimum} after no-shows",
                )
            )
            entry = open_tasks[task]
            entry.fault_retries += 1
            if entry.fault_retries > model.max_task_retries:
                abandoned.add(task)
                events.append(
                    FaultEvent(
                        round_index=round_index,
                        kind="abandon",
                        task_id=entry.task.task_id,
                        detail=(
                            f"abandoned after {entry.fault_retries} "
                            "fault-caused dissolutions"
                        ),
                    )
                )
        return repaired, dissolved, backfilled

    def _mid_task_dropouts(
        self,
        injector: FaultInjector,
        round_index: int,
        assignment: Assignment,
        instance: Instance,
        worker_indices: np.ndarray,
        served_tasks: set[int],
        busy_until: dict[int, float],
        now: float,
        events: list[FaultEvent],
    ) -> None:
        """Release mid-task quitters early.

        The task still completes (payment was committed at dispatch, and
        Equation 2's revenue was already booked), but the quitter rejoins
        the idle pool after ``dropout_release`` of the task duration —
        faults propagate into future rounds through worker supply.
        """
        started = [
            (task, worker)
            for task in sorted(served_tasks)
            for worker in assignment.members(task)
        ]
        mask = injector.dropouts(round_index, len(started))
        release = now + self.config.task_duration * injector.model.dropout_release
        for (task, worker), quit_early in zip(started, mask):
            if not quit_early:
                continue
            population_index = int(worker_indices[worker])
            busy_until[population_index] = release
            events.append(
                FaultEvent(
                    round_index=round_index,
                    kind="dropout",
                    worker_id=population_index,
                    task_id=instance.tasks[task].task_id,
                    detail=f"quit mid-task, released at t={release:g}",
                )
            )

    def _materialize_workers(
        self, worker_indices: np.ndarray, now: float, rng
    ) -> list[Worker]:
        """Turn population indices into per-batch Worker records.

        Speeds and radii are re-drawn each batch with the paper's
        truncated-Gaussian range mapping; locations come from the
        population.
        """
        config = self.config
        count = worker_indices.size
        speeds = gaussian_in_range(rng, count, *config.speed_range)
        radii = gaussian_in_range(rng, count, *config.radius_range)
        workers = []
        for position, population_index in enumerate(worker_indices):
            location = self.population.worker_locations[int(population_index)]
            workers.append(
                Worker(
                    worker_id=int(population_index),
                    location=Point(float(location[0]), float(location[1])),
                    speed=float(speeds[position]),
                    radius=float(radii[position]),
                    arrival_time=now,
                )
            )
        return workers
